"""Command-line interface: analyze, simulate, size, serve, and chaos-test HAP workloads.

Seven subcommands, mirroring how a network engineer would use the library:

* ``analyze``  — closed-form and (optionally) exact queueing analysis of a
  symmetric HAP against its Poisson baseline.
* ``simulate`` — an event-driven run with the headline statistics.
* ``size``     — minimum bandwidth for a mean-delay target.
* ``build-surfaces`` — precompute the admission/bandwidth decision surfaces
  into the versioned JSON artifact ``serve`` loads at boot.
* ``serve``    — the online admission-control service (newline-delimited
  JSON over TCP, three-tier answer path; ``--smoke`` for a self-test).
* ``bench-serve`` — closed-loop decisions/sec benchmark against an
  in-process server, one tier at a time.
* ``chaos``    — deterministic fault-injection: against the campaign
  runtime (default), or ``--target serve`` to prove poisoned/hung solves
  degrade to conservative denies within the deadline.

Examples
--------
::

    python -m repro.cli analyze --lam 0.0055 --mu 0.001 --lam1 0.01 \
        --mu1 0.01 --lam2 0.1 --mu2 20 -l 5 -m 3
    python -m repro.cli simulate --horizon 1e5 --seed 7
    python -m repro.cli simulate --replications 16 --retries 2 --timeout 600 \
        --checkpoint campaign.jsonl --resume
    python -m repro.cli simulate --engine columnar --replications 16
    python -m repro.cli size --delay-target 0.1
    python -m repro.cli build-surfaces --output surfaces.json
    python -m repro.cli serve --surfaces surfaces.json --port 4731
    python -m repro.cli bench-serve --tier cached --requests 5000
    python -m repro.cli chaos --kill 2 --delay 3:30 --poison spectral-kernel:eig
    python -m repro.cli chaos --target serve

All parameters default to the paper's Section-4 base set, so bare
subcommands reproduce paper numbers.

Exit codes
----------
``0`` success; ``1`` partial or total failure (some replication failed, or
the chaos verdict is a mismatch); ``2`` usage errors (bad arguments,
missing files).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.model import HAP

__all__ = ["build_parser", "main"]


def _add_hap_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--lam", type=float, default=0.0055, help="user arrival rate lambda"
    )
    parser.add_argument(
        "--mu", type=float, default=0.001, help="user departure rate mu"
    )
    parser.add_argument(
        "--lam1", type=float, default=0.01, help="application arrival rate lambda'"
    )
    parser.add_argument(
        "--mu1", type=float, default=0.01, help="application departure rate mu'"
    )
    parser.add_argument(
        "--lam2", type=float, default=0.1, help="message arrival rate lambda''"
    )
    parser.add_argument(
        "--mu2", type=float, default=20.0, help="message service rate mu''"
    )
    parser.add_argument(
        "-l", "--app-types", type=int, default=5, help="application types l"
    )
    parser.add_argument(
        "-m", "--message-types", type=int, default=3, help="message types m"
    )


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=("dense", "krylov", "auto"),
        default="auto",
        help="analytic grid-evaluation backend: 'dense' forces the "
        "spectral (eigendecomposition) kernels, 'krylov' forces the "
        "sparse action-based kernels, 'auto' (default) switches on "
        "modulating-chain size; applies to every analytic solve in the "
        "command, including sweeps fanned out over worker processes",
    )


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-replication wall-clock timeout in seconds (pool path "
        "only); an overdue job's worker is killed and the job retried "
        "or recorded as a timeout failure",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retries per failed replication (same seed, exponential "
        "backoff + deterministic jitter); default 0 = record failures "
        "without retrying",
    )
    parser.add_argument(
        "--retry-budget",
        type=int,
        default=None,
        help="campaign-wide cap on total retries (default: unlimited)",
    )
    parser.add_argument(
        "--checkpoint",
        type=str,
        default=None,
        help="crash-safe JSONL journal path recording every completed "
        "replication (atomic append + fsync)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="with --checkpoint: splice already-journaled replications "
        "back in instead of re-running them; final statistics are "
        "bit-identical to an uninterrupted run",
    )


def _retry_policy_from_args(args: argparse.Namespace):
    """Build the campaign RetryPolicy from CLI flags (None = defaults)."""
    from repro.runtime.resilience import RetryPolicy

    if (
        args.timeout is None
        and args.retries == 0
        and args.retry_budget is None
    ):
        return None
    return RetryPolicy(
        max_attempts=max(1, args.retries + 1),
        timeout=args.timeout,
        retry_budget=args.retry_budget,
    )


def _hap_from_args(args: argparse.Namespace) -> HAP:
    return HAP.symmetric(
        user_arrival_rate=args.lam,
        user_departure_rate=args.mu,
        app_arrival_rate=args.lam1,
        app_departure_rate=args.mu1,
        message_arrival_rate=args.lam2,
        message_service_rate=args.mu2,
        num_app_types=args.app_types,
        num_message_types=args.message_types,
        name="cli",
    )


def _service_params(args: argparse.Namespace):
    """A 2-application-type parameter set for the serving subcommands.

    The decision surfaces (and the paper's Section-7 admissible-region
    study) are 2-D; a wider symmetric HAP is truncated to its first two
    application types rather than rejected.
    """
    from dataclasses import replace

    params = _hap_from_args(args).params
    if params.num_app_types != 2:
        params = replace(params, applications=params.applications[:2])
    return params


def _parse_delay_targets(spec: str) -> tuple[float, ...]:
    """Comma-separated delay-target grid, e.g. ``"0.1,0.15,0.2"``."""
    try:
        targets = tuple(float(part) for part in spec.split(",") if part.strip())
    except ValueError:
        raise ValueError(f"bad --delay-targets spec {spec!r}") from None
    if not targets:
        raise ValueError("need at least one delay target")
    return targets


def _add_surface_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--delay-targets",
        type=str,
        default="0.1,0.15,0.2,0.3",
        help="comma-separated delay-target grid for the decision surfaces",
    )
    parser.add_argument(
        "--max-population",
        type=int,
        default=12,
        help="largest per-type population the surfaces cover",
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HAP (SIGCOMM '93) analysis, simulation and sizing.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser(
        "analyze", help="closed-form (and optionally exact) queueing analysis"
    )
    _add_hap_arguments(analyze)
    _add_backend_argument(analyze)
    analyze.add_argument(
        "--exact",
        action="store_true",
        help="also run the exact Solution-0 QBD solve (slower)",
    )
    analyze.add_argument(
        "--profile",
        action="store_true",
        help="run the analysis under cProfile and print the top-20 "
        "cumulative-time entries before the results",
    )

    simulate = commands.add_parser("simulate", help="event-driven simulation")
    _add_hap_arguments(simulate)
    _add_backend_argument(simulate)
    simulate.add_argument("--horizon", type=float, default=100_000.0)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--replications",
        type=int,
        default=1,
        help="independent replications (seed, seed+1, ...); >1 reports "
        "confidence intervals",
    )
    simulate.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the replication campaign "
        "(default: machine CPU count; results are identical at any "
        "worker count)",
    )
    simulate.add_argument(
        "--rng-mode",
        choices=("legacy", "batched"),
        default="legacy",
        help="source draw mode: 'legacy' is bit-identical to the "
        "pre-rewrite engine; 'batched' draws exponentials in numpy "
        "blocks (seed- and worker-count-stable, faster, not "
        "bit-identical to legacy)",
    )
    simulate.add_argument(
        "--engine",
        choices=("heap", "columnar", "columnar-batched"),
        default="heap",
        help="simulation engine: 'heap' is the event-driven simulator; "
        "'columnar' generates the whole arrival stream as numpy arrays "
        "via the symmetric (x, y) MMPP mapping and solves the queue "
        "with a vectorized Lindley recursion — much faster, its own "
        "determinism domain, exact HAP hierarchy dynamics approximated "
        "only by the mapping's truncation box; 'columnar-batched' runs "
        "whole seed groups in lock-step as 2-D arrays, bit-identical to "
        "'columnar' per seed and faster still for campaigns",
    )
    simulate.add_argument(
        "--profile",
        action="store_true",
        help="run one replication under cProfile and print the top-20 "
        "cumulative-time entries before the results",
    )
    _add_resilience_arguments(simulate)

    size = commands.add_parser(
        "size", help="minimum bandwidth for a mean-delay target"
    )
    _add_hap_arguments(size)
    size.add_argument("--delay-target", type=float, required=True)

    build_surfaces = commands.add_parser(
        "build-surfaces",
        help="precompute admission/bandwidth decision surfaces into the "
        "versioned JSON artifact `serve` loads at boot",
    )
    _add_hap_arguments(build_surfaces)
    build_surfaces.set_defaults(app_types=2)
    _add_surface_arguments(build_surfaces)
    build_surfaces.add_argument(
        "--workers",
        type=int,
        default=1,
        help="pool width for the per-delay-target row fan-out (1 = "
        "in-process, keeps the probe cache warm across rows)",
    )
    build_surfaces.add_argument(
        "--output", type=str, required=True, help="artifact path to write"
    )
    build_surfaces.add_argument(
        "--binary",
        action="store_true",
        help="also write the .npz binary sidecar next to the JSON "
        "artifact — shard fleets map it instead of re-parsing JSON "
        "per process",
    )

    serve = commands.add_parser(
        "serve",
        help="online admission-control service (newline-delimited JSON "
        "over TCP; three-tier answer path)",
    )
    _add_hap_arguments(serve)
    serve.set_defaults(app_types=2)
    _add_surface_arguments(serve)
    serve.add_argument(
        "--surfaces",
        type=str,
        default=None,
        help="surface artifact from `build-surfaces`; omitted = build a "
        "small surface in-process at boot",
    )
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=4731, help="TCP port (0 = ephemeral)"
    )
    serve.add_argument(
        "--solve-timeout",
        type=float,
        default=10.0,
        help="deadline for a tier-3 live solve; an overdue solve answers "
        "a conservative deny",
    )
    serve.add_argument(
        "--solver-workers", type=int, default=1, help="solve-pool width"
    )
    serve.add_argument(
        "--exact",
        action="store_true",
        help="route tier-3 admits through the exact QBD ladder (warm-"
        "started) before the Solution-2 closed form",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="worker processes sharing the listening port via SO_REUSEPORT "
        "(1 = single-process; >1 boots the supervised fleet)",
    )
    serve.add_argument(
        "--smoke",
        action="store_true",
        help="boot, answer one query per tier through a loopback client, "
        "print the answers, and exit (CI self-test)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=0,
        help="bound on requests parked on the live-solve path; beyond it "
        "the service answers an immediate conservative deny with "
        "tier='shed' (0 = unbounded)",
    )
    serve.add_argument(
        "--max-connections",
        type=int,
        default=0,
        help="cap on concurrent client connections; beyond it a connection "
        "is answered one structured error line and closed (0 = uncapped)",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        help="seconds a draining shard may spend finishing in-flight "
        "requests after SIGTERM before stragglers are cut",
    )

    bench_serve = commands.add_parser(
        "bench-serve",
        help="closed-loop decisions/sec benchmark against an in-process "
        "server, one answer tier at a time",
    )
    _add_hap_arguments(bench_serve)
    bench_serve.set_defaults(app_types=2)
    _add_surface_arguments(bench_serve)
    bench_serve.add_argument(
        "--surfaces", type=str, default=None, help="surface artifact to load"
    )
    bench_serve.add_argument(
        "--tier",
        choices=("cached", "interpolated", "miss", "all"),
        default="all",
        help="which answer tier the query mix pins (default: all three)",
    )
    bench_serve.add_argument("--requests", type=int, default=2000)
    bench_serve.add_argument("--connections", type=int, default=4)
    bench_serve.add_argument("--seed", type=int, default=0)
    bench_serve.add_argument("--solve-timeout", type=float, default=10.0)
    bench_serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="benchmark against an SO_REUSEPORT fleet of this many shard "
        "processes instead of the in-process server",
    )
    bench_serve.add_argument(
        "--batch",
        type=int,
        default=0,
        help="send admit_batch requests of this many rows per round trip "
        "(0 = the per-query admit verb)",
    )

    chaos = commands.add_parser(
        "chaos",
        help="fault-injection demo: injected kills/hangs/poisoned solver "
        "rungs against the resilient campaign runtime",
    )
    _add_hap_arguments(chaos)
    chaos.add_argument("--horizon", type=float, default=2_000.0)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--replications", type=int, default=6, help="campaign size"
    )
    chaos.add_argument(
        "--workers", type=int, default=2, help="worker processes"
    )
    chaos.add_argument(
        "--kill",
        action="append",
        default=None,
        metavar="SEED[:ATTEMPT]",
        help="kill the worker running SEED on ATTEMPT (default 1) with "
        "os._exit; repeatable",
    )
    chaos.add_argument(
        "--delay",
        action="append",
        default=None,
        metavar="SEED:SECONDS[:ATTEMPT]",
        help="make SEED's job sleep SECONDS before running on ATTEMPT "
        "(default 1) — with --timeout this is a hung job; repeatable",
    )
    chaos.add_argument(
        "--poison",
        action="append",
        default=None,
        metavar="[CHAIN:]RUNG",
        help="poison a solver-degradation rung (e.g. 'spectral-kernel:eig' "
        "or bare 'eig') and show the chain degrading; repeatable",
    )
    chaos.add_argument(
        "--timeout",
        type=float,
        default=20.0,
        help="per-replication timeout for the chaos campaign (seconds)",
    )
    chaos.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retries per failed replication in the chaos campaign",
    )
    chaos.add_argument(
        "--target",
        choices=("campaign", "serve", "fleet", "overload", "drain", "reload"),
        default="campaign",
        help="'campaign' (default) chaos-tests the replication runtime; "
        "'serve' chaos-tests the admission service: poisoned rungs and "
        "injected slow solves must degrade to conservative denies "
        "within the deadline; 'fleet' SIGKILLs a shard of a sharded "
        "fleet mid-load: survivors must keep answering conservatively "
        "and the respawned shard must rejoin; 'overload' saturates the "
        "solve path: excess requests must shed (instant conservative "
        "denies), cached traffic must keep answering, oversized frames "
        "must answer errors without killing the connection; 'drain' "
        "SIGTERMs a loaded shard: every in-flight request must be "
        "answered before it exits, then a rolling restart must keep a "
        "multi-shard fleet answering with zero failures; 'reload' hot-"
        "swaps the decision surfaces mid-load: every answer must come "
        "from exactly one surface generation",
    )
    chaos.add_argument(
        "--shards",
        type=int,
        default=2,
        help="fleet size for --target fleet",
    )
    chaos.add_argument(
        "--requests",
        type=int,
        default=6,
        help="miss-tier queries to drive through the service "
        "(--target serve only)",
    )
    chaos.add_argument(
        "--deadline",
        type=float,
        default=1.5,
        help="service solve deadline in seconds (--target serve only); "
        "every answer, degraded or not, must land within it",
    )
    return parser


def _profiled(fn, out):
    """Run ``fn`` under cProfile; print the top-20 cumulative entries.

    The analytic twin of ``simulate --profile``: perf work on the kernel
    layer (spectral decompositions, matrix-geometric iterations, mapping
    cache) should start from this data, not from guesses.
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    result = fn()
    profiler.disable()
    buffer = io.StringIO()
    pstats.Stats(profiler, stream=buffer).sort_stats("cumulative").print_stats(20)
    print(buffer.getvalue().rstrip(), file=out)
    return result


def _command_analyze(args: argparse.Namespace, out) -> int:
    from repro.markov.spectral import use_backend

    hap = _hap_from_args(args)
    print(hap.describe(), file=out)
    mm1 = hap.poisson_baseline()
    print(f"utilization          : {hap.params.utilization():.3f}", file=out)
    print(f"M/M/1 baseline delay : {mm1.mean_delay:.6g} s", file=out)

    def solve_all():
        # args.backend scopes the analytic kernels; the Solution-0
        # backend="qbd" below picks the queue solver — distinct axes.
        with use_backend(getattr(args, "backend", None)):
            sol2 = hap.solve(solution=2)
            sol0 = hap.solve(solution=0, backend="qbd") if args.exact else None
        return sol2, sol0

    if getattr(args, "profile", False):
        sol2, sol0 = _profiled(solve_all, out)
    else:
        sol2, sol0 = solve_all()
    print(
        f"Solution 2           : delay {sol2.mean_delay:.6g} s "
        f"(sigma {sol2.sigma:.4f})",
        file=out,
    )
    if sol0 is not None:
        print(
            f"Solution 0 (exact)   : delay {sol0.mean_delay:.6g} s "
            f"(sigma {sol0.sigma:.4f}, "
            f"{sol0.mean_delay / mm1.mean_delay:.2f}x Poisson)",
            file=out,
        )
    return 0


def _simulation_task(params, horizon: float, rng_mode: str, backend: str | None, seed: int):
    """Picklable campaign task for ``simulate --replications N``.

    ``backend`` is re-applied inside the worker process (the parent's
    process default does not survive pickling) so any analytic evaluation a
    replication performs honors the CLI selection.
    """
    from repro.markov.spectral import use_backend
    from repro.sim.replication import simulate_hap_mm1

    with use_backend(backend):
        return simulate_hap_mm1(
            params, horizon=horizon, seed=seed, rng_mode=rng_mode
        )


def _columnar_simulation_task(params, horizon: float, seed: int):
    """Picklable columnar campaign task for ``simulate --engine columnar``.

    Each worker builds the (LRU-cached, per-process) symmetric MMPP mapping
    once, then every replication it runs reuses the cached chain.
    """
    from repro.sim.columnar import simulate_hap_approx_columnar

    return simulate_hap_approx_columnar(params, horizon, seed=seed)


def _columnar_batch_simulation_task(params, horizon: float, seeds):
    """Picklable batched task for ``simulate --engine columnar-batched``:
    one lock-step kernel call covers the worker's whole seed group."""
    from repro.sim.columnar import simulate_hap_approx_columnar_batch

    return simulate_hap_approx_columnar_batch(params, horizon, seeds)


def _profiled_simulate(hap, args: argparse.Namespace, out):
    """One replication under cProfile; prints top-20 cumulative entries.

    Future perf work should start from this data, not from guesses: the
    PR-2 hot-path rewrite began exactly here (heap comparisons and
    per-event closures dominating the cumulative column).
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    result = hap.simulate(
        horizon=args.horizon, seed=args.seed, rng_mode=args.rng_mode
    )
    profiler.disable()
    buffer = io.StringIO()
    pstats.Stats(profiler, stream=buffer).sort_stats("cumulative").print_stats(20)
    print(buffer.getvalue().rstrip(), file=out)
    return result


def _command_simulate(args: argparse.Namespace, out) -> int:
    from repro.markov.spectral import use_backend

    hap = _hap_from_args(args)
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint", file=out)
        return 2
    # A checkpointed run is a campaign even at --replications 1: the
    # journal/resume machinery lives on the campaign path.
    if (args.replications > 1 or args.checkpoint) and not args.profile:
        return _command_simulate_campaign(args, hap, out)
    if args.profile:
        result = _profiled_simulate(hap, args, out)
    elif args.engine == "columnar":
        result = _columnar_simulation_task(hap.params, args.horizon, args.seed)
    elif args.engine == "columnar-batched":
        result = _columnar_batch_simulation_task(
            hap.params, args.horizon, [args.seed]
        )[0]
    else:
        with use_backend(getattr(args, "backend", None)):
            result = hap.simulate(
                horizon=args.horizon, seed=args.seed, rng_mode=args.rng_mode
            )
    print(f"messages served      : {result.messages_served}", file=out)
    print(f"mean delay           : {result.mean_delay:.6g} s", file=out)
    print(f"sigma (arrival-busy) : {result.sigma:.4f}", file=out)
    print(f"utilization          : {result.utilization:.4f}", file=out)
    if args.engine == "heap":
        # Columnar runs drive the collapsed (x, y) chain; per-level
        # user/app populations exist only in the event-driven hierarchy.
        print(f"mean users / apps    : {result.mean_users:.2f} / "
              f"{result.mean_apps:.2f}", file=out)
    return 0


def _command_simulate_campaign(args: argparse.Namespace, hap, out) -> int:
    from functools import partial

    from repro.runtime.executor import ParallelReplicator
    from repro.runtime.resilience import as_journal

    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint", file=out)
        return 2
    journal = as_journal(args.checkpoint)
    if journal is not None:
        # Journal keys are bare seeds; the fingerprint is what stops a
        # resume from silently mixing determinism domains (e.g. a batched
        # journal resumed in legacy mode, or heap rows spliced into a
        # columnar campaign).
        try:
            journal.ensure_config(
                {
                    "rng_mode": args.rng_mode,
                    "engine": args.engine,
                    "horizon": args.horizon,
                    "base_seed": args.seed,
                },
                resume=args.resume,
            )
        except ValueError as error:
            print(f"error: {error}", file=out)
            return 2
    if args.engine == "columnar":
        task = partial(_columnar_simulation_task, hap.params, args.horizon)
    elif args.engine == "columnar-batched":
        task = partial(
            _columnar_batch_simulation_task, hap.params, args.horizon
        )
    else:
        task = partial(
            _simulation_task,
            hap.params,
            args.horizon,
            args.rng_mode,
            getattr(args, "backend", None),
        )
    campaign = ParallelReplicator(
        max_workers=args.workers,
        policy=_retry_policy_from_args(args),
        checkpoint=journal,
        resume=args.resume,
        engine=args.engine,
    ).run(
        task,
        args.replications,
        base_seed=args.seed,
    )
    if campaign.completed == 0:
        print("error: every replication failed", file=out)
        for failure in campaign.failures:
            print(
                f"failed replication   : seed {failure.seed}: {failure.error}",
                file=out,
            )
        return 1
    summaries = campaign.summaries()
    for label, name in (
        ("mean delay           ", "mean_delay"),
        ("sigma (arrival-busy) ", "sigma"),
        ("utilization          ", "utilization"),
        ("mean queue length    ", "mean_queue_length"),
    ):
        summary = summaries[name]
        print(
            f"{label}: {summary.mean:.6g} +/- {summary.half_width():.2g} "
            "(95% CI)",
            file=out,
        )
    print(f"campaign             : {campaign.describe()}", file=out)
    for failure in campaign.failures:
        print(
            f"failed replication   : seed {failure.seed}: {failure.error}",
            file=out,
        )
    return 0 if not campaign.failures else 1


def _parse_kill(spec: str) -> tuple[int, int]:
    """``"SEED"`` or ``"SEED:ATTEMPT"`` -> (seed, attempt)."""
    parts = spec.split(":")
    if len(parts) == 1:
        return int(parts[0]), 1
    if len(parts) == 2:
        return int(parts[0]), int(parts[1])
    raise ValueError(f"bad --kill spec {spec!r}; expected SEED[:ATTEMPT]")


def _parse_delay(spec: str) -> tuple[int, int, float]:
    """``"SEED:SECONDS"`` or ``"SEED:SECONDS:ATTEMPT"`` -> plan triple."""
    parts = spec.split(":")
    if len(parts) == 2:
        return int(parts[0]), 1, float(parts[1])
    if len(parts) == 3:
        return int(parts[0]), int(parts[2]), float(parts[1])
    raise ValueError(
        f"bad --delay spec {spec!r}; expected SEED:SECONDS[:ATTEMPT]"
    )


def _command_chaos(args: argparse.Namespace, out) -> int:
    """Fault-injection demo: prove the runtime recovers, bit for bit.

    Runs the same replication campaign twice — fault-free, then under a
    :class:`~repro.runtime.chaos.ChaosPlan` with retries enabled — and
    verdicts whether the recovered statistics are bit-identical.  Poisoned
    solver rungs are demonstrated against the analytic degradation chains
    with their :class:`~repro.runtime.resilience.SolveDiagnostics` printed.
    """
    from functools import partial

    from repro.runtime import chaos
    from repro.runtime.executor import ParallelReplicator
    from repro.runtime.resilience import RetryPolicy

    hap = _hap_from_args(args)
    try:
        kills = tuple(_parse_kill(spec) for spec in (args.kill or ()))
        delays = tuple(_parse_delay(spec) for spec in (args.delay or ()))
    except ValueError as error:
        print(f"error: {error}", file=out)
        return 2
    poisons = tuple(args.poison or ())
    if args.target == "serve":
        return _chaos_serve_demo(args, kills, delays, poisons, out)
    if args.target == "fleet":
        return _chaos_fleet_demo(args, kills, delays, poisons, out)
    if args.target == "overload":
        return _chaos_overload_demo(args, out)
    if args.target == "drain":
        return _chaos_drain_demo(args, out)
    if args.target == "reload":
        return _chaos_reload_demo(args, out)
    if not (kills or delays or poisons):
        # Bare `cli chaos`: kill one worker mid-campaign by default.
        kills = ((args.seed + 1, 1),)
    plan = chaos.ChaosPlan(kill=kills, delay=delays, poison=poisons)
    print(
        f"chaos plan           : kills={list(kills)} delays={list(delays)} "
        f"poisons={list(poisons)}",
        file=out,
    )

    status = 0
    if poisons:
        status = max(status, _chaos_poison_demo(hap, plan, out))
    if kills or delays:
        task = partial(
            _simulation_task, hap.params, args.horizon, "legacy", None
        )
        clean = ParallelReplicator(max_workers=args.workers).run(
            task, args.replications, base_seed=args.seed
        )
        policy = RetryPolicy(
            max_attempts=max(1, args.retries + 1),
            timeout=args.timeout,
            backoff_base=0.05,
        )
        faulted = ParallelReplicator(max_workers=args.workers, policy=policy).run(
            chaos.wrap(task, plan), args.replications, base_seed=args.seed
        )
        print(f"fault-free campaign  : {clean.describe()}", file=out)
        print(f"chaos campaign       : {faulted.describe()}", file=out)
        for failure in faulted.failures:
            print(
                f"failed replication   : seed {failure.seed}: {failure.error}",
                file=out,
            )
        identical = (
            faulted.results == clean.results and faulted.seeds == clean.seeds
        )
        if identical and not faulted.failures:
            print(
                "verdict              : recovered, statistics bit-identical "
                "to the fault-free run",
                file=out,
            )
        else:
            print(
                "verdict              : MISMATCH — recovery did not "
                "reproduce the fault-free statistics",
                file=out,
            )
            status = 1
    return status


def _chaos_serve_demo(args, kills, delays, poisons, out) -> int:
    """Chaos-test the admission service: faults must deny, never hang.

    Drives ``--requests`` miss-tier queries (each needs a live solve)
    through a loopback service while the chaos plan poisons solver rungs
    and injects slow solves (``--delay`` specs are keyed by *request
    index* here, not replication seed).  With no faults given, both
    defaults fire: the Solution-2 rung is poisoned AND request 0's solve
    hangs past the deadline.  Verdict (exit 0) requires every request
    answered within the deadline and every degraded answer to be a deny —
    the service may refuse carriable traffic under faults, never admit
    uncarriable traffic, never hang.
    """
    import asyncio
    import time

    from repro.runtime import chaos
    from repro.service.client import AdmissionClient
    from repro.service.server import AdmissionService, start_server
    from repro.service.surfaces import build_decision_surfaces

    if kills:
        print(
            "note                 : --kill has no serve-mode meaning "
            "(no worker processes to kill); ignored",
            file=out,
        )
    if not (delays or poisons):
        poisons = ("admission-solve:solution2",)
        delays = ((0, 1, args.deadline * 4.0),)
    plan = chaos.ChaosPlan(delay=delays, poison=poisons)
    print(
        f"chaos plan           : delays={list(delays)} "
        f"poisons={list(poisons)} deadline={args.deadline:g}s",
        file=out,
    )
    surfaces = build_decision_surfaces(
        _service_params(args), (0.1, 0.2), max_population=6, max_workers=1
    )
    print(f"surfaces             : {surfaces.describe()}", file=out)
    miss_target = float(surfaces.delay_targets[-1]) * 3.0

    async def drive() -> int:
        service = AdmissionService(surfaces, solve_timeout=args.deadline)
        server = await start_server(service)
        host, port = server.sockets[0].getsockname()[:2]
        answers = []
        try:
            with chaos.chaos_active(plan):
                client = await AdmissionClient.open(host, port)
                try:
                    for index in range(args.requests):
                        started = time.perf_counter()
                        answer = await client.admit(
                            float(index % (surfaces.max_population + 1)),
                            1.0,
                            miss_target,
                        )
                        elapsed = time.perf_counter() - started
                        answers.append((answer, elapsed))
                        print(
                            f"request {index:<13}: tier={answer['tier']:<12} "
                            f"admit={answer['admit']} "
                            f"latency={elapsed * 1e3:.1f}ms",
                            file=out,
                        )
                finally:
                    await client.close()
        finally:
            server.close()
            await server.wait_closed()
            service.close()
        # The deadline bounds the service-side solve; grant the client
        # round-trip a scheduling margin on top.
        margin = args.deadline + max(1.0, args.deadline)
        hung = [e for _, e in answers if e > margin]
        degraded = [a for a, _ in answers if a["tier"] == "degraded"]
        degraded_admits = [a for a in degraded if a["admit"]]
        ok = (
            len(answers) == args.requests
            and not hung
            and degraded
            and not degraded_admits
        )
        print(
            f"verdict              : "
            f"{len(answers)}/{args.requests} answered, "
            f"{len(degraded)} degraded (all denies: "
            f"{not degraded_admits}), {len(hung)} over deadline+margin — "
            f"{'conservative degradation holds' if ok else 'FAULT HANDLING BROKEN'}",
            file=out,
        )
        return 0 if ok else 1

    return asyncio.run(drive())


def _chaos_fleet_demo(args, kills, delays, poisons, out) -> int:
    """Shard-kill chaos: the fleet keeps answering, conservatively.

    Boots a ``--shards`` SO_REUSEPORT fleet with the Solution-2 rung
    poisoned (so every miss degrades to a conservative deny), drives
    ``--requests`` miss-tier queries, and SIGKILLs a shard halfway
    through.  ``--kill`` specs name shard indexes here (not seeds).
    Verdict (exit 0) requires every request answered within
    deadline+margin, every degraded answer a deny, and the respawned
    shard back in the fleet at the end — a dead shard may cost retries,
    never a hang and never a loosened admit.
    """
    import asyncio
    import time

    from repro.runtime import chaos
    from repro.service.client import AdmissionClient
    from repro.service.sharded import ShardFleet
    from repro.service.surfaces import build_decision_surfaces

    if not poisons:
        poisons = ("admission-solve:solution2",)
    victims = sorted(
        {seed for seed, _ in kills if 0 <= seed < args.shards}
    ) or [0]
    plan = chaos.ChaosPlan(delay=delays, poison=poisons)
    print(
        f"chaos plan           : kill shard(s) {victims}, "
        f"poisons={list(poisons)} deadline={args.deadline:g}s",
        file=out,
    )
    surfaces = build_decision_surfaces(
        _service_params(args), (0.1, 0.2), max_population=6, max_workers=1
    )
    print(f"surfaces             : {surfaces.describe()}", file=out)
    miss_target = float(surfaces.delay_targets[-1]) * 3.0
    margin = args.deadline + max(1.0, args.deadline)

    async def ask_with_retry(host, port, n1, n2, target):
        # A connection riding the killed shard dies with a reset; the
        # retry reconnects and the kernel re-balances to a live shard.
        last_error = None
        for _ in range(40):
            try:
                client = await AdmissionClient.open(host, port)
                try:
                    return await client.admit(n1, n2, target)
                finally:
                    await client.close()
            except (ConnectionError, OSError) as error:
                last_error = error
                await asyncio.sleep(0.05)
        raise ConnectionError(f"fleet unreachable: {last_error}")

    async def drive(fleet) -> int:
        host, port = fleet.address
        answers = []
        kill_at = max(1, args.requests // 2)
        for index in range(args.requests):
            if index == kill_at:
                for victim in victims:
                    pid = fleet.kill_shard(victim)
                    print(
                        f"killed               : shard {victim} (pid {pid})",
                        file=out,
                    )
            started = time.perf_counter()
            answer = await ask_with_retry(
                host,
                port,
                float(index % (surfaces.max_population + 1)),
                1.0,
                miss_target,
            )
            elapsed = time.perf_counter() - started
            answers.append((answer, elapsed))
            print(
                f"request {index:<13}: tier={answer['tier']:<12} "
                f"admit={answer['admit']} latency={elapsed * 1e3:.1f}ms",
                file=out,
            )
        rejoin_deadline = time.monotonic() + 30.0
        while fleet.alive() < fleet.shards and time.monotonic() < rejoin_deadline:
            await asyncio.sleep(0.1)
        rejoined = fleet.alive() == fleet.shards
        hung = [e for _, e in answers if e > margin]
        degraded = [a for a, _ in answers if a["tier"] == "degraded"]
        degraded_admits = [a for a in degraded if a["admit"]]
        ok = (
            len(answers) == args.requests
            and not hung
            and degraded
            and not degraded_admits
            and rejoined
        )
        print(
            f"verdict              : {len(answers)}/{args.requests} "
            f"answered, {len(degraded)} degraded (all denies: "
            f"{not degraded_admits}), {len(hung)} over deadline+margin, "
            f"respawn rejoined: {rejoined} — "
            f"{'conservative fleet degradation holds' if ok else 'FAULT HANDLING BROKEN'}",
            file=out,
        )
        return 0 if ok else 1

    fleet = ShardFleet(
        surfaces,
        shards=args.shards,
        solve_timeout=args.deadline,
        chaos_plan=plan,
    )
    with fleet:
        host, port = fleet.address
        print(
            f"fleet                : {args.shards} shards at {host}:{port}",
            file=out,
        )
        return asyncio.run(drive(fleet))


def _chaos_overload_demo(args, out) -> int:
    """Saturate the solve path: excess load sheds, cached traffic flows.

    Boots a loopback service with a deliberately tiny live-solve queue
    (``max_inflight=2``, one solver thread) while a chaos wildcard delay
    makes every live solve slow, then fires ``--requests`` miss-tier
    queries concurrently alongside a stream of cached queries on another
    connection, plus one oversized request frame followed by a valid
    query on the same raw socket.  Verdict (exit 0) requires: every
    query answered within deadline+margin (zero hangs), at least one
    query shed, every shed answer a deny, every cached query answered
    from the surface tier while the solver was saturated, and the
    oversized frame answered with a structured error without killing its
    connection.
    """
    import asyncio
    import json
    import time

    from repro.runtime import chaos
    from repro.service.client import AdmissionClient
    from repro.service.server import (
        AdmissionService,
        OverloadPolicy,
        start_server,
    )
    from repro.service.surfaces import build_decision_surfaces

    slow = min(0.4, args.deadline / 2.0)
    plan = chaos.ChaosPlan(delay=((chaos.ANY, 1, slow),))
    print(
        f"chaos plan           : every live solve sleeps {slow:g}s "
        f"(wildcard seed), max_inflight=2, deadline={args.deadline:g}s",
        file=out,
    )
    surfaces = build_decision_surfaces(
        _service_params(args), (0.1, 0.2), max_population=6, max_workers=1
    )
    print(f"surfaces             : {surfaces.describe()}", file=out)
    miss_target = float(surfaces.delay_targets[-1]) * 3.0
    grid_target = float(surfaces.delay_targets[0])
    margin = args.deadline + max(1.0, args.deadline)
    requests = max(4, args.requests)

    async def drive() -> int:
        service = AdmissionService(
            surfaces,
            solve_timeout=args.deadline,
            solver_workers=1,
            overload=OverloadPolicy(max_inflight=2, max_line_bytes=4096),
        )
        server = await start_server(service)
        host, port = server.sockets[0].getsockname()[:2]
        try:
            with chaos.chaos_active(plan):
                miss_clients = [
                    await AdmissionClient.open(host, port)
                    for _ in range(requests)
                ]
                cached_client = await AdmissionClient.open(host, port)
                started = time.perf_counter()
                try:
                    miss_calls = [
                        asyncio.create_task(
                            client.admit(
                                float(i % (surfaces.max_population + 1)),
                                1.0,
                                miss_target,
                            )
                        )
                        for i, client in enumerate(miss_clients)
                    ]
                    cached = []
                    for _ in range(50):
                        cached.append(
                            await cached_client.admit(1.0, 1.0, grid_target)
                        )
                    answers = await asyncio.gather(*miss_calls)
                finally:
                    for client in (*miss_clients, cached_client):
                        await client.close()
                elapsed = time.perf_counter() - started
            for index, answer in enumerate(answers):
                print(
                    f"miss {index:<16}: tier={answer['tier']:<12} "
                    f"admit={answer['admit']} "
                    f"latency={answer['latency_us'] / 1e3:.1f}ms",
                    file=out,
                )
            # One oversized frame, then a valid one, on the same socket:
            # the server must answer a structured error and resync.
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(
                    b'{"op": "ping", "pad": "' + b"x" * 8192 + b'"}\n'
                )
                writer.write(json.dumps({"op": "ping"}).encode() + b"\n")
                await writer.drain()
                oversized = json.loads(await reader.readline())
                followup = json.loads(await reader.readline())
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            print(
                f"oversized frame      : ok={oversized.get('ok')} "
                f"error={oversized.get('error', '')!r}",
                file=out,
            )
            print(
                f"same-socket follow-up: pong={followup.get('pong')}",
                file=out,
            )
        finally:
            server.close()
            await server.wait_closed()
            service.close()
        sheds = [a for a in answers if a["tier"] == "shed"]
        shed_admits = [a for a in sheds if a["admit"]]
        cached_misrouted = [a for a in cached if a["tier"] != "surface"]
        resynced = (
            oversized.get("ok") is False
            and "error" in oversized
            and followup.get("pong") is True
        )
        hung = elapsed > margin
        ok = (
            len(answers) == requests
            and not hung
            and bool(sheds)
            and not shed_admits
            and not cached_misrouted
            and resynced
        )
        print(
            f"verdict              : {len(answers)}/{requests} miss answers "
            f"in {elapsed:.2f}s (margin {margin:g}s), {len(sheds)} shed "
            f"(all denies: {not shed_admits}), {len(cached)} cached served "
            f"from surface tier: {not cached_misrouted}, oversized-frame "
            f"resync: {resynced} — "
            f"{'load shedding holds' if ok else 'OVERLOAD HANDLING BROKEN'}",
            file=out,
        )
        return 0 if ok else 1

    return asyncio.run(drive())


def _chaos_drain_demo(args, out) -> int:
    """SIGTERM a loaded shard: every in-flight answer lands before exit.

    Phase 1 boots a single-shard fleet (every connection pinned to the
    shard being drained), parks ``--requests`` slow live solves in
    flight, and SIGTERMs the shard via
    :meth:`~repro.service.sharded.ShardFleet.drain_shard`.  The drain
    must deliver every in-flight answer, the shard must exit cleanly,
    and the supervisor must not respawn it.  Phase 2 boots a
    ``--shards`` fleet and performs a rolling restart while a retrying
    client drives cached load: zero queries may fail.
    """
    import asyncio
    import time

    from repro.runtime import chaos
    from repro.runtime.resilience import RetryPolicy
    from repro.service.client import (
        AdmissionClient,
        generate_queries,
        run_load,
    )
    from repro.service.sharded import ShardFleet
    from repro.service.surfaces import build_decision_surfaces

    surfaces = build_decision_surfaces(
        _service_params(args), (0.1, 0.2), max_population=6, max_workers=1
    )
    print(f"surfaces             : {surfaces.describe()}", file=out)
    miss_target = float(surfaces.delay_targets[-1]) * 3.0
    requests = max(2, args.requests)
    slow = min(0.5, args.deadline / 2.0)
    plan = chaos.ChaosPlan(delay=((chaos.ANY, 1, slow),))
    print(
        f"chaos plan           : every live solve sleeps {slow:g}s "
        f"(wildcard seed), deadline={args.deadline:g}s",
        file=out,
    )

    async def inflight_phase(fleet) -> bool:
        host, port = fleet.address
        clients = [
            await AdmissionClient.open(host, port) for _ in range(requests)
        ]
        try:
            calls = [
                asyncio.create_task(
                    client.admit(
                        float(i % (surfaces.max_population + 1)),
                        1.0,
                        miss_target,
                    )
                )
                for i, client in enumerate(clients)
            ]
            # Give every request time to reach the shard and park on the
            # solver, then SIGTERM it mid-flight.
            await asyncio.sleep(slow / 2.0)
            loop = asyncio.get_running_loop()
            drained = loop.run_in_executor(None, fleet.drain_shard, 0)
            answers = await asyncio.gather(*calls, return_exceptions=True)
            clean = await drained
        finally:
            for client in clients:
                await client.close()
        await asyncio.sleep(1.0)  # two monitor ticks: a respawn would land
        lost = [a for a in answers if isinstance(a, BaseException)]
        delivered = [a for a in answers if not isinstance(a, BaseException)]
        respawned = fleet.alive() != 0
        print(
            f"drain phase          : {len(delivered)}/{requests} in-flight "
            f"answers delivered, {len(lost)} lost, clean exit: {clean}, "
            f"respawned after drain: {respawned}",
            file=out,
        )
        return (
            len(delivered) == requests
            and all(a.get("ok") for a in delivered)
            and clean
            and not respawned
        )

    async def rolling_phase(fleet) -> bool:
        host, port = fleet.address
        retry = RetryPolicy(
            max_attempts=6, timeout=args.deadline, backoff_base=0.05
        )
        loop = asyncio.get_running_loop()
        restart = loop.run_in_executor(None, fleet.rolling_restart)
        total = failed = retried = rounds = 0
        while True:
            queries = generate_queries(
                surfaces, "cached", 400, seed=args.seed + rounds
            )
            report = await run_load(
                host, port, queries, connections=4, retry=retry
            )
            total += report.requests
            failed += report.failed
            retried += report.retried
            rounds += 1
            if restart.done():
                break
        cycled = await restart
        full = fleet.alive() == fleet.shards
        print(
            f"rolling phase        : {cycled}/{fleet.shards} shards cycled "
            f"under load — {total} queries, {retried} retried, "
            f"{failed} failed, fleet back to full strength: {full}",
            file=out,
        )
        return failed == 0 and cycled == fleet.shards and full

    inflight_fleet = ShardFleet(
        surfaces,
        shards=1,
        solve_timeout=args.deadline,
        solver_workers=requests,
        chaos_plan=plan,
    )
    with inflight_fleet:
        host, port = inflight_fleet.address
        print(f"drain fleet          : 1 shard at {host}:{port}", file=out)
        inflight_ok = asyncio.run(inflight_phase(inflight_fleet))

    rolling_fleet = ShardFleet(
        surfaces, shards=args.shards, solve_timeout=args.deadline
    )
    with rolling_fleet:
        host, port = rolling_fleet.address
        print(
            f"rolling fleet        : {args.shards} shards at {host}:{port}",
            file=out,
        )
        rolling_ok = asyncio.run(rolling_phase(rolling_fleet))

    ok = inflight_ok and rolling_ok
    print(
        f"verdict              : in-flight drain: "
        f"{'clean' if inflight_ok else 'LOST ANSWERS'}, rolling restart: "
        f"{'zero failures' if rolling_ok else 'FAILURES'} — "
        f"{'graceful drain holds' if ok else 'DRAIN HANDLING BROKEN'}",
        file=out,
    )
    return 0 if ok else 1


def _chaos_reload_demo(args, out) -> int:
    """Hot-swap surfaces mid-load: every answer from exactly one generation.

    Boots a ``--shards`` fleet, then publishes a tightened surface
    generation (one that denies a probe mix the original admits) while
    hammer tasks drive the same admit query over persistent connections.
    Verdict (exit 0) requires: every answer's admit bit consistent with
    the generation it reports (generation 0 admits the probe, generation
    1 denies it), generations non-decreasing on every connection, every
    answer after the reload returns on the new generation, and a batch
    answer carrying a single generation.
    """
    import asyncio

    from repro.service.client import AdmissionClient
    from repro.service.sharded import ShardFleet
    from repro.service.surfaces import build_decision_surfaces

    surfaces = build_decision_surfaces(
        _service_params(args), (0.1, 0.2), max_population=6, max_workers=1
    )
    print(f"surfaces             : {surfaces.describe()}", file=out)
    # Pick an on-grid probe the original surfaces admit; the tightened
    # generation pushes every boundary below zero, so the same probe
    # flips to a deny the moment a shard answers from generation 1.
    probe = None
    for target in reversed(surfaces.delay_targets):
        for n1 in range(int(surfaces.max_population) + 1):
            bound = surfaces.grid_bound(float(n1), float(target))
            if bound is not None and bound >= 0.0:
                probe = (float(n1), 0.0, float(target))
                break
        if probe:
            break
    if probe is None:
        print(
            "error: surfaces admit nothing; no observable reload flip",
            file=out,
        )
        return 2
    tightened = surfaces.tightened(by=float(surfaces.max_population) + 2.0)
    expected = {0: True, 1: False}
    print(
        f"probe                : n1={probe[0]:g} n2={probe[1]:g} "
        f"target={probe[2]:g} (gen 0 admits, gen 1 denies)",
        file=out,
    )

    async def drive(fleet) -> int:
        host, port = fleet.address
        clients = [
            await AdmissionClient.open(host, port) for _ in range(4)
        ]
        answers: list[tuple[int, bool]] = []
        violations: list[str] = []
        stop = asyncio.Event()

        async def hammer(client) -> int:
            last_gen = -1
            while not stop.is_set():
                answer = await client.admit(*probe)
                gen = int(answer["gen"])
                admit = bool(answer["admit"])
                answers.append((gen, admit))
                if gen < last_gen:
                    violations.append(
                        f"generation went backwards ({last_gen} -> {gen})"
                    )
                if gen in expected and admit != expected[gen]:
                    violations.append(
                        f"gen {gen} answered admit={admit} "
                        f"(expected {expected[gen]})"
                    )
                last_gen = gen
            return last_gen
        try:
            tasks = [asyncio.create_task(hammer(c)) for c in clients]
            await asyncio.sleep(0.2)  # observe generation-0 answers
            loop = asyncio.get_running_loop()
            generation = await loop.run_in_executor(
                None, fleet.reload_surfaces, tightened
            )
            await asyncio.sleep(0.2)  # observe generation-1 answers
            stop.set()
            last_gens = await asyncio.gather(*tasks)
            batch = await clients[0].admit_batch(
                [probe[0], probe[0]], [probe[1], probe[1]],
                [probe[2], probe[2]],
            )
        finally:
            stop.set()
            for client in clients:
                await client.close()
        gen0 = sum(1 for gen, _ in answers if gen == 0)
        gen1 = sum(1 for gen, _ in answers if gen == generation)
        settled = all(gen == generation for gen in last_gens)
        batch_ok = (
            batch.get("gen") == generation
            and not any(batch["admit"])
        )
        ok = (
            not violations
            and generation == 1
            and gen0 > 0
            and gen1 > 0
            and settled
            and batch_ok
        )
        for violation in violations[:5]:
            print(f"violation            : {violation}", file=out)
        print(
            f"verdict              : {len(answers)} answers "
            f"({gen0} on gen 0, {gen1} on gen {generation}), "
            f"0 mixed-generation answers: {not violations}, every "
            f"connection settled on gen {generation}: {settled}, "
            f"single-generation batch: {batch_ok} — "
            f"{'hot reload holds' if ok else 'RELOAD HANDLING BROKEN'}",
            file=out,
        )
        return 0 if ok else 1

    fleet = ShardFleet(surfaces, shards=args.shards, solve_timeout=args.deadline)
    with fleet:
        host, port = fleet.address
        print(
            f"fleet                : {args.shards} shards at {host}:{port}",
            file=out,
        )
        return asyncio.run(drive(fleet))


def _chaos_poison_demo(hap, plan, out) -> int:
    """Show each targeted degradation chain answering below its poison."""
    import numpy as np

    from repro.markov.ctmc import CTMC
    from repro.markov.spectral import SpectralKernel
    from repro.runtime import chaos
    from repro.runtime.resilience import DegradationError

    import scipy.sparse as sp

    status = 0
    mmpp = hap.to_mmpp().mmpp
    generator = mmpp.generator
    if not sp.issparse(generator):
        generator = sp.csr_matrix(np.asarray(generator, dtype=float))
    with chaos.chaos_active(plan):
        try:
            kernel = SpectralKernel(mmpp.d0())
            print(kernel.diagnostics.describe(), file=out)
        except DegradationError as error:
            print(f"spectral-kernel      : exhausted — {error}", file=out)
            status = 1
        try:
            chain = CTMC(generator, validate=False)
            chain.stationary_distribution()
            print(chain.stationary_diagnostics.describe(), file=out)
        except DegradationError as error:
            print(f"ctmc-stationary      : exhausted — {error}", file=out)
            status = 1
    return status


def _surfaces_from_args(args: argparse.Namespace, out):
    """Load the ``--surfaces`` artifact, or build a grid in-process."""
    from repro.service.surfaces import build_decision_surfaces, load_surfaces

    if getattr(args, "surfaces", None):
        surfaces = load_surfaces(args.surfaces)
    else:
        surfaces = build_decision_surfaces(
            _service_params(args),
            _parse_delay_targets(args.delay_targets),
            max_population=args.max_population,
            max_workers=1,
        )
    print(f"surfaces             : {surfaces.describe()}", file=out)
    return surfaces


def _command_build_surfaces(args: argparse.Namespace, out) -> int:
    from repro.control.admission_table import probe_stats
    from repro.service.surfaces import (
        binary_sidecar_path,
        build_decision_surfaces,
        save_surfaces,
        save_surfaces_binary,
    )

    try:
        targets = _parse_delay_targets(args.delay_targets)
    except ValueError as error:
        print(f"error: {error}", file=out)
        return 2
    before = probe_stats()
    surfaces = build_decision_surfaces(
        _service_params(args),
        targets,
        max_population=args.max_population,
        max_workers=args.workers,
    )
    after = probe_stats()
    path = save_surfaces(surfaces, args.output)
    print(f"surfaces             : {surfaces.describe()}", file=out)
    if args.workers in (None, 1):
        # The probe cache is per-process; fan-out builds solve in workers.
        print(
            f"probes               : {after.probes - before.probes} "
            f"({after.solves - before.solves} solves, "
            f"{after.hits - before.hits} cache hits)",
            file=out,
        )
    print(f"artifact             : {path}", file=out)
    if args.binary:
        sidecar = save_surfaces_binary(surfaces, binary_sidecar_path(path))
        print(f"binary sidecar       : {sidecar}", file=out)
    return 0


async def _serve_smoke(service, surfaces, host: str, port: int, out) -> int:
    """Answer one query per tier through a loopback client; 0 = healthy."""
    from repro.service.client import AdmissionClient
    from repro.service.server import start_server

    server = await start_server(service, host=host, port=port)
    bound_port = server.sockets[0].getsockname()[1]
    print(f"listening            : {host}:{bound_port} (smoke)", file=out)
    status = 0
    try:
        client = await AdmissionClient.open(host, bound_port)
        try:
            grid_target = float(surfaces.delay_targets[0])
            probes = (
                ("surface", (1.0, 1.0, grid_target)),
                ("interpolated", (0.5, 1.0, grid_target)),
                ("miss", (1.0, 1.0, float(surfaces.delay_targets[-1]) * 2.0)),
            )
            for label, (n1, n2, target) in probes:
                answer = await client.admit(n1, n2, target)
                print(
                    f"{label:<21}: admit={answer['admit']} "
                    f"tier={answer['tier']} "
                    f"latency={answer['latency_us']:.0f}us",
                    file=out,
                )
                if not answer.get("ok"):
                    status = 1
            stats = await client.stats()
            print(f"stats                : {stats}", file=out)
        finally:
            await client.close()
    finally:
        server.close()
        await server.wait_closed()
    print(
        f"verdict              : {'healthy' if status == 0 else 'UNHEALTHY'}",
        file=out,
    )
    return status


async def _fleet_smoke(fleet, surfaces, out) -> int:
    """Answer one query per tier + a batch + fleet stats; 0 = healthy."""
    from repro.service.client import AdmissionClient

    host, port = fleet.address
    status = 0
    client = await AdmissionClient.open(host, port)
    try:
        grid_target = float(surfaces.delay_targets[0])
        probes = (
            ("surface", (1.0, 1.0, grid_target)),
            ("interpolated", (0.5, 1.0, grid_target)),
            ("miss", (1.0, 1.0, float(surfaces.delay_targets[-1]) * 2.0)),
        )
        for label, (n1, n2, target) in probes:
            answer = await client.admit(n1, n2, target)
            print(
                f"{label:<21}: admit={answer['admit']} "
                f"tier={answer['tier']} "
                f"latency={answer['latency_us']:.0f}us",
                file=out,
            )
            if not answer.get("ok"):
                status = 1
        batch = await client.admit_batch(
            [1.0, 0.5], [1.0, 1.0], [grid_target, grid_target]
        )
        print(
            f"batch                : rows={batch['rows']} "
            f"tiers={batch['tier']}",
            file=out,
        )
        stats = await client.request({"op": "stats", "scope": "fleet"})
        print(
            f"fleet stats          : shards={stats.get('shards')} "
            f"{stats['stats']}",
            file=out,
        )
        if stats.get("shards") != fleet.shards or stats.get("scope") != "fleet":
            status = 1
        if fleet.alive() != fleet.shards:
            status = 1
    finally:
        await client.close()
    print(
        f"verdict              : {'healthy' if status == 0 else 'UNHEALTHY'}",
        file=out,
    )
    return status


def _overload_from_args(args: argparse.Namespace):
    """Build the serve command's :class:`OverloadPolicy` (0 = unbounded)."""
    from repro.service.server import OverloadPolicy

    if args.max_inflight < 0:
        raise ValueError("--max-inflight must be non-negative")
    if args.max_connections < 0:
        raise ValueError("--max-connections must be non-negative")
    if args.drain_grace <= 0:
        raise ValueError("--drain-grace must be positive")
    return OverloadPolicy(
        max_inflight=args.max_inflight or None,
        max_connections=args.max_connections or None,
    )


def _serve_fleet(args: argparse.Namespace, surfaces, overload, out) -> int:
    import asyncio
    import time

    from repro.service.sharded import ShardFleet

    fleet = ShardFleet(
        surfaces,
        shards=args.shards,
        host=args.host,
        port=args.port,
        solve_timeout=args.solve_timeout,
        solver_workers=args.solver_workers,
        exact=args.exact,
        overload=overload,
        drain_grace=args.drain_grace,
    )
    with fleet:
        host, port = fleet.address
        print(
            f"listening            : {host}:{port} "
            f"({args.shards} shards, SO_REUSEPORT)",
            file=out,
        )
        if args.smoke:
            return asyncio.run(_fleet_smoke(fleet, surfaces, out))
        try:
            while True:
                time.sleep(1.0)
        except KeyboardInterrupt:
            print("interrupted          : shutting down fleet", file=out)
            return 0


async def _serve_forever(service, host: str, port: int, out) -> int:
    from repro.service.server import start_server

    server = await start_server(service, host=host, port=port)
    bound = server.sockets[0].getsockname()
    print(f"listening            : {bound[0]}:{bound[1]}", file=out)
    async with server:
        await server.serve_forever()
    return 0


def _command_serve(args: argparse.Namespace, out) -> int:
    import asyncio

    from repro.service.server import AdmissionService

    try:
        surfaces = _surfaces_from_args(args, out)
        overload = _overload_from_args(args)
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=out)
        return 2
    if args.shards < 1:
        print("error: --shards must be at least 1", file=out)
        return 2
    if args.shards > 1:
        return _serve_fleet(args, surfaces, overload, out)
    service = AdmissionService(
        surfaces,
        solve_timeout=args.solve_timeout,
        solver_workers=args.solver_workers,
        exact=args.exact,
        overload=overload,
    )
    try:
        if args.smoke:
            return asyncio.run(
                _serve_smoke(service, surfaces, args.host, args.port, out)
            )
        return asyncio.run(_serve_forever(service, args.host, args.port, out))
    except KeyboardInterrupt:
        print("interrupted          : shutting down", file=out)
        return 0
    finally:
        service.close()


def _command_bench_serve(args: argparse.Namespace, out) -> int:
    import asyncio

    from repro.service.client import generate_queries, run_load
    from repro.service.server import AdmissionService, start_server

    try:
        surfaces = _surfaces_from_args(args, out)
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=out)
        return 2
    tiers = (
        ("cached", "interpolated", "miss")
        if args.tier == "all"
        else (args.tier,)
    )
    label_suffix = f" [batch={args.batch}]" if args.batch > 0 else ""

    async def drive(host: str, port: int) -> None:
        for tier in tiers:
            queries = generate_queries(
                surfaces, tier, args.requests, seed=args.seed
            )
            report = await run_load(
                host,
                port,
                queries,
                connections=args.connections,
                batch_size=args.batch,
            )
            print(f"{tier:<21}: {report.describe()}{label_suffix}", file=out)

    async def bench() -> int:
        service = AdmissionService(surfaces, solve_timeout=args.solve_timeout)
        server = await start_server(service)
        host, port = server.sockets[0].getsockname()[:2]
        try:
            await drive(host, port)
        finally:
            server.close()
            await server.wait_closed()
            service.close()
        return 0

    if args.shards > 1:
        from repro.service.sharded import ShardFleet

        fleet = ShardFleet(
            surfaces, shards=args.shards, solve_timeout=args.solve_timeout
        )
        with fleet:
            host, port = fleet.address
            print(
                f"fleet                : {args.shards} shards at "
                f"{host}:{port} (SO_REUSEPORT)",
                file=out,
            )

            async def bench_fleet() -> int:
                await drive(host, port)
                return 0

            return asyncio.run(bench_fleet())

    return asyncio.run(bench())


def _command_size(args: argparse.Namespace, out) -> int:
    from repro.control.bandwidth import bandwidth_for_delay_target

    hap = _hap_from_args(args)
    lam = hap.mean_message_rate
    if args.delay_target <= 0:
        print("error: delay target must be positive", file=out)
        return 2
    poisson = lam + 1.0 / args.delay_target
    sized = bandwidth_for_delay_target(hap.params, args.delay_target)
    print(f"offered load         : {lam:.6g} msgs/s", file=out)
    print(f"Poisson sizing       : mu = {poisson:.6g}", file=out)
    print(f"HAP sizing           : mu = {sized:.6g} "
          f"(+{100 * (sized / poisson - 1):.1f}%)", file=out)
    utilization = lam / sized
    if utilization > 0.30:
        print(
            f"warning: design lands at {utilization:.0%} utilization — "
            "outside Solution 2's validity region; size with "
            "solver='solution0' (see repro.control.bandwidth).",
            file=out,
        )
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "analyze":
        return _command_analyze(args, out)
    if args.command == "simulate":
        return _command_simulate(args, out)
    if args.command == "chaos":
        return _command_chaos(args, out)
    if args.command == "build-surfaces":
        return _command_build_surfaces(args, out)
    if args.command == "serve":
        return _command_serve(args, out)
    if args.command == "bench-serve":
        return _command_bench_serve(args, out)
    return _command_size(args, out)


if __name__ == "__main__":
    raise SystemExit(main())
