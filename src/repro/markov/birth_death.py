"""Birth–death chains and their classical special cases.

HAP's user and application levels behave like M/M/∞ stations (Section 3.2.3
of the paper models them exactly that way), and the paper's admission-control
study (Figure 20) bounds those levels, which turns them into Erlang-loss-like
truncated chains.  This module provides those building blocks plus a general
finite birth–death chain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.markov.ctmc import CTMC

__all__ = [
    "BirthDeathChain",
    "erlang_blocking_probability",
    "mm1_queue_length_distribution",
    "mminf_stationary",
    "truncated_poisson_pmf",
]


@dataclass(frozen=True)
class BirthDeathChain:
    """A finite birth–death chain on states ``0 .. n``.

    Parameters
    ----------
    birth_rates:
        ``birth_rates[k]`` is the rate of the ``k -> k + 1`` transition,
        for ``k = 0 .. n - 1``.
    death_rates:
        ``death_rates[k]`` is the rate of the ``k + 1 -> k`` transition,
        for ``k = 0 .. n - 1``.
    """

    birth_rates: tuple[float, ...]
    death_rates: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.birth_rates) != len(self.death_rates):
            raise ValueError("birth and death rate vectors must match in length")
        if any(rate < 0 for rate in self.birth_rates + self.death_rates):
            raise ValueError("rates must be non-negative")
        if any(rate == 0 for rate in self.death_rates):
            raise ValueError("death rates must be positive for irreducibility")

    @property
    def num_states(self) -> int:
        """Number of states (``n + 1`` for states ``0 .. n``)."""
        return len(self.birth_rates) + 1

    def stationary_distribution(self) -> np.ndarray:
        """Product-form stationary distribution.

        ``pi[k] ∝ prod_{j<k} birth[j] / death[j]``, computed in log space to
        stay stable for long chains with extreme rate ratios.
        """
        births = np.asarray(self.birth_rates, dtype=float)
        deaths = np.asarray(self.death_rates, dtype=float)
        with np.errstate(divide="ignore"):
            log_ratios = np.log(births) - np.log(deaths)
        log_pi = np.concatenate([[0.0], np.cumsum(log_ratios)])
        log_pi -= log_pi.max()
        pi = np.exp(log_pi)
        return pi / pi.sum()

    def to_ctmc(self) -> CTMC:
        """Build the sparse generator matrix for this chain."""
        n = self.num_states
        if n == 1:
            return CTMC(sp.csr_matrix((1, 1)))
        births = np.asarray(self.birth_rates, dtype=float)
        deaths = np.asarray(self.death_rates, dtype=float)
        main = np.concatenate(
            [-(births + np.concatenate([[0.0], deaths[:-1]])), [-deaths[-1]]]
        )
        generator = sp.diags(
            [deaths, main, births], offsets=[-1, 0, 1], format="csr"
        )
        return CTMC(generator)


def mminf_stationary(arrival_rate: float, service_rate: float, max_states: int) -> np.ndarray:
    """Stationary distribution of an M/M/∞ station truncated at ``max_states``.

    The untruncated distribution is Poisson(``arrival_rate / service_rate``);
    truncation renormalizes the head of that Poisson.  This is exactly how the
    paper models HAP's user and application populations (Solution 2).
    """
    if arrival_rate < 0 or service_rate <= 0:
        raise ValueError("need arrival_rate >= 0 and service_rate > 0")
    return truncated_poisson_pmf(arrival_rate / service_rate, max_states)


def truncated_poisson_pmf(mean: float, max_value: int) -> np.ndarray:
    """Poisson(``mean``) pmf renormalized on ``0 .. max_value``.

    Computed in log space for numerical stability at large means.
    """
    if mean < 0:
        raise ValueError("mean must be non-negative")
    if max_value < 0:
        raise ValueError("max_value must be non-negative")
    if mean == 0:
        pmf = np.zeros(max_value + 1)
        pmf[0] = 1.0
        return pmf
    ks = np.arange(max_value + 1)
    from scipy.special import gammaln

    log_pmf = ks * np.log(mean) - mean - gammaln(ks + 1)
    log_pmf -= log_pmf.max()
    pmf = np.exp(log_pmf)
    return pmf / pmf.sum()


def erlang_blocking_probability(offered_load: float, servers: int) -> float:
    """Erlang-B blocking probability, via the stable recurrence.

    Used by the admission-control study: bounding the number of users at
    ``c`` turns the user level into an M/M/c/c loss station whose blocking
    probability is Erlang-B.
    """
    if offered_load < 0:
        raise ValueError("offered load must be non-negative")
    if servers < 0:
        raise ValueError("server count must be non-negative")
    blocking = 1.0
    for k in range(1, servers + 1):
        blocking = offered_load * blocking / (k + offered_load * blocking)
    return blocking


def mm1_queue_length_distribution(utilization: float, max_length: int) -> np.ndarray:
    """Geometric M/M/1 queue-length distribution ``(1 - rho) rho^k``.

    Returned over ``0 .. max_length`` without renormalization, so the tail
    mass beyond ``max_length`` is simply absent; callers that need a proper
    pmf should check ``1 - result.sum()``.
    """
    if not 0 <= utilization < 1:
        raise ValueError("utilization must lie in [0, 1)")
    ks = np.arange(max_length + 1)
    return (1.0 - utilization) * utilization**ks
