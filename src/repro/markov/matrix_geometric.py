"""Matrix-geometric (Neuts) solution of the MMPP/M/1 queue.

Feeding an MMPP into a single exponential server yields a quasi-birth-death
process: the *level* is the number of customers ``z`` and the *phase* is the
modulating state.  Neuts' matrix-geometric method — the paper's reference
[15] — expresses the stationary distribution as ``pi_z = pi_0 R^z`` where the
rate matrix ``R`` is the minimal non-negative solution of

    A0 + R A1 + R^2 A2 = 0

with ``A0 = D1`` (arrival, level up), ``A1 = D0 - mu I`` (phase changes,
level >= 1), ``A2 = mu I`` (service, level down).

This gives an independent route to HAP/M/1 mean delay used to cross-validate
the paper's Solution 0 iteration in the test suite, and it is *much* faster
than brute-force iteration over the three-dimensional chain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.markov.mmpp import MMPP

__all__ = ["QBDSolution", "solve_mmpp_m1"]


@dataclass(frozen=True)
class QBDSolution:
    """Stationary solution of an MMPP/M/1 quasi-birth-death queue.

    Attributes
    ----------
    rate_matrix:
        Neuts' ``R`` matrix.
    boundary:
        ``pi_0``, the stationary probability vector of level 0 by phase.
    mean_rate:
        Mean arrival rate of the input MMPP.
    service_rate:
        The exponential server's rate ``mu``.
    """

    rate_matrix: np.ndarray
    boundary: np.ndarray
    mean_rate: float
    service_rate: float

    @property
    def utilization(self) -> float:
        """Offered load ``mean_rate / service_rate``."""
        return self.mean_rate / self.service_rate

    def level_distribution(self, max_level: int) -> np.ndarray:
        """Marginal queue-length probabilities ``P(z = k)`` for ``k <= max_level``."""
        probs = np.empty(max_level + 1)
        vec = self.boundary.copy()
        for level in range(max_level + 1):
            probs[level] = vec.sum()
            vec = vec @ self.rate_matrix
        return probs

    def mean_queue_length(self) -> float:
        """``E[z] = pi_0 R (I - R)^{-2} 1`` (customers in system)."""
        n = self.rate_matrix.shape[0]
        identity = np.eye(n)
        inv = np.linalg.inv(identity - self.rate_matrix)
        ones = np.ones(n)
        return float(self.boundary @ self.rate_matrix @ inv @ inv @ ones)

    def mean_delay(self) -> float:
        """Mean time in system via Little's law."""
        return self.mean_queue_length() / self.mean_rate

    def probability_empty(self) -> float:
        """Stationary probability that the system is empty."""
        return float(self.boundary.sum())


def _solve_rate_matrix_fixed_point(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float,
    max_iterations: int,
) -> np.ndarray:
    """Fixed-point iteration ``R <- -(A0 + R^2 A2) A1^{-1}``.

    Monotone from ``R = 0``; linear convergence, so only suitable for small
    phase spaces or as a cross-check of the logarithmic-reduction path.
    """
    inv_a1 = np.linalg.inv(a1)
    rate = np.zeros_like(a0)
    for _ in range(max_iterations):
        updated = -(a0 + rate @ rate @ a2) @ inv_a1
        delta = float(np.abs(updated - rate).max())
        rate = updated
        if delta < tol:
            return rate
    raise ArithmeticError(
        f"R iteration did not converge within {max_iterations} steps "
        f"(last delta {delta:g}); is the queue stable?"
    )


def _solve_rate_matrix_lr(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float,
    max_iterations: int,
) -> np.ndarray:
    """Latouche–Ramaswami logarithmic reduction.

    Computes ``G`` (first-passage-down probabilities, the minimal solution
    of ``A2 + A1 G + A0 G^2 = 0``) with quadratic convergence, then converts
    to ``R = A0 (-(A1 + A0 G))^{-1}``.  Each step squares the effective
    horizon, so ~30 iterations suffice where the fixed point needs tens of
    thousands.
    """
    n = a0.shape[0]
    identity = np.eye(n)
    neg_a1_inv = np.linalg.inv(-a1)
    down = neg_a1_inv @ a2
    up = neg_a1_inv @ a0
    g = down.copy()
    t = up.copy()
    for _ in range(max_iterations):
        u = up @ down + down @ up
        m = np.linalg.inv(identity - u)
        up = m @ up @ up
        down = m @ down @ down
        g += t @ down
        t = t @ up
        if float(np.abs(t).max()) < tol:
            break
    else:
        raise ArithmeticError("logarithmic reduction did not converge")
    return a0 @ np.linalg.inv(-(a1 + a0 @ g))


def _solve_rate_matrix(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float,
    max_iterations: int,
    method: str = "lr",
) -> np.ndarray:
    if method == "lr":
        return _solve_rate_matrix_lr(a0, a1, a2, tol, min(max_iterations, 200))
    if method == "fixed-point":
        return _solve_rate_matrix_fixed_point(a0, a1, a2, tol, max_iterations)
    raise ValueError(f"unknown R-matrix method {method!r}")


def solve_mmpp_m1(
    mmpp: MMPP,
    service_rate: float,
    tol: float = 1e-12,
    max_iterations: int = 200_000,
    method: str = "lr",
) -> QBDSolution:
    """Solve the MMPP/M/1 queue by the matrix-geometric method.

    Parameters
    ----------
    mmpp:
        Input arrival process (finite modulating chain — truncate first for
        HAP via :mod:`repro.core.mmpp_mapping`).
    service_rate:
        Rate ``mu`` of the exponential server.
    tol, max_iterations:
        Convergence controls for the ``R`` solve.
    method:
        ``"lr"`` (default, logarithmic reduction — quadratic convergence) or
        ``"fixed-point"`` (the simple monotone iteration).

    Raises
    ------
    ValueError
        If the queue is not stable (``mean rate >= service rate``).
    """
    if service_rate <= 0:
        raise ValueError("service rate must be positive")
    mean_rate = mmpp.mean_rate()
    if mean_rate >= service_rate:
        raise ValueError(
            f"unstable queue: mean arrival rate {mean_rate:g} >= "
            f"service rate {service_rate:g}"
        )
    d0 = mmpp.d0()
    d1 = mmpp.d1()
    n = d0.shape[0]
    identity = np.eye(n)
    a0 = d1
    a1 = d0 - service_rate * identity
    a2 = service_rate * identity
    rate_matrix = _solve_rate_matrix(a0, a1, a2, tol, max_iterations, method)

    # Boundary: pi_0 (B00 + R A2) = 0, normalized by pi_0 (I - R)^{-1} 1 = 1,
    # where B00 = D0 (no service completes at level 0).
    boundary_block = d0 + rate_matrix @ a2
    # Solve the left null space with the normalization appended.
    system = np.vstack(
        [boundary_block.T, (np.linalg.inv(identity - rate_matrix) @ np.ones(n))]
    )
    rhs = np.zeros(n + 1)
    rhs[-1] = 1.0
    boundary, *_ = np.linalg.lstsq(system, rhs, rcond=None)
    boundary = np.maximum(boundary, 0.0)
    # Renormalize exactly after clipping tiny negatives.
    norm = float(np.linalg.inv(identity - rate_matrix).T @ boundary @ np.ones(n))
    boundary /= norm
    return QBDSolution(
        rate_matrix=rate_matrix,
        boundary=boundary,
        mean_rate=mean_rate,
        service_rate=service_rate,
    )
