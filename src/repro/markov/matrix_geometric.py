"""Matrix-geometric (Neuts) solution of the MMPP/M/1 queue.

Feeding an MMPP into a single exponential server yields a quasi-birth-death
process: the *level* is the number of customers ``z`` and the *phase* is the
modulating state.  Neuts' matrix-geometric method — the paper's reference
[15] — expresses the stationary distribution as ``pi_z = pi_0 R^z`` where the
rate matrix ``R`` is the minimal non-negative solution of

    A0 + R A1 + R^2 A2 = 0

with ``A0 = D1`` (arrival, level up), ``A1 = D0 - mu I`` (phase changes,
level >= 1), ``A2 = mu I`` (service, level down).

This gives an independent route to HAP/M/1 mean delay used to cross-validate
the paper's Solution 0 iteration in the test suite, and it is *much* faster
than brute-force iteration over the three-dimensional chain.

Solver notes
------------
Three ``R`` solvers are provided, all agreeing to tolerance:

* ``"cr"`` (default) — cyclic reduction for ``G`` followed by the standard
  ``R = A0 (-(A1 + A0 G))^{-1}`` conversion.  Every linear system is solved
  through one LU factorization per step (``lu_factor``/``lu_solve``; no
  ``np.linalg.inv`` in the hot path), right-hand sides are stacked so each
  step does one 2n-column triangular solve, and the first step exploits the
  MMPP/M/1 block structure (``A0`` diagonal, ``A2 = mu I``) so it costs one
  factorization instead of four matrix products.  This is the fastest path
  at the paper's headline phase-space sizes.
* ``"lr"`` — Latouche–Ramaswami logarithmic reduction (the previous
  default), kept as an independent quadratically-convergent cross-check.
* ``"fixed-point"`` — the simple monotone iteration, linear convergence.

The boundary vector is obtained by a square LU solve (replace one column of
the singular boundary block with the normalization vector ``(I - R)^{-1} 1``)
instead of a least-squares solve, and the queue moments use LU-backed vector
solves instead of forming ``(I - R)^{-1}`` explicitly.

Warm starts: sweeps that solve a ladder of nearby queues (service-rate or
load sweeps, fig 11/12/19/20 style) can pass ``initial_rate_matrix`` — the
previous sweep point's ``R``.  The solver then runs a *budgeted* fixed-point
refinement from that guess and falls back to the full cyclic-reduction solve
when the refinement does not contract to tolerance within the budget.  The
refinement's linear contraction rate is ``sp(R) sp(G)``, which approaches 1
for the near-critical headline queues, so the warm start mainly pays off on
lightly-loaded sweep points; the fallback keeps the result exact either way.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.linalg import lu_factor, lu_solve

from repro.markov.mmpp import MMPP

__all__ = ["QBDSolution", "solve_mmpp_m1"]

#: Iteration budget for the warm-start fixed-point refinement before the
#: solver gives up and falls back to a cold cyclic-reduction solve.
_WARM_START_BUDGET = 40

#: The R matrix of an MMPP/M/1 QBD is dense regardless of how sparse the
#: blocks are, so the solve is O(n^3) per reduction step and O(n^2) memory
#: in the phase count no matter what.  Above this many phases that cost is
#: almost certainly an accident (an untrimmed truncation box); the solver
#: warns and points at the mass-based trimming knobs rather than silently
#: grinding.
_QBD_PHASE_WARN_LIMIT = 4000


@dataclass(frozen=True)
class QBDSolution:
    """Stationary solution of an MMPP/M/1 quasi-birth-death queue.

    Attributes
    ----------
    rate_matrix:
        Neuts' ``R`` matrix.
    boundary:
        ``pi_0``, the stationary probability vector of level 0 by phase.
    mean_rate:
        Mean arrival rate of the input MMPP.
    service_rate:
        The exponential server's rate ``mu``.
    diagnostics:
        :class:`~repro.runtime.resilience.SolveDiagnostics` of the ``R``
        solve — whether the warm start answered or the cold solve had to
        (``None`` for solutions built before the chain existed, e.g. by
        old pickles).
    """

    rate_matrix: np.ndarray
    boundary: np.ndarray
    mean_rate: float
    service_rate: float
    diagnostics: object = None

    @property
    def utilization(self) -> float:
        """Offered load ``mean_rate / service_rate``."""
        return self.mean_rate / self.service_rate

    def level_distribution(self, max_level: int) -> np.ndarray:
        """Marginal queue-length probabilities ``P(z = k)`` for ``k <= max_level``."""
        probs = np.empty(max_level + 1)
        vec = self.boundary.copy()
        for level in range(max_level + 1):
            probs[level] = vec.sum()
            vec = vec @ self.rate_matrix
        return probs

    def mean_queue_length(self) -> float:
        """``E[z] = pi_0 R (I - R)^{-2} 1`` (customers in system).

        Evaluated as two LU-backed vector solves against ``I - R`` — never
        forming the inverse, which costs three times the factorization.
        """
        n = self.rate_matrix.shape[0]
        lu_ir = lu_factor(np.eye(n) - self.rate_matrix)
        vec = lu_solve(lu_ir, lu_solve(lu_ir, np.ones(n)))
        return float(self.boundary @ (self.rate_matrix @ vec))

    def mean_delay(self) -> float:
        """Mean time in system via Little's law."""
        return self.mean_queue_length() / self.mean_rate

    def probability_empty(self) -> float:
        """Stationary probability that the system is empty."""
        return float(self.boundary.sum())


def _solve_rate_matrix_fixed_point(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float,
    max_iterations: int,
    initial: np.ndarray | None = None,
) -> np.ndarray:
    """Fixed-point iteration ``R <- -(A0 + R^2 A2) A1^{-1}``.

    Monotone from ``R = 0``; linear convergence, so only suitable for small
    phase spaces, warm-start refinement, or as a cross-check of the doubling
    paths.  ``A1`` is LU-factored once and reused every sweep.
    """
    lu_a1t = lu_factor(a1.T)
    rate = np.zeros_like(a0) if initial is None else initial.copy()
    for _ in range(max_iterations):
        # R A1 = -(A0 + R^2 A2)  =>  A1^T R^T = -(A0 + R^2 A2)^T.
        updated = lu_solve(lu_a1t, -(a0 + rate @ rate @ a2).T).T
        delta = float(np.abs(updated - rate).max())
        rate = updated
        if delta < tol:
            return rate
    raise ArithmeticError(
        f"R iteration did not converge within {max_iterations} steps "
        f"(last delta {delta:g}); is the queue stable?"
    )


def _solve_rate_matrix_lr(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float,
    max_iterations: int,
) -> np.ndarray:
    """Latouche–Ramaswami logarithmic reduction.

    Computes ``G`` (first-passage-down probabilities, the minimal solution
    of ``A2 + A1 G + A0 G^2 = 0``) with quadratic convergence, then converts
    to ``R = A0 (-(A1 + A0 G))^{-1}``.  Each step squares the effective
    horizon, so ~30 iterations suffice where the fixed point needs tens of
    thousands.
    """
    n = a0.shape[0]
    identity = np.eye(n)
    neg_a1_inv = np.linalg.inv(-a1)
    down = neg_a1_inv @ a2
    up = neg_a1_inv @ a0
    g = down.copy()
    t = up.copy()
    for _ in range(max_iterations):
        u = up @ down + down @ up
        m = np.linalg.inv(identity - u)
        up = m @ up @ up
        down = m @ down @ down
        g += t @ down
        t = t @ up
        if float(np.abs(t).max()) < tol:
            break
    else:
        raise ArithmeticError("logarithmic reduction did not converge")
    return _rate_from_g(a0, a1, g)


def _solve_g_cyclic_reduction(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float,
    max_iterations: int,
) -> np.ndarray:
    """Cyclic reduction for ``G`` (minimal solution of A2 + A1 G + A0 G^2 = 0).

    Classical Bini–Meini recurrence with the level-up block ``B1``, local
    block ``B0``, level-down block ``Bm1`` and the "hat" block accumulating
    the level-0 Schur complement:

        V   = B0^{-1} [Bm1  B1]          (one LU, one stacked solve)
        hat -= B1 Vm1
        B0  -= B1 Vm1 + Bm1 V1
        Bm1  = -Bm1 Vm1
        B1   = -B1 V1
        G    = -hat^{-1} A2              (after B1 -> 0, quadratically)

    The first step is special-cased: for MMPP/M/1, ``B1 = A0`` is diagonal
    and ``Bm1 = A2 = mu I``, so ``Vm1``/``V1`` are row/column scalings of a
    single explicit inverse and every update is O(n^2) — the step costs one
    factorization instead of four n^3 products.
    """
    n = a0.shape[0]
    scale = max(1.0, float(np.abs(a0).max()))
    b1 = a0.copy()
    b0 = a1.copy()
    bm1 = a2.copy()
    hat = a1.copy()

    diag_up = np.diagonal(a0).copy()
    mu = float(a2[0, 0])
    first_step_structured = (
        np.count_nonzero(a0 - np.diag(diag_up)) == 0
        and np.allclose(a2, mu * np.eye(n))
    )
    if first_step_structured and float(np.abs(b1).max()) >= tol * scale:
        b0_inv = np.linalg.inv(b0)
        vm1 = mu * b0_inv
        v1 = b0_inv * diag_up[None, :]
        correction = diag_up[:, None] * vm1
        hat -= correction
        b0 -= correction + mu * v1
        bm1 = -mu * vm1
        b1 = -(diag_up[:, None] * v1)

    for _ in range(max_iterations):
        if float(np.abs(b1).max()) < tol * scale:
            break
        lu_b0 = lu_factor(b0)
        stacked = lu_solve(lu_b0, np.hstack([bm1, b1]))
        vm1, v1 = stacked[:, :n], stacked[:, n:]
        up_products = b1 @ stacked
        down_products = bm1 @ stacked
        hat -= up_products[:, :n]
        b0 -= up_products[:, :n] + down_products[:, n:]
        bm1 = -down_products[:, :n]
        b1 = -up_products[:, n:]
    else:
        raise ArithmeticError("cyclic reduction did not converge")
    return lu_solve(lu_factor(hat), -a2)


def _rate_from_g(a0: np.ndarray, a1: np.ndarray, g: np.ndarray) -> np.ndarray:
    """Convert ``G`` to ``R = A0 (-(A1 + A0 G))^{-1}`` via a transposed solve."""
    m = -(a1 + a0 @ g)
    return lu_solve(lu_factor(m.T), a0.T).T


def _solve_rate_matrix(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float,
    max_iterations: int,
    method: str = "cr",
) -> np.ndarray:
    if method == "cr":
        g = _solve_g_cyclic_reduction(a0, a1, a2, tol, min(max_iterations, 100))
        return _rate_from_g(a0, a1, g)
    if method == "lr":
        return _solve_rate_matrix_lr(a0, a1, a2, tol, min(max_iterations, 200))
    if method == "fixed-point":
        return _solve_rate_matrix_fixed_point(a0, a1, a2, tol, max_iterations)
    raise ValueError(f"unknown R-matrix method {method!r}")


def _refine_rate_matrix(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float,
    initial: np.ndarray,
) -> np.ndarray | None:
    """Budgeted warm-start refinement; ``None`` when it fails to contract.

    Runs the fixed-point sweep from ``initial`` for at most
    :data:`_WARM_START_BUDGET` iterations.  The sweep contracts linearly at
    roughly ``sp(R) sp(G)``, so a guess from a nearby sweep point converges
    in a handful of sweeps on lightly-loaded points and stalls near
    criticality.  After a few sweeps the observed contraction factor is
    extrapolated; when the projected iteration count exceeds the budget the
    refinement bails out immediately so a stalled warm start costs a small
    fraction of the cold solve it falls back to.
    """
    lu_a1t = lu_factor(a1.T)
    rate = initial.copy()
    previous_delta = None
    for sweep in range(_WARM_START_BUDGET):
        updated = lu_solve(lu_a1t, -(a0 + rate @ rate @ a2).T).T
        delta = float(np.abs(updated - rate).max())
        rate = updated
        if delta < tol:
            return rate
        if not np.isfinite(delta):
            return None
        if previous_delta is not None and sweep >= 4:
            contraction = delta / max(previous_delta, 1e-300)
            if contraction >= 1.0:
                return None
            remaining = np.log(tol / delta) / np.log(contraction)
            if sweep + remaining > _WARM_START_BUDGET:
                return None
        previous_delta = delta
    return None


def solve_mmpp_m1(
    mmpp: MMPP,
    service_rate: float,
    tol: float = 1e-12,
    max_iterations: int = 200_000,
    method: str = "cr",
    initial_rate_matrix: np.ndarray | None = None,
) -> QBDSolution:
    """Solve the MMPP/M/1 queue by the matrix-geometric method.

    Parameters
    ----------
    mmpp:
        Input arrival process (finite modulating chain — truncate first for
        HAP via :mod:`repro.core.mmpp_mapping`).
    service_rate:
        Rate ``mu`` of the exponential server.
    tol, max_iterations:
        Convergence controls for the ``R`` solve.
    method:
        ``"cr"`` (default, cyclic reduction — quadratic convergence, LU
        throughout), ``"lr"`` (logarithmic reduction) or ``"fixed-point"``
        (the simple monotone iteration).
    initial_rate_matrix:
        Optional warm start (e.g. the previous point of a service-rate
        sweep).  A budgeted fixed-point refinement runs from this guess and
        the solver falls back to a cold ``method`` solve when the
        refinement does not reach ``tol`` — the warm start can only change
        the wall-clock, never the answer beyond tolerance.

    Notes
    -----
    The ``R`` solve runs as a declarative degradation chain
    (:class:`~repro.runtime.resilience.DegradationChain`, name
    ``"qbd-rate-matrix"``): the ``warm-start`` rung (present only when
    ``initial_rate_matrix`` is given) abdicates when the budgeted
    refinement fails to contract, and the cold ``method`` rung (``"cr"``
    by default) backs it up.  Which rung answered is recorded in the
    returned solution's ``diagnostics``.

    Raises
    ------
    ValueError
        If the queue is not stable (``mean rate >= service rate``).
    """
    if service_rate <= 0:
        raise ValueError("service rate must be positive")
    mean_rate = mmpp.mean_rate()
    if mean_rate >= service_rate:
        raise ValueError(
            f"unstable queue: mean arrival rate {mean_rate:g} >= "
            f"service rate {service_rate:g}"
        )
    n = mmpp.num_states
    if n > _QBD_PHASE_WARN_LIMIT:
        warnings.warn(
            f"QBD solve over {n} phases: R is dense, so this is O(n^3) per "
            "reduction step regardless of block sparsity — consider a "
            "tighter phase_mass_tol / truncation box",
            RuntimeWarning,
            stacklevel=2,
        )
    identity = np.eye(n)
    # Assemble the blocks sparsely and cross the dense boundary exactly once
    # (the R solvers are dense by nature — R itself has no sparsity): for a
    # sparse modulating chain this avoids the two intermediate n x n dense
    # arrays mmpp.d0() would allocate.
    if sp.issparse(mmpp.generator):
        d0 = np.asarray(mmpp.d0_sparse().toarray(), dtype=float)
    else:
        d0 = mmpp.d0()
    a1 = d0 - service_rate * identity
    a0 = mmpp.d1()
    a2 = service_rate * identity
    if method not in ("cr", "lr", "fixed-point"):
        raise ValueError(f"unknown R-matrix method {method!r}")
    from repro.runtime.resilience import DegradationChain, RungRejected

    rungs = []
    if initial_rate_matrix is not None:
        if initial_rate_matrix.shape != a0.shape:
            raise ValueError(
                "initial_rate_matrix shape "
                f"{initial_rate_matrix.shape} does not match the "
                f"{a0.shape} phase space"
            )

        def refine_warm_start():
            refined = _refine_rate_matrix(a0, a1, a2, tol, initial_rate_matrix)
            if refined is None:
                raise RungRejected(
                    "warm-start refinement did not contract to tolerance "
                    f"within its {_WARM_START_BUDGET}-sweep budget"
                )
            return refined

        rungs.append(("warm-start", refine_warm_start))
    rungs.append(
        (method, lambda: _solve_rate_matrix(a0, a1, a2, tol, max_iterations, method))
    )
    rate_matrix, diagnostics = DegradationChain("qbd-rate-matrix", rungs).run()

    # Boundary: pi_0 (B00 + R A2) = 0, normalized by pi_0 (I - R)^{-1} 1 = 1,
    # where B00 = D0 (no service completes at level 0).  The singular n x n
    # block has rank n - 1, so replacing one column with the normalization
    # vector w = (I - R)^{-1} 1 gives a square non-singular system
    # pi_0 B' = e_last solved by one LU factorization (no least squares).
    lu_ir = lu_factor(identity - rate_matrix)
    w = lu_solve(lu_ir, np.ones(n))
    boundary_block = d0 + service_rate * rate_matrix
    system = boundary_block.copy()
    system[:, n - 1] = w
    rhs = np.zeros(n)
    rhs[n - 1] = 1.0
    boundary = lu_solve(lu_factor(system.T), rhs)
    boundary = np.maximum(boundary, 0.0)
    # Renormalize exactly after clipping tiny negatives.
    boundary /= float(boundary @ w)
    return QBDSolution(
        rate_matrix=rate_matrix,
        boundary=boundary,
        mean_rate=mean_rate,
        service_rate=service_rate,
        diagnostics=diagnostics,
    )
