"""Shared uniformization constants.

Uniformization turns a CTMC with generator ``Q`` into a DTMC with
transition matrix ``P = I + Q / rate`` for any ``rate`` at or above the
largest exit rate ``max_i(-Q[i, i])``.  Picking ``rate`` *exactly* equal to
the maximum leaves the fastest states with a zero self-loop, and when equal
exit rates sit around a cycle the resulting DTMC is periodic: power
iteration oscillates forever and the transient series converges more
slowly.  Both uniformization call sites in this repo therefore inflate the
rate by the same safety margin, which guarantees every state a strictly
positive self-loop (hence aperiodicity) without moving the fixed point —
the series and the stationary vector are exact for any admissible rate.

The margin trades a few extra series terms / sweeps for robustness; 5 % is
plenty to dodge the periodic corner case while keeping the Poisson term
count essentially unchanged.
"""

from __future__ import annotations

__all__ = ["UNIFORMIZATION_MARGIN"]

#: Multiplier applied to the largest exit rate when uniformizing.  Shared by
#: :meth:`repro.markov.ctmc.CTMC._uniformized` (transient distributions) and
#: ``repro.core.solution0._stationary_power`` (the paper's brute-force
#: stationary solve) so the aperiodicity guarantee is maintained in one
#: place.
UNIFORMIZATION_MARGIN = 1.05
