"""Markov-modulated Poisson processes.

An MMPP is a doubly-stochastic Poisson process whose rate is a function of
the state of a background CTMC.  We store it as the generator ``Q`` of the
modulating chain plus the per-state arrival-rate vector ``rates``; the
equivalent Neuts representation is ``D1 = diag(rates)``, ``D0 = Q - D1``.

The paper's central structural result (Section 3.1) is that HAP *is* an
``(l + 1)``-dimension infinite-state MMPP whose transitions only connect
neighbouring states; :mod:`repro.core.mmpp_mapping` constructs instances of
this class from HAP parameter sets.  This module also implements the 2-state
moment-matched MMPP (Heffes–Lucantoni style), the "conventional MMPP"
baseline that the paper argues is insufficient for computer traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.markov.ctmc import CTMC
from repro.markov.spectral import (
    KrylovKernel,
    SpectralKernel,
    UniformizedKernel,
    resolve_backend,
)

__all__ = ["MMPP", "fit_mmpp2_to_moments"]


@dataclass
class MMPP:
    """An MMPP given by its modulating generator and per-state rates.

    Parameters
    ----------
    generator:
        Generator matrix of the modulating CTMC (dense or sparse).
    rates:
        Arrival rate in each modulating state (non-negative vector).
    """

    generator: object
    rates: np.ndarray
    _chain: CTMC = field(init=False, repr=False)
    _kernels: dict = field(init=False, repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        self.rates = np.asarray(self.rates, dtype=float)
        self._chain = CTMC(self.generator)
        if self.rates.shape != (self._chain.num_states,):
            raise ValueError("rates must have one entry per modulating state")
        if np.any(self.rates < 0):
            raise ValueError("arrival rates must be non-negative")

    # ------------------------------------------------------------------
    # Representations
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """Number of modulating states."""
        return self._chain.num_states

    @property
    def chain(self) -> CTMC:
        """The modulating CTMC."""
        return self._chain

    def d0(self) -> np.ndarray:
        """Neuts' ``D0 = Q - diag(rates)`` (dense)."""
        q = self.generator
        dense = np.asarray(q.todense() if sp.issparse(q) else q, dtype=float)
        return dense - np.diag(self.rates)

    def d0_sparse(self) -> sp.csr_matrix:
        """Neuts' ``D0 = Q - diag(rates)`` in CSR form, no dense round-trip.

        The sparse analytic backend and the QBD block assembly consume this
        directly; on a truncated HAP chain ``D0`` has ``O(n)`` non-zeros
        (nearest-neighbour transitions plus the diagonal), so the dense
        ``n x n`` form in :meth:`d0` is pure waste above a few hundred
        states.
        """
        q = self.generator
        q = q.tocsr() if sp.issparse(q) else sp.csr_matrix(
            np.asarray(q, dtype=float)
        )
        return (q - sp.diags(self.rates, format="csr")).tocsr()

    def d1(self) -> np.ndarray:
        """Neuts' ``D1 = diag(rates)`` (dense)."""
        return np.diag(self.rates)

    def d1_sparse(self) -> sp.csr_matrix:
        """Neuts' ``D1 = diag(rates)`` in CSR form."""
        return sp.diags(self.rates, format="csr").tocsr()

    def _resolve_backend(self, backend: str | None) -> str:
        return resolve_backend(backend, self.num_states)

    def d0_kernel(self, backend: str | None = None):
        """Grid-evaluation kernel for ``expm(D0 t)`` forms.

        Built once per resolved backend and cached on the instance (the
        mapping cache in :mod:`repro.core.mmpp_mapping` shares MMPP
        instances, so a chain factorized under one backend is not penalized
        when another backend is requested later).  ``backend=None`` defers
        to the process default (see
        :func:`repro.markov.spectral.resolve_backend`): a dense
        :class:`~repro.markov.spectral.SpectralKernel` for modest phase
        counts, the action-based
        :class:`~repro.markov.spectral.KrylovKernel` for large ones.
        """
        resolved = self._resolve_backend(backend)
        key = ("d0", resolved)
        if key not in self._kernels:
            if resolved == "krylov":
                self._kernels[key] = KrylovKernel(self.d0_sparse())
            else:
                self._kernels[key] = SpectralKernel(self.d0())
        return self._kernels[key]

    def generator_kernel(self, backend: str | None = None):
        """Grid-evaluation kernel for ``expm(Q t)`` forms.

        Same backend contract and per-backend caching as
        :meth:`d0_kernel`.  On the dense path a *generator* always has the
        uniformized power series as a fast, unconditionally stable
        evaluator, so when the eigendecomposition fails its residual check
        (lattice generators routinely have near-defective eigenvector
        bases) the fallback is :class:`UniformizedKernel` — per-grid-point
        Schur ``expm`` would reintroduce exactly the per-point cost this
        layer removes.  The krylov path needs no such fallback: the
        truncated-Taylor action is unconditionally stable.
        """
        resolved = self._resolve_backend(backend)
        key = ("generator", resolved)
        if key not in self._kernels:
            if resolved == "krylov":
                q = self.generator
                q = q.tocsr() if sp.issparse(q) else sp.csr_matrix(
                    np.asarray(q, dtype=float)
                )
                self._kernels[key] = KrylovKernel(q)
            else:
                q = self.generator
                dense = np.asarray(
                    q.todense() if sp.issparse(q) else q, dtype=float
                )
                spectral = SpectralKernel(dense)
                if spectral.method == "eig":
                    self._kernels[key] = spectral
                else:
                    self._kernels[key] = UniformizedKernel(self.generator)
        return self._kernels[key]

    # ------------------------------------------------------------------
    # First- and second-order statistics
    # ------------------------------------------------------------------
    def stationary_distribution(self) -> np.ndarray:
        """Stationary distribution of the modulating chain."""
        return self._chain.stationary_distribution()

    def mean_rate(self) -> float:
        """Long-run arrival rate ``sum_s pi_s r_s``."""
        return float(self.stationary_distribution() @ self.rates)

    def rate_variance(self) -> float:
        """Stationary variance of the modulating rate."""
        pi = self.stationary_distribution()
        mean = float(pi @ self.rates)
        return float(pi @ (self.rates - mean) ** 2)

    def palm_state_distribution(self) -> np.ndarray:
        """Probability that an *arrival* finds the chain in each state.

        This is the rate-weighted stationary distribution — exactly the
        weighting the paper applies in Equation 3 when it expresses the
        message interarrival time as a mixture over modulating states.
        """
        pi = self.stationary_distribution()
        weights = pi * self.rates
        total = weights.sum()
        if total <= 0:
            raise ArithmeticError("MMPP has zero mean rate; no arrivals")
        return weights / total

    def interarrival_mixture(self) -> tuple[np.ndarray, np.ndarray]:
        """The paper's Solution-1 interarrival approximation.

        Returns ``(weights, rates)`` of a hyper-exponential mixture: an
        arrival is generated in state ``s`` with probability ``weights[s]``
        and the next interarrival is then approximated as Exp(``rates[s]``).
        States with zero rate carry zero weight and are dropped.
        """
        palm = self.palm_state_distribution()
        active = self.rates > 0
        weights = palm[active]
        return weights / weights.sum(), self.rates[active]

    def interarrival_density(self, t: np.ndarray) -> np.ndarray:
        """Solution-1 approximate interarrival density ``a(t)``."""
        weights, rates = self.interarrival_mixture()
        t = np.atleast_1d(np.asarray(t, dtype=float))
        return (weights * rates * np.exp(-np.outer(t, rates))).sum(axis=1)

    def interarrival_laplace(self, s: float) -> float:
        """Laplace transform ``A*(s)`` of the Solution-1 mixture."""
        weights, rates = self.interarrival_mixture()
        return float(np.sum(weights * rates / (rates + s)))

    def exact_interarrival_moments(self, order: int = 2) -> list[float]:
        """Exact stationary-interval interarrival moments via ``D0``.

        For a stationary MMPP the interarrival time of the arrival-stationary
        (Palm) process has ``E[T^k] = k! * phi (-D0)^{-k} 1`` where ``phi``
        is the post-arrival phase distribution ``pi D1 / (pi D1 1)``.
        """
        if order < 1:
            raise ValueError("order must be >= 1")
        pi = self.stationary_distribution()
        weights = pi * self.rates
        phi = weights / weights.sum()
        ones = np.ones(self.num_states)
        # vec <- vec (-D0)^{-1} is a transposed solve; factor (-D0)^T once.
        # Sparse chains get a sparse LU — the dense factorization is O(n^3)
        # time / O(n^2) memory and is exactly the ceiling the sparse backend
        # removes.
        if sp.issparse(self.generator):
            import scipy.sparse.linalg as spla

            lu = spla.splu((-self.d0_sparse().T).tocsc())
            solve = lu.solve
        else:
            from scipy.linalg import lu_factor, lu_solve

            lu_neg_d0t = lu_factor(-self.d0().T)
            solve = lambda vec: lu_solve(lu_neg_d0t, vec)  # noqa: E731
        moments = []
        vec = phi.copy()
        factorial = 1.0
        for k in range(1, order + 1):
            vec = solve(vec)
            factorial *= k
            moments.append(float(factorial * (vec @ ones)))
        return moments

    def interarrival_scv(self) -> float:
        """Squared coefficient of variation of the exact interarrival time."""
        m1, m2 = self.exact_interarrival_moments(order=2)
        return m2 / m1**2 - 1.0

    def exact_interarrival_density(
        self, t: np.ndarray, method: str = "spectral", backend: str | None = None
    ) -> np.ndarray:
        """Exact stationary-interval interarrival density.

        ``f(t) = phi exp(D0 t) D1 1`` with ``phi`` the post-arrival phase
        distribution — the quantity the paper's Solutions 1/2 *approximate*
        with a state mixture.  The difference between this and
        :meth:`interarrival_density` is precisely the within-interval phase
        drift those solutions ignore; tests quantify it.

        ``method="spectral"`` (default) evaluates the whole grid from the
        cached :meth:`d0_kernel` factorization under the requested analytic
        ``backend`` (``None`` = process default); ``method="expm"`` is the
        legacy one-``expm``-per-point path, kept as the equivalence anchor.
        """
        phi = self.palm_state_distribution()
        rate_vector = self.rates  # D1 @ 1 = rates
        t = np.atleast_1d(np.asarray(t, dtype=float))
        if method == "spectral":
            return self.d0_kernel(backend).bilinear(phi, rate_vector, t)
        if method != "expm":
            raise ValueError(f"unknown interarrival method {method!r}")
        from scipy.linalg import expm

        d0 = self.d0()
        values = np.empty(t.shape)
        for k, time in enumerate(t):
            values[k] = float(phi @ expm(d0 * time) @ rate_vector)
        return values

    def exact_interarrival_cdf(
        self, t: np.ndarray, method: str = "spectral", backend: str | None = None
    ) -> np.ndarray:
        """Exact stationary-interval interarrival distribution ``A(t)``.

        ``A(t) = 1 - phi exp(D0 t) 1`` — the survival function is the
        probability no arrival has fired by ``t`` given the post-arrival
        phase mix ``phi``.  Same ``method``/``backend`` contract as
        :meth:`exact_interarrival_density`.
        """
        phi = self.palm_state_distribution()
        ones = np.ones(self.num_states)
        t = np.atleast_1d(np.asarray(t, dtype=float))
        if method == "spectral":
            return 1.0 - self.d0_kernel(backend).bilinear(phi, ones, t)
        if method != "expm":
            raise ValueError(f"unknown interarrival method {method!r}")
        from scipy.linalg import expm

        d0 = self.d0()
        values = np.empty(t.shape)
        for k, time in enumerate(t):
            values[k] = float(phi @ expm(d0 * time) @ ones)
        return 1.0 - values

    def interarrival_autocorrelation(self, lag: int = 1) -> float:
        """Exact lag-``k`` autocorrelation of successive interarrival times.

        For a MAP with ``P = (-D0)^{-1} D1`` (the phase transition over one
        interval) and ``m(phase) = E[T | phase]``:

            E[T_0 T_k] = phi M P^{k-1} M 1,   M = (-D0)^{-1}

        This is the correlation the paper identifies as the source of the
        Solution-1/2 error — Poisson and renewal inputs have 0 at all lags.
        """
        if lag < 1:
            raise ValueError("lag must be >= 1")
        d0 = self.d0()
        inv = np.linalg.inv(-d0)
        transition = inv @ self.d1()
        pi = self.stationary_distribution()
        weights = pi * self.rates
        phi = weights / weights.sum()
        ones = np.ones(self.num_states)
        m1 = float(phi @ inv @ ones)
        m2 = 2.0 * float(phi @ inv @ inv @ ones)
        variance = m2 - m1**2
        if variance <= 0:
            return 0.0
        step = np.linalg.matrix_power(transition, lag - 1)
        joint = float(phi @ inv @ transition @ step @ inv @ ones)
        return (joint - m1**2) / variance

    def rate_autocovariance(
        self, lags: np.ndarray, method: str = "spectral", backend: str | None = None
    ) -> np.ndarray:
        """Autocovariance ``Cov(r(0), r(u))`` of the modulating rate.

        ``c(u) = (pi * r) exp(Q u) r - lambda-bar^2`` — a bilinear form in
        the modulating generator's exponential.  ``method="spectral"``
        (default) evaluates the whole lag grid through the cached
        :meth:`generator_kernel` under the requested analytic ``backend``;
        ``method="legacy"`` is the previous one-transient-solve-per-lag
        path, kept as the equivalence anchor.
        """
        lags = np.atleast_1d(np.asarray(lags, dtype=float))
        pi = self.stationary_distribution()
        mean = float(pi @ self.rates)
        weighted = pi * self.rates
        if method == "spectral":
            forward = self.generator_kernel(backend).bilinear(
                weighted, self.rates, lags
            )
            return forward - mean**2
        if method != "legacy":
            raise ValueError(f"unknown autocovariance method {method!r}")
        covariances = np.empty(lags.shape)
        for k, lag in enumerate(lags):
            forward = self._chain.transient_distribution(weighted, lag)
            covariances[k] = float(forward @ self.rates) - mean**2
        return covariances

    def index_of_dispersion(
        self,
        t: float,
        quad_points: int = 256,
        method: str = "spectral",
        backend: str | None = None,
    ) -> float:
        """Index of dispersion for counts ``IDC(t) = Var N(t) / E N(t)``.

        Uses ``Var N(t) = mean_rate * t + 2 ∫_0^t (t - u) c(u) du`` where
        ``c`` is the rate autocovariance, evaluated by trapezoidal quadrature
        (the whole quadrature grid costs one kernel evaluation under the
        default ``method="spectral"``).  A Poisson process has IDC ≡ 1;
        HAP's IDC grows far above 1, which is the count-domain face of its
        burstiness.
        """
        if t <= 0:
            raise ValueError("t must be positive")
        us = np.linspace(0.0, t, quad_points)
        covariance = self.rate_autocovariance(us, method=method, backend=backend)
        integrand = (t - us) * covariance
        mean_count = self.mean_rate() * t
        variance = mean_count + 2.0 * np.trapezoid(integrand, us)
        return variance / mean_count

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def superpose(self, other: "MMPP") -> "MMPP":
        """Superposition of two independent MMPPs (Kronecker construction).

        The modulating chain of the superposition is the independent product
        chain; its rate in a product state is the sum of component rates.
        """
        q1 = self.generator
        q2 = other.generator
        q1 = q1 if sp.issparse(q1) else sp.csr_matrix(np.asarray(q1, dtype=float))
        q2 = q2 if sp.issparse(q2) else sp.csr_matrix(np.asarray(q2, dtype=float))
        identity1 = sp.eye(self.num_states, format="csr")
        identity2 = sp.eye(other.num_states, format="csr")
        generator = sp.kron(q1, identity2) + sp.kron(identity1, q2)
        rates = (
            np.kron(self.rates, np.ones(other.num_states))
            + np.kron(np.ones(self.num_states), other.rates)
        )
        return MMPP(generator.tocsr(), rates)


def fit_mmpp2_to_moments(
    mean_rate: float,
    rate_variance: float,
    decay_rate: float,
) -> MMPP:
    """Fit a symmetric 2-state MMPP to rate mean, variance, and decay.

    This is the classical "conventional MMPP" reduction (in the spirit of
    Heffes–Lucantoni): choose two states with rates ``mean ± sqrt(variance)``
    and symmetric switching at ``decay_rate / 2`` so the rate autocovariance
    is ``variance * exp(-decay_rate * u)``.  The paper's point is that this
    collapse of the hierarchy loses the multi-time-scale structure; we
    implement it as the baseline it argues against.

    Raises
    ------
    ValueError
        If the variance is too large for non-negative rates
        (``sqrt(variance) > mean``), which itself is a sign the source is
        burstier than any 2-state MMPP with these moments can be.
    """
    if mean_rate <= 0 or rate_variance < 0 or decay_rate <= 0:
        raise ValueError("need mean_rate > 0, rate_variance >= 0, decay_rate > 0")
    spread = float(np.sqrt(rate_variance))
    if spread > mean_rate:
        raise ValueError(
            f"rate stddev {spread:g} exceeds mean {mean_rate:g}; "
            "a non-negative 2-state fit does not exist"
        )
    switch = decay_rate / 2.0
    generator = np.array([[-switch, switch], [switch, -switch]])
    rates = np.array([mean_rate - spread, mean_rate + spread])
    return MMPP(generator, rates)
