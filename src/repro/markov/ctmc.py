"""Continuous-time Markov chains given by a generator matrix.

A CTMC on a finite state space is described by its generator (rate) matrix
``Q``: ``Q[i, j]`` for ``i != j`` is the transition rate from state ``i`` to
state ``j``, and each diagonal entry is minus the total outflow rate of its
row, so every row sums to zero.

The class accepts dense numpy arrays or scipy sparse matrices and chooses the
appropriate linear-algebra path for each operation.  It is deliberately
minimal: the HAP solvers (:mod:`repro.core`) only need stationary
distributions, transient distributions (for autocovariance/IDC computations),
and sample paths.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from scipy.linalg import expm

from repro.markov.uniformization import UNIFORMIZATION_MARGIN

__all__ = ["CTMC", "sample_embedded_jump"]

#: Tolerance used when validating that generator rows sum to zero.
_ROW_SUM_TOL = 1e-8


def _as_dense(matrix) -> np.ndarray:
    """Return ``matrix`` as a dense float array."""
    if sp.issparse(matrix):
        return np.asarray(matrix.todense(), dtype=float)
    return np.asarray(matrix, dtype=float)


def sample_embedded_jump(jump_probs, state: int, rng: np.random.Generator) -> int:
    """Draw the next state of the embedded jump chain from row ``state``.

    Works on both representations :meth:`CTMC.embedded_transition_matrix`
    can return.  For CSR the draw runs on the row's non-zero pattern only —
    and, because ``Generator.choice`` inverts the cumulative sum of ``p``
    with a single uniform and zero-probability entries never win a
    ``searchsorted`` tie, the consumed random stream *and* the selected
    successor are identical to the dense-row draw.  Sparse chains therefore
    reproduce the exact sample paths the dense representation produced.
    """
    if sp.issparse(jump_probs):
        start, end = jump_probs.indptr[state], jump_probs.indptr[state + 1]
        columns = jump_probs.indices[start:end]
        probabilities = jump_probs.data[start:end]
        return int(columns[rng.choice(probabilities.size, p=probabilities)])
    return int(rng.choice(jump_probs.shape[0], p=jump_probs[state]))


@dataclass
class CTMC:
    """A finite continuous-time Markov chain.

    Parameters
    ----------
    generator:
        Square generator matrix ``Q`` (dense array or scipy sparse matrix).
        Rows must sum to zero and off-diagonal entries must be non-negative.
    validate:
        When true (the default) the generator is checked on construction.

    Examples
    --------
    >>> import numpy as np
    >>> chain = CTMC(np.array([[-1.0, 1.0], [2.0, -2.0]]))
    >>> chain.stationary_distribution()
    array([0.66666667, 0.33333333])
    """

    generator: object
    validate: bool = True
    #: :class:`~repro.runtime.resilience.SolveDiagnostics` of the sparse
    #: stationary solve (None before the first solve and on the dense path).
    stationary_diagnostics: object = field(default=None, init=False, repr=False)
    _stationary: np.ndarray | None = field(default=None, init=False, repr=False)
    _embedded: object = field(default=None, init=False, repr=False)
    _holding: np.ndarray | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        shape = self.generator.shape
        if len(shape) != 2 or shape[0] != shape[1]:
            raise ValueError(f"generator must be square, got shape {shape}")
        if self.validate:
            self._validate_generator()

    def _validate_generator(self) -> None:
        q = self.generator
        if sp.issparse(q):
            row_sums = np.asarray(q.sum(axis=1)).ravel()
            coo = q.tocoo()
            off_diag = coo.data[coo.row != coo.col]
        else:
            q = np.asarray(q, dtype=float)
            row_sums = q.sum(axis=1)
            off_diag = q[~np.eye(q.shape[0], dtype=bool)]
        if np.any(off_diag < -_ROW_SUM_TOL):
            raise ValueError("generator has negative off-diagonal rates")
        max_rate = float(np.abs(row_sums).max(initial=0.0))
        scale = max(1.0, float(np.abs(off_diag).max(initial=1.0)))
        if max_rate > _ROW_SUM_TOL * scale * self.num_states:
            raise ValueError(
                f"generator rows must sum to zero (max deviation {max_rate:g})"
            )

    @property
    def num_states(self) -> int:
        """Number of states in the chain."""
        return self.generator.shape[0]

    def stationary_distribution(self, method: str = "direct") -> np.ndarray:
        """Solve ``pi @ Q = 0`` with ``sum(pi) == 1``.

        The singular system is made non-singular by replacing one balance
        equation with the normalization constraint, the standard trick for
        irreducible chains.  Sparse generators stay sparse end to end: the
        replaced system is assembled as a CSR vertical stack (all balance
        rows of ``Q^T`` but the last, then a dense normalization row) —
        never a dense or LIL round-trip — and handed to a sparse solver.
        The result is cached (the stationary vector is unique, so whichever
        ``method`` computed it first serves every later call).

        Sparse solves run as a declarative degradation chain
        (:class:`~repro.runtime.resilience.DegradationChain`, name
        ``"ctmc-stationary"``) over three rungs — ``spsolve`` (sparse LU),
        ``gmres`` (restarted iteration) and ``lstsq`` (dense least-squares,
        the last resort for systems the factorizations cannot handle) —
        ordered by ``method``.  A rung whose answer is non-finite, carries
        negative probability mass, or sums to zero abdicates to the next.
        The answering rung is recorded in ``stationary_diagnostics``, and
        any fallback (e.g. GMRES stagnating and the direct solve taking
        over) emits a :class:`RuntimeWarning` naming both rungs.

        Parameters
        ----------
        method:
            ``"direct"`` (default) prefers the sparse LU solve;
            ``"gmres"`` prefers restarted GMRES on the same CSR system —
            useful for very large chains where the LU fill-in dominates.
            Either way the remaining rungs back the preferred one up.
        """
        if self._stationary is not None:
            return self._stationary
        if method not in ("direct", "gmres"):
            raise ValueError(f"unknown stationary method {method!r}")
        n = self.num_states
        if n == 1:
            self._stationary = np.ones(1)
            return self._stationary
        b = np.zeros(n)
        b[n - 1] = 1.0
        if sp.issparse(self.generator):
            from repro.runtime.resilience import DegradationChain, RungRejected

            qt = self.generator.T.tocsr()
            a = sp.vstack(
                [qt[: n - 1, :], sp.csr_matrix(np.ones((1, n)))],
                format="csr",
            )

            def validated(candidate, rung):
                candidate = np.asarray(candidate, dtype=float)
                if not np.all(np.isfinite(candidate)):
                    raise RungRejected(f"{rung} produced non-finite entries")
                if candidate.min() <= -1e-8:
                    raise RungRejected(
                        f"{rung} produced negative probability mass"
                    )
                if candidate.sum() <= 0.0:
                    raise RungRejected(f"{rung} produced a zero vector")
                return candidate

            def solve_direct():
                return validated(spla.spsolve(a.tocsc(), b), "spsolve")

            def solve_gmres():
                solution, info = spla.gmres(
                    a.tocsc(), b, rtol=1e-12, atol=0.0, maxiter=5 * n
                )
                if info != 0:
                    raise RungRejected(
                        f"gmres did not converge (info={info})"
                    )
                return validated(solution, "gmres")

            def solve_lstsq():
                solution = np.linalg.lstsq(a.toarray(), b, rcond=None)[0]
                return validated(solution, "lstsq")

            rungs = [
                ("spsolve", solve_direct),
                ("gmres", solve_gmres),
                ("lstsq", solve_lstsq),
            ]
            if method == "gmres":
                rungs = [rungs[1], rungs[0], rungs[2]]
            pi, diagnostics = DegradationChain("ctmc-stationary", rungs).run()
            self.stationary_diagnostics = diagnostics
            if diagnostics.degraded:
                failed = ", ".join(
                    attempt.rung
                    for attempt in diagnostics.attempts
                    if not attempt.ok
                )
                warnings.warn(
                    f"stationary solve degraded: {failed} failed, "
                    f"answered by {diagnostics.rung!r}",
                    RuntimeWarning,
                    stacklevel=2,
                )
        else:
            a = np.asarray(self.generator, dtype=float).T.copy()
            a[n - 1, :] = 1.0
            pi = np.linalg.solve(a, b)
        pi = np.maximum(pi, 0.0)
        total = pi.sum()
        if total <= 0.0:
            raise ArithmeticError("stationary solve produced a zero vector")
        self._stationary = pi / total
        return self._stationary

    def transient_distribution(self, initial: np.ndarray, t: float) -> np.ndarray:
        """Distribution at time ``t`` starting from row vector ``initial``.

        Uses the matrix exponential for dense generators and uniformization
        for sparse ones (whose exponential would densify).
        """
        if t < 0:
            raise ValueError("time must be non-negative")
        initial = np.asarray(initial, dtype=float)
        if sp.issparse(self.generator):
            return self._uniformized(initial, t)
        return initial @ expm(np.asarray(self.generator, dtype=float) * t)

    def _uniformized(self, initial: np.ndarray, t: float, tol: float = 1e-12) -> np.ndarray:
        """Uniformization: ``p(t) = sum_k Poisson(k; qt) initial P^k``.

        The rate carries :data:`UNIFORMIZATION_MARGIN` over the largest
        exit rate so the uniformized DTMC keeps a self-loop in every state;
        see :mod:`repro.markov.uniformization` for why.
        """
        q = self.generator
        rate = UNIFORMIZATION_MARGIN * float(-min(q.diagonal().min(), 0.0))
        if rate == 0.0 or t == 0.0:
            return initial.copy()
        transition = sp.eye(self.num_states, format="csr") + q.tocsr() / rate
        mean_jumps = rate * t
        # Poisson tail bound: iterate far enough to capture 1 - tol of mass.
        max_terms = int(mean_jumps + 10.0 * np.sqrt(mean_jumps) + 50.0)
        weight = np.exp(-mean_jumps)
        term = initial.copy()
        result = weight * term
        accumulated = weight
        for k in range(1, max_terms + 1):
            term = term @ transition
            weight *= mean_jumps / k
            result += weight * term
            accumulated += weight
            if 1.0 - accumulated < tol:
                break
        return result

    def holding_rates(self) -> np.ndarray:
        """Total outflow rate of each state (``-diag(Q)``).  Cached."""
        if self._holding is None:
            self._holding = -np.asarray(self.generator.diagonal(), dtype=float)
        return self._holding

    def embedded_transition_matrix(self):
        """Jump-chain transition probabilities.  Cached.

        Dense generators return a dense array (unchanged legacy behavior);
        sparse generators return CSR with the same row-normalized
        off-diagonal entries — the dense form is ``O(n^2)`` memory for a
        matrix with ``O(n)`` non-zeros on truncated HAP chains.

        Absorbing states (zero outflow) self-loop with probability one.
        """
        if self._embedded is not None:
            return self._embedded
        if sp.issparse(self.generator):
            q = self.generator.tocoo()
            rates = -np.asarray(self.generator.diagonal(), dtype=float)
            active = rates > 0
            off = q.row != q.col
            rows = q.row[off]
            cols = q.col[off]
            divisors = np.where(active, rates, 1.0)
            data = q.data[off] / divisors[rows]
            # Probability-one self-loops for absorbing states.
            absorbing = np.flatnonzero(~active)
            rows = np.concatenate([rows, absorbing])
            cols = np.concatenate([cols, absorbing])
            data = np.concatenate([data, np.ones(absorbing.size)])
            probs = sp.coo_matrix(
                (data, (rows, cols)), shape=self.generator.shape
            ).tocsr()
            probs.sort_indices()
            probs.eliminate_zeros()
        else:
            q = np.asarray(self.generator, dtype=float)
            rates = -np.diagonal(q)
            active = rates > 0
            # Divide active rows by their exit rate; absorbing rows stay
            # zero until the diagonal fixup gives them a probability-one
            # self-loop.
            divisors = np.where(active, rates, 1.0)
            probs = np.where(active[:, None], q / divisors[:, None], 0.0)
            np.fill_diagonal(probs, np.where(active, 0.0, 1.0))
        self._embedded = probs
        return probs

    def simulate_path(
        self,
        initial_state: int,
        horizon: float,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Simulate a sample path up to time ``horizon``.

        Returns ``(times, states)`` where ``states[k]`` is occupied on
        ``[times[k], times[k + 1])`` and ``times[0] == 0``.
        """
        if not 0 <= initial_state < self.num_states:
            raise ValueError("initial_state out of range")
        jump_probs = self.embedded_transition_matrix()
        rates = self.holding_rates()
        times = [0.0]
        states = [initial_state]
        now, state = 0.0, initial_state
        while True:
            rate = rates[state]
            if rate <= 0.0:
                break
            now += rng.exponential(1.0 / rate)
            if now >= horizon:
                break
            state = sample_embedded_jump(jump_probs, state, rng)
            times.append(now)
            states.append(state)
        return np.asarray(times), np.asarray(states, dtype=int)

    def expected_value(self, values: np.ndarray) -> float:
        """Stationary expectation of a per-state value vector."""
        values = np.asarray(values, dtype=float)
        if values.shape != (self.num_states,):
            raise ValueError("values must have one entry per state")
        return float(self.stationary_distribution() @ values)
