"""Analytic kernels: grid evaluation of ``left @ expm(M t) @ right``.

Every exact second-order quantity of an MMPP — interarrival density
``a(t) = phi exp(D0 t) D1 1``, interarrival distribution ``A(t)``, the rate
autocovariance ``c(u) = w exp(Q u) r - lambda-bar^2`` and the IDC quadrature
built on it — is a *bilinear form in a matrix exponential* evaluated over a
dense time grid.  The legacy code paid one ``scipy.linalg.expm`` (or one
uniformized power series) per grid point; the MMPP-kernel literature
(Asanjarani & Nazarathy; Asanjarani, Hautphenne & Nazarathy) computes these
curves from a single factorization instead.  This module packages that idea
as three reusable kernels:

:class:`SpectralKernel`
    One-shot eigendecomposition ``M = V diag(w) V^{-1}``.  The bilinear form
    collapses to ``sum_j (left V)_j (V^{-1} right)_j exp(w_j t)`` — one
    ``len(grid) x n`` ``exp`` and one matrix–vector product for the *whole*
    grid.  Defective or ill-conditioned matrices (eigenvector reconstruction
    residual above ``max_residual``) automatically fall back to a real Schur
    form: ``expm`` of the quasi-triangular factor per point, which is slower
    but unconditionally stable.  The chosen path is exposed as ``method``.

:class:`UniformizedKernel`
    For (sparse) *generator* matrices: the uniformized power series with the
    Poisson weights applied per grid point but the vector recurrence
    ``c_k = left P^k right`` shared across the grid — ``max(rate * t)``
    matvecs total instead of ``rate * t`` matvecs *per grid point*.  Exactly
    the same series as :meth:`repro.markov.ctmc.CTMC.transient_distribution`
    truncated at the same tail mass, so results agree to the series
    tolerance.

:class:`KrylovKernel`
    The *action-based sparse backend*: never materializes a dense ``n x n``
    matrix.  It propagates the single vector ``v(t) = exp(M^T t) left^T``
    across the time grid with :func:`scipy.sparse.linalg.expm_multiply`
    (Al-Mohy–Higham scaling-and-Taylor, error near machine precision) and
    dots each propagated vector with ``right``.  Memory is ``O(nnz + n)``
    plus a bounded grid-chunk buffer, so truncation boxes far past the dense
    eigendecomposition ceiling (~30k states and beyond) stay cheap.  Uniform
    grids use ``expm_multiply``'s interval mode in memory-bounded chunks;
    non-uniform grids step point to point.

Backend selection
-----------------
Consumers pick a kernel through the *backend* registry below:

* ``"dense"``  — :class:`SpectralKernel` (O(n^3) factorization, n^2 memory).
* ``"krylov"`` — :class:`KrylovKernel` (sparse actions only).
* ``"auto"``   — dense up to :data:`AUTO_DENSE_LIMIT` states, krylov above.

:func:`resolve_backend` maps a requested backend (or ``None``) plus a state
count to a concrete kernel family; the process-wide default is managed by
:func:`set_default_backend` / :func:`use_backend`, which the CLI
(``--backend``) and the analytic sweep runtime thread through to worker
processes.

All kernels are cheap enough to build eagerly, but consumers cache them
(:class:`repro.markov.mmpp.MMPP` stores one per matrix *and backend*, and
the mapping cache in :mod:`repro.core.mmpp_mapping` shares the MMPP
instances), so each truncated HAP chain is factorized at most once per
process and backend.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager

import numpy as np
import scipy.linalg as la
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from scipy.special import gammaln

__all__ = [
    "AUTO_DENSE_LIMIT",
    "KrylovKernel",
    "SpectralKernel",
    "UniformizedKernel",
    "get_default_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
]

#: Valid analytic-backend names.
BACKENDS = ("dense", "krylov", "auto")

#: ``backend="auto"`` uses the dense spectral kernel up to this many states
#: and the action-based Krylov kernel above it.  The dense eigendecomposition
#: is O(n^3) time / O(n^2) memory, the Krylov sweep is O(nnz * ||M|| t_max)
#: time / O(nnz + n) memory; this crossover keeps small chains on the
#: (cheaper per grid point) dense path.
AUTO_DENSE_LIMIT = 600

#: Process-wide default backend; see :func:`set_default_backend`.
_default_backend = "auto"


def _validate_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown analytic backend {backend!r}; choose from {BACKENDS}"
        )
    return backend


def get_default_backend() -> str:
    """The process-wide default analytic backend (``auto`` unless changed)."""
    return _default_backend


def set_default_backend(backend: str) -> str:
    """Set the process-wide default backend; returns the previous one.

    ``dense``/``krylov`` force that kernel family everywhere a caller does
    not override it explicitly; ``auto`` restores the size-based switch.
    """
    global _default_backend
    previous = _default_backend
    _default_backend = _validate_backend(backend)
    return previous


@contextmanager
def use_backend(backend: str | None):
    """Context manager scoping :func:`set_default_backend` to a block.

    ``None`` is a no-op so callers can thread an optional backend argument
    straight through.
    """
    if backend is None:
        yield
        return
    previous = set_default_backend(backend)
    try:
        yield
    finally:
        set_default_backend(previous)


def resolve_backend(backend: str | None = None, num_states: int | None = None) -> str:
    """Map a requested backend to a concrete kernel family.

    ``None`` means "use the process default".  ``auto`` resolves by state
    count: dense up to :data:`AUTO_DENSE_LIMIT`, krylov above (and dense
    when the size is unknown).
    """
    resolved = _validate_backend(backend if backend is not None else _default_backend)
    if resolved == "auto":
        if num_states is not None and num_states > AUTO_DENSE_LIMIT:
            return "krylov"
        return "dense"
    return resolved

#: Relative eigenvector-reconstruction residual above which the
#: eigendecomposition is considered untrustworthy (defective/ill-conditioned
#: matrix) and the Schur fallback takes over.
_DEFAULT_MAX_RESIDUAL = 1e-9

#: Poisson tail control for :class:`UniformizedKernel` — matches the margin
#: used by the legacy per-point uniformization in :mod:`repro.markov.ctmc`.
_POISSON_TAIL_SIGMAS = 10.0
_POISSON_TAIL_MARGIN = 50.0


def _as_dense(matrix) -> np.ndarray:
    if sp.issparse(matrix):
        return np.asarray(matrix.todense(), dtype=float)
    return np.asarray(matrix, dtype=float)


class SpectralKernel:
    """Evaluate ``left @ expm(M t) @ right`` over time grids from one factorization.

    Factorization is a declarative degradation chain
    (:class:`~repro.runtime.resilience.DegradationChain`, name
    ``"spectral-kernel"``) with three rungs, most-preferred first:

    ``eig``
        One-shot diagonalization; rejected
        (:class:`~repro.runtime.resilience.RungRejected`) when the
        reconstruction residual exceeds ``max_residual`` — defective or
        ill-conditioned matrices are not trusted.
    ``schur``
        Real Schur form; ``expm`` of the quasi-triangular factor per grid
        point — slower but unconditionally stable.
    ``uniformized``
        :class:`UniformizedKernel` power series; applicable to Metzler
        matrices (generators and sub-generators such as an MMPP's ``D0``),
        the last resort when even the Schur factorization fails.

    Parameters
    ----------
    matrix:
        Square real matrix ``M`` (dense or sparse; densified internally).
    max_residual:
        Relative tolerance on ``|V diag(w) V^{-1} - M|`` deciding whether
        the eigendecomposition is accurate enough.

    Attributes
    ----------
    method:
        The answering rung: ``"eig"``, ``"schur"`` or ``"uniformized"``.
    diagnostics:
        The chain's :class:`~repro.runtime.resilience.SolveDiagnostics` —
        which rung answered and what failed above it.
    """

    def __init__(self, matrix, max_residual: float = _DEFAULT_MAX_RESIDUAL):
        from repro.runtime.resilience import DegradationChain, RungRejected

        m = _as_dense(matrix)
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise ValueError(f"matrix must be square, got shape {m.shape}")
        self.matrix = m
        self._eigenvalues: np.ndarray | None = None
        self._vectors: np.ndarray | None = None
        self._vectors_inv: np.ndarray | None = None
        self._schur: tuple[np.ndarray, np.ndarray] | None = None
        self._uniformized: UniformizedKernel | None = None
        scale = max(1.0, float(np.abs(m).max()))

        def factor_eig():
            try:
                # Near-defective matrices make inverting V ill-conditioned;
                # the residual check decides, so the warning is just noise.
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", la.LinAlgWarning)
                    w, v = la.eig(m)
                    v_inv = la.inv(v)
                residual = float(np.abs((v * w[None, :]) @ v_inv - m).max())
            except la.LinAlgError as exc:
                raise RungRejected(f"eigendecomposition failed: {exc}") from exc
            if residual > max_residual * scale:
                raise RungRejected(
                    f"reconstruction residual {residual:.3g} exceeds "
                    f"{max_residual:g} * scale (defective or "
                    "ill-conditioned matrix)"
                )
            return ("eig", (w, v, v_inv))

        def factor_schur():
            return ("schur", la.schur(m, output="real"))

        def factor_uniformized():
            off_diagonal = m - np.diag(np.diag(m))
            if off_diagonal.min() < 0.0:
                raise RungRejected(
                    "matrix is not Metzler; the uniformized power series "
                    "does not apply"
                )
            return ("uniformized", UniformizedKernel(m))

        chain = DegradationChain(
            "spectral-kernel",
            [
                ("eig", factor_eig),
                ("schur", factor_schur),
                ("uniformized", factor_uniformized),
            ],
        )
        (method, payload), self.diagnostics = chain.run()
        self.method = method
        if method == "eig":
            self._eigenvalues, self._vectors, self._vectors_inv = payload
        elif method == "schur":
            self._schur = payload
        else:
            self._uniformized = payload

    @property
    def num_states(self) -> int:
        """Dimension of the matrix."""
        return self.matrix.shape[0]

    def bilinear(self, left: np.ndarray, right: np.ndarray, times: np.ndarray) -> np.ndarray:
        """``left @ expm(M t) @ right`` for every ``t`` in ``times``."""
        left = np.asarray(left, dtype=float)
        right = np.asarray(right, dtype=float)
        times = np.atleast_1d(np.asarray(times, dtype=float))
        if self.method == "eig":
            coefficients = (left @ self._vectors) * (self._vectors_inv @ right)
            values = np.exp(np.multiply.outer(times, self._eigenvalues)) @ coefficients
            return np.ascontiguousarray(values.real)
        if self.method == "uniformized":
            return self._uniformized.bilinear(left, right, times)
        t, z = self._schur
        left_t = left @ z
        right_t = z.T @ right
        values = np.empty(times.shape)
        for k, time in enumerate(times):
            values[k] = float(left_t @ la.expm(t * time) @ right_t)
        return values


#: Target size (bytes) of the grid-point buffer a single
#: :func:`scipy.sparse.linalg.expm_multiply` interval call is allowed to
#: materialize inside :class:`KrylovKernel`.  Interval mode returns a
#: ``(num_points, n)`` dense array, so an unchunked 2000-point sweep of a
#: 30k-state chain would allocate ~0.5 GB; chunking bounds that at ~64 MB
#: while keeping the per-call overhead (one-norm estimation, parameter
#: selection) amortized over hundreds of grid points.
_KRYLOV_CHUNK_BYTES = 64 << 20

#: Relative tolerance for detecting a uniformly spaced time grid, which is
#: eligible for ``expm_multiply``'s (faster) interval mode.
_UNIFORM_GRID_RTOL = 1e-9


class KrylovKernel:
    """Action-based evaluation of ``left @ expm(M t) @ right`` on time grids.

    Stores only ``M^T`` in CSR form and propagates the single row vector
    ``v(t) = left @ expm(M t)`` forward through the *sorted* grid with
    :func:`scipy.sparse.linalg.expm_multiply`, dotting each propagated
    vector with ``right``.  Nothing dense of size ``n x n`` is ever formed:
    memory is ``O(nnz + n)`` plus a chunk buffer bounded by
    :data:`_KRYLOV_CHUNK_BYTES`, which is what lets truncation boxes far
    past the dense-eig ceiling (8k, 30k states, ...) run on the analytic
    path at all.

    Uniformly spaced grids use ``expm_multiply``'s interval mode (one
    scaling-parameter selection per chunk, shared across all points in the
    chunk); arbitrary grids fall back to point-to-point stepping, which is
    still one *relative* step per point — never a restart from ``t = 0`` —
    so cost scales with ``max(times)``, not with ``sum(times)``.

    Accuracy is the Al-Mohy–Higham truncated-Taylor bound, i.e. near
    machine precision; the dense-vs-krylov equivalence tests lock the two
    backends to 1e-9 on the paper's headline chain.
    """

    method = "krylov"

    def __init__(self, matrix):
        m = matrix.tocsr() if sp.issparse(matrix) else sp.csr_matrix(
            np.asarray(matrix, dtype=float)
        )
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise ValueError(f"matrix must be square, got shape {m.shape}")
        self.matrix = m.astype(float)
        # left @ expm(M t) == (expm(M^T t) @ left^T)^T, and expm_multiply
        # acts on column vectors, so the propagator is M^T.
        self._transpose = self.matrix.T.tocsr()

    @property
    def num_states(self) -> int:
        """Dimension of the matrix."""
        return self.matrix.shape[0]

    def _chunk_points(self) -> int:
        per_point = 8 * self.matrix.shape[0]
        return max(8, _KRYLOV_CHUNK_BYTES // per_point)

    def _step(self, vector: np.ndarray, dt: float) -> np.ndarray:
        """Advance ``vector`` by ``dt`` (one relative expm_multiply hop)."""
        if dt == 0.0:
            return vector
        hop = spla.expm_multiply(
            self._transpose, vector, start=0.0, stop=dt, num=2, endpoint=True
        )
        return np.asarray(hop[-1], dtype=float)

    def bilinear(self, left: np.ndarray, right: np.ndarray, times: np.ndarray) -> np.ndarray:
        """``left @ expm(M t) @ right`` for every ``t`` in ``times``."""
        left = np.asarray(left, dtype=float)
        right = np.asarray(right, dtype=float)
        times = np.atleast_1d(np.asarray(times, dtype=float))
        if np.any(times < 0):
            raise ValueError("times must be non-negative")
        values = np.empty(times.shape)
        if times.size == 0:
            return values
        order = np.argsort(times, kind="stable")
        sorted_times = times[order]
        sorted_values = np.empty(sorted_times.shape)

        diffs = np.diff(sorted_times)
        uniform = diffs.size > 1 and np.allclose(
            diffs,
            diffs[0],
            rtol=_UNIFORM_GRID_RTOL,
            atol=_UNIFORM_GRID_RTOL * max(1.0, float(sorted_times[-1])),
        )

        vector = left  # v(tau); tau starts at 0
        tau = 0.0
        if uniform and diffs[0] > 0.0:
            chunk = self._chunk_points()
            start = 0
            while start < sorted_times.size:
                stop = min(start + chunk, sorted_times.size)
                relative = sorted_times[start:stop] - tau
                if stop - start == 1:
                    vector = self._step(vector, float(relative[0]))
                    sorted_values[start] = float(vector @ right)
                else:
                    block = spla.expm_multiply(
                        self._transpose,
                        vector,
                        start=float(relative[0]),
                        stop=float(relative[-1]),
                        num=stop - start,
                        endpoint=True,
                    )
                    block = np.asarray(block, dtype=float)
                    sorted_values[start:stop] = block @ right
                    vector = block[-1]
                tau = float(sorted_times[stop - 1])
                start = stop
        else:
            for k, time in enumerate(sorted_times):
                vector = self._step(vector, float(time) - tau)
                tau = float(time)
                sorted_values[k] = float(vector @ right)

        values[order] = sorted_values
        return values


class UniformizedKernel:
    """Grid evaluation of ``left @ expm(Q t) @ right`` for a generator ``Q``.

    Shares the power-series coefficients ``c_k = left P^k right`` (with
    ``P = I + Q / rate`` the uniformized DTMC) across the whole grid and
    applies the Poisson weights per point over each point's own effective
    window, so the matvec count is set by the *largest* time requested, not
    by the grid size.  Intended for sparse modulating generators whose dense
    eigendecomposition would not pay off.
    """

    def __init__(self, generator, tol: float = 1e-12):
        self.generator = generator
        self.tol = tol
        diagonal = np.asarray(generator.diagonal(), dtype=float)
        self.rate = float(-min(diagonal.min(), 0.0))
        n = generator.shape[0]
        if self.rate > 0.0:
            q = generator.tocsr() if sp.issparse(generator) else np.asarray(generator, dtype=float)
            if sp.issparse(q):
                self.transition = sp.eye(n, format="csr") + q / self.rate
            else:
                self.transition = np.eye(n) + q / self.rate
        else:
            self.transition = None

    def bilinear(self, left: np.ndarray, right: np.ndarray, times: np.ndarray) -> np.ndarray:
        """``left @ expm(Q t) @ right`` for every ``t`` in ``times``."""
        left = np.asarray(left, dtype=float)
        right = np.asarray(right, dtype=float)
        times = np.atleast_1d(np.asarray(times, dtype=float))
        if np.any(times < 0):
            raise ValueError("times must be non-negative")
        static = float(left @ right)
        if self.rate == 0.0 or times.size == 0:
            return np.full(times.shape, static)
        mean_max = self.rate * float(times.max())
        if mean_max == 0.0:
            return np.full(times.shape, static)
        max_terms = int(
            mean_max
            + _POISSON_TAIL_SIGMAS * np.sqrt(mean_max)
            + _POISSON_TAIL_MARGIN
        )
        coefficients = np.empty(max_terms + 1)
        term = left
        coefficients[0] = static
        for k in range(1, max_terms + 1):
            term = term @ self.transition
            coefficients[k] = float(term @ right)
        values = np.empty(times.shape)
        for i, time in enumerate(times):
            mean = self.rate * time
            if mean == 0.0:
                values[i] = static
                continue
            half_window = _POISSON_TAIL_SIGMAS * np.sqrt(mean) + _POISSON_TAIL_MARGIN
            lo = max(0, int(mean - half_window))
            hi = min(max_terms, int(mean + half_window))
            ks = np.arange(lo, hi + 1)
            log_weights = -mean + ks * np.log(mean) - gammaln(ks + 1.0)
            weights = np.exp(log_weights)
            values[i] = float(weights @ coefficients[lo : hi + 1])
        return values
