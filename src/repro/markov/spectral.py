"""Spectral analytic kernels: grid evaluation of ``left @ expm(M t) @ right``.

Every exact second-order quantity of an MMPP — interarrival density
``a(t) = phi exp(D0 t) D1 1``, interarrival distribution ``A(t)``, the rate
autocovariance ``c(u) = w exp(Q u) r - lambda-bar^2`` and the IDC quadrature
built on it — is a *bilinear form in a matrix exponential* evaluated over a
dense time grid.  The legacy code paid one ``scipy.linalg.expm`` (or one
uniformized power series) per grid point; the MMPP-kernel literature
(Asanjarani & Nazarathy; Asanjarani, Hautphenne & Nazarathy) computes these
curves from a single factorization instead.  This module packages that idea
as two reusable kernels:

:class:`SpectralKernel`
    One-shot eigendecomposition ``M = V diag(w) V^{-1}``.  The bilinear form
    collapses to ``sum_j (left V)_j (V^{-1} right)_j exp(w_j t)`` — one
    ``len(grid) x n`` ``exp`` and one matrix–vector product for the *whole*
    grid.  Defective or ill-conditioned matrices (eigenvector reconstruction
    residual above ``max_residual``) automatically fall back to a real Schur
    form: ``expm`` of the quasi-triangular factor per point, which is slower
    but unconditionally stable.  The chosen path is exposed as ``method``.

:class:`UniformizedKernel`
    For (sparse) *generator* matrices: the uniformized power series with the
    Poisson weights applied per grid point but the vector recurrence
    ``c_k = left P^k right`` shared across the grid — ``max(rate * t)``
    matvecs total instead of ``rate * t`` matvecs *per grid point*.  Exactly
    the same series as :meth:`repro.markov.ctmc.CTMC.transient_distribution`
    truncated at the same tail mass, so results agree to the series
    tolerance.

Both kernels are cheap enough to build eagerly, but consumers cache them
(:class:`repro.markov.mmpp.MMPP` stores one per matrix, and the mapping
cache in :mod:`repro.core.mmpp_mapping` shares the MMPP instances), so each
truncated HAP chain is factorized at most once per process.
"""

from __future__ import annotations

import warnings

import numpy as np
import scipy.linalg as la
import scipy.sparse as sp
from scipy.special import gammaln

__all__ = ["SpectralKernel", "UniformizedKernel"]

#: Relative eigenvector-reconstruction residual above which the
#: eigendecomposition is considered untrustworthy (defective/ill-conditioned
#: matrix) and the Schur fallback takes over.
_DEFAULT_MAX_RESIDUAL = 1e-9

#: Poisson tail control for :class:`UniformizedKernel` — matches the margin
#: used by the legacy per-point uniformization in :mod:`repro.markov.ctmc`.
_POISSON_TAIL_SIGMAS = 10.0
_POISSON_TAIL_MARGIN = 50.0


def _as_dense(matrix) -> np.ndarray:
    if sp.issparse(matrix):
        return np.asarray(matrix.todense(), dtype=float)
    return np.asarray(matrix, dtype=float)


class SpectralKernel:
    """Evaluate ``left @ expm(M t) @ right`` over time grids from one factorization.

    Parameters
    ----------
    matrix:
        Square real matrix ``M`` (dense or sparse; densified internally).
    max_residual:
        Relative tolerance on ``|V diag(w) V^{-1} - M|`` deciding whether
        the eigendecomposition is accurate enough; above it the kernel
        switches to the Schur fallback.

    Attributes
    ----------
    method:
        ``"eig"`` when the diagonalization is in use, ``"schur"`` for the
        fallback path.
    """

    def __init__(self, matrix, max_residual: float = _DEFAULT_MAX_RESIDUAL):
        m = _as_dense(matrix)
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise ValueError(f"matrix must be square, got shape {m.shape}")
        self.matrix = m
        self._eigenvalues: np.ndarray | None = None
        self._vectors: np.ndarray | None = None
        self._vectors_inv: np.ndarray | None = None
        self._schur: tuple[np.ndarray, np.ndarray] | None = None
        scale = max(1.0, float(np.abs(m).max()))
        try:
            # Near-defective matrices make inverting V ill-conditioned; the
            # residual check below decides, so the warning is just noise.
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", la.LinAlgWarning)
                w, v = la.eig(m)
                v_inv = la.inv(v)
            residual = float(
                np.abs((v * w[None, :]) @ v_inv - m).max()
            )
        except la.LinAlgError:
            residual = np.inf
        if residual <= max_residual * scale:
            self.method = "eig"
            self._eigenvalues = w
            self._vectors = v
            self._vectors_inv = v_inv
        else:
            self.method = "schur"
            t, z = la.schur(m, output="real")
            self._schur = (t, z)

    @property
    def num_states(self) -> int:
        """Dimension of the matrix."""
        return self.matrix.shape[0]

    def bilinear(self, left: np.ndarray, right: np.ndarray, times: np.ndarray) -> np.ndarray:
        """``left @ expm(M t) @ right`` for every ``t`` in ``times``."""
        left = np.asarray(left, dtype=float)
        right = np.asarray(right, dtype=float)
        times = np.atleast_1d(np.asarray(times, dtype=float))
        if self.method == "eig":
            coefficients = (left @ self._vectors) * (self._vectors_inv @ right)
            values = np.exp(np.multiply.outer(times, self._eigenvalues)) @ coefficients
            return np.ascontiguousarray(values.real)
        t, z = self._schur
        left_t = left @ z
        right_t = z.T @ right
        values = np.empty(times.shape)
        for k, time in enumerate(times):
            values[k] = float(left_t @ la.expm(t * time) @ right_t)
        return values


class UniformizedKernel:
    """Grid evaluation of ``left @ expm(Q t) @ right`` for a generator ``Q``.

    Shares the power-series coefficients ``c_k = left P^k right`` (with
    ``P = I + Q / rate`` the uniformized DTMC) across the whole grid and
    applies the Poisson weights per point over each point's own effective
    window, so the matvec count is set by the *largest* time requested, not
    by the grid size.  Intended for sparse modulating generators whose dense
    eigendecomposition would not pay off.
    """

    def __init__(self, generator, tol: float = 1e-12):
        self.generator = generator
        self.tol = tol
        diagonal = np.asarray(generator.diagonal(), dtype=float)
        self.rate = float(-min(diagonal.min(), 0.0))
        n = generator.shape[0]
        if self.rate > 0.0:
            q = generator.tocsr() if sp.issparse(generator) else np.asarray(generator, dtype=float)
            if sp.issparse(q):
                self.transition = sp.eye(n, format="csr") + q / self.rate
            else:
                self.transition = np.eye(n) + q / self.rate
        else:
            self.transition = None

    def bilinear(self, left: np.ndarray, right: np.ndarray, times: np.ndarray) -> np.ndarray:
        """``left @ expm(Q t) @ right`` for every ``t`` in ``times``."""
        left = np.asarray(left, dtype=float)
        right = np.asarray(right, dtype=float)
        times = np.atleast_1d(np.asarray(times, dtype=float))
        if np.any(times < 0):
            raise ValueError("times must be non-negative")
        static = float(left @ right)
        if self.rate == 0.0 or times.size == 0:
            return np.full(times.shape, static)
        mean_max = self.rate * float(times.max())
        if mean_max == 0.0:
            return np.full(times.shape, static)
        max_terms = int(
            mean_max
            + _POISSON_TAIL_SIGMAS * np.sqrt(mean_max)
            + _POISSON_TAIL_MARGIN
        )
        coefficients = np.empty(max_terms + 1)
        term = left
        coefficients[0] = static
        for k in range(1, max_terms + 1):
            term = term @ self.transition
            coefficients[k] = float(term @ right)
        values = np.empty(times.shape)
        for i, time in enumerate(times):
            mean = self.rate * time
            if mean == 0.0:
                values[i] = static
                continue
            half_window = _POISSON_TAIL_SIGMAS * np.sqrt(mean) + _POISSON_TAIL_MARGIN
            lo = max(0, int(mean - half_window))
            hi = min(max_terms, int(mean + half_window))
            ks = np.arange(lo, hi + 1)
            log_weights = -mean + ks * np.log(mean) - gammaln(ks + 1.0)
            weights = np.exp(log_weights)
            values[i] = float(weights @ coefficients[lo : hi + 1])
        return values
