"""Truncated multi-dimensional state spaces and sparse generator assembly.

HAP's modulating chain lives on ``(x, y_1, ..., y_l)`` — the numbers of user
and per-type application instances — which is infinite in every coordinate.
All algorithmic solutions truncate it.  The paper (Section 3.2.1) justifies
simply zeroing transitions into out-of-bound states: because the chain is
continuous-time there are no self-loops, so dropping an out-of-bound
transition just removes that rate from the diagonal balance.

:class:`StateSpace` enumerates the box ``0..bounds[0] x ... x 0..bounds[d-1]``
with a dense index, and :func:`build_generator` assembles a sparse generator
from a per-state transition enumeration function.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator

import numpy as np
import scipy.sparse as sp

__all__ = ["StateSpace", "TrimmedStateSpace", "build_generator"]

#: A transition function maps a state tuple to ``(successor, rate)`` pairs.
TransitionFn = Callable[[tuple[int, ...]], Iterable[tuple[tuple[int, ...], float]]]


class StateSpace:
    """A box-truncated integer lattice with mixed-radix indexing.

    Parameters
    ----------
    bounds:
        Inclusive upper bound per coordinate; the space is the product of
        ``range(bounds[k] + 1)``.

    Examples
    --------
    >>> space = StateSpace((2, 1))
    >>> space.size
    6
    >>> space.index((2, 1))
    5
    >>> space.state(5)
    (2, 1)
    """

    def __init__(self, bounds: tuple[int, ...] | list[int]):
        bounds = tuple(int(b) for b in bounds)
        if not bounds:
            raise ValueError("need at least one dimension")
        if any(b < 0 for b in bounds):
            raise ValueError("bounds must be non-negative")
        self.bounds = bounds
        self._radices = np.array(bounds, dtype=np.int64) + 1
        # Mixed-radix place values, last coordinate varying fastest.
        self._places = np.concatenate(
            [np.cumprod(self._radices[::-1])[-2::-1], [1]]
        ).astype(np.int64)
        self.size = int(np.prod(self._radices))

    @property
    def ndim(self) -> int:
        """Number of coordinates."""
        return len(self.bounds)

    def contains(self, state: tuple[int, ...]) -> bool:
        """True when every coordinate of ``state`` lies inside the box."""
        return len(state) == self.ndim and all(
            0 <= coord <= bound for coord, bound in zip(state, self.bounds)
        )

    def index(self, state: tuple[int, ...]) -> int:
        """Dense index of ``state`` (mixed-radix encoding)."""
        if not self.contains(state):
            raise KeyError(f"state {state} outside bounds {self.bounds}")
        return int(np.dot(self._places, state))

    def state(self, index: int) -> tuple[int, ...]:
        """Inverse of :meth:`index`."""
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} outside 0..{self.size - 1}")
        coords = []
        remainder = index
        for place in self._places:
            coords.append(int(remainder // place))
            remainder %= place
        return tuple(coords)

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        for index in range(self.size):
            yield self.state(index)

    def __len__(self) -> int:
        return self.size

    def coordinate_arrays(self) -> list[np.ndarray]:
        """Per-coordinate value arrays aligned with the dense index.

        ``coordinate_arrays()[k][i]`` is coordinate ``k`` of ``state(i)``;
        useful for vectorizing per-state rate functions.
        """
        grids = np.meshgrid(
            *[np.arange(b + 1) for b in self.bounds], indexing="ij"
        )
        return [grid.ravel() for grid in grids]


class TrimmedStateSpace:
    """A mass-selected subset of a box :class:`StateSpace`, densely reindexed.

    The paper truncates to a rectangle, but the stationary mass of the
    modulating chain lives on a diagonal band of it — corner states carry
    probabilities far below floating-point noise yet cost the same cubic
    work in every matrix solve.  ``TrimmedStateSpace`` keeps an explicit
    subset of the parent box (chosen by stationary mass in
    :mod:`repro.core.mmpp_mapping`) while preserving the :class:`StateSpace`
    interface (``bounds``, ``size``, ``index``/``state``, iteration,
    ``coordinate_arrays``), so every consumer — boundary-mass checks, rate
    vectors, QBD phase bookkeeping — works unchanged on the smaller space.

    Parameters
    ----------
    parent:
        The enclosing box.
    keep:
        Sorted dense parent indices of the retained states.
    """

    def __init__(self, parent: StateSpace, keep: np.ndarray):
        keep = np.asarray(keep, dtype=np.int64)
        if keep.ndim != 1 or keep.size == 0:
            raise ValueError("keep must be a non-empty 1-D index array")
        if np.any(keep[1:] <= keep[:-1]):
            raise ValueError("keep indices must be strictly increasing")
        if keep[0] < 0 or keep[-1] >= parent.size:
            raise ValueError("keep indices outside the parent space")
        self.parent = parent
        self.bounds = parent.bounds
        self.size = int(keep.size)
        self._keep = keep
        self._coords = [c[keep] for c in parent.coordinate_arrays()]
        self._parent_to_self = {int(p): i for i, p in enumerate(keep)}

    @property
    def ndim(self) -> int:
        """Number of coordinates."""
        return self.parent.ndim

    def contains(self, state: tuple[int, ...]) -> bool:
        """True when ``state`` is inside the box *and* was retained."""
        return (
            self.parent.contains(state)
            and self.parent.index(state) in self._parent_to_self
        )

    def index(self, state: tuple[int, ...]) -> int:
        """Dense index of ``state`` within the trimmed space."""
        if not self.parent.contains(state):
            raise KeyError(f"state {state} outside bounds {self.bounds}")
        parent_index = self.parent.index(state)
        try:
            return self._parent_to_self[parent_index]
        except KeyError:
            raise KeyError(f"state {state} was trimmed away") from None

    def state(self, index: int) -> tuple[int, ...]:
        """Inverse of :meth:`index`."""
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} outside 0..{self.size - 1}")
        return self.parent.state(int(self._keep[index]))

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        for index in range(self.size):
            yield self.state(index)

    def __len__(self) -> int:
        return self.size

    def coordinate_arrays(self) -> list[np.ndarray]:
        """Per-coordinate value arrays aligned with the trimmed dense index."""
        return [c.copy() for c in self._coords]


def build_generator(
    space: StateSpace,
    transitions: TransitionFn,
    clip_out_of_bounds: bool = True,
) -> sp.csr_matrix:
    """Assemble the sparse generator for ``space`` from a transition function.

    Parameters
    ----------
    space:
        The truncated state space.
    transitions:
        Called once per state; yields ``(successor_state, rate)`` pairs.
        Rates must be non-negative; zero rates are skipped.
    clip_out_of_bounds:
        When true (the paper's convention) transitions leaving the box are
        dropped, which also removes their rate from the diagonal — i.e. the
        boundary reflects.  When false such transitions raise ``KeyError``.

    Returns
    -------
    A CSR float64 generator matrix with zero row sums and sorted indices.
    This matrix is the head of the sparse pipeline: it flows untouched
    through :mod:`repro.core.mmpp_mapping` into :class:`repro.markov.mmpp.MMPP`
    and :class:`repro.markov.ctmc.CTMC`, which keep it CSR on every analytic
    path (stationary solves, kernels, QBD block assembly) — no consumer
    densifies it.
    """
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for source_index, state in enumerate(space):
        outflow = 0.0
        for successor, rate in transitions(state):
            if rate < 0:
                raise ValueError(f"negative rate {rate} from state {state}")
            if rate == 0.0:
                continue
            if not space.contains(successor):
                if clip_out_of_bounds:
                    continue
                raise KeyError(
                    f"transition {state} -> {successor} leaves the state space"
                )
            rows.append(source_index)
            cols.append(space.index(successor))
            vals.append(rate)
            outflow += rate
        if outflow > 0.0:
            rows.append(source_index)
            cols.append(source_index)
            vals.append(-outflow)
    generator = sp.coo_matrix(
        (np.asarray(vals, dtype=float), (rows, cols)),
        shape=(space.size, space.size),
    )
    csr = generator.tocsr()
    csr.sort_indices()
    return csr
