"""Continuous-time Markov chain and MMPP substrate.

This package provides the generic stochastic-process machinery that the HAP
model is built on:

* :mod:`repro.markov.ctmc` — generator-matrix CTMCs, stationary solves,
  uniformization, and path simulation.
* :mod:`repro.markov.birth_death` — birth–death chains and the classical
  special cases (M/M/1, M/M/∞, Erlang/truncated-Poisson).
* :mod:`repro.markov.mmpp` — Markov-modulated Poisson processes given as
  (Q, rates) or (D0, D1), with moments, IDC, superposition and 2-state
  moment-matched fitting (the "conventional MMPP" baseline of the paper).
* :mod:`repro.markov.matrix_geometric` — Neuts' matrix-geometric solution of
  the MMPP/M/1 quasi-birth-death queue.
* :mod:`repro.markov.truncation` — enumeration and sparse-generator assembly
  for truncated multi-dimensional state spaces.
"""

from repro.markov.birth_death import (
    BirthDeathChain,
    erlang_blocking_probability,
    mm1_queue_length_distribution,
    mminf_stationary,
    truncated_poisson_pmf,
)
from repro.markov.ctmc import CTMC
from repro.markov.matrix_geometric import QBDSolution, solve_mmpp_m1
from repro.markov.mmpp import MMPP, fit_mmpp2_to_moments
from repro.markov.truncation import StateSpace, build_generator
from repro.markov.uniformization import UNIFORMIZATION_MARGIN

__all__ = [
    "CTMC",
    "UNIFORMIZATION_MARGIN",
    "BirthDeathChain",
    "MMPP",
    "QBDSolution",
    "StateSpace",
    "build_generator",
    "erlang_blocking_probability",
    "fit_mmpp2_to_moments",
    "mm1_queue_length_distribution",
    "mminf_stationary",
    "solve_mmpp_m1",
    "truncated_poisson_pmf",
]
