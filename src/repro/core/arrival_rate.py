"""Closed-form first moments of a HAP (Equations 4–5 and Figure 8).

Equation 4 gives the long-run message rate

    lambda-bar = (lambda / mu) * sum_i (lambda_i / mu_i) * sum_j lambda_ij

by modelling the user and application levels as M/M/∞ stations.  Equation 5
is its symmetric special case ``(lambda/mu)(lambda'/mu') l m lambda''``, from
which the paper observes that *merging or splitting branches preserves
lambda-bar as long as the number of leaves is constant* (Figure 8) — even
though burstiness differs.  :func:`equivalent_rate_family` constructs such
families for the burstiness study.
"""

from __future__ import annotations

from repro.core.params import HAPParameters

__all__ = [
    "equivalent_rate_family",
    "mean_applications",
    "mean_message_rate",
    "mean_users",
    "symmetric_mean_message_rate",
]


def mean_message_rate(params: HAPParameters) -> float:
    """Equation 4 — long-run message arrival rate ``lambda-bar``."""
    return params.mean_message_rate


def mean_users(params: HAPParameters) -> float:
    """Mean user population ``x-bar = lambda / mu``."""
    return params.mean_users


def mean_applications(params: HAPParameters) -> float:
    """Mean application population ``y-bar``."""
    return params.mean_applications


def symmetric_mean_message_rate(
    user_arrival_rate: float,
    user_departure_rate: float,
    app_arrival_rate: float,
    app_departure_rate: float,
    message_arrival_rate: float,
    num_app_types: int,
    num_message_types: int,
) -> float:
    """Equation 5 — ``(lambda/mu)(lambda'/mu') l m lambda''``."""
    return (
        (user_arrival_rate / user_departure_rate)
        * (app_arrival_rate / app_departure_rate)
        * num_app_types
        * num_message_types
        * message_arrival_rate
    )


def equivalent_rate_family(
    base: HAPParameters, leaf_counts: list[tuple[int, int]]
) -> list[HAPParameters]:
    """Build symmetric HAPs with identical ``lambda-bar`` but different shape.

    Parameters
    ----------
    base:
        A *symmetric* HAP whose per-leaf rates are reused.
    leaf_counts:
        List of ``(l, m)`` pairs; every pair must have the same product
        ``l * m`` (same number of leaves), which by Equation 5 pins
        ``lambda-bar``.

    Returns
    -------
    One :class:`HAPParameters` per ``(l, m)`` pair, named ``"l=..,m=.."``.
    Figure 8's intuition — fewer applications each carrying more message
    types is burstier — is checked against these in the benchmarks.
    """
    if not base.is_symmetric:
        raise ValueError("equivalent_rate_family needs a symmetric base HAP")
    products = {l * m for l, m in leaf_counts}
    if len(products) != 1:
        raise ValueError(
            f"all (l, m) pairs must share the same leaf count, got {leaf_counts}"
        )
    app = base.applications[0]
    msg = app.messages[0]
    return [
        HAPParameters.symmetric(
            user_arrival_rate=base.user_arrival_rate,
            user_departure_rate=base.user_departure_rate,
            app_arrival_rate=app.arrival_rate,
            app_departure_rate=app.departure_rate,
            message_arrival_rate=msg.arrival_rate,
            message_service_rate=msg.service_rate,
            num_app_types=l,
            num_message_types=m,
            name=f"l={l},m={m}",
        )
        for l, m in leaf_counts
    ]
