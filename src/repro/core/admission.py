"""Bounded HAPs — the paper's admission control study (Figure 20).

Section 5 bounds the numbers of concurrent users and applications (12 and 60
in the paper, against unbounded means 5.5 and 27.5) and finds that the bound
reduces both ``lambda-bar`` *and* burstiness, more so at higher load: cutting
the top of the population distribution cuts exactly the states that generate
the long bursts.

With bounds, the M/M/∞ levels become finite birth–death stations whose
stationary distributions are *truncated Poissons* (the loss-station analogue
of the Erlang-B result), so the Solution-2 conditioning survives intact and
the interarrival distribution becomes a finite hyper-exponential mixture:

    Abar(t) = (1 / lambda-bar_b) * sum_x P_trunc(x)
              * sum_y y * beta * P_trunc(y | x) * exp(-y beta t)

:func:`solve_bounded_solution2` implements that for symmetric HAPs;
:func:`bounded_modulating_mmpp` builds the *exact* bounded modulating chain
for use with Solutions 0/1 when the separation assumption is in doubt.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mmpp_mapping import MappedMMPP, symmetric_hap_to_mmpp
from repro.core.params import HAPParameters
from repro.markov.birth_death import truncated_poisson_pmf
from repro.queueing.gm1 import GM1Solution, solve_gm1

__all__ = [
    "BoundedSolution2Result",
    "bounded_mean_message_rate",
    "bounded_modulating_mmpp",
    "solve_bounded_solution2",
]


def _require_symmetric(params: HAPParameters) -> None:
    if not params.is_symmetric:
        raise ValueError(
            "bounded Solution 2 uses the collapsed (x, y) chain and "
            "therefore needs a symmetric HAP"
        )


def _bounded_mixture(
    params: HAPParameters, max_users: int, max_apps: int
) -> tuple[np.ndarray, np.ndarray, float]:
    """(weights, rates, lambda-bar) of the bounded Palm mixture."""
    _require_symmetric(params)
    if max_users < 1 or max_apps < 1:
        raise ValueError("bounds must be at least 1")
    app = params.applications[0]
    beta = app.total_message_rate  # message rate per live application
    c = params.num_app_types * app.offered_instances  # offered apps per user
    user_pmf = truncated_poisson_pmf(params.mean_users, max_users)
    y_values = np.arange(max_apps + 1, dtype=float)
    state_rates = y_values * beta
    weighted = np.zeros(max_apps + 1)
    for x, p_x in enumerate(user_pmf):
        y_pmf = truncated_poisson_pmf(x * c, max_apps)
        weighted += p_x * y_pmf * state_rates
    mean_rate = float(weighted.sum())
    if mean_rate <= 0:
        raise ArithmeticError("bounded HAP generates no traffic")
    active = state_rates > 0
    weights = weighted[active] / mean_rate
    return weights, state_rates[active], mean_rate


def bounded_mean_message_rate(
    params: HAPParameters, max_users: int, max_apps: int
) -> float:
    """``lambda-bar`` of the bounded HAP (always below the unbounded value)."""
    _, _, mean_rate = _bounded_mixture(params, max_users, max_apps)
    return mean_rate


@dataclass(frozen=True)
class BoundedSolution2Result:
    """Solution-2 output for a bounded HAP.

    Attributes
    ----------
    max_users, max_apps:
        The admission-control limits in force.
    mean_rate:
        Bounded ``lambda-bar``.
    gm1:
        The underlying G/M/1 solution.
    """

    params: HAPParameters
    service_rate: float
    max_users: int
    max_apps: int
    mean_rate: float
    gm1: GM1Solution

    @property
    def sigma(self) -> float:
        """Probability an arrival finds the server busy."""
        return self.gm1.sigma

    @property
    def mean_delay(self) -> float:
        """Mean message delay."""
        return self.gm1.mean_delay

    @property
    def utilization(self) -> float:
        """Offered load of the bounded system."""
        return self.mean_rate / self.service_rate


def solve_bounded_solution2(
    params: HAPParameters,
    max_users: int,
    max_apps: int,
    service_rate: float | None = None,
    method: str = "brent",
) -> BoundedSolution2Result:
    """Solution 2 with user/application admission limits (Figure 20).

    Parameters
    ----------
    params:
        A symmetric HAP.
    max_users, max_apps:
        Hard limits on concurrent users and total applications (arrivals
        beyond the limit are blocked, as in an Erlang loss station).
    service_rate:
        ``mu''``; defaults to the common message service rate.
    method:
        σ-root method, ``"brent"`` or ``"paper"``.
    """
    if service_rate is None:
        service_rate = params.common_service_rate()
    weights, rates, mean_rate = _bounded_mixture(params, max_users, max_apps)

    def laplace(s: float) -> float:
        return float(np.sum(weights * rates / (rates + s)))

    gm1 = solve_gm1(laplace, service_rate, mean_rate, method=method)
    return BoundedSolution2Result(
        params=params,
        service_rate=service_rate,
        max_users=max_users,
        max_apps=max_apps,
        mean_rate=mean_rate,
        gm1=gm1,
    )


def bounded_modulating_mmpp(
    params: HAPParameters, max_users: int, max_apps: int
) -> MappedMMPP:
    """The *exact* bounded modulating chain (no separation assumption).

    This is simply the collapsed Figure-7 chain with the truncation bounds
    set to the admission limits: the box boundary now models intentional
    blocking rather than numerical truncation.  Feed it to
    :func:`repro.markov.matrix_geometric.solve_mmpp_m1` for an exact bounded
    HAP/M/1 answer.
    """
    _require_symmetric(params)
    return symmetric_hap_to_mmpp(params, x_max=max_users, y_max=max_apps)
