"""ON–OFF traffic models as 2-level HAPs (Section 2's observation).

The paper remarks that the classical on–off call/burst models
[Hui 88; Schoute 88; Kuehn 89] are 2-level HAPs: "a burst can arrive only
when the call it belongs to is active; the ON–OFF model is a 2-level HAP
with only one message type."

Two standard flavours are implemented:

* :class:`TwoLevelHAP` — *sessions* (the upper level) arrive Poisson and
  live exponentially; a live session emits messages at a fixed rate.  Its
  modulating chain is M/M/∞, so every Solution-2 formula specializes in
  closed form (these are the one-level analogues of Equations 4–11 and are
  verified against the 3-level formulas in the tests).
* :class:`InterruptedPoisson` — a single source alternating ON/OFF (an IPP,
  i.e. a 2-state MMPP); ``n_superposed`` builds the binomial superposition
  used in classical voice-multiplexing studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.markov.mmpp import MMPP
from repro.markov.truncation import StateSpace
from repro.core.mmpp_mapping import MappedMMPP

__all__ = ["InterruptedPoisson", "TwoLevelHAP"]


@dataclass(frozen=True)
class TwoLevelHAP:
    """Sessions arrive Poisson; live sessions emit messages.

    Parameters
    ----------
    session_arrival_rate:
        Poisson arrival rate of sessions (calls).
    session_departure_rate:
        Rate at which a live session ends.
    message_rate:
        Message (burst) emission rate of one live session.
    """

    session_arrival_rate: float
    session_departure_rate: float
    message_rate: float

    def __post_init__(self) -> None:
        if min(
            self.session_arrival_rate,
            self.session_departure_rate,
            self.message_rate,
        ) <= 0:
            raise ValueError("all rates must be positive")

    @property
    def mean_sessions(self) -> float:
        """``a = lambda_s / mu_s`` (M/M/∞ occupancy)."""
        return self.session_arrival_rate / self.session_departure_rate

    @property
    def mean_message_rate(self) -> float:
        """``lambda-bar = a * Lambda`` — the 2-level Equation 4."""
        return self.mean_sessions * self.message_rate

    # ------------------------------------------------------------------
    # Closed-form interarrival distribution (2-level Solution 2)
    # ------------------------------------------------------------------
    def interarrival_ccdf(self, t: np.ndarray) -> np.ndarray:
        """``Abar(t) = exp(-Lambda t) exp(-a (1 - exp(-Lambda t)))``.

        One conditioning level instead of two: the session count is Poisson
        ``a`` and the Palm weighting telescopes exactly as in the 3-level
        derivation.
        """
        t = np.atleast_1d(np.asarray(t, dtype=float))
        decay = np.exp(-self.message_rate * t)
        return decay * np.exp(-self.mean_sessions * (1.0 - decay))

    def interarrival_density(self, t: np.ndarray) -> np.ndarray:
        """``a(t) = -Abar'(t)`` in closed form."""
        t = np.atleast_1d(np.asarray(t, dtype=float))
        decay = np.exp(-self.message_rate * t)
        prefactor = self.message_rate * decay * (1.0 + self.mean_sessions * decay)
        return prefactor * np.exp(-self.mean_sessions * (1.0 - decay))

    def density_at_zero(self) -> float:
        """``a(0) = Lambda (1 + a)`` — exceeds ``lambda-bar`` iff ``a < 1 + a``."""
        return self.message_rate * (1.0 + self.mean_sessions)

    def to_mmpp(self, max_sessions: int | None = None) -> MappedMMPP:
        """Truncated M/M/∞-modulated MMPP representation.

        The modulating chain is a birth–death chain on the session count.
        """
        if max_sessions is None:
            mean = self.mean_sessions
            max_sessions = max(2, int(np.ceil(mean + 8.0 * np.sqrt(max(mean, 1.0)))))
        from repro.markov.truncation import build_generator

        space = StateSpace((max_sessions,))

        def transitions(state):
            (n,) = state
            yield (n + 1,), self.session_arrival_rate
            if n > 0:
                yield (n - 1,), n * self.session_departure_rate

        generator = build_generator(space, transitions)
        rates = np.arange(max_sessions + 1, dtype=float) * self.message_rate
        mmpp = MMPP(generator, rates)
        pi = mmpp.stationary_distribution()
        return MappedMMPP(
            mmpp=mmpp, space=space, precomputed_boundary_mass=float(pi[-1])
        )


@dataclass(frozen=True)
class InterruptedPoisson:
    """A single ON–OFF (IPP) source.

    Parameters
    ----------
    on_rate:
        Rate of OFF -> ON transitions.
    off_rate:
        Rate of ON -> OFF transitions.
    peak_rate:
        Arrival rate while ON.
    """

    on_rate: float
    off_rate: float
    peak_rate: float

    def __post_init__(self) -> None:
        if min(self.on_rate, self.off_rate, self.peak_rate) <= 0:
            raise ValueError("all rates must be positive")

    @property
    def on_fraction(self) -> float:
        """Stationary probability of being ON."""
        return self.on_rate / (self.on_rate + self.off_rate)

    @property
    def mean_rate(self) -> float:
        """``peak_rate * on_fraction``."""
        return self.peak_rate * self.on_fraction

    def to_mmpp(self) -> MMPP:
        """The exact 2-state MMPP (state 0 = OFF, 1 = ON)."""
        generator = np.array(
            [[-self.on_rate, self.on_rate], [self.off_rate, -self.off_rate]]
        )
        return MMPP(generator, np.array([0.0, self.peak_rate]))

    def n_superposed(self, n: int) -> MMPP:
        """Superposition of ``n`` independent copies (binomial modulating chain).

        State ``k`` = number of sources ON; rate ``k * peak_rate``.  Much
        smaller than the 2^n Kronecker product and exactly equivalent by
        exchangeability.
        """
        if n < 1:
            raise ValueError("need at least one source")
        from repro.markov.truncation import build_generator

        space = StateSpace((n,))

        def transitions(state):
            (k,) = state
            if k < n:
                yield (k + 1,), (n - k) * self.on_rate
            if k > 0:
                yield (k - 1,), k * self.off_rate

        generator = build_generator(space, transitions)
        rates = np.arange(n + 1, dtype=float) * self.peak_rate
        return MMPP(generator, rates)
