"""Closed-form HAP message interarrival distribution (Equations 7–11).

Solution 2 of the paper conditions on the user count ``x`` (Poisson with
mean ``u = lambda / mu``) and then on the per-type application counts
(Poisson with mean ``x * lambda_i / mu_i`` given ``x``), both justified by
M/M/∞ modelling under time-scale separation.  Weighting states by their
message rate (the Palm / "seen by an arrival" weighting of Equation 3) and
summing the resulting Poisson mixtures in closed form yields, with

    u        = lambda / mu
    a_i      = lambda_i / mu_i
    Lambda_i = sum_j lambda_ij
    S(t)     = sum_i a_i (1 - exp(-Lambda_i t))
    F(t)     = sum_i a_i Lambda_i exp(-Lambda_i t)        (= S'(t))
    N(t)     = sum_i a_i Lambda_i^2 exp(-Lambda_i t)      (paper's Eq 11)

the complementary CDF of the interarrival time

    Abar(t) = (F(t) / F(0)) * L(t) * exp(-u (1 - L(t))),   L(t) = exp(-S(t))

and, differentiating (the paper's Equation 10 with its L/M/N factors;
``M`` here is ``F``),

    a(t) = (L(t) * exp(-u(1 - L(t))) / F(0))
           * (N(t) + F(t)^2 + u * L(t) * F(t)^2).

Useful exact identities (all verified by the test suite):

* ``Abar(0) = 1`` and ``Abar -> 0`` as ``t -> inf``;
* ``∫ a = 1`` and ``∫ t a(t) dt = (1 - P(R=0)) / lambda-bar`` — zero-rate
  states generate no arrivals, so they are absent from the Palm mixture;
* ``a(0) = N(0)/F(0) + (1 + u) F(0)`` — larger than ``lambda-bar``
  whenever the hierarchy is non-degenerate, the analytic face of Figure 9's
  "HAP has more short interarrivals than Poisson".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from repro.core.params import HAPParameters

__all__ = [
    "InterarrivalDistribution",
    "density_intersections",
    "poisson_interarrival_density",
]


@dataclass(frozen=True)
class InterarrivalDistribution:
    """Closed-form HAP interarrival distribution for a parameter set.

    Construct via ``InterarrivalDistribution(params)``; all methods accept
    scalars or arrays and are vectorized.
    """

    params: HAPParameters

    # ------------------------------------------------------------------
    # Ingredient functions
    # ------------------------------------------------------------------
    @property
    def _u(self) -> float:
        return self.params.mean_users

    def _per_type(self) -> tuple[np.ndarray, np.ndarray]:
        """Vectors ``(a_i, Lambda_i)`` over application types."""
        apps = self.params.applications
        a = np.array([app.offered_instances for app in apps])
        big_lambda = np.array([app.total_message_rate for app in apps])
        return a, big_lambda

    def s_function(self, t: np.ndarray) -> np.ndarray:
        """``S(t) = sum_i a_i (1 - exp(-Lambda_i t))``."""
        a, lam = self._per_type()
        t = np.atleast_1d(np.asarray(t, dtype=float))
        return (a * (1.0 - np.exp(-np.outer(t, lam)))).sum(axis=1)

    def f_function(self, t: np.ndarray) -> np.ndarray:
        """``F(t) = sum_i a_i Lambda_i exp(-Lambda_i t)`` (paper's M)."""
        a, lam = self._per_type()
        t = np.atleast_1d(np.asarray(t, dtype=float))
        return (a * lam * np.exp(-np.outer(t, lam))).sum(axis=1)

    def n_function(self, t: np.ndarray) -> np.ndarray:
        """``N(t) = sum_i a_i Lambda_i^2 exp(-Lambda_i t)`` (Equation 11)."""
        a, lam = self._per_type()
        t = np.atleast_1d(np.asarray(t, dtype=float))
        return (a * lam**2 * np.exp(-np.outer(t, lam))).sum(axis=1)

    # ------------------------------------------------------------------
    # Distribution functions
    # ------------------------------------------------------------------
    def ccdf(self, t: np.ndarray) -> np.ndarray:
        """Complementary CDF ``Abar(t) = P(T > t)``."""
        t = np.atleast_1d(np.asarray(t, dtype=float))
        ell = np.exp(-self.s_function(t))
        f0 = self.f_function(np.zeros(1))[0]
        return (
            (self.f_function(t) / f0)
            * ell
            * np.exp(-self._u * (1.0 - ell))
        )

    def cdf(self, t: np.ndarray) -> np.ndarray:
        """CDF ``A(t)`` (the paper's Equation 7 family)."""
        return 1.0 - self.ccdf(t)

    def density(self, t: np.ndarray) -> np.ndarray:
        """Density ``a(t)`` (Equation 10)."""
        t = np.atleast_1d(np.asarray(t, dtype=float))
        ell = np.exp(-self.s_function(t))
        f = self.f_function(t)
        n = self.n_function(t)
        f0 = self.f_function(np.zeros(1))[0]
        prefactor = ell * np.exp(-self._u * (1.0 - ell)) / f0
        return prefactor * (n + f**2 + self._u * ell * f**2)

    def density_at_zero(self) -> float:
        """``a(0)`` in closed form — compare against ``lambda-bar``."""
        a, lam = self._per_type()
        f0 = float((a * lam).sum())
        n0 = float((a * lam**2).sum())
        return n0 / f0 + (1.0 + self._u) * f0

    def probability_zero_rate(self) -> float:
        """Stationary probability that no application is live (rate zero).

        ``P(R = 0) = exp(-u (1 - exp(-sum_i a_i)))`` — such states generate
        no arrivals and therefore carry no weight in the Palm mixture.
        """
        a, _ = self._per_type()
        return float(np.exp(-self._u * (1.0 - np.exp(-a.sum()))))

    def mean(self) -> float:
        """Mean of the mixture: ``(1 - P(R = 0)) / lambda-bar``.

        Zero-rate states carry no Palm weight, so the mixture mean sits a
        hair below ``1 / lambda-bar``; for the paper's parameters the gap is
        under half a percent.
        """
        return (
            1.0 - self.probability_zero_rate()
        ) / self.params.mean_message_rate

    def second_moment(self, upper: float | None = None) -> float:
        """``E[T^2] = 2 ∫ t Abar(t) dt`` by piecewise adaptive quadrature."""
        if upper is None:
            upper = self._integration_horizon()
        value = _piecewise_quad(
            lambda t: t * float(self.ccdf(t)[0]), self._breakpoints(upper)
        )
        return 2.0 * value

    def scv(self) -> float:
        """Squared coefficient of variation of the interarrival time.

        Exponential interarrivals (Poisson traffic) have SCV 1; HAP's is
        substantially larger — one of the paper's burstiness signatures.
        """
        m1 = self.mean()
        return self.second_moment() / m1**2 - 1.0

    def _integration_horizon(self) -> float:
        """Upper limit covering the interarrival tail.

        The tail of ``Abar`` decays like ``exp(-min_i Lambda_i * t)`` (the
        slowest single-application message stream), so a few hundred of
        those time constants captures everything to double precision.
        """
        _, lam = self._per_type()
        return 120.0 / float(lam.min())

    def _breakpoints(self, upper: float) -> list[float]:
        """Quadrature breakpoints spanning the short- and long-gap scales.

        Geometric spacing from a fifth of the mean gap out to ``upper`` so
        that both the short intra-burst spike and the slow inter-burst tail
        are resolved even when the per-type rates span orders of magnitude.
        """
        anchors = [0.0]
        point = 0.2 * self.mean()
        if not point > 0.0:  # degenerate mixture: mean underflowed to zero
            return [0.0, upper]
        while point < upper:
            anchors.append(point)
            point *= 4.0
        return anchors + [upper]

    def laplace(self, s: float) -> float:
        """``A*(s) = 1 - s ∫ Abar(t) e^{-st} dt`` (well conditioned).

        Evaluated with vectorized Gauss–Legendre panels over the natural
        breakpoints — the integrand is smooth, so fixed-order panels match
        adaptive quadrature to ~1e-12 at a fraction of the cost (this sits
        inside the σ root-finder, so it is the hot path of Solution 2).
        """
        if s < 0:
            raise ValueError("transform variable must be non-negative")
        if s == 0:
            return 1.0
        upper = min(self._integration_horizon(), 80.0 / s + 10.0 * self.mean())
        value = _panel_gauss(
            lambda ts: self.ccdf(ts) * np.exp(-s * ts),
            self._breakpoints(upper),
        )
        return float(1.0 - s * value)


#: Gauss–Legendre nodes/weights on [-1, 1], shared by all panels.
_GAUSS_NODES, _GAUSS_WEIGHTS = np.polynomial.legendre.leggauss(64)


def _panel_gauss(fn, breakpoints: list[float], subpanels: int = 4) -> float:
    """Vectorized fixed-order Gauss–Legendre over breakpoint panels.

    Each breakpoint interval is split into ``subpanels`` equal panels of a
    64-point rule.  All panel abscissae are assembled into a single array so
    ``fn`` (which must accept an array) is evaluated exactly once for the
    whole quadrature; the weighted panel sums are then one matrix–vector
    product.
    """
    edges = np.concatenate(
        [
            np.linspace(left, right, subpanels + 1)[:-1]
            for left, right in zip(breakpoints[:-1], breakpoints[1:])
        ]
        + [[breakpoints[-1]]]
    )
    halves = 0.5 * np.diff(edges)
    mids = 0.5 * (edges[:-1] + edges[1:])
    abscissae = mids[:, None] + halves[:, None] * _GAUSS_NODES[None, :]
    values = np.asarray(fn(abscissae.ravel())).reshape(abscissae.shape)
    return float(halves @ (values @ _GAUSS_WEIGHTS))


def _piecewise_quad(fn, breakpoints: list[float]) -> float:
    """Sum of adaptive quadratures over consecutive breakpoint intervals."""
    from scipy.integrate import quad

    total = 0.0
    for left, right in zip(breakpoints[:-1], breakpoints[1:]):
        value, _ = quad(fn, left, right, limit=200)
        total += value
    return total


def poisson_interarrival_density(rate: float, t: np.ndarray) -> np.ndarray:
    """Exponential density of the load-equivalent Poisson process (Figure 9)."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    t = np.atleast_1d(np.asarray(t, dtype=float))
    return rate * np.exp(-rate * t)


def density_intersections(
    dist: InterarrivalDistribution,
    search_upper: float = 2.0,
    grid_points: int = 4000,
) -> list[float]:
    """Crossing points of HAP's ``a(t)`` with its load-equivalent exponential.

    The paper reports two intersections (≈0.077 and ≈0.53 for the Figure 9
    parameters): HAP has more very short gaps (intra-burst) and more very
    long gaps (between bursts), the exponential wins in the middle.
    """
    rate = dist.params.mean_message_rate

    def difference(t: float) -> float:
        return float(dist.density(t)[0]) - rate * np.exp(-rate * t)

    grid = np.linspace(1e-9, search_upper, grid_points)
    # Whole-grid bracketing in one vectorized evaluation; brentq then
    # polishes each sign change with the scalar callable.
    values = dist.density(grid) - rate * np.exp(-rate * grid)
    crossings = []
    for left, right, f_left, f_right in zip(
        grid[:-1], grid[1:], values[:-1], values[1:]
    ):
        if f_left == 0.0:
            crossings.append(float(left))
        elif f_left * f_right < 0:
            crossings.append(float(brentq(difference, left, right)))
    return crossings
