"""Solution 1 — steady-state-probability approximation of HAP/M/1.

The paper's middle route (Section 3.2.2): drop the queue dimension, solve the
modulating chain ``(x, y_1, .., y_l)`` for its stationary distribution
exactly (on a truncated box), weight each state by its message rate (Equation
3's "probability a message is generated in this state"), and approximate the
interarrival time as the resulting hyper-exponential mixture

    a(t) = sum_s w_s r_s exp(-r_s t),    w_s = r_s P(s) / lambda-bar.

The mixture has an elementary Laplace transform, so the G/M/1 σ root needs no
quadrature.  Compared to Solution 2, Solution 1 does not assume time-scale
separation *between* user and application levels (only that the modulating
state outlives a typical interarrival), which is why the paper calls its
condition (1a) weaker than Solution 2's (1b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mmpp_mapping import MappedMMPP, hap_to_mmpp, symmetric_hap_to_mmpp
from repro.core.params import HAPParameters
from repro.queueing.gm1 import GM1Solution, solve_gm1

__all__ = ["Solution1Result", "solve_solution1"]


@dataclass(frozen=True)
class Solution1Result:
    """Output of Solution 1 for a HAP/M/1 queue.

    Attributes
    ----------
    params:
        The analyzed HAP.
    service_rate:
        The queue's ``mu''``.
    gm1:
        Underlying G/M/1 solution.
    mapped:
        The truncated modulating MMPP (with state-space bookkeeping).
    weights, rates:
        The hyper-exponential interarrival mixture.
    """

    params: HAPParameters
    service_rate: float
    gm1: GM1Solution
    mapped: MappedMMPP
    weights: np.ndarray
    rates: np.ndarray

    @property
    def sigma(self) -> float:
        """Probability an arrival finds the server busy."""
        return self.gm1.sigma

    @property
    def mean_delay(self) -> float:
        """Mean message delay."""
        return self.gm1.mean_delay

    @property
    def mean_queue_length(self) -> float:
        """Mean number of messages in system (Little)."""
        return self.gm1.mean_queue_length

    @property
    def utilization(self) -> float:
        """Offered load using the truncated chain's mean rate."""
        return self.gm1.utilization

    def interarrival_density(self, t: np.ndarray) -> np.ndarray:
        """Mixture density ``a(t)``."""
        t = np.atleast_1d(np.asarray(t, dtype=float))
        return (
            self.weights * self.rates * np.exp(-np.outer(t, self.rates))
        ).sum(axis=1)

    def laplace(self, s: float) -> float:
        """Elementary ``A*(s) = sum w r / (r + s)``."""
        return float(np.sum(self.weights * self.rates / (self.rates + s)))


def solve_solution1(
    params: HAPParameters,
    service_rate: float | None = None,
    bounds: tuple[int, ...] | None = None,
    collapse_symmetric: bool = True,
    method: str = "brent",
) -> Solution1Result:
    """Run Solution 1 on a HAP.

    Parameters
    ----------
    params:
        HAP description.
    service_rate:
        Queue service rate; defaults to the common message service rate.
    bounds:
        Truncation box for the modulating chain.  For a symmetric HAP with
        ``collapse_symmetric`` (default) this is ``(x_max, y_max)`` of the
        collapsed Figure-7 chain; otherwise it is ``(x_max, y1_max, ...)``.
    collapse_symmetric:
        Use the 2-D collapsed chain for symmetric HAPs (massively smaller).
    method:
        σ-root method, ``"brent"`` or ``"paper"``.
    """
    if service_rate is None:
        service_rate = params.common_service_rate()
    if collapse_symmetric and params.is_symmetric:
        if bounds is None:
            mapped = symmetric_hap_to_mmpp(params)
        else:
            x_max, y_max = bounds
            mapped = symmetric_hap_to_mmpp(params, x_max=x_max, y_max=y_max)
    else:
        mapped = hap_to_mmpp(params, bounds=bounds)
    weights, rates = mapped.mmpp.interarrival_mixture()
    mean_rate = mapped.mmpp.mean_rate()

    def laplace(s: float) -> float:
        return float(np.sum(weights * rates / (rates + s)))

    gm1 = solve_gm1(laplace, service_rate, mean_rate, method=method)
    return Solution1Result(
        params=params,
        service_rate=service_rate,
        gm1=gm1,
        mapped=mapped,
        weights=weights,
        rates=rates,
    )
