"""HAP — the paper's primary contribution.

The model (:mod:`repro.core.params`, :mod:`repro.core.model`,
:mod:`repro.core.client_server`, :mod:`repro.core.onoff`), its MMPP mapping
(:mod:`repro.core.mmpp_mapping`), the closed-form interarrival distribution
(:mod:`repro.core.interarrival`), the three queueing solutions
(:mod:`repro.core.solution0`, :mod:`repro.core.solution1`,
:mod:`repro.core.solution2`), burstiness metrics
(:mod:`repro.core.burstiness`) and admission bounding
(:mod:`repro.core.admission`).
"""

from repro.core.admission import (
    BoundedSolution2Result,
    bounded_mean_message_rate,
    bounded_modulating_mmpp,
    solve_bounded_solution2,
)
from repro.core.arrival_rate import (
    equivalent_rate_family,
    mean_message_rate,
    symmetric_mean_message_rate,
)
from repro.core.burstiness import BurstinessReport, burstiness_report, rate_moments
from repro.core.client_server import (
    ClientServerApplicationType,
    ClientServerHAPParameters,
    ClientServerMessageType,
    chain_amplification,
)
from repro.core.interarrival import (
    InterarrivalDistribution,
    density_intersections,
    poisson_interarrival_density,
)
from repro.core.mmpp_mapping import (
    MappedMMPP,
    default_bounds,
    hap_to_mmpp,
    symmetric_hap_to_mmpp,
)
from repro.core.model import HAP
from repro.core.onoff import InterruptedPoisson, TwoLevelHAP
from repro.core.params import ApplicationType, HAPParameters, MessageType
from repro.core.solution0 import Solution0Result, solve_solution0
from repro.core.solution1 import Solution1Result, solve_solution1
from repro.core.solution2 import (
    Solution2Result,
    condition_report,
    solve_solution2,
)

__all__ = [
    "HAP",
    "ApplicationType",
    "BoundedSolution2Result",
    "BurstinessReport",
    "ClientServerApplicationType",
    "ClientServerHAPParameters",
    "ClientServerMessageType",
    "HAPParameters",
    "InterarrivalDistribution",
    "InterruptedPoisson",
    "MappedMMPP",
    "MessageType",
    "Solution0Result",
    "Solution1Result",
    "Solution2Result",
    "TwoLevelHAP",
    "bounded_mean_message_rate",
    "bounded_modulating_mmpp",
    "burstiness_report",
    "chain_amplification",
    "condition_report",
    "default_bounds",
    "density_intersections",
    "equivalent_rate_family",
    "hap_to_mmpp",
    "mean_message_rate",
    "poisson_interarrival_density",
    "rate_moments",
    "solve_bounded_solution2",
    "solve_solution0",
    "solve_solution1",
    "solve_solution2",
    "symmetric_hap_to_mmpp",
    "symmetric_mean_message_rate",
]
