"""Burstiness metrics for HAP and friends.

The paper uses "burstiness" qualitatively (variability of interarrival
times); this module pins it down with three standard, mutually consistent
metrics so the Figure-8 ordering claim — same ``lambda-bar``, different
shape, burstiness ``(l=1,m=4) > (l=2,m=2) > (l=4,m=1)`` — can be tested
numerically:

* squared coefficient of variation (SCV) of the interarrival time, from the
  Solution-2 closed form (1 for Poisson, larger = burstier);
* stationary rate variance and peak-to-mean ratio of the modulating rate;
* index of dispersion for counts (IDC) through the MMPP mapping.

All three agree on the Figure-8 ordering; the benchmark prints all of them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.interarrival import InterarrivalDistribution
from repro.core.mmpp_mapping import symmetric_hap_to_mmpp
from repro.core.params import HAPParameters

__all__ = [
    "BurstinessReport",
    "burstiness_report",
    "exact_rate_moments",
    "rate_moments",
]


def rate_moments(params: HAPParameters) -> tuple[float, float]:
    """Separation-limit mean and variance of the modulating message rate.

    Uses the conditional-Poisson structure that also underlies Solution 2
    (``y_i | x ~ Poisson(x a_i)``): with ``a_i = lambda_i / mu_i`` and
    ``Lambda_i``,

        E[R]   = u * sum_i a_i Lambda_i
        Var(R) = u * sum_i a_i Lambda_i^2               (within-user Poisson)
               + Var(x) * (sum_i a_i Lambda_i)^2        (user-count mixing)

    with ``u = Var(x) = lambda / mu``.  This is exact in the time-scale-
    separation limit (users much slower than applications); for comparable
    churn rates use :func:`exact_rate_moments`, whose variance is smaller
    because the application populations cannot fully track the user count.
    """
    u = params.mean_users
    first = sum(
        app.offered_instances * app.total_message_rate
        for app in params.applications
    )
    second = sum(
        app.offered_instances * app.total_message_rate**2
        for app in params.applications
    )
    mean = u * first
    variance = u * second + u * first**2
    return mean, variance


def exact_rate_moments(params: HAPParameters) -> tuple[float, float]:
    """Exact stationary mean and variance of the modulating rate.

    No separation assumption: closes the moment equations of the modulating
    chain (users M/M/∞; type-``i`` applications born at ``x * lambda_i``,
    dying at ``mu_i`` each).  The stationary identities are

        Cov(x, y_i)    = u lambda_i / (mu + mu_i)
        Var(y_i)       = y-bar_i + u lambda_i^2 / (mu_i (mu + mu_i))
        Cov(y_i, y_j)  = u lambda_i lambda_j
                         * (1/(mu + mu_i) + 1/(mu + mu_j)) / (mu_i + mu_j)

    and ``Var(R) = sum_ij Lambda_i Lambda_j Cov(y_i, y_j)`` (with the
    variance terms on the diagonal).  In the slow-user limit these collapse
    to :func:`rate_moments`; the test suite checks both against the
    truncated chain.
    """
    u = params.mean_users
    mu = params.user_departure_rate
    apps = params.applications
    mean = u * sum(
        app.offered_instances * app.total_message_rate for app in apps
    )
    variance = 0.0
    for i, app_i in enumerate(apps):
        lam_i, mu_i = app_i.arrival_rate, app_i.departure_rate
        big_i = app_i.total_message_rate
        mean_yi = u * lam_i / mu_i
        var_yi = mean_yi + u * lam_i**2 / (mu_i * (mu + mu_i))
        variance += big_i**2 * var_yi
        for j, app_j in enumerate(apps):
            if j == i:
                continue
            lam_j, mu_j = app_j.arrival_rate, app_j.departure_rate
            big_j = app_j.total_message_rate
            cov = (
                u
                * lam_i
                * lam_j
                * (1.0 / (mu + mu_i) + 1.0 / (mu + mu_j))
                / (mu_i + mu_j)
            )
            variance += big_i * big_j * cov
    return mean, variance


@dataclass(frozen=True)
class BurstinessReport:
    """Burstiness metrics for one HAP.

    Attributes
    ----------
    mean_rate:
        ``lambda-bar``.
    rate_variance:
        Stationary variance of the modulating rate.
    rate_cv2:
        ``Var(R) / E[R]^2`` — the normalized rate variability.
    interarrival_scv:
        SCV of the Solution-2 interarrival distribution.
    density_at_zero_ratio:
        ``a(0) / lambda-bar`` — how much likelier a short gap is than under
        Poisson (which has ratio exactly 1).
    idc_horizon, idc:
        Index of dispersion for counts at the given horizon (None when the
        MMPP route was skipped).
    """

    name: str
    mean_rate: float
    rate_variance: float
    rate_cv2: float
    interarrival_scv: float
    density_at_zero_ratio: float
    idc_horizon: float | None = None
    idc: float | None = None

    def describe(self) -> str:
        """One comparison row."""
        idc_part = (
            f" IDC({self.idc_horizon:g})={self.idc:.2f}" if self.idc is not None else ""
        )
        return (
            f"{self.name}: lambda-bar={self.mean_rate:.4g} "
            f"rate-CV2={self.rate_cv2:.4g} SCV={self.interarrival_scv:.4g} "
            f"a(0)/rate={self.density_at_zero_ratio:.4g}{idc_part}"
        )


def burstiness_report(
    params: HAPParameters,
    idc_horizon: float | None = None,
) -> BurstinessReport:
    """Compute all burstiness metrics for one HAP.

    Parameters
    ----------
    params:
        The HAP (symmetric HAPs additionally get an IDC when
        ``idc_horizon`` is set — the MMPP route needs the collapsed chain
        to stay small).
    idc_horizon:
        Time horizon for the IDC (e.g. several mean interarrivals); None
        skips the (more expensive) MMPP computation.
    """
    mean, variance = rate_moments(params)
    dist = InterarrivalDistribution(params)
    idc_value = None
    if idc_horizon is not None:
        mapped = symmetric_hap_to_mmpp(params) if params.is_symmetric else None
        if mapped is None:
            from repro.core.mmpp_mapping import hap_to_mmpp

            mapped = hap_to_mmpp(params)
        idc_value = mapped.mmpp.index_of_dispersion(idc_horizon)
    return BurstinessReport(
        name=params.name or "hap",
        mean_rate=mean,
        rate_variance=variance,
        rate_cv2=variance / mean**2,
        interarrival_scv=dist.scv(),
        density_at_zero_ratio=dist.density_at_zero() / mean,
        idc_horizon=idc_horizon,
        idc=idc_value,
    )
