"""Mapping HAP onto (truncated) MMPPs — the paper's Section 3.1.

HAP's modulating state is ``(x, y_1, ..., y_l)``: the user count and the
per-type application counts.  Transitions connect neighbouring states only:

    x -> x + 1        at rate lambda
    x -> x - 1        at rate x * mu
    y_i -> y_i + 1    at rate x * lambda_i     (invocations need a user)
    y_i -> y_i - 1    at rate y_i * mu_i

and the message arrival rate in a state is ``sum_i y_i * Lambda_i``.  The
infinite lattice is truncated to a box (Section 3.2.1's boundary convention:
out-of-bound transitions are dropped).

For the symmetric model the paper collapses the chain to ``(x, y)`` with
``y`` the total application count (Figure 7); :func:`symmetric_hap_to_mmpp`
builds that far smaller chain, which is what Solutions 0/1 and the QBD
cross-check use at the paper's parameter sizes.

Bounding ``x`` and ``y`` *intentionally* (rather than for numerical
truncation) is the paper's admission-control mechanism (Figure 20); the same
functions serve both purposes — only the interpretation of the bound differs.

Caching and trimming
--------------------
Both mapping functions are backed by a keyed, bounded LRU cache
(``params + resolved bounds + mass_tol`` → :class:`MappedMMPP`), so the
headline pipeline and the figure sweeps stop rebuilding the identical
truncated chain once per Solution.  Because the cached :class:`MappedMMPP`
instances are shared, everything they memoize is shared too: the modulating
chain's stationary vector (cached on the :class:`~repro.markov.ctmc.CTMC`),
the analytic kernels (cached on the :class:`~repro.markov.mmpp.MMPP`, one
per analytic backend — so a chain already factorized under ``dense`` is not
re-factorized when ``krylov`` is requested, and vice versa), and the
lazily-computed boundary mass.  Callers must treat cached instances as
immutable.

The generator built here is CSR from :func:`repro.markov.truncation.build_generator`
and *stays* CSR: mapping, trimming (a sparse row/column slice plus a
diagonal correction), and every downstream analytic consumer operate
without a dense round-trip, which is what lets truncation boxes of tens of
thousands of states run on the Krylov analytic backend.

``mass_tol`` enables *mass-adaptive trimming*: the box keeps a rectangle's
worth of corner states whose stationary probability is far below
floating-point noise yet costs full cubic work in every QBD solve.  Passing
``mass_tol > 0`` drops states with stationary mass below the threshold and
reflects their transitions (the paper's own boundary convention, applied to
the mass contour instead of the rectangle), shrinking the phase space by
~25% at the headline size for a relative solution error of order
``mass_tol``-driven 1e-7 at the default 1e-12.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np
import scipy.sparse as sp

from repro.core.params import HAPParameters
from repro.markov.mmpp import MMPP
from repro.markov.truncation import StateSpace, TrimmedStateSpace, build_generator

__all__ = [
    "MappedMMPP",
    "default_bounds",
    "hap_to_mmpp",
    "symmetric_hap_to_mmpp",
]

#: How many standard deviations beyond the mean the default truncation keeps.
_DEFAULT_SPREAD = 6.0

#: Bound on the number of distinct (params, bounds, mass_tol) chains kept.
_CACHE_SIZE = 64


@dataclass(frozen=True)
class MappedMMPP:
    """An MMPP produced from a HAP plus its state-space bookkeeping.

    Attributes
    ----------
    mmpp:
        The truncated MMPP.
    space:
        State space whose dense index matches the MMPP's state index.
    precomputed_boundary_mass:
        Optional boundary mass supplied by the builder (used by mappers that
        already hold a stationary vector); leave ``None`` to defer the solve.
    """

    mmpp: MMPP
    space: StateSpace
    precomputed_boundary_mass: float | None = None

    @property
    def boundary_mass(self) -> float:
        """Stationary probability of states on the truncation boundary.

        A quick check that the box was large enough (should be tiny unless
        the bound is an intentional admission-control limit).  Computed
        lazily on first access from the chain's cached stationary vector —
        construction itself never triggers a stationary solve — and then
        memoized on the instance.
        """
        if self.precomputed_boundary_mass is not None:
            return self.precomputed_boundary_mass
        value = _boundary_mass(self.mmpp, self.space)
        object.__setattr__(self, "precomputed_boundary_mass", value)
        return value

    @property
    def mean_rate(self) -> float:
        """Mean message rate of the truncated chain."""
        return self.mmpp.mean_rate()


def default_bounds(params: HAPParameters, spread: float = _DEFAULT_SPREAD) -> tuple[int, ...]:
    """Truncation box covering ``mean + spread * std`` per coordinate.

    The user population is Poisson (variance = mean), but an application
    population is a *mixed* Poisson over the random user count, which makes
    it over-dispersed:

        Var(y_i) = x-bar * a_i * (1 + a_i),   a_i = lambda_i / mu_i.

    Under-truncating the application level silently shaves off exactly the
    burst states that dominate HAP's queueing delay, so the default box uses
    the true variance.
    """
    bounds = [_spread_bound(params.mean_users, params.mean_users, spread)]
    for app in params.applications:
        a_i = app.offered_instances
        mean_instances = params.mean_users * a_i
        variance = params.mean_users * a_i * (1.0 + a_i)
        bounds.append(_spread_bound(mean_instances, variance, spread))
    return tuple(bounds)


def _spread_bound(mean: float, variance: float, spread: float) -> int:
    return max(2, int(np.ceil(mean + spread * np.sqrt(max(variance, 1.0)))))


def hap_to_mmpp(
    params: HAPParameters,
    bounds: tuple[int, ...] | None = None,
    mass_tol: float | None = None,
) -> MappedMMPP:
    """Build the general ``(x, y_1, .., y_l)`` truncated MMPP.

    Parameters
    ----------
    params:
        The HAP description.
    bounds:
        Inclusive bounds ``(x_max, y1_max, .., yl_max)``; defaults to
        :func:`default_bounds`.  State-space size is the product of
        ``bound + 1`` over coordinates — keep ``l`` small or use
        :func:`symmetric_hap_to_mmpp` for symmetric models.
    mass_tol:
        When positive, trim box states whose stationary probability falls
        below this threshold (see module docstring).  ``None`` keeps the
        full rectangle.

    Results are memoized per ``(params, bounds, mass_tol)`` — repeated calls
    return the *same* :class:`MappedMMPP` instance.
    """
    if bounds is None:
        bounds = default_bounds(params)
    bounds = tuple(int(b) for b in bounds)
    if len(bounds) != params.num_app_types + 1:
        raise ValueError(
            f"need {params.num_app_types + 1} bounds (x plus one per app type), "
            f"got {len(bounds)}"
        )
    return _cached_general_map(params, bounds, _normalize_mass_tol(mass_tol))


def symmetric_hap_to_mmpp(
    params: HAPParameters,
    x_max: int | None = None,
    y_max: int | None = None,
    mass_tol: float | None = None,
) -> MappedMMPP:
    """Build the collapsed ``(x, y)`` MMPP for a symmetric HAP (Figure 7).

    ``y`` is the total application count across all ``l`` types; invocations
    occur at ``x * l * lambda'`` and the message rate is ``y * m * lambda''``.
    ``mass_tol`` trims low-mass box states exactly as in :func:`hap_to_mmpp`.

    Results are memoized per ``(params, x_max, y_max, mass_tol)`` — repeated
    calls return the *same* :class:`MappedMMPP` instance.

    Raises
    ------
    ValueError
        If the HAP is not symmetric — the collapse needs exchangeable types.
    """
    if not params.is_symmetric:
        raise ValueError("symmetric_hap_to_mmpp needs a symmetric HAP")
    app = params.applications[0]
    if x_max is None:
        x_max = _spread_bound(
            params.mean_users, params.mean_users, _DEFAULT_SPREAD
        )
    if y_max is None:
        # Total apps: mixed Poisson with c = l * lambda'/mu' per user.
        c_total = params.num_app_types * app.offered_instances
        variance = params.mean_users * c_total * (1.0 + c_total)
        y_max = _spread_bound(params.mean_applications, variance, _DEFAULT_SPREAD)
    return _cached_symmetric_map(
        params, int(x_max), int(y_max), _normalize_mass_tol(mass_tol)
    )


def _normalize_mass_tol(mass_tol: float | None) -> float | None:
    if mass_tol is None or mass_tol <= 0.0:
        return None
    return float(mass_tol)


@lru_cache(maxsize=_CACHE_SIZE)
def _cached_general_map(
    params: HAPParameters,
    bounds: tuple[int, ...],
    mass_tol: float | None,
) -> MappedMMPP:
    space = StateSpace(bounds)
    lam = params.user_arrival_rate
    mu = params.user_departure_rate
    apps = params.applications

    def transitions(state):
        x = state[0]
        yield (x + 1, *state[1:]), lam
        if x > 0:
            yield (x - 1, *state[1:]), x * mu
        for i, app in enumerate(apps):
            y = state[1 + i]
            up = list(state)
            up[1 + i] = y + 1
            yield tuple(up), x * app.arrival_rate
            if y > 0:
                down = list(state)
                down[1 + i] = y - 1
                yield tuple(down), y * app.departure_rate

    generator = build_generator(space, transitions)
    coords = space.coordinate_arrays()
    rates = np.zeros(space.size)
    for i, app in enumerate(apps):
        rates += coords[1 + i] * app.total_message_rate
    mapped = MappedMMPP(mmpp=MMPP(generator, rates), space=space)
    return _trim_by_mass(mapped, mass_tol)


@lru_cache(maxsize=_CACHE_SIZE)
def _cached_symmetric_map(
    params: HAPParameters,
    x_max: int,
    y_max: int,
    mass_tol: float | None,
) -> MappedMMPP:
    app = params.applications[0]
    per_app_rate = app.total_message_rate
    invoke_rate = params.num_app_types * app.arrival_rate
    space = StateSpace((x_max, y_max))
    lam = params.user_arrival_rate
    mu = params.user_departure_rate
    mu_app = app.departure_rate

    def transitions(state):
        x, y = state
        yield (x + 1, y), lam
        if x > 0:
            yield (x - 1, y), x * mu
        yield (x, y + 1), x * invoke_rate
        if y > 0:
            yield (x, y - 1), y * mu_app

    generator = build_generator(space, transitions)
    xs, ys = space.coordinate_arrays()
    rates = ys * per_app_rate
    mapped = MappedMMPP(mmpp=MMPP(generator, rates.astype(float)), space=space)
    return _trim_by_mass(mapped, mass_tol)


def _trim_by_mass(mapped: MappedMMPP, mass_tol: float | None) -> MappedMMPP:
    """Drop box states below ``mass_tol`` stationary probability.

    Transitions into dropped states are reflected — removed from the source
    diagonal, exactly the paper's out-of-bounds convention applied to the
    mass contour.  Returns ``mapped`` unchanged when nothing falls below the
    threshold (or trimming is disabled), so the no-trim path never pays a
    stationary solve.
    """
    if mass_tol is None:
        return mapped
    pi = mapped.mmpp.stationary_distribution()
    keep = np.flatnonzero(pi >= mass_tol)
    if keep.size == mapped.space.size:
        return mapped
    if keep.size == 0:
        raise ValueError(f"mass_tol {mass_tol:g} would trim away every state")
    generator = mapped.mmpp.generator
    generator = generator.tocsr() if sp.issparse(generator) else sp.csr_matrix(generator)
    trimmed = generator[keep][:, keep]
    # Re-zero row sums: reflected outflow comes off the diagonal.
    row_sums = np.asarray(trimmed.sum(axis=1)).ravel()
    trimmed = (trimmed - sp.diags(row_sums)).tocsr()
    space = TrimmedStateSpace(mapped.space, keep)
    return MappedMMPP(
        mmpp=MMPP(trimmed, mapped.mmpp.rates[keep]),
        space=space,
    )


def _boundary_mass(mmpp: MMPP, space: StateSpace) -> float:
    """Total stationary probability of states touching the box boundary."""
    pi = mmpp.stationary_distribution()
    coords = space.coordinate_arrays()
    on_boundary = np.zeros(space.size, dtype=bool)
    for k, bound in enumerate(space.bounds):
        on_boundary |= coords[k] == bound
    return float(pi[on_boundary].sum())
