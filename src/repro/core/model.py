"""The `HAP` facade — one object tying the whole library together.

``HAP`` wraps a :class:`~repro.core.params.HAPParameters` and exposes every
capability behind a uniform, discoverable API:

>>> from repro import HAP
>>> hap = HAP.symmetric(0.0055, 0.001, 0.01, 0.01, 0.1, 20.0, 5, 3)
>>> round(hap.mean_message_rate, 2)
8.25
>>> sol = hap.solve(solution=2)          # closed-form Solution 2
>>> result = hap.simulate(horizon=1e4)   # discrete-event simulation

Power users can always drop to the underlying modules; the facade only
forwards.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.interarrival import InterarrivalDistribution
from repro.core.mmpp_mapping import (
    MappedMMPP,
    hap_to_mmpp,
    symmetric_hap_to_mmpp,
)
from repro.core.params import HAPParameters
from repro.core.solution0 import Solution0Result, solve_solution0
from repro.core.solution1 import Solution1Result, solve_solution1
from repro.core.solution2 import Solution2Result, solve_solution2

__all__ = ["HAP"]


@dataclass(frozen=True)
class HAP:
    """A Hierarchical Arrival Process with analysis and simulation attached.

    Attributes
    ----------
    params:
        The immutable parameter set (see
        :class:`~repro.core.params.HAPParameters`).
    """

    params: HAPParameters

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def symmetric(
        cls,
        user_arrival_rate: float,
        user_departure_rate: float,
        app_arrival_rate: float,
        app_departure_rate: float,
        message_arrival_rate: float,
        message_service_rate: float,
        num_app_types: int,
        num_message_types: int,
        name: str = "",
    ) -> "HAP":
        """Build the paper's simplified symmetric HAP (see
        :meth:`repro.core.params.HAPParameters.symmetric`)."""
        return cls(
            HAPParameters.symmetric(
                user_arrival_rate,
                user_departure_rate,
                app_arrival_rate,
                app_departure_rate,
                message_arrival_rate,
                message_service_rate,
                num_app_types,
                num_message_types,
                name=name,
            )
        )

    # ------------------------------------------------------------------
    # First moments
    # ------------------------------------------------------------------
    @property
    def mean_message_rate(self) -> float:
        """Equation 4's ``lambda-bar``."""
        return self.params.mean_message_rate

    @property
    def mean_users(self) -> float:
        """``x-bar``."""
        return self.params.mean_users

    @property
    def mean_applications(self) -> float:
        """``y-bar``."""
        return self.params.mean_applications

    # ------------------------------------------------------------------
    # Distributions and mappings
    # ------------------------------------------------------------------
    def interarrival(self) -> InterarrivalDistribution:
        """The Solution-2 closed-form message interarrival distribution."""
        return InterarrivalDistribution(self.params)

    def to_mmpp(self, bounds=None, collapse_symmetric: bool = True) -> MappedMMPP:
        """Truncated MMPP representation (Section 3.1's mapping)."""
        if collapse_symmetric and self.params.is_symmetric:
            if bounds is None:
                return symmetric_hap_to_mmpp(self.params)
            x_max, y_max = bounds
            return symmetric_hap_to_mmpp(self.params, x_max=x_max, y_max=y_max)
        return hap_to_mmpp(self.params, bounds=bounds)

    # ------------------------------------------------------------------
    # Queueing analysis
    # ------------------------------------------------------------------
    def solve(
        self,
        solution: int = 2,
        service_rate: float | None = None,
        **kwargs,
    ) -> Solution0Result | Solution1Result | Solution2Result:
        """Analyze the HAP/M/1 queue with the requested paper solution.

        Parameters
        ----------
        solution:
            0 (exact, slowest), 1 (steady-state approximation) or
            2 (closed form, default).
        service_rate:
            ``mu''``; defaults to the common message service rate.
        kwargs:
            Forwarded to the specific solver (bounds, backend, method, ...).
        """
        if solution == 0:
            return solve_solution0(self.params, service_rate, **kwargs)
        if solution == 1:
            return solve_solution1(self.params, service_rate, **kwargs)
        if solution == 2:
            return solve_solution2(self.params, service_rate, **kwargs)
        raise ValueError(f"solution must be 0, 1 or 2, got {solution!r}")

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(
        self,
        horizon: float,
        seed: int = 0,
        service_rate: float | None = None,
        **kwargs,
    ):
        """Discrete-event simulation of HAP/M/1 (see
        :func:`repro.sim.replication.simulate_hap_mm1`)."""
        from repro.sim.replication import simulate_hap_mm1

        return simulate_hap_mm1(
            self.params, horizon, seed=seed, service_rate=service_rate, **kwargs
        )

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def poisson_baseline(self, service_rate: float | None = None):
        """The load-equivalent M/M/1 every figure compares against."""
        from repro.queueing.mm1 import solve_mm1

        if service_rate is None:
            service_rate = self.params.common_service_rate()
        return solve_mm1(self.mean_message_rate, service_rate)

    def delay_ratio_vs_poisson(
        self, solution: int = 2, service_rate: float | None = None, **kwargs
    ) -> float:
        """HAP delay divided by same-load M/M/1 delay (the headline metric)."""
        hap_delay = self.solve(solution, service_rate, **kwargs).mean_delay
        return hap_delay / self.poisson_baseline(service_rate).mean_delay

    def scaled(self, level: str, kind: str, factor: float) -> "HAP":
        """Perturbed copy (see :meth:`HAPParameters.scaled`)."""
        return HAP(self.params.scaled(level, kind, factor))

    def with_service_rate(self, service_rate: float) -> "HAP":
        """Copy with a different ``mu''`` (Figure 11's sweep)."""
        return HAP(self.params.with_service_rate(service_rate))

    def describe(self) -> str:
        """Human-readable parameter summary."""
        return self.params.describe()
