"""Parameter objects for the HAP model.

A HAP (Section 2 of the paper) is described by rates at three levels:

* ``lambda`` / ``mu`` — user interarrival and departure rates,
* ``lambda_i`` / ``mu_i`` — invocation and departure rates for application
  type ``i`` (applications are invoked only while their user is present, but
  survive the user's departure),
* ``lambda_ij`` / ``mu_ij`` — arrival rate and queue service rate for message
  type ``j`` of application type ``i`` (messages are generated only while
  their application is alive).

All distributions are exponential with these rates, matching the paper's
analysis assumption; the simulator accepts distribution overrides separately
(see :mod:`repro.sim.random_streams`).

The frozen dataclasses here are pure descriptions — every solver, mapper and
simulator in the library consumes them.  :meth:`HAPParameters.symmetric`
builds the paper's simplified model (``lambda_i = lambda'``,
``mu_i = mu'``, ``lambda_ij = lambda''`` for all i, j), which is what every
numerical section of the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ApplicationType", "HAPParameters", "Level", "MessageType", "RateKind"]

#: Hierarchy levels accepted by :meth:`HAPParameters.scaled`.
Level = str  # "user" | "application" | "message"

#: Which rate(s) to scale at a level.
RateKind = str  # "arrival" | "departure" | "both"

_LEVELS = ("user", "application", "message")
_KINDS = ("arrival", "departure", "both")


def _check_positive(value: float, label: str) -> None:
    if value <= 0:
        raise ValueError(f"{label} must be positive, got {value!r}")


@dataclass(frozen=True)
class MessageType:
    """One message type within an application type.

    Attributes
    ----------
    arrival_rate:
        ``lambda_ij`` — rate at which a live application instance emits
        messages of this type.
    service_rate:
        ``mu_ij`` — exponential service rate of this message type at the
        downstream queue.  The paper's HAP/M/1 analysis requires a common
        service rate across types; :meth:`HAPParameters.common_service_rate`
        enforces that where needed.
    name:
        Optional label (e.g. ``"interactive"``, ``"file-transfer"``).
    """

    arrival_rate: float
    service_rate: float
    name: str = ""

    def __post_init__(self) -> None:
        _check_positive(self.arrival_rate, "message arrival rate")
        _check_positive(self.service_rate, "message service rate")


@dataclass(frozen=True)
class ApplicationType:
    """One application type: its invocation dynamics and message types.

    Attributes
    ----------
    arrival_rate:
        ``lambda_i`` — invocation rate of this type *per present user*.
    departure_rate:
        ``mu_i`` — departure rate of a running instance (independent of the
        invoking user's presence).
    messages:
        The ``m_i`` message types this application generates.
    name:
        Optional label (e.g. ``"programming"``, ``"multimedia"``).
    """

    arrival_rate: float
    departure_rate: float
    messages: tuple[MessageType, ...]
    name: str = ""

    def __post_init__(self) -> None:
        _check_positive(self.arrival_rate, "application arrival rate")
        _check_positive(self.departure_rate, "application departure rate")
        if not self.messages:
            raise ValueError("an application type needs at least one message type")
        object.__setattr__(self, "messages", tuple(self.messages))

    @property
    def num_message_types(self) -> int:
        """``m_i``."""
        return len(self.messages)

    @property
    def total_message_rate(self) -> float:
        """``Lambda_i = sum_j lambda_ij`` — message rate of a live instance."""
        return sum(msg.arrival_rate for msg in self.messages)

    @property
    def offered_instances(self) -> float:
        """``lambda_i / mu_i`` — mean live instances per present user."""
        return self.arrival_rate / self.departure_rate


@dataclass(frozen=True)
class HAPParameters:
    """A complete 3-level HAP parameter set.

    Attributes
    ----------
    user_arrival_rate:
        ``lambda`` — Poisson rate of user arrivals at the node.
    user_departure_rate:
        ``mu`` — departure rate of a present user.
    applications:
        The ``l`` application types.
    name:
        Optional label for reports.
    """

    user_arrival_rate: float
    user_departure_rate: float
    applications: tuple[ApplicationType, ...]
    name: str = ""

    def __post_init__(self) -> None:
        _check_positive(self.user_arrival_rate, "user arrival rate")
        _check_positive(self.user_departure_rate, "user departure rate")
        if not self.applications:
            raise ValueError("a HAP needs at least one application type")
        object.__setattr__(self, "applications", tuple(self.applications))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def symmetric(
        cls,
        user_arrival_rate: float,
        user_departure_rate: float,
        app_arrival_rate: float,
        app_departure_rate: float,
        message_arrival_rate: float,
        message_service_rate: float,
        num_app_types: int,
        num_message_types: int,
        name: str = "",
    ) -> "HAPParameters":
        """The paper's simplified HAP (``lambda_i = lambda'`` etc.).

        Parameters mirror the paper's notation: ``lambda, mu, lambda', mu',
        lambda'', mu''``, plus ``l`` application types each with ``m``
        message types.
        """
        if num_app_types < 1 or num_message_types < 1:
            raise ValueError("need at least one application and message type")
        message = MessageType(
            arrival_rate=message_arrival_rate, service_rate=message_service_rate
        )
        application = ApplicationType(
            arrival_rate=app_arrival_rate,
            departure_rate=app_departure_rate,
            messages=(message,) * num_message_types,
        )
        return cls(
            user_arrival_rate=user_arrival_rate,
            user_departure_rate=user_departure_rate,
            applications=(application,) * num_app_types,
            name=name,
        )

    # ------------------------------------------------------------------
    # Shape queries
    # ------------------------------------------------------------------
    @property
    def num_app_types(self) -> int:
        """``l``."""
        return len(self.applications)

    @property
    def is_symmetric(self) -> bool:
        """True when all types share rates (the paper's simplified model)."""
        first = self.applications[0]
        msg = first.messages[0]
        return all(
            app.arrival_rate == first.arrival_rate
            and app.departure_rate == first.departure_rate
            and app.num_message_types == first.num_message_types
            and all(
                m.arrival_rate == msg.arrival_rate
                and m.service_rate == msg.service_rate
                for m in app.messages
            )
            for app in self.applications
        )

    def common_service_rate(self) -> float:
        """The shared ``mu''`` of all message types.

        Raises
        ------
        ValueError
            When message types carry different service rates — HAP/M/1
            analysis (and the paper's Solutions) requires a common rate.
        """
        rates = {
            msg.service_rate for app in self.applications for msg in app.messages
        }
        if len(rates) != 1:
            raise ValueError(
                "message types have heterogeneous service rates "
                f"{sorted(rates)}; HAP/M/1 analysis needs a common mu''"
            )
        return rates.pop()

    # ------------------------------------------------------------------
    # First moments (closed forms of Section 3.2.3)
    # ------------------------------------------------------------------
    @property
    def mean_users(self) -> float:
        """``x-bar = lambda / mu`` (M/M/∞ at the user level)."""
        return self.user_arrival_rate / self.user_departure_rate

    @property
    def mean_applications(self) -> float:
        """``y-bar = x-bar * sum_i lambda_i / mu_i``."""
        return self.mean_users * sum(
            app.offered_instances for app in self.applications
        )

    @property
    def mean_message_rate(self) -> float:
        """Equation 4: ``lambda-bar = (lambda/mu) sum_i (lambda_i/mu_i) Lambda_i``."""
        return self.mean_users * sum(
            app.offered_instances * app.total_message_rate
            for app in self.applications
        )

    def utilization(self, service_rate: float | None = None) -> float:
        """Offered load ``lambda-bar / mu''`` at the message queue."""
        mu = self.common_service_rate() if service_rate is None else service_rate
        _check_positive(mu, "service rate")
        return self.mean_message_rate / mu

    # ------------------------------------------------------------------
    # Perturbations (the Section 5 parameter studies)
    # ------------------------------------------------------------------
    def scaled(self, level: Level, kind: RateKind, factor: float) -> "HAPParameters":
        """Return a copy with one level's rate(s) multiplied by ``factor``.

        This is the operation behind Figure 19 (perturbing ``lambda`` vs
        ``lambda'`` vs ``lambda''`` by ±5 % steps) and the Section-5
        arrival-versus-departure study (scaling both by the same factor
        leaves ``lambda-bar`` unchanged but shortens bursts).
        """
        _check_positive(factor, "scale factor")
        if level not in _LEVELS:
            raise ValueError(f"level must be one of {_LEVELS}, got {level!r}")
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")
        scale_arrival = factor if kind in ("arrival", "both") else 1.0
        scale_departure = factor if kind in ("departure", "both") else 1.0
        if level == "user":
            return replace(
                self,
                user_arrival_rate=self.user_arrival_rate * scale_arrival,
                user_departure_rate=self.user_departure_rate * scale_departure,
            )
        if level == "application":
            apps = tuple(
                replace(
                    app,
                    arrival_rate=app.arrival_rate * scale_arrival,
                    departure_rate=app.departure_rate * scale_departure,
                )
                for app in self.applications
            )
            return replace(self, applications=apps)
        apps = tuple(
            replace(
                app,
                messages=tuple(
                    replace(
                        msg,
                        arrival_rate=msg.arrival_rate * scale_arrival,
                        # "departure" at message level is queue service.
                        service_rate=msg.service_rate * scale_departure,
                    )
                    for msg in app.messages
                ),
            )
            for app in self.applications
        )
        return replace(self, applications=apps)

    def with_service_rate(self, service_rate: float) -> "HAPParameters":
        """Copy with every message type's ``mu''`` replaced (Figure 11 sweep)."""
        _check_positive(service_rate, "service rate")
        apps = tuple(
            replace(
                app,
                messages=tuple(
                    replace(msg, service_rate=service_rate) for msg in app.messages
                ),
            )
            for app in self.applications
        )
        return replace(self, applications=apps)

    def describe(self) -> str:
        """A short human-readable summary used by examples and benchmarks."""
        lines = [
            f"HAP {self.name or '(unnamed)'}: "
            f"lambda={self.user_arrival_rate:g} mu={self.user_departure_rate:g} "
            f"l={self.num_app_types}",
            f"  mean users={self.mean_users:g} "
            f"mean apps={self.mean_applications:g} "
            f"mean message rate={self.mean_message_rate:g}",
        ]
        for i, app in enumerate(self.applications, start=1):
            lines.append(
                f"  app {i} {app.name or ''}: lambda_i={app.arrival_rate:g} "
                f"mu_i={app.departure_rate:g} m_i={app.num_message_types} "
                f"Lambda_i={app.total_message_rate:g}"
            )
        return "\n".join(lines)
