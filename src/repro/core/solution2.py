"""Solution 2 — closed-form conditional-probability analysis of HAP/M/1.

The fastest of the paper's three solutions (5–7 minutes on a 1993 SUN-4/280;
milliseconds here): the message interarrival time gets the closed form of
:mod:`repro.core.interarrival`, its Laplace transform is evaluated by
quadrature, and the queue is solved as G/M/1 through the σ root.

Validity (Section 4.1): lower-level rates must be well above upper-level
rates (condition 1b), neighbouring modulating states must not differ too much
in rate (condition 2), and the load should be light — past roughly 30 %
utilization the loss of correlation between successive interarrivals makes
Solutions 1 and 2 drift optimistic.  :func:`condition_report` quantifies all
three conditions for a parameter set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.interarrival import InterarrivalDistribution
from repro.core.params import HAPParameters
from repro.queueing.gm1 import GM1Solution, solve_gm1

__all__ = ["Solution2Result", "condition_report", "solve_solution2"]


@dataclass(frozen=True)
class Solution2Result:
    """Output of Solution 2 for a HAP/M/1 queue.

    Attributes
    ----------
    params:
        The analyzed HAP.
    service_rate:
        The queue's ``mu''``.
    gm1:
        Underlying G/M/1 solution (σ, delay, waiting-time distribution).
    interarrival:
        The closed-form interarrival distribution used.
    """

    params: HAPParameters
    service_rate: float
    gm1: GM1Solution
    interarrival: InterarrivalDistribution

    @property
    def sigma(self) -> float:
        """Probability an arrival finds the server busy."""
        return self.gm1.sigma

    @property
    def mean_delay(self) -> float:
        """Mean message delay ``T = 1 / (mu'' (1 - sigma))``."""
        return self.gm1.mean_delay

    @property
    def mean_queue_length(self) -> float:
        """Mean number of messages in system (Little)."""
        return self.gm1.mean_queue_length

    @property
    def utilization(self) -> float:
        """Offered load ``lambda-bar / mu''``."""
        return self.gm1.utilization

    def waiting_time_cdf(self, y):
        """``W(y) = 1 - sigma exp(-mu''(1 - sigma) y)``."""
        return self.gm1.waiting_time_cdf(y)


def solve_solution2(
    params: HAPParameters,
    service_rate: float | None = None,
    method: str = "brent",
) -> Solution2Result:
    """Run Solution 2 on a HAP.

    Parameters
    ----------
    params:
        HAP description (any shape — the closed form is general).
    service_rate:
        Queue service rate ``mu''``; defaults to the common rate of the
        message types.
    method:
        σ-root method: ``"brent"`` (default) or ``"paper"`` (the published
        averaging iteration).
    """
    if service_rate is None:
        service_rate = params.common_service_rate()
    interarrival = InterarrivalDistribution(params)
    gm1 = solve_gm1(
        interarrival.laplace,
        service_rate,
        params.mean_message_rate,
        method=method,
    )
    return Solution2Result(
        params=params,
        service_rate=service_rate,
        gm1=gm1,
        interarrival=interarrival,
    )


@dataclass(frozen=True)
class ConditionReport:
    """Quantified Section-4.1 validity conditions for Solutions 1 and 2.

    Attributes
    ----------
    level_separation_user_app:
        Application-level rates divided by user-level rates (condition 1:
        should be well above 1; the paper's rule of thumb is >= 5).
    level_separation_app_message:
        Message-level over application-level rates.
    neighbour_rate_jump:
        Relative message-rate change when one application arrives at the
        *mean* population — the paper's condition 2 says a state's rate
        should stay within roughly 2x of its neighbours'.
    utilization:
        Offered load; condition 3 wants this under ~0.30.
    """

    level_separation_user_app: float
    level_separation_app_message: float
    neighbour_rate_jump: float
    utilization: float

    @property
    def satisfied(self) -> bool:
        """The paper's empirical rule: separations >= 5, jump <= 1, rho <= 0.3."""
        return (
            self.level_separation_user_app >= 5.0
            and self.level_separation_app_message >= 5.0
            and self.neighbour_rate_jump <= 1.0
            and self.utilization <= 0.30
        )


def condition_report(
    params: HAPParameters, service_rate: float | None = None
) -> ConditionReport:
    """Evaluate the three approximation conditions for a parameter set."""
    if service_rate is None:
        service_rate = params.common_service_rate()
    user_scale = max(params.user_arrival_rate, params.user_departure_rate)
    app_scale = max(
        max(app.arrival_rate, app.departure_rate) for app in params.applications
    )
    message_scale = min(app.total_message_rate for app in params.applications)
    mean_apps = max(params.mean_applications, 1.0)
    biggest_app_rate = max(app.total_message_rate for app in params.applications)
    return ConditionReport(
        level_separation_user_app=app_scale / user_scale,
        level_separation_app_message=message_scale / app_scale,
        neighbour_rate_jump=biggest_app_rate
        / (mean_apps * min(app.total_message_rate for app in params.applications)),
        utilization=params.mean_message_rate / service_rate,
    )
