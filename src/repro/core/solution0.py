"""Solution 0 — "exact" brute-force analysis of the HAP/M/1 Markov chain.

The paper's Section 3.2.1 augments the modulating chain with the message
count ``z`` and iterates the balance equations of the resulting
``(l + 2)``-dimension chain to steady state (two weeks of 1993 CPU time).
This module implements that chain three ways:

* ``backend="direct"`` — assemble the truncated generator sparsely and solve
  the stationary equations with a sparse LU factorization (the production
  path; seconds instead of weeks).
* ``backend="power"`` — the paper-faithful iterative route: uniformize the
  chain and apply power iteration, sweeping until successive distributions
  agree.  Kept for fidelity and used with tiny state spaces in tests.
* ``backend="qbd"`` — do not truncate ``z`` at all: treat the queue as a
  quasi-birth-death process over the modulating phases and use Neuts'
  matrix-geometric method (:mod:`repro.markov.matrix_geometric`).

All three agree to numerical tolerance on overlapping state spaces, which is
the strongest internal-consistency check in the test suite.  Unlike
Solutions 1 and 2, Solution 0 *preserves the correlation between successive
interarrivals* — the paper attributes the big accuracy gap at high load
exactly to that correlation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.core.mmpp_mapping import (
    MappedMMPP,
    hap_to_mmpp,
    symmetric_hap_to_mmpp,
)
from repro.core.params import HAPParameters
from repro.markov.matrix_geometric import solve_mmpp_m1
from repro.markov.uniformization import UNIFORMIZATION_MARGIN

__all__ = ["DEFAULT_PHASE_MASS_TOL", "Solution0Result", "solve_solution0"]

#: Stationary-mass threshold for trimming the modulating phase space on the
#: auto-bounds QBD path.  Box corner states below this probability cost full
#: cubic work in the matrix-geometric solve while moving the answer at the
#: 1e-7 relative level; trimming them is the single largest analytic speedup.
DEFAULT_PHASE_MASS_TOL = 1e-12


@dataclass(frozen=True)
class Solution0Result:
    """Output of Solution 0 for a HAP/M/1 queue.

    Attributes
    ----------
    params:
        The analyzed HAP.
    service_rate:
        The queue's ``mu''``.
    mean_queue_length:
        ``z-bar`` — stationary mean number of messages in system.
    mean_delay:
        ``T = z-bar / lambda-eff`` by Little's result.
    effective_arrival_rate:
        Mean *accepted* arrival rate (equals the chain's mean rate up to the
        tiny mass blocked at the ``z`` truncation boundary).
    sigma:
        Probability an arriving message finds the server busy.
    utilization:
        Time-stationary probability the server is busy.
    boundary_mass:
        Stationary probability at ``z = z_max`` (``qbd`` backend: 0.0); if
        this is not tiny, enlarge ``z_max``.
    queue_length_pmf:
        Marginal distribution of ``z`` (truncated backends) or the first
        ``z_max + 1`` probabilities (``qbd``).
    backend:
        Which backend produced the numbers.
    rate_matrix:
        The converged matrix-geometric ``R`` (``qbd`` backend only, else
        ``None``) — feed it to a neighbouring sweep point via
        ``qbd_initial_rate_matrix`` to warm-start its fixed point.
    """

    params: HAPParameters
    service_rate: float
    mean_queue_length: float
    mean_delay: float
    effective_arrival_rate: float
    sigma: float
    utilization: float
    boundary_mass: float
    queue_length_pmf: np.ndarray
    backend: str
    rate_matrix: np.ndarray | None = None


def solve_solution0(
    params: HAPParameters,
    service_rate: float | None = None,
    backend: str = "qbd",
    modulating_bounds: tuple[int, ...] | None = None,
    z_max: int = 400,
    collapse_symmetric: bool = True,
    power_tol: float = 1e-12,
    power_max_sweeps: int = 2_000_000,
    phase_mass_tol: float | None = None,
    qbd_initial_rate_matrix: np.ndarray | None = None,
) -> Solution0Result:
    """Run Solution 0 on a HAP.

    Parameters
    ----------
    params:
        HAP description.
    service_rate:
        Queue service rate; defaults to the common message service rate.
    backend:
        ``"qbd"`` (default, exact in ``z``), ``"direct"`` (sparse LU on the
        ``z``-truncated chain) or ``"power"`` (paper-faithful iteration).
        This selects the *queue solver*, not the analytic grid-evaluation
        backend of :mod:`repro.markov.spectral` (``dense``/``krylov``/
        ``auto``) — every queue backend here already assembles its blocks
        sparsely (:func:`_augment_with_queue` is a CSR Kronecker build, and
        ``qbd`` crosses to dense exactly once, at the R-solver boundary
        where R is dense by nature).
    modulating_bounds:
        Truncation of the modulating chain; ``(x_max, y_max)`` for collapsed
        symmetric HAPs, else one bound per dimension.
    z_max:
        Queue-length truncation for ``direct``/``power`` (and the length of
        the reported pmf for ``qbd``).
    collapse_symmetric:
        Collapse symmetric HAPs to the 2-D Figure-7 modulating chain.
    power_tol, power_max_sweeps:
        Convergence controls for the ``power`` backend.
    phase_mass_tol:
        Mass-adaptive trimming threshold for the modulating phase space
        (see :mod:`repro.core.mmpp_mapping`).  ``None`` (default) trims at
        :data:`DEFAULT_PHASE_MASS_TOL` on the auto-bounds ``qbd`` path —
        where the box is a numerical artifact — and never when
        ``modulating_bounds`` is given (explicit boxes, including
        admission-control limits, are honoured exactly).  Pass ``0.0`` to
        force the full rectangle, or a positive threshold to trim anyway.
    qbd_initial_rate_matrix:
        Optional warm start for the ``qbd`` backend's rate-matrix fixed
        point — typically the :attr:`Solution0Result.rate_matrix` of an
        adjacent sweep point with the same modulating bounds.  Ignored by
        the other backends; wrong-shaped guesses are rejected downstream.
    """
    if service_rate is None:
        service_rate = params.common_service_rate()
    if phase_mass_tol is None:
        phase_mass_tol = (
            DEFAULT_PHASE_MASS_TOL
            if backend == "qbd" and modulating_bounds is None
            else 0.0
        )
    mapped = _map_modulating_chain(
        params, modulating_bounds, collapse_symmetric, phase_mass_tol
    )
    if backend == "qbd":
        return _solve_qbd(
            params, service_rate, mapped, z_max, qbd_initial_rate_matrix
        )
    if backend not in ("direct", "power"):
        raise ValueError(f"unknown backend {backend!r}")

    generator, rates = _augment_with_queue(mapped, service_rate, z_max)
    if backend == "direct":
        pi = _stationary_direct(generator)
    else:
        pi = _stationary_power(generator, power_tol, power_max_sweeps)

    num_phases = mapped.space.size
    # z-major layout: pi_grid[z, phase].
    pi_grid = pi.reshape(z_max + 1, num_phases)
    z_values = np.arange(z_max + 1, dtype=float)
    queue_pmf = pi_grid.sum(axis=1)
    mean_queue = float(queue_pmf @ z_values)
    # Arrivals at z = z_max are blocked by the truncation.
    accepted = np.ones((z_max + 1, 1)) * rates[None, :]
    accepted[z_max, :] = 0.0
    effective_rate = float((pi_grid * accepted).sum())
    if effective_rate <= 0:
        raise ArithmeticError("chain accepted no arrivals; check parameters")
    busy = 1.0 - float(pi_grid[0, :].sum())
    arrivals_to_busy = float((pi_grid[1:, :] * accepted[1:, :]).sum())
    return Solution0Result(
        params=params,
        service_rate=service_rate,
        mean_queue_length=mean_queue,
        mean_delay=mean_queue / effective_rate,
        effective_arrival_rate=effective_rate,
        sigma=arrivals_to_busy / effective_rate,
        utilization=busy,
        boundary_mass=float(pi_grid[z_max, :].sum()),
        queue_length_pmf=queue_pmf,
        backend=backend,
    )


def _map_modulating_chain(
    params: HAPParameters,
    bounds: tuple[int, ...] | None,
    collapse_symmetric: bool,
    mass_tol: float = 0.0,
) -> MappedMMPP:
    if collapse_symmetric and params.is_symmetric:
        if bounds is None:
            return symmetric_hap_to_mmpp(params, mass_tol=mass_tol)
        x_max, y_max = bounds
        return symmetric_hap_to_mmpp(
            params, x_max=x_max, y_max=y_max, mass_tol=mass_tol
        )
    return hap_to_mmpp(params, bounds=bounds, mass_tol=mass_tol)


def _augment_with_queue(
    mapped: MappedMMPP, service_rate: float, z_max: int
) -> tuple[sp.csr_matrix, np.ndarray]:
    """Kronecker-assemble the generator of the (z, modulating) chain.

    z-major layout (state index ``z * num_phases + phase``) keeps the matrix
    bandwidth at ~``num_phases``, which makes the sparse LU factorization
    dramatically cheaper than the phase-major layout:

    ``Q = I_z ⊗ Q_mod  +  (U - D_up) ⊗ diag(r)  +  mu (L - D_down) ⊗ I``

    where ``U``/``L`` shift the queue up/down and the ``D`` terms keep rows
    summing to zero (arrivals at ``z_max`` are blocked by the truncation).
    """
    if z_max < 1:
        raise ValueError("z_max must be at least 1")
    rates = mapped.mmpp.rates
    num_z = z_max + 1
    identity_z = sp.eye(num_z, format="csr")
    shift_up = sp.diags([np.ones(z_max)], offsets=[1], format="csr")
    up_mask = sp.diags(
        [np.concatenate([np.ones(z_max), [0.0]])], offsets=[0], format="csr"
    )
    shift_down = sp.diags([np.ones(z_max)], offsets=[-1], format="csr")
    down_mask = sp.diags(
        [np.concatenate([[0.0], np.ones(z_max)])], offsets=[0], format="csr"
    )
    q_mod = mapped.mmpp.generator
    q_mod = q_mod if sp.issparse(q_mod) else sp.csr_matrix(q_mod)
    generator = (
        sp.kron(identity_z, q_mod)
        + sp.kron(shift_up - up_mask, sp.diags([rates], offsets=[0]))
        + sp.kron(
            service_rate * (shift_down - down_mask),
            sp.eye(mapped.space.size, format="csr"),
        )
    )
    return generator.tocsr(), rates


def _stationary_direct(generator: sp.csr_matrix) -> np.ndarray:
    """Sparse LU solve of ``pi Q = 0`` with normalization.

    Rather than overwriting one balance equation with the (dense)
    normalization row — which destroys sparsity and blows up LU fill-in —
    we pin the empty state's probability to 1, solve the remaining ``n - 1``
    balance equations for the other components, and normalize afterwards.
    State 0 (empty system) always carries non-negligible stationary mass
    for the stable queues we solve, so the pin is numerically benign.
    """
    n = generator.shape[0]
    a = generator.T.tocsc()
    # Q^T[1:, 1:] x = -Q^T[1:, 0] with pi[0] := 1.
    left = a[1:, 1:]
    rhs = -np.asarray(a[1:, 0].toarray()).ravel()
    x = spla.spsolve(left, rhs)
    pi = np.concatenate([[1.0], x])
    pi = np.maximum(pi, 0.0)
    return pi / pi.sum()


def _stationary_power(
    generator: sp.csr_matrix, tol: float, max_sweeps: int
) -> np.ndarray:
    """Uniformized power iteration — the paper's brute-force loop.

    The paper initializes states uniformly, recomputes probabilities sweep
    by sweep, renormalizes, and stops when successive sweeps agree; power
    iteration on the uniformized transition matrix is the same computation
    in matrix form.

    The uniformization rate carries :data:`UNIFORMIZATION_MARGIN` over the
    largest exit rate: at exactly the maximum, states with that exit rate
    get a zero self-loop and the DTMC can be periodic (equal exit rates
    around a cycle), making power iteration oscillate forever.  The margin
    leaves every state a self-loop (aperiodicity) without moving the fixed
    point; see :mod:`repro.markov.uniformization`.
    """
    n = generator.shape[0]
    rate = UNIFORMIZATION_MARGIN * float(-generator.diagonal().min())
    transition = (sp.eye(n, format="csr") + generator / rate).T.tocsr()
    pi = np.full(n, 1.0 / n)
    for _ in range(max_sweeps):
        updated = transition @ pi
        updated /= updated.sum()
        if float(np.abs(updated - pi).max()) < tol:
            return updated
        pi = updated
    raise ArithmeticError(
        f"power iteration did not converge within {max_sweeps} sweeps"
    )


def _solve_qbd(
    params: HAPParameters,
    service_rate: float,
    mapped: MappedMMPP,
    z_max: int,
    initial_rate_matrix: np.ndarray | None = None,
) -> Solution0Result:
    solution = solve_mmpp_m1(
        mapped.mmpp, service_rate, initial_rate_matrix=initial_rate_matrix
    )
    mean_queue = solution.mean_queue_length()
    mean_rate = mapped.mmpp.mean_rate()
    # sigma: arrival-weighted probability of finding the server busy.
    rate_when_empty = float(solution.boundary @ mapped.mmpp.rates)
    sigma = 1.0 - rate_when_empty / mean_rate
    return Solution0Result(
        params=params,
        service_rate=service_rate,
        mean_queue_length=mean_queue,
        mean_delay=mean_queue / mean_rate,
        effective_arrival_rate=mean_rate,
        sigma=sigma,
        utilization=1.0 - solution.probability_empty(),
        boundary_mass=0.0,
        queue_length_pmf=solution.level_distribution(z_max),
        backend="qbd",
        rate_matrix=solution.rate_matrix,
    )
