"""The paper's worked example HAPs (Figure 5), as ready-made presets.

Figure 5(a): one homogeneous user class running four application types over
five message types — A interactive, B file transfer, C image transfer,
D voice call, E compressed video:

* type 1 — a programming environment (interactive + file transfer),
* type 2 — a database query front-end (short interactive only),
* type 3 — a graphics-intensive tool (fixed-size images),
* type 4 — a multimedia application (all five message types).

Figure 5(b) splits the same workload into four *heterogeneous user types*,
each running one application type — the paper's illustration that a mixed
community is just a superposition of per-class HAPs (and our
:func:`repro.control.overlay.merge_haps` inverts the split exactly, which
the tests verify).

Rates are illustrative (the paper prints none for Figure 5); they are
chosen so the presets are immediately usable against a 50-100 msgs/s
server and sum to the same totals across the (a) and (b) forms.
"""

from __future__ import annotations

from repro.core.params import ApplicationType, HAPParameters, MessageType

__all__ = [
    "figure5_application_types",
    "figure5_homogeneous",
    "figure5_user_classes",
]

#: Common queue service rate for the preset message types.
_SERVICE_RATE = 50.0


def _messages() -> dict[str, MessageType]:
    return {
        "A": MessageType(0.6, _SERVICE_RATE, name="interactive"),
        "B": MessageType(0.05, _SERVICE_RATE, name="file-transfer"),
        "C": MessageType(0.15, _SERVICE_RATE, name="image"),
        "D": MessageType(1.0, _SERVICE_RATE, name="voice"),
        "E": MessageType(2.0, _SERVICE_RATE, name="video"),
    }


def figure5_application_types() -> tuple[ApplicationType, ...]:
    """The four Figure-5 application types."""
    msg = _messages()
    return (
        ApplicationType(
            arrival_rate=0.02,
            departure_rate=0.01,
            messages=(msg["A"], msg["B"]),
            name="programming",
        ),
        ApplicationType(
            arrival_rate=0.03,
            departure_rate=0.02,
            messages=(msg["A"],),
            name="database",
        ),
        ApplicationType(
            arrival_rate=0.008,
            departure_rate=0.02,
            messages=(msg["C"],),
            name="graphics",
        ),
        ApplicationType(
            arrival_rate=0.004,
            departure_rate=0.01,
            messages=(msg["A"], msg["B"], msg["C"], msg["D"], msg["E"]),
            name="multimedia",
        ),
    )


def figure5_homogeneous(
    user_arrival_rate: float = 0.003,
    user_departure_rate: float = 0.001,
) -> HAPParameters:
    """Figure 5(a): one user class invoking all four application types."""
    return HAPParameters(
        user_arrival_rate=user_arrival_rate,
        user_departure_rate=user_departure_rate,
        applications=figure5_application_types(),
        name="figure5a",
    )


def figure5_user_classes(
    user_arrival_rate: float = 0.003,
    user_departure_rate: float = 0.001,
) -> tuple[HAPParameters, ...]:
    """Figure 5(b): four heterogeneous user classes, one app type each.

    Each class keeps the *same* user-population dynamics, so by Equation
    4's linearity the four classes superpose exactly to Figure 5(a)'s
    message rate (the tests assert it).
    """
    return tuple(
        HAPParameters(
            user_arrival_rate=user_arrival_rate,
            user_departure_rate=user_departure_rate,
            applications=(app,),
            name=f"figure5b-{app.name}",
        )
        for app in figure5_application_types()
    )
