"""repro — a full reproduction of "HAP: A New Model for Packet Arrivals"
(Lin, Tsai, Huang, Gerla; SIGCOMM 1993).

HAP (Hierarchical Arrival Process) models network traffic as a three-level
hierarchy — users invoke applications, applications emit messages — and
shows that the resulting multi-time-scale correlation makes queueing delay
dramatically worse than Poisson or flat-MMPP models predict.

Quick start
-----------
>>> from repro import HAP
>>> hap = HAP.symmetric(
...     user_arrival_rate=0.0055, user_departure_rate=0.001,
...     app_arrival_rate=0.01, app_departure_rate=0.01,
...     message_arrival_rate=0.1, message_service_rate=20.0,
...     num_app_types=5, num_message_types=3,
... )
>>> round(hap.mean_message_rate, 2)     # the paper's lambda-bar
8.25
>>> sol = hap.solve(solution=2)         # closed-form queueing analysis
>>> result = hap.simulate(horizon=1e4)  # event-driven simulation

Package map
-----------
* :mod:`repro.core` — the HAP model, HAP-CS, on–off special cases, the
  MMPP mapping, and the paper's Solutions 0/1/2.
* :mod:`repro.markov` — CTMC/MMPP substrate and the matrix-geometric
  MMPP/M/1 solver.
* :mod:`repro.queueing` — M/M/1, M/G/1, G/M/1 (σ-algorithm) closed forms.
* :mod:`repro.sim` — the discrete-event simulator and traffic sources.
* :mod:`repro.analysis` — statistics, convergence and comparison helpers.
* :mod:`repro.control` — broadband-network control applications: admission
  tables, bandwidth allocation, CL overlay design.
* :mod:`repro.experiments` — the paper's parameter sets and per-figure
  experiment runners used by the benchmark suite.
"""

from repro.core import (
    HAP,
    ApplicationType,
    ClientServerApplicationType,
    ClientServerHAPParameters,
    ClientServerMessageType,
    HAPParameters,
    InterarrivalDistribution,
    InterruptedPoisson,
    MessageType,
    TwoLevelHAP,
    solve_bounded_solution2,
    solve_solution0,
    solve_solution1,
    solve_solution2,
)
from repro.queueing import solve_gm1, solve_mg1, solve_mm1
from repro.sim import simulate_hap_mm1, simulate_source_mm1

__version__ = "1.0.0"

__all__ = [
    "HAP",
    "ApplicationType",
    "ClientServerApplicationType",
    "ClientServerHAPParameters",
    "ClientServerMessageType",
    "HAPParameters",
    "InterarrivalDistribution",
    "InterruptedPoisson",
    "MessageType",
    "TwoLevelHAP",
    "__version__",
    "simulate_hap_mm1",
    "simulate_source_mm1",
    "solve_bounded_solution2",
    "solve_gm1",
    "solve_mg1",
    "solve_mm1",
    "solve_solution0",
    "solve_solution1",
    "solve_solution2",
]
