"""Grid campaigns: parameter points × replications over one process pool.

Every ``repro.experiments.fig*`` driver has the same shape — a handful of
parameter points (HAP versus Poisson, a service-rate ladder, a burstiness
grid), each needing independent replications.  :func:`sweep` runs that grid
through one shared pool with round-robin dispatch (so a wall-clock budget
truncates all points evenly rather than starving the last ones) and returns
per-point :class:`~repro.runtime.executor.CampaignResult` objects.

Seed discipline mirrors the executor's: point ``p`` replication ``r`` runs
with ``base_seed + p · seed_stride + r`` unless the point pins its own
``base_seed``.  The derivation depends only on grid position — never on
scheduling — so sweeps are reproducible at any worker count.
"""

from __future__ import annotations

import math
import time
import warnings
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.runtime.executor import (
    CampaignResult,
    ReplicationFailure,
    _Job,
    run_jobs,
)
from repro.runtime.resilience import CheckpointJournal, RetryPolicy

__all__ = [
    "SweepCampaignResult",
    "SweepPoint",
    "SweepPointResult",
    "SweepResult",
    "sweep",
]


@dataclass(frozen=True)
class SweepPoint:
    """One parameter point of a campaign grid.

    Attributes
    ----------
    label:
        Name the point is reported (and looked up) under.
    task:
        ``task(seed) -> result``; must be picklable (module-level function
        or :func:`functools.partial` over one) for pool dispatch.
    base_seed:
        Pin this point's first seed; ``None`` derives it from the sweep's
        ``base_seed`` and the point's grid position.
    num_replications:
        Override the sweep-wide replication count for this point.
    """

    label: str
    task: Callable
    base_seed: int | None = None
    num_replications: int | None = None


class SweepCampaignResult(CampaignResult):
    """A per-point campaign inside a sweep.

    Points share one pool and their replications interleave, so a per-point
    wall time is not well defined.  Historically ``wall_clock`` silently
    held the *whole-sweep* wall-clock — the same number for every point —
    which misled per-point timing tables (PR 1 review).  Reading
    ``wall_clock`` on a per-point campaign is therefore **deprecated** (it
    still returns the sweep total, with a :class:`DeprecationWarning`):
    use ``busy_time`` for this point's cost, or
    :attr:`SweepResult.wall_clock` for the sweep total.

    ``events_per_second`` and ``describe`` are redefined off ``busy_time``
    so per-point throughput is a real per-point figure.
    """

    # NOT a @dataclass: a property could not shadow the frozen parent's
    # field (its generated __init__ assigns via object.__setattr__, which
    # fires property setters), so the deprecation hooks attribute access.
    def __getattribute__(self, name):
        if name == "wall_clock":
            warnings.warn(
                "per-point CampaignResult.wall_clock inside a sweep is the "
                "whole-sweep wall-clock, not a per-point time; use "
                "busy_time for this point's cost or SweepResult.wall_clock "
                "for the sweep total",
                DeprecationWarning,
                stacklevel=2,
            )
        return super().__getattribute__(name)

    @property
    def events_per_second(self) -> float:
        """Per-point throughput: this point's events / its busy seconds.

        0.0 (not NaN) when the point accumulated no busy time — e.g. every
        replication failed instantly or was spliced from a checkpoint.
        """
        if self.busy_time <= 0.0:
            return 0.0
        return self.events_processed / self.busy_time

    def describe(self) -> str:
        """One line of per-point stats, timed off ``busy_time``."""
        rate = self.events_per_second
        rate_text = f"{rate:,.0f} events/s" if not math.isnan(rate) else "n/a"
        parts = [
            f"{self.completed}/{self.requested} replications",
            f"{self.busy_time:.2f} s busy",
            rate_text,
        ]
        if self.failures:
            parts.append(f"{len(self.failures)} failed")
        if self.skipped_seeds:
            parts.append(f"{len(self.skipped_seeds)} skipped (budget)")
        if self.retried_seeds:
            parts.append(f"{len(self.retried_seeds)} retried")
        if self.resumed:
            parts.append(f"{self.resumed} resumed (checkpoint)")
        return ", ".join(parts)


@dataclass(frozen=True)
class SweepPointResult:
    """One grid point's campaign, keyed by its label.

    ``campaign`` is a :class:`SweepCampaignResult`: per-point timing comes
    from ``busy_time`` (the summed execution seconds of this point's
    replications alone); accessing its ``wall_clock`` is deprecated.
    """

    label: str
    campaign: CampaignResult


@dataclass(frozen=True)
class SweepResult:
    """All campaigns of a sweep, in grid order.

    Attributes
    ----------
    points:
        Per-point results, in the order the points were given.
    wall_clock:
        Whole-sweep wall-clock seconds (shared pool, so this is *not* the
        sum of per-point wall-clocks).
    max_workers:
        Worker processes used.
    """

    points: tuple[SweepPointResult, ...]
    wall_clock: float
    max_workers: int

    def __getitem__(self, label: str) -> CampaignResult:
        """The campaign for ``label`` (KeyError if absent)."""
        for point in self.points:
            if point.label == label:
                return point.campaign
        raise KeyError(label)

    def labels(self) -> tuple[str, ...]:
        """Grid-point labels, in grid order."""
        return tuple(point.label for point in self.points)

    @property
    def failures(self) -> tuple[ReplicationFailure, ...]:
        """All captured failures across the grid."""
        return tuple(
            failure
            for point in self.points
            for failure in point.campaign.failures
        )

    @property
    def skipped(self) -> int:
        """Replications never dispatched because the budget ran out."""
        return sum(len(point.campaign.skipped_seeds) for point in self.points)

    @property
    def events_processed(self) -> int:
        """Simulator events fired across the whole grid."""
        return sum(point.campaign.events_processed for point in self.points)

    @property
    def events_per_second(self) -> float:
        """Aggregate throughput: grid events / sweep wall-clock.

        0.0 (not NaN) for a sweep that consumed no wall-clock time, so
        downstream tables and gates see a number, not a NaN.
        """
        if self.wall_clock <= 0.0:
            return 0.0
        return self.events_processed / self.wall_clock

    def raise_if_failed(self) -> None:
        """Re-raise captured failures, if any, as one error."""
        from repro.runtime.executor import ReplicationError

        if self.failures:
            raise ReplicationError(self.failures)

    def describe(self) -> str:
        """Per-point progress/timing lines plus a sweep total.

        Per-point lines are timed off each point's ``busy_time`` (the only
        well-defined per-point figure — points interleave over one shared
        pool); the closing total carries the sweep wall-clock.
        """
        lines = [
            f"{point.label:<12} {point.campaign.describe()}"
            for point in self.points
        ]
        lines.append(
            f"sweep total: {self.wall_clock:.2f} s wall, "
            f"{self.max_workers} worker(s), "
            f"{self.events_processed:,} events"
        )
        return "\n".join(lines)


def _normalized(points: Sequence) -> list[SweepPoint]:
    """Accept ``SweepPoint`` objects or ``(label, task)`` pairs."""
    normalized = []
    for point in points:
        if isinstance(point, SweepPoint):
            normalized.append(point)
        else:
            label, task = point
            normalized.append(SweepPoint(label=label, task=task))
    if not normalized:
        raise ValueError("sweep needs at least one point")
    labels = [point.label for point in normalized]
    if len(set(labels)) != len(labels):
        raise ValueError(f"duplicate sweep labels: {labels}")
    return normalized


def sweep(
    points: Sequence,
    num_replications: int = 1,
    base_seed: int = 0,
    seed_stride: int = 1_000,
    max_workers: int | None = None,
    chunk_size: int | None = None,
    wall_clock_budget: float | None = None,
    policy: RetryPolicy | None = None,
    checkpoint: CheckpointJournal | str | None = None,
    resume: bool = False,
) -> SweepResult:
    """Run a grid of parameter points × replications over one pool.

    Parameters
    ----------
    points:
        :class:`SweepPoint` objects or ``(label, task)`` pairs.
    num_replications:
        Replications per point (points may override individually).
    base_seed, seed_stride:
        Point ``p`` replication ``r`` gets seed
        ``base_seed + p * seed_stride + r`` unless the point pins
        ``base_seed``; the stride keeps points' seed ranges disjoint.
    max_workers, chunk_size:
        As in :class:`~repro.runtime.executor.ParallelReplicator`.
    wall_clock_budget:
        Optional budget in seconds, checked at chunk boundaries.  Jobs are
        dispatched round-robin across points, so a truncated sweep has
        evenly thinned replication counts instead of whole missing points.
    policy:
        Optional :class:`~repro.runtime.resilience.RetryPolicy` adding
        per-job timeouts and seed-preserving retries across the grid.
    checkpoint, resume:
        Optional crash-safe journal (path or
        :class:`~repro.runtime.resilience.CheckpointJournal`); with
        ``resume=True`` a sweep interrupted at grid point *k* restarts
        from its last completed replication and produces bit-identical
        result tables.  Journal keys are ``"<label>/seed=<seed>"``, so
        resuming is safe across re-orderings of the same grid.

    Notes
    -----
    Each returned campaign is a :class:`SweepCampaignResult`: per-point
    throughput reads off ``busy_time``, and accessing its ``wall_clock``
    (the whole-sweep figure) is deprecated; see :class:`SweepPointResult`.
    """
    if num_replications < 1:
        raise ValueError("need at least one replication per point")
    grid = _normalized(points)
    replications = [
        point.num_replications
        if point.num_replications is not None
        else num_replications
        for point in grid
    ]
    first_seeds = [
        point.base_seed
        if point.base_seed is not None
        else base_seed + position * seed_stride
        for position, point in enumerate(grid)
    ]

    # Flatten round-robin: replication round 0 of every point, then round 1…
    jobs: list[_Job] = []
    coordinates: list[tuple[int, int]] = []  # job index -> (point, replication)
    for round_index in range(max(replications)):
        for position, point in enumerate(grid):
            if round_index >= replications[position]:
                continue
            coordinates.append((position, round_index))
            seed = first_seeds[position] + round_index
            jobs.append(
                _Job(
                    index=len(jobs),
                    seed=seed,
                    task=point.task,
                    key=f"{point.label}/seed={seed}",
                )
            )

    started = time.perf_counter()
    outcomes, skipped, _, workers = run_jobs(
        jobs,
        max_workers=max_workers,
        chunk_size=chunk_size,
        wall_clock_budget=wall_clock_budget,
        policy=policy,
        journal=checkpoint,
        resume=resume,
    )
    wall_clock = time.perf_counter() - started

    skipped_ids = {job.index for job in skipped}
    per_point_outcomes: list[list] = [[] for _ in grid]
    per_point_skipped: list[list[int]] = [[] for _ in grid]
    for outcome in outcomes:
        position, _ = coordinates[outcome.index]
        per_point_outcomes[position].append(outcome)
    for job in jobs:
        if job.index in skipped_ids:
            position, _ = coordinates[job.index]
            per_point_skipped[position].append(job.seed)

    results = []
    for position, point in enumerate(grid):
        ordered = sorted(per_point_outcomes[position], key=lambda o: o.seed)
        successes = [o for o in ordered if o.error is None]
        failures = tuple(
            ReplicationFailure(
                index=o.seed - first_seeds[position],
                seed=o.seed,
                error=o.error,
                traceback=o.traceback,
                attempts=o.attempts,
            )
            for o in ordered
            if o.error is not None
        )
        campaign = SweepCampaignResult(
            results=tuple(o.value for o in successes),
            seeds=tuple(o.seed for o in successes),
            failures=failures,
            skipped_seeds=tuple(per_point_skipped[position]),
            wall_clock=wall_clock,
            busy_time=sum(o.elapsed for o in ordered),
            max_workers=workers,
            retried_seeds=tuple(
                sorted({o.seed for o in ordered if o.attempts > 1})
            ),
            resumed=sum(1 for o in ordered if o.from_checkpoint),
        )
        results.append(SweepPointResult(label=point.label, campaign=campaign))
    return SweepResult(
        points=tuple(results), wall_clock=wall_clock, max_workers=workers
    )
