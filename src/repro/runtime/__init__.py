"""Parallel replication runtime: process-pool campaigns with serial fidelity.

The paper's own Figure 13 makes the case for this subsystem: HAP
simulations converge painfully slowly because user-level dynamics evolve
over tens of minutes while message service takes milliseconds, so every
simulated figure needs many long *independent* replications.  Independence
is an opportunity — replications share nothing, so they can fan out over a
process pool with zero coordination.  The contract that makes the fan-out
safe is *serial fidelity*: seeds are derived exactly as the legacy serial
loop derived them, and results are re-ordered by replication index, so a
parallel campaign is bit-identical to the serial one.

Two layers:

* :class:`~repro.runtime.executor.ParallelReplicator` runs ``run_one(seed)``
  over ``n`` seeds (one parameter point, many replications) with failure
  capture and progress/timing stats.
* :func:`~repro.runtime.sweep.sweep` runs a grid of parameter points ×
  replications — the shape every ``repro.experiments.fig*`` driver needs —
  with chunked dispatch and an optional wall-clock budget.

Fault tolerance rides on both layers via :mod:`repro.runtime.resilience`
(per-job timeouts, seed-preserving retries, pool respawn on worker death,
crash-safe checkpoint journals) and is proven by the deterministic
fault-injection harness in :mod:`repro.runtime.chaos`.
"""

from repro.runtime.analytic import grid_map, run_analytic_sweep
from repro.runtime.chaos import ChaosPlan
from repro.runtime.columnar import ColumnarReplication, run_columnar_campaign
from repro.runtime.executor import (
    CampaignResult,
    ParallelReplicator,
    ReplicationError,
    ReplicationFailure,
    default_worker_count,
    derive_seeds,
)
from repro.runtime.resilience import (
    CheckpointJournal,
    DegradationChain,
    DegradationError,
    RetryPolicy,
    SolveDiagnostics,
)
from repro.runtime.sweep import (
    SweepCampaignResult,
    SweepPoint,
    SweepPointResult,
    SweepResult,
    sweep,
)

__all__ = [
    "CampaignResult",
    "ChaosPlan",
    "CheckpointJournal",
    "ColumnarReplication",
    "DegradationChain",
    "DegradationError",
    "ParallelReplicator",
    "ReplicationError",
    "ReplicationFailure",
    "RetryPolicy",
    "SolveDiagnostics",
    "SweepCampaignResult",
    "SweepPoint",
    "SweepPointResult",
    "SweepResult",
    "default_worker_count",
    "derive_seeds",
    "grid_map",
    "run_analytic_sweep",
    "run_columnar_campaign",
    "sweep",
]
