"""Fault tolerance for long campaigns: retries, checkpoints, degradation.

The figure pipelines are multi-hour fan-outs (dozens of load points times
replications), and the paper's own results depend on all of them finishing.
Three failure modes threaten that, and this module owns the answer to each:

**Transient job failures** (a worker OOM-killed by the OS, a flaky solve) —
:class:`RetryPolicy`: per-job wall-clock timeouts and seed-preserving
retries with exponential backoff and *deterministic* jitter (derived from
``(seed, attempt)``, never from global randomness, so retry schedules are
reproducible), bounded by a campaign-level retry budget.

**Process death mid-campaign** (the whole interpreter, not one worker) —
:class:`CheckpointJournal`: a crash-safe JSONL journal with one record per
completed unit (replication seed or grid point), written with a single
atomic ``O_APPEND`` write and an explicit fsync policy.  Resuming splices
the journaled results back by key, so an interrupted campaign restarts from
the last completed unit and its final statistics are bit-identical to an
uninterrupted run (payloads are pickled, not re-derived).

**Numerically hostile corners** (an ill-conditioned eigenproblem, a
singular stationary system, a stalled fixed point) —
:class:`DegradationChain`: a declarative ordered ladder of solver rungs.
Each rung either answers or raises; the chain records every attempt in a
:class:`SolveDiagnostics` that travels with the result, replacing the
ad-hoc scattered fallbacks the solver stack grew previously.  Chains check
:func:`repro.runtime.chaos.raise_if_poisoned` before each rung, which is
what lets the fault-injection suite prove every ladder position is
reachable and correct.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import random
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.runtime import chaos

__all__ = [
    "CheckpointJournal",
    "CheckpointRecord",
    "DegradationChain",
    "DegradationError",
    "RetryPolicy",
    "RungAttempt",
    "RungRejected",
    "SolveDiagnostics",
]

#: Journal line schema identifier; bump on incompatible record changes.
CHECKPOINT_SCHEMA = "repro-checkpoint/1"


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Timeout and retry knobs for one campaign.

    Attributes
    ----------
    max_attempts:
        Total attempts per job (1 = no retries).  Retries re-run the *same
        seed*, so a retried replication contributes exactly the result it
        would have produced fault-free.
    timeout:
        Per-job wall-clock seconds, measured from when the job is observed
        running (queue time does not count).  Enforced only on the process
        -pool path — a hung in-process job cannot be interrupted — by
        killing the worker and respawning the pool.  ``None`` disables.
    backoff_base, backoff_factor, backoff_max:
        Retry ``k`` (1-based) waits ``min(backoff_max, backoff_base *
        backoff_factor**(k - 1))`` seconds, plus jitter.
    jitter:
        Fractional jitter on the backoff delay, drawn deterministically
        from ``(seed, attempt)`` — two runs of the same campaign produce
        identical retry schedules.
    retry_budget:
        Campaign-wide cap on total retries across all jobs (``None`` =
        unlimited).  A pool crash charges every in-flight job one attempt,
        so the budget is what bounds worst-case work under repeated faults.
    """

    max_attempts: int = 1
    timeout: float | None = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    jitter: float = 0.25
    retry_budget: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ValueError("retry_budget must be non-negative (or None)")

    @property
    def retries_enabled(self) -> bool:
        """Whether this policy ever re-dispatches a failed job."""
        return self.max_attempts > 1 and (
            self.retry_budget is None or self.retry_budget > 0
        )

    def backoff_delay(self, seed: int, attempt: int) -> float:
        """Deterministic backoff before re-running ``seed``'s ``attempt``.

        ``attempt`` is the attempt about to run (2 for the first retry).
        The jitter is drawn from a PRNG seeded by ``(seed, attempt)``, so
        the schedule depends only on the campaign's seed list — never on
        wall-clock or scheduling races.
        """
        if attempt < 2:
            return 0.0
        delay = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 2),
        )
        if self.jitter > 0.0:
            u = random.Random(f"repro-backoff:{seed}:{attempt}").random()
            delay *= 1.0 + self.jitter * u
        return delay


# ----------------------------------------------------------------------
# Crash-safe checkpoint journal
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CheckpointRecord:
    """One journaled completed unit (a replication seed or grid point)."""

    key: str
    index: int
    seed: int
    attempts: int
    elapsed: float
    value: object


class CheckpointJournal:
    """Crash-safe JSONL journal of completed campaign units.

    One line per completed unit::

        {"schema": "repro-checkpoint/1", "status": "ok",
         "key": "mu=17:seed=1011", "index": 3, "seed": 1011,
         "attempts": 1, "elapsed": 2.13, "payload": "<base64 pickle>"}

    Appends are a single ``os.write`` to an ``O_APPEND`` descriptor — a
    record is either fully on disk or absent, never torn across writers —
    and ``fsync`` policy ``"always"`` (the default) flushes after every
    record so a power cut costs at most the unit in flight.  ``"never"``
    leaves flushing to the OS (faster for huge cheap grids, weaker
    guarantee).  Payloads are pickled and base64-wrapped, which is what
    makes resumed statistics *bit-identical*: the stored result object is
    spliced back, not recomputed.

    Failed units are journaled too (``status: "failed"``, no payload) for
    post-mortems, but :meth:`load` ignores them — a failed unit is re-run
    on resume.  A ``status: "config"`` line (see :meth:`record_config`)
    fingerprints the campaign configuration so a resume cannot silently
    mix determinism domains.  A truncated final line (crash mid-write) is
    tolerated and skipped; corruption anywhere else raises, because
    silently dropping a completed unit would change resumed statistics.
    """

    def __init__(self, path: str | Path, fsync: str = "always"):
        if fsync not in ("always", "never"):
            raise ValueError(f"unknown fsync policy {fsync!r}; use 'always' or 'never'")
        self.path = Path(path)
        self.fsync = fsync
        self._fd: int | None = None

    def _descriptor(self) -> int:
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644
            )
        return self._fd

    def record(
        self,
        key: str,
        index: int,
        seed: int,
        value: object,
        elapsed: float,
        attempts: int = 1,
    ) -> None:
        """Append one completed unit (atomic single-write + fsync policy)."""
        payload = base64.b64encode(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii")
        self._append(
            {
                "schema": CHECKPOINT_SCHEMA,
                "status": "ok",
                "key": key,
                "index": index,
                "seed": seed,
                "attempts": attempts,
                "elapsed": elapsed,
                "payload": payload,
            }
        )

    def record_failure(
        self, key: str, index: int, seed: int, error: str, attempts: int = 1
    ) -> None:
        """Append a failed unit for post-mortems (ignored by :meth:`load`)."""
        self._append(
            {
                "schema": CHECKPOINT_SCHEMA,
                "status": "failed",
                "key": key,
                "index": index,
                "seed": seed,
                "attempts": attempts,
                "error": error,
            }
        )

    def record_config(self, config: dict) -> None:
        """Append the campaign's configuration fingerprint.

        Journal keys are bare ``seed=N`` strings, so nothing in a payload
        says *how* a seed was run.  Resuming a ``rng_mode="batched"``
        campaign without ``--rng-mode batched`` used to silently splice
        batched journal rows together with legacy fresh runs — two
        determinism domains in one "bit-identical" result.  The fingerprint
        (JSON-scalar values only: rng_mode, engine, horizon, base_seed, …)
        lets :meth:`ensure_config` refuse such a resume up front.
        """
        self._append(
            {
                "schema": CHECKPOINT_SCHEMA,
                "status": "config",
                "config": dict(config),
            }
        )

    def load_config(self) -> dict | None:
        """The journaled configuration fingerprint (last one wins), if any.

        Tolerates journals written before fingerprints existed (returns
        ``None``) — :meth:`load` likewise skips ``status: "config"`` lines,
        so old and new journals interoperate in both directions.
        """
        if not self.path.exists():
            return None
        config: dict | None = None
        lines = self.path.read_bytes().split(b"\n")
        for position, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if position >= len(lines) - 2:
                    continue  # torn final record, as in load()
                raise ValueError(
                    f"corrupt checkpoint record at {self.path}:{position + 1}"
                ) from None
            if record.get("status") == "config":
                config = record.get("config")
        return config

    def ensure_config(self, config: dict, resume: bool) -> None:
        """Record ``config`` on a fresh journal; verify it on a resumed one.

        Raises ``ValueError`` naming every mismatched key when a resume
        would mix determinism domains (e.g. a batched journal resumed in
        legacy mode).  A resumed journal without a fingerprint (pre-
        fingerprint campaigns) is accepted as-is and stamped for next time.
        """
        recorded = self.load_config() if resume else None
        if recorded is not None:
            mismatches = {
                key: (recorded.get(key), value)
                for key, value in config.items()
                if key in recorded and recorded[key] != value
            }
            if mismatches:
                details = ", ".join(
                    f"{key}: journal has {old!r}, campaign wants {new!r}"
                    for key, (old, new) in sorted(mismatches.items())
                )
                raise ValueError(
                    f"checkpoint journal {self.path} was written by an "
                    f"incompatible campaign ({details}); resuming would mix "
                    "determinism domains — rerun with the journaled "
                    "configuration or start a fresh checkpoint"
                )
            return
        self.record_config(config)

    def _append(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":")) + "\n"
        fd = self._descriptor()
        os.write(fd, line.encode("utf-8"))
        if self.fsync == "always":
            os.fsync(fd)

    def load(self) -> dict[str, CheckpointRecord]:
        """Completed units by key (later records win on duplicate keys)."""
        completed: dict[str, CheckpointRecord] = {}
        if not self.path.exists():
            return completed
        raw = self.path.read_bytes()
        lines = raw.split(b"\n")
        for position, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if position >= len(lines) - 2:
                    # Torn final record from a crash mid-append: the unit
                    # simply re-runs on resume.
                    continue
                raise ValueError(
                    f"corrupt checkpoint record at {self.path}:{position + 1}"
                ) from None
            if record.get("schema") != CHECKPOINT_SCHEMA:
                raise ValueError(
                    f"unexpected checkpoint schema {record.get('schema')!r} "
                    f"in {self.path} (expected {CHECKPOINT_SCHEMA})"
                )
            if record.get("status") != "ok":
                continue
            completed[record["key"]] = CheckpointRecord(
                key=record["key"],
                index=int(record["index"]),
                seed=int(record["seed"]),
                attempts=int(record.get("attempts", 1)),
                elapsed=float(record.get("elapsed", 0.0)),
                value=pickle.loads(base64.b64decode(record["payload"])),
            )
        return completed

    def close(self) -> None:
        """Close the append descriptor (reopened lazily on the next write)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> CheckpointJournal:
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def as_journal(
    checkpoint: str | Path | CheckpointJournal | None,
) -> CheckpointJournal | None:
    """Coerce a checkpoint argument (path or journal) to a journal."""
    if checkpoint is None or isinstance(checkpoint, CheckpointJournal):
        return checkpoint
    return CheckpointJournal(checkpoint)


# ----------------------------------------------------------------------
# Declarative solver degradation
# ----------------------------------------------------------------------
class RungRejected(RuntimeError):
    """Raised by a rung that ran but does not trust its own answer.

    (e.g. an eigendecomposition whose reconstruction residual is too
    large, or an iteration that failed to contract within its budget).
    Semantically distinct from an unexpected exception, but both send the
    chain to the next rung.
    """


@dataclass(frozen=True)
class RungAttempt:
    """One rung's outcome while a chain was descending its ladder."""

    rung: str
    ok: bool
    error: str | None
    elapsed: float


@dataclass(frozen=True)
class SolveDiagnostics:
    """Which rung of a degradation chain answered, and what failed above it.

    Attached to solver results (spectral kernels, CTMC stationary solves,
    QBD solutions) so a sweep over a numerically hostile grid records
    *which* solver actually produced each number.
    """

    chain: str
    rung: str
    attempts: tuple[RungAttempt, ...]

    @property
    def fallback_depth(self) -> int:
        """How many rungs failed before the answering one (0 = first rung)."""
        return len(self.attempts) - 1

    @property
    def degraded(self) -> bool:
        """Whether anything above the answering rung failed."""
        return self.fallback_depth > 0

    def describe(self) -> str:
        """One line per attempted rung, winner last."""
        lines = [f"{self.chain}: answered by {self.rung!r}"]
        for attempt in self.attempts:
            status = "ok" if attempt.ok else f"failed ({attempt.error})"
            lines.append(f"  {attempt.rung:<14} {status} [{attempt.elapsed:.3g} s]")
        return "\n".join(lines)


class DegradationError(RuntimeError):
    """Every rung of a degradation chain failed."""

    def __init__(self, chain: str, attempts: Sequence[RungAttempt]):
        self.chain = chain
        self.attempts = tuple(attempts)
        lines = [f"all {len(self.attempts)} rung(s) of chain {chain!r} failed:"]
        for attempt in self.attempts:
            lines.append(f"  {attempt.rung}: {attempt.error}")
        super().__init__("\n".join(lines))


class DegradationChain:
    """A declarative ordered ladder of solver rungs.

    Parameters
    ----------
    name:
        Chain identity; appears in diagnostics and in chaos poison keys
        (``"<name>:<rung>"``).
    rungs:
        ``(rung_name, callable)`` pairs, most-preferred first.  A rung
        answers by returning; it abdicates by raising (``RungRejected``
        for "ran but untrusted", anything else for a genuine error).

    :meth:`run` walks the ladder, consults the chaos registry before each
    rung (so fault-injection tests can force any ladder position), and
    returns ``(value, SolveDiagnostics)``.  Exhausting the ladder raises
    :class:`DegradationError` carrying every rung's failure.
    """

    def __init__(self, name: str, rungs: Sequence[tuple[str, Callable[[], object]]]):
        if not rungs:
            raise ValueError("degradation chain needs at least one rung")
        names = [rung_name for rung_name, _ in rungs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rung names: {names}")
        self.name = name
        self.rungs = tuple(rungs)

    def run(self) -> tuple[object, SolveDiagnostics]:
        """Walk the ladder; return the first answer with its diagnostics."""
        attempts: list[RungAttempt] = []
        for rung_name, fn in self.rungs:
            started = time.perf_counter()
            try:
                chaos.raise_if_poisoned(self.name, rung_name)
                value = fn()
            except Exception as exc:  # noqa: BLE001 — each rung may fail its own way
                attempts.append(
                    RungAttempt(
                        rung=rung_name,
                        ok=False,
                        error=repr(exc),
                        elapsed=time.perf_counter() - started,
                    )
                )
                continue
            attempts.append(
                RungAttempt(
                    rung=rung_name,
                    ok=True,
                    error=None,
                    elapsed=time.perf_counter() - started,
                )
            )
            return value, SolveDiagnostics(
                chain=self.name, rung=rung_name, attempts=tuple(attempts)
            )
        raise DegradationError(self.name, attempts)
