"""Shared-memory campaign fan-out for the columnar engine.

A heap-engine campaign ships one pickled
:class:`~repro.sim.replication.SimulationResult` per replication back
through the process pool.  Columnar replications reduce to a fixed vector
of scalars (:data:`COLUMNAR_FIELDS`), so a campaign can instead allocate
one ``multiprocessing.shared_memory`` float64 matrix — one row per
replication — that workers write in place.  The parent never unpickles
result payloads; it reads the matrix.

Checkpointing still works: each worker *also* returns its row as a plain
tuple, which is what :func:`~repro.runtime.executor.run_jobs` journals and
what a resumed campaign splices back (a fresh shared-memory block cannot
contain rows written before the crash).  Fresh rows are read from shared
memory; resumed rows come from the journal — byte-for-byte the same
numbers, since the journal stores exactly what the worker wrote.

The public entry point is :class:`~repro.runtime.executor.ParallelReplicator`
with ``engine="columnar"`` (or :func:`run_columnar_campaign` directly);
results come back as the same :class:`~repro.runtime.executor.CampaignResult`
shape, with compact :class:`ColumnarReplication` records in ``results`` so
``summaries()``, ``events_processed``, and ``describe()`` all work
unchanged.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass
from functools import partial
from multiprocessing import shared_memory

import numpy as np

from repro.runtime.executor import (
    CampaignResult,
    ReplicationFailure,
    _Job,
    derive_seeds,
    run_jobs,
)
from repro.runtime.resilience import CheckpointJournal, RetryPolicy

__all__ = [
    "COLUMNAR_FIELDS",
    "ColumnarReplication",
    "run_columnar_campaign",
]

#: Scalars each columnar replication contributes, in row order.  A superset
#: of :data:`~repro.runtime.executor.SUMMARY_FIELDS`, so campaign summaries
#: are computed exactly as for heap results.
COLUMNAR_FIELDS = (
    "mean_delay",
    "mean_wait",
    "sigma",
    "utilization",
    "mean_queue_length",
    "messages_served",
    "effective_arrival_rate",
    "delay_variance",
    "events_processed",
)


@dataclass(frozen=True)
class ColumnarReplication:
    """One replication's scalar statistics, rehydrated from a result row.

    Field-compatible with :class:`~repro.sim.replication.SimulationResult`
    for everything a campaign aggregates; traces and extras (which the
    heap engine attaches per replication) do not exist in columnar rows —
    that compactness is the point.
    """

    mean_delay: float
    mean_wait: float
    sigma: float
    utilization: float
    mean_queue_length: float
    messages_served: int
    effective_arrival_rate: float
    delay_variance: float
    events_processed: int

    @classmethod
    def from_row(cls, row) -> "ColumnarReplication":
        values = dict(zip(COLUMNAR_FIELDS, (float(v) for v in row)))
        values["messages_served"] = int(values["messages_served"])
        values["events_processed"] = int(values["events_processed"])
        return cls(**values)


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without registering a tracker claim.

    Workers must not let the resource tracker unlink the parent's block
    when they exit; ``track=False`` exists from Python 3.13, older
    interpreters never tracked attachments from pool workers spawned via
    fork, so plain attachment is the correct fallback.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover — pre-3.13 signature
        return shared_memory.SharedMemory(name=name)


def _columnar_worker(task: Callable, shm_name: str, base_seed: int, seed: int):
    """Run one columnar replication and publish its row.

    Module-level (pickles into pool workers); the campaign binds ``task``,
    ``shm_name``, and ``base_seed`` with :func:`functools.partial`.  The
    returned tuple is the journal/retry payload; the shared-memory write is
    the fast path the parent reads.
    """
    result = task(seed)
    row = tuple(float(getattr(result, name)) for name in COLUMNAR_FIELDS)
    shm = _attach(shm_name)
    try:
        matrix = np.ndarray(
            (len(row),),
            dtype=np.float64,
            buffer=shm.buf,
            offset=(seed - base_seed) * len(row) * 8,
        )
        matrix[:] = row
    finally:
        shm.close()
    return row


def run_columnar_campaign(
    task: Callable,
    num_replications: int,
    base_seed: int = 0,
    max_workers: int | None = None,
    chunk_size: int | None = None,
    wall_clock_budget: float | None = None,
    policy: RetryPolicy | None = None,
    checkpoint: CheckpointJournal | str | None = None,
    resume: bool = False,
) -> CampaignResult:
    """Fan a columnar ``task(seed) -> SimulationResult`` out over a campaign.

    Same seed derivation, failure semantics, retry/checkpoint behaviour,
    and :class:`~repro.runtime.executor.CampaignResult` contract as the
    heap path — the only difference is the transport: workers write
    :data:`COLUMNAR_FIELDS` rows into one shared-memory matrix instead of
    pickling full result objects back.  ``task`` must be picklable for the
    pool to be used (the usual :func:`functools.partial` over a
    module-level function); otherwise the campaign degrades to the
    identical in-process path, which writes the same shared memory.
    """
    seeds = derive_seeds(num_replications, base_seed)
    width = len(COLUMNAR_FIELDS)
    shm = shared_memory.SharedMemory(
        create=True, size=num_replications * width * 8
    )
    try:
        matrix = np.ndarray(
            (num_replications, width), dtype=np.float64, buffer=shm.buf
        )
        matrix[:] = math.nan
        worker = partial(_columnar_worker, task, shm.name, base_seed)
        jobs = [
            _Job(index=k, seed=seed, task=worker)
            for k, seed in enumerate(seeds)
        ]
        outcomes, skipped, wall_clock, workers = run_jobs(
            jobs,
            max_workers=max_workers,
            chunk_size=chunk_size,
            wall_clock_budget=wall_clock_budget,
            policy=policy,
            journal=checkpoint,
            resume=resume,
        )
        outcomes.sort(key=lambda outcome: outcome.index)
        results: list[ColumnarReplication] = []
        result_seeds: list[int] = []
        for outcome in outcomes:
            if outcome.error is not None:
                continue
            if outcome.from_checkpoint:
                row = outcome.value  # journaled tuple; shm row was never written
            else:
                row = matrix[outcome.seed - base_seed]
            results.append(ColumnarReplication.from_row(row))
            result_seeds.append(outcome.seed)
        failures = tuple(
            ReplicationFailure(
                index=o.index,
                seed=o.seed,
                error=o.error,
                traceback=o.traceback,
                attempts=o.attempts,
            )
            for o in outcomes
            if o.error is not None
        )
        return CampaignResult(
            results=tuple(results),
            seeds=tuple(result_seeds),
            failures=failures,
            skipped_seeds=tuple(job.seed for job in skipped),
            wall_clock=wall_clock,
            busy_time=sum(o.elapsed for o in outcomes),
            max_workers=workers,
            retried_seeds=tuple(
                sorted({o.seed for o in outcomes if o.attempts > 1})
            ),
            resumed=sum(1 for o in outcomes if o.from_checkpoint),
        )
    finally:
        shm.close()
        shm.unlink()
