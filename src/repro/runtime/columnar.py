"""Shared-memory campaign fan-out for the columnar engine.

A heap-engine campaign ships one pickled
:class:`~repro.sim.replication.SimulationResult` per replication back
through the process pool.  Columnar replications reduce to a fixed vector
of scalars (:data:`COLUMNAR_FIELDS`), so a campaign can instead allocate
one ``multiprocessing.shared_memory`` float64 matrix — one row per
replication — that workers write in place.  The parent never unpickles
result payloads; it reads the matrix.

Checkpointing still works: each worker *also* returns its row as a plain
tuple, which is what :func:`~repro.runtime.executor.run_jobs` journals and
what a resumed campaign splices back (a fresh shared-memory block cannot
contain rows written before the crash).  Fresh rows are read from shared
memory; resumed rows come from the journal — byte-for-byte the same
numbers, since the journal stores exactly what the worker wrote.

The public entry point is :class:`~repro.runtime.executor.ParallelReplicator`
with ``engine="columnar"`` (or :func:`run_columnar_campaign` directly);
results come back as the same :class:`~repro.runtime.executor.CampaignResult`
shape, with compact :class:`ColumnarReplication` records in ``results`` so
``summaries()``, ``events_processed``, and ``describe()`` all work
unchanged.

``engine="columnar-batched"`` (``batch=True`` here) changes the unit of
dispatch from one replication to one contiguous *seed group*: the task
receives the whole group's seed list and runs it through the lock-step
batched kernel (:mod:`repro.sim.columnar_batch`), writing every row of the
shared-memory matrix in a single call.  With ``workers=1`` the entire
campaign is one group — the batched kernel drives the result matrix
directly with no per-replication task dispatch at all.  Failure/retry/
checkpoint accounting stays *per seed* (a failed group records one
:class:`~repro.runtime.executor.ReplicationFailure` per member seed), and
because batched rows are bit-identical to sequential columnar rows, both
engines produce the same statistics for the same seed list.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass
from functools import partial
from multiprocessing import shared_memory

import numpy as np

from repro.runtime.executor import (
    CampaignResult,
    ReplicationFailure,
    _Job,
    default_worker_count,
    derive_seeds,
    run_jobs,
)
from repro.runtime.resilience import CheckpointJournal, RetryPolicy

__all__ = [
    "COLUMNAR_FIELDS",
    "ColumnarReplication",
    "run_columnar_campaign",
]

#: Scalars each columnar replication contributes, in row order.  A superset
#: of :data:`~repro.runtime.executor.SUMMARY_FIELDS`, so campaign summaries
#: are computed exactly as for heap results.
COLUMNAR_FIELDS = (
    "mean_delay",
    "mean_wait",
    "sigma",
    "utilization",
    "mean_queue_length",
    "messages_served",
    "effective_arrival_rate",
    "delay_variance",
    "events_processed",
)


@dataclass(frozen=True)
class ColumnarReplication:
    """One replication's scalar statistics, rehydrated from a result row.

    Field-compatible with :class:`~repro.sim.replication.SimulationResult`
    for everything a campaign aggregates; traces and extras (which the
    heap engine attaches per replication) do not exist in columnar rows —
    that compactness is the point.
    """

    mean_delay: float
    mean_wait: float
    sigma: float
    utilization: float
    mean_queue_length: float
    messages_served: int
    effective_arrival_rate: float
    delay_variance: float
    events_processed: int

    @classmethod
    def from_row(cls, row) -> "ColumnarReplication":
        values = dict(zip(COLUMNAR_FIELDS, (float(v) for v in row)))
        values["messages_served"] = int(values["messages_served"])
        values["events_processed"] = int(values["events_processed"])
        return cls(**values)


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without registering a tracker claim.

    Workers must not let the resource tracker unlink the parent's block
    when they exit; ``track=False`` exists from Python 3.13, older
    interpreters never tracked attachments from pool workers spawned via
    fork, so plain attachment is the correct fallback.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover — pre-3.13 signature
        return shared_memory.SharedMemory(name=name)


def _columnar_worker(task: Callable, shm_name: str, base_seed: int, seed: int):
    """Run one columnar replication and publish its row.

    Module-level (pickles into pool workers); the campaign binds ``task``,
    ``shm_name``, and ``base_seed`` with :func:`functools.partial`.  The
    returned tuple is the journal/retry payload; the shared-memory write is
    the fast path the parent reads.
    """
    result = task(seed)
    row = tuple(float(getattr(result, name)) for name in COLUMNAR_FIELDS)
    shm = _attach(shm_name)
    try:
        matrix = np.ndarray(
            (len(row),),
            dtype=np.float64,
            buffer=shm.buf,
            offset=(seed - base_seed) * len(row) * 8,
        )
        matrix[:] = row
    finally:
        shm.close()
    return row


def _columnar_batch_worker(
    task: Callable,
    shm_name: str,
    base_seed: int,
    seeds: tuple[int, ...],
    _seed: int,
):
    """Run one seed group through the batched kernel and publish its rows.

    ``task`` is a batched columnar task: ``task(seeds) -> list of
    SimulationResult``, one per seed in order.  The trailing ``_seed``
    positional is the group's first seed, supplied by the dispatch loop's
    ``job.task(job.seed)`` convention and unused — the bound ``seeds``
    tuple is authoritative.  Returns the tuple of row tuples (the
    journal/retry payload); the shared-memory writes are the fast path.
    """
    results = task(list(seeds))
    if len(results) != len(seeds):
        raise RuntimeError(
            f"batched columnar task returned {len(results)} results "
            f"for {len(seeds)} seeds"
        )
    width = len(COLUMNAR_FIELDS)
    rows = tuple(
        tuple(float(getattr(result, name)) for name in COLUMNAR_FIELDS)
        for result in results
    )
    shm = _attach(shm_name)
    try:
        for seed, row in zip(seeds, rows):
            matrix = np.ndarray(
                (width,),
                dtype=np.float64,
                buffer=shm.buf,
                offset=(seed - base_seed) * width * 8,
            )
            matrix[:] = row
    finally:
        shm.close()
    return rows


def run_columnar_campaign(
    task: Callable,
    num_replications: int,
    base_seed: int = 0,
    max_workers: int | None = None,
    chunk_size: int | None = None,
    wall_clock_budget: float | None = None,
    policy: RetryPolicy | None = None,
    checkpoint: CheckpointJournal | str | None = None,
    resume: bool = False,
    batch: bool = False,
) -> CampaignResult:
    """Fan a columnar task out over a campaign through shared memory.

    Same seed derivation, failure semantics, retry/checkpoint behaviour,
    and :class:`~repro.runtime.executor.CampaignResult` contract as the
    heap path — the only difference is the transport: workers write
    :data:`COLUMNAR_FIELDS` rows into one shared-memory matrix instead of
    pickling full result objects back.  ``task`` must be picklable for the
    pool to be used (the usual :func:`functools.partial` over a
    module-level function); otherwise the campaign degrades to the
    identical in-process path, which writes the same shared memory.

    With ``batch=True`` the task is batched — ``task(seeds) -> list of
    SimulationResult`` — and the unit of dispatch becomes a contiguous
    seed group: ``chunk_size`` seeds per group when given, otherwise the
    campaign split evenly across the worker count (one single all-seed
    group when ``workers=1``, so the lock-step kernel owns the whole
    matrix).  Per-seed accounting (failures, retries, skips, resume
    counts) expands from the group outcome, and a checkpoint journal keys
    groups by their seed span — resuming requires the same
    ``chunk_size``/worker partitioning that wrote the journal.
    """
    seeds = derive_seeds(num_replications, base_seed)
    width = len(COLUMNAR_FIELDS)
    shm = shared_memory.SharedMemory(
        create=True, size=num_replications * width * 8
    )
    try:
        matrix = np.ndarray(
            (num_replications, width), dtype=np.float64, buffer=shm.buf
        )
        matrix[:] = math.nan
        if batch:
            workers_hint = (
                default_worker_count(limit=num_replications)
                if max_workers is None
                else max(1, int(max_workers))
            )
            rows_per_job = (
                max(1, int(chunk_size))
                if chunk_size is not None
                else math.ceil(num_replications / workers_hint)
            )
            groups = [
                seeds[start : start + rows_per_job]
                for start in range(0, num_replications, rows_per_job)
            ]
            jobs = [
                _Job(
                    index=k,
                    seed=group[0],
                    task=partial(
                        _columnar_batch_worker, task, shm.name, base_seed, group
                    ),
                    key=f"seeds={group[0]}-{group[-1]}",
                )
                for k, group in enumerate(groups)
            ]
            dispatch_chunk = 1  # each seed group is already a dispatch unit
        else:
            groups = [(seed,) for seed in seeds]
            worker = partial(_columnar_worker, task, shm.name, base_seed)
            jobs = [
                _Job(index=k, seed=seed, task=worker)
                for k, seed in enumerate(seeds)
            ]
            dispatch_chunk = chunk_size
        outcomes, skipped, wall_clock, workers = run_jobs(
            jobs,
            max_workers=max_workers,
            chunk_size=dispatch_chunk,
            wall_clock_budget=wall_clock_budget,
            policy=policy,
            journal=checkpoint,
            resume=resume,
        )
        outcomes.sort(key=lambda outcome: outcome.index)
        results: list[ColumnarReplication] = []
        result_seeds: list[int] = []
        failures: list[ReplicationFailure] = []
        for outcome in outcomes:
            group = groups[outcome.index]
            if outcome.error is not None:
                failures.extend(
                    ReplicationFailure(
                        index=seed - base_seed,
                        seed=seed,
                        error=outcome.error,
                        traceback=outcome.traceback,
                        attempts=outcome.attempts,
                    )
                    for seed in group
                )
                continue
            if outcome.from_checkpoint:
                # Journaled rows; the shm rows were never written this run.
                rows = outcome.value if batch else (outcome.value,)
            else:
                rows = [matrix[seed - base_seed] for seed in group]
            for seed, row in zip(group, rows):
                results.append(ColumnarReplication.from_row(row))
                result_seeds.append(seed)
        return CampaignResult(
            results=tuple(results),
            seeds=tuple(result_seeds),
            failures=tuple(failures),
            skipped_seeds=tuple(
                seed for job in skipped for seed in groups[job.index]
            ),
            wall_clock=wall_clock,
            busy_time=sum(o.elapsed for o in outcomes),
            max_workers=workers,
            retried_seeds=tuple(
                sorted(
                    {
                        seed
                        for o in outcomes
                        if o.attempts > 1
                        for seed in groups[o.index]
                    }
                )
            ),
            resumed=sum(
                len(groups[o.index]) for o in outcomes if o.from_checkpoint
            ),
        )
    finally:
        # Both halves must run even if one raises: a leaked segment
        # outlives the process and eats /dev/shm until reboot.
        try:
            shm.close()
        finally:
            shm.unlink()
