"""Deterministic fault injection for the campaign runtime.

Recovery code that is only exercised by real outages is recovery code that
does not work.  This module injects the three failure modes the resilience
layer (:mod:`repro.runtime.resilience`) must survive — and injects them
*deterministically*, keyed by ``(seed, attempt)``, so every chaos test is
exactly reproducible at any worker count:

* **worker kills** — ``os._exit`` from inside the worker process, which the
  parent observes as a ``BrokenProcessPool`` (indistinguishable from an
  OOM-kill or a segfault);
* **delays** — ``time.sleep`` before the task body, long enough to trip a
  per-job timeout (a hung solve);
* **poisoned solver rungs** — a named rung of a
  :class:`~repro.runtime.resilience.DegradationChain` raises
  :class:`PoisonedRungError` instead of running, forcing the chain down its
  ladder.

A :class:`ChaosPlan` is a frozen, picklable value; :func:`wrap` attaches it
to a campaign task so the faults ride into worker processes alongside the
job.  The executor publishes the current ``(seed, attempt)`` via
:func:`set_context` before each job body runs, which is what lets a fault
fire on the first attempt and stand down on the retry — the recovery path
is then observable end to end.

The plan is inert unless activated: production campaigns never pay for the
checks beyond one module-attribute read per rung/job.

Standalone use: ``python -m repro.cli chaos`` runs a demonstration campaign
with injected faults and reports the recovery trail.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "ANY",
    "ChaosPlan",
    "ChaosTask",
    "PoisonedRungError",
    "activate",
    "active_plan",
    "chaos_active",
    "current_attempt",
    "current_seed",
    "deactivate",
    "raise_if_poisoned",
    "set_context",
    "wrap",
]

#: Exit status used for injected worker kills; 137 mirrors SIGKILL (128 + 9),
#: the signature of an OOM-killed worker.
KILL_EXIT_CODE = 137

#: Wildcard seed for plan entries: a kill/delay keyed on ``ANY`` matches
#: every seed at its attempt number.  How an overload scenario slows *all*
#: live solves (request indices are unbounded) with one plan entry while
#: staying deterministic — the fault set is still a pure function of the
#: ``(seed, attempt)`` context.
ANY = -1


class PoisonedRungError(RuntimeError):
    """Raised in place of running a solver rung poisoned by the active plan."""


@dataclass(frozen=True)
class ChaosPlan:
    """A deterministic set of faults, keyed by ``(seed, attempt)``.

    Attributes
    ----------
    kill:
        ``(seed, attempt)`` pairs; a worker running that seed's job on that
        attempt dies with ``os._exit`` (the parent sees a broken pool).
    delay:
        ``(seed, attempt, seconds)`` triples; the job sleeps before its task
        body runs (with a per-job timeout this is a hung job).
    poison:
        Degradation-chain rungs that raise :class:`PoisonedRungError`
        instead of running.  Entries are either a bare rung name
        (``"eig"`` — poisons that rung in every chain) or a qualified
        ``"chain:rung"`` (``"ctmc-stationary:spsolve"``).

    All fields are tuples, so plans are hashable, picklable, and cross the
    process-pool boundary unchanged.
    """

    kill: tuple[tuple[int, int], ...] = ()
    delay: tuple[tuple[int, int, float], ...] = ()
    poison: tuple[str, ...] = ()

    def kills(self, seed: int, attempt: int) -> bool:
        """Whether this plan kills the worker running ``seed`` on ``attempt``."""
        return (seed, attempt) in self.kill or (ANY, attempt) in self.kill

    def delay_for(self, seed: int, attempt: int) -> float:
        """Injected sleep (seconds) before ``seed``'s attempt; 0.0 if none.

        Entries keyed on the :data:`ANY` wildcard seed match every seed.
        """
        return sum(s for s_seed, s_attempt, s in self.delay
                   if s_seed in (seed, ANY) and s_attempt == attempt)

    def poisons(self, chain: str, rung: str) -> bool:
        """Whether ``rung`` of ``chain`` is poisoned."""
        return rung in self.poison or f"{chain}:{rung}" in self.poison


#: Process-local chaos state.  ``_plan`` is the active plan (None = chaos
#: off); ``_seed``/``_attempt`` are the job context the executor publishes.
_plan: ChaosPlan | None = None
_seed: int | None = None
_attempt: int = 1


def activate(plan: ChaosPlan) -> None:
    """Make ``plan`` the process's active chaos plan."""
    global _plan
    _plan = plan


def deactivate() -> None:
    """Clear the active chaos plan (chaos off)."""
    global _plan
    _plan = None


def active_plan() -> ChaosPlan | None:
    """The active plan, or ``None`` when chaos is off."""
    return _plan


@contextmanager
def chaos_active(plan: ChaosPlan | None):
    """Scope ``plan`` to a block (``None`` is a no-op passthrough)."""
    global _plan
    if plan is None:
        yield
        return
    previous = _plan
    activate(plan)
    try:
        yield
    finally:
        _plan = previous


def set_context(seed: int | None, attempt: int = 1) -> None:
    """Publish the running job's ``(seed, attempt)``.

    Called by the executor's worker-side wrapper before every job body, so
    chaos faults (and anything else that wants it, e.g. tests asserting
    retry counts) can key off the attempt number deterministically.
    """
    global _seed, _attempt
    _seed = seed
    _attempt = attempt


def current_seed() -> int | None:
    """Seed of the job currently running in this process (None outside one)."""
    return _seed


def current_attempt() -> int:
    """Attempt number (1-based) of the job currently running."""
    return _attempt


def raise_if_poisoned(chain: str, rung: str) -> None:
    """Raise :class:`PoisonedRungError` when the active plan poisons a rung.

    The hook :class:`~repro.runtime.resilience.DegradationChain` calls
    before each rung.  A no-op (one attribute read) when chaos is off.
    """
    if _plan is not None and _plan.poisons(chain, rung):
        raise PoisonedRungError(f"chaos: poisoned rung {chain}:{rung}")


@dataclass(frozen=True)
class ChaosTask:
    """Picklable wrapper injecting a :class:`ChaosPlan` around a task.

    Activates the plan inside the worker process (so poisoned rungs fire in
    any solver the task touches), applies the delay and kill faults for the
    current ``(seed, attempt)``, then runs the wrapped task.
    """

    task: Callable
    plan: ChaosPlan = field(default_factory=ChaosPlan)

    def __call__(self, seed: int):
        global _plan
        previous = _plan
        activate(self.plan)
        try:
            attempt = current_attempt()
            pause = self.plan.delay_for(seed, attempt)
            if pause > 0.0:
                time.sleep(pause)
            if self.plan.kills(seed, attempt):
                os._exit(KILL_EXIT_CODE)  # noqa: SLF001 — the point is an unclean death
            return self.task(seed)
        finally:
            _plan = previous


def wrap(task: Callable, plan: ChaosPlan) -> ChaosTask:
    """Attach ``plan`` to ``task`` for dispatch through the runtime."""
    return ChaosTask(task=task, plan=plan)
