"""The process-pool replication executor.

Execution model
---------------
A *campaign* is ``run_one(seed)`` evaluated over a deterministic seed list.
:func:`derive_seeds` reproduces the legacy serial loop's seeds
(``base_seed + k``), jobs are dispatched to a
:class:`concurrent.futures.ProcessPoolExecutor` in chunks, and outcomes are
re-assembled in replication order — so for the same seeds a parallel
campaign returns *bit-identical* statistics to the serial one (each
replication builds its own :class:`~repro.sim.random_streams.RandomStreams`
from its seed; nothing is shared across replications).

Failure semantics
-----------------
A replication that raises is captured as a :class:`ReplicationFailure`
(seed, error, full traceback) and excluded from the statistics; it never
kills the campaign.  Callers that want the legacy fail-fast behaviour call
:meth:`CampaignResult.raise_if_failed`.

Fallbacks
---------
``max_workers=1`` runs in-process with the exact same bookkeeping, and an
unpicklable ``run_one`` (e.g. a test lambda) degrades to the serial path
instead of crashing inside the pool — the results are identical either way,
only the wall-clock differs.  When parallelism was *explicitly* requested
(``max_workers > 1``) the downgrade emits a :class:`RuntimeWarning` so slow
campaigns stay diagnosable.
"""

from __future__ import annotations

import math
import os
import pickle
import time
import traceback
import warnings
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass

from repro.sim.replication import ReplicationSummary

__all__ = [
    "CampaignResult",
    "ParallelReplicator",
    "ReplicationError",
    "ReplicationFailure",
    "default_worker_count",
    "derive_seeds",
]

#: Scalar statistics summarized by default — the legacy ``replicate`` set.
SUMMARY_FIELDS = ("mean_delay", "sigma", "utilization", "mean_queue_length")


def default_worker_count(limit: int | None = None) -> int:
    """Worker count for ``max_workers=None``: the usable CPU count.

    ``limit`` caps the answer (e.g. the number of jobs — spawning more
    workers than jobs only burns fork time).
    """
    count = os.cpu_count() or 1
    if limit is not None:
        count = min(count, max(1, limit))
    return max(1, count)


def derive_seeds(num_replications: int, base_seed: int = 0) -> tuple[int, ...]:
    """The campaign's seed list: ``base_seed + k`` for each replication.

    This is exactly how the legacy serial ``replicate`` derived seeds, and
    it is the anchor of the determinism guarantee: parallel and serial
    campaigns evaluate the *same* seed list, and results are keyed by
    replication index, so summaries match bit for bit.
    """
    if num_replications < 1:
        raise ValueError("need at least one replication")
    return tuple(base_seed + k for k in range(num_replications))


@dataclass(frozen=True)
class ReplicationFailure:
    """One replication that raised instead of returning a result.

    Attributes
    ----------
    index:
        Replication index within the campaign (0-based).
    seed:
        The seed the failed replication ran with.
    error:
        ``repr`` of the exception.
    traceback:
        The worker-side formatted traceback, for post-mortems across the
        process boundary.
    """

    index: int
    seed: int
    error: str
    traceback: str


class ReplicationError(RuntimeError):
    """Raised by :meth:`CampaignResult.raise_if_failed` when any seed died."""

    def __init__(self, failures: Sequence[ReplicationFailure]):
        self.failures = tuple(failures)
        lines = [f"{len(self.failures)} replication(s) failed:"]
        for failure in self.failures:
            lines.append(f"  seed {failure.seed}: {failure.error}")
            lines.append(failure.traceback.rstrip())
        super().__init__("\n".join(lines))


@dataclass(frozen=True)
class CampaignResult:
    """Everything a replication campaign produced.

    Attributes
    ----------
    results:
        Successful per-replication results, ordered by replication index
        (*not* completion order — that is what keeps parallel runs
        bit-identical to serial ones).
    seeds:
        Seed of each successful result, aligned with ``results``.
    failures:
        Captured :class:`ReplicationFailure` records, ordered by index.
    skipped_seeds:
        Seeds never dispatched because the wall-clock budget ran out.
    wall_clock:
        Campaign wall-clock seconds (dispatch to last collected result).
    busy_time:
        Summed per-replication execution seconds — across workers this
        exceeds ``wall_clock`` when parallelism is paying off.
    max_workers:
        Worker processes used (1 = in-process serial path).
    """

    results: tuple
    seeds: tuple[int, ...]
    failures: tuple[ReplicationFailure, ...]
    skipped_seeds: tuple[int, ...]
    wall_clock: float
    busy_time: float
    max_workers: int

    @property
    def completed(self) -> int:
        """Number of replications that returned a result."""
        return len(self.results)

    @property
    def requested(self) -> int:
        """Replications asked for (completed + failed + skipped)."""
        return len(self.results) + len(self.failures) + len(self.skipped_seeds)

    @property
    def events_processed(self) -> int:
        """Simulator events fired across all successful replications."""
        return int(
            sum(getattr(result, "events_processed", 0) for result in self.results)
        )

    @property
    def events_per_second(self) -> float:
        """Aggregate simulation throughput: events / campaign wall-clock."""
        if self.wall_clock <= 0.0:
            return math.nan
        return self.events_processed / self.wall_clock

    def raise_if_failed(self) -> None:
        """Re-raise captured failures as one :class:`ReplicationError`."""
        if self.failures:
            raise ReplicationError(self.failures)

    def summaries(
        self, fields: Sequence[str] = SUMMARY_FIELDS
    ) -> dict[str, ReplicationSummary]:
        """Across-replication summaries of the named scalar attributes."""
        return {
            name: ReplicationSummary(
                tuple(float(getattr(result, name)) for result in self.results)
            )
            for name in fields
        }

    def describe(self) -> str:
        """One line of progress/timing stats for logs and benchmarks."""
        rate = self.events_per_second
        rate_text = f"{rate:,.0f} events/s" if not math.isnan(rate) else "n/a"
        parts = [
            f"{self.completed}/{self.requested} replications",
            f"{self.max_workers} worker(s)",
            f"{self.wall_clock:.2f} s wall",
            f"{self.busy_time:.2f} s busy",
            rate_text,
        ]
        if self.failures:
            parts.append(f"{len(self.failures)} failed")
        if self.skipped_seeds:
            parts.append(f"{len(self.skipped_seeds)} skipped (budget)")
        return ", ".join(parts)


@dataclass(frozen=True)
class _Job:
    """One unit of dispatch: run ``task(seed)`` as replication ``index``."""

    index: int
    seed: int
    task: Callable


@dataclass(frozen=True)
class _Outcome:
    """What came back for one job (crosses the process boundary, so it
    carries strings rather than exception objects)."""

    index: int
    seed: int
    value: object
    error: str | None
    traceback: str | None
    elapsed: float


def _execute_job(job: _Job) -> _Outcome:
    """Worker-side wrapper: run one job, capturing any exception."""
    started = time.perf_counter()
    try:
        value = job.task(job.seed)
    except Exception as exc:  # noqa: BLE001 — failures must not kill the pool
        return _Outcome(
            index=job.index,
            seed=job.seed,
            value=None,
            error=repr(exc),
            traceback=traceback.format_exc(),
            elapsed=time.perf_counter() - started,
        )
    return _Outcome(
        index=job.index,
        seed=job.seed,
        value=value,
        error=None,
        traceback=None,
        elapsed=time.perf_counter() - started,
    )


def _is_picklable(value) -> bool:
    """Whether ``value`` can cross a process boundary."""
    try:
        pickle.dumps(value)
    except Exception:  # noqa: BLE001 — any pickling error means "no"
        return False
    return True


def _chunked(jobs: Sequence[_Job], size: int):
    """Yield ``jobs`` in dispatch chunks of ``size``."""
    for start in range(0, len(jobs), size):
        yield jobs[start : start + size]


def run_jobs(
    jobs: Sequence[_Job],
    max_workers: int | None = None,
    chunk_size: int | None = None,
    wall_clock_budget: float | None = None,
) -> tuple[list[_Outcome], list[_Job], float, int]:
    """Run jobs over a process pool (or in-process) with chunked dispatch.

    The engine behind both :class:`ParallelReplicator` and
    :func:`~repro.runtime.sweep.sweep`.  Returns ``(outcomes, skipped,
    wall_clock, workers_used)`` where ``skipped`` are jobs never dispatched
    because ``wall_clock_budget`` (seconds) was exhausted.

    The pool is kept saturated: enough chunks are submitted up front to
    keep roughly two jobs per worker in flight, results are collected as
    they complete, and further chunks are submitted as slots free up — so
    even a campaign of ``n <= workers`` jobs fans out fully.  The budget is
    checked before each chunk submission; a dispatched job always runs to
    completion, so a budget never truncates an individual replication.
    """
    jobs = list(jobs)
    if not jobs:
        return [], [], 0.0, 1
    workers = (
        default_worker_count(limit=len(jobs))
        if max_workers is None
        else max(1, int(max_workers))
    )
    if workers > 1 and not all(_is_picklable(job) for job in jobs):
        if max_workers is not None:
            warnings.warn(
                f"max_workers={max_workers} requested but the task is not "
                "picklable; running serially in-process (results are "
                "identical, only slower)",
                RuntimeWarning,
                stacklevel=3,
            )
        workers = 1  # unpicklable task: degrade to the identical serial path
    if chunk_size is None:
        chunk_size = max(1, math.ceil(len(jobs) / max(1, 2 * workers)))
    chunk_size = max(1, int(chunk_size))

    outcomes: list[_Outcome] = []
    skipped: list[_Job] = []
    started = time.perf_counter()

    def over_budget() -> bool:
        return (
            wall_clock_budget is not None
            and time.perf_counter() - started >= wall_clock_budget
        )

    if workers == 1:
        for chunk in _chunked(jobs, chunk_size):
            if over_budget():
                skipped.extend(chunk)
                continue
            outcomes.extend(_execute_job(job) for job in chunk)
    else:
        chunks = list(_chunked(jobs, chunk_size))
        position = 0
        in_flight: dict = {}  # future -> job
        with ProcessPoolExecutor(max_workers=workers) as pool:

            def top_up() -> None:
                # Keep ~2 jobs per worker in flight: no worker idles at a
                # chunk boundary, while later chunks stay unsubmitted (and
                # therefore skippable) when the budget runs out.
                nonlocal position
                while position < len(chunks) and len(in_flight) < 2 * workers:
                    if over_budget():
                        break
                    for job in chunks[position]:
                        in_flight[pool.submit(_execute_job, job)] = job
                    position += 1

            top_up()
            while in_flight:
                done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in done:
                    job = in_flight.pop(future)
                    try:
                        outcomes.append(future.result())
                    except Exception as exc:  # noqa: BLE001 — broken pool
                        outcomes.append(
                            _Outcome(
                                index=job.index,
                                seed=job.seed,
                                value=None,
                                error=repr(exc),
                                traceback=traceback.format_exc(),
                                elapsed=0.0,
                            )
                        )
                top_up()
        for late_chunk in chunks[position:]:
            skipped.extend(late_chunk)
    return outcomes, skipped, time.perf_counter() - started, workers


class ParallelReplicator:
    """Fan ``run_one(seed)`` out over worker processes, deterministically.

    Parameters
    ----------
    max_workers:
        Worker processes; ``None`` uses the machine's CPU count (capped at
        the number of jobs), ``1`` forces the in-process serial path.
    chunk_size:
        Jobs dispatched per chunk; ``None`` picks ``ceil(n / 2·workers)``.
        Smaller chunks give a wall-clock budget finer granularity at
        slightly higher dispatch overhead.

    Examples
    --------
    ``ParallelReplicator(max_workers=4).run(task, 8, base_seed=3)`` runs
    seeds 3..10 and returns summaries bit-identical to
    ``ParallelReplicator(max_workers=1).run(task, 8, base_seed=3)``.
    """

    def __init__(
        self, max_workers: int | None = None, chunk_size: int | None = None
    ):
        self.max_workers = max_workers
        self.chunk_size = chunk_size

    def run(
        self,
        run_one: Callable,
        num_replications: int,
        base_seed: int = 0,
        wall_clock_budget: float | None = None,
    ) -> CampaignResult:
        """Run the campaign and collect a :class:`CampaignResult`.

        ``run_one`` must be picklable (a module-level function or a
        :func:`functools.partial` over one) for the pool to be used;
        otherwise the campaign runs serially with identical results and a
        :class:`RuntimeWarning` is emitted when ``max_workers > 1`` was
        explicitly requested.
        """
        seeds = derive_seeds(num_replications, base_seed)
        jobs = [
            _Job(index=k, seed=seed, task=run_one) for k, seed in enumerate(seeds)
        ]
        outcomes, skipped, wall_clock, workers = run_jobs(
            jobs,
            max_workers=self.max_workers,
            chunk_size=self.chunk_size,
            wall_clock_budget=wall_clock_budget,
        )
        outcomes.sort(key=lambda outcome: outcome.index)
        successes = [o for o in outcomes if o.error is None]
        failures = tuple(
            ReplicationFailure(
                index=o.index, seed=o.seed, error=o.error, traceback=o.traceback
            )
            for o in outcomes
            if o.error is not None
        )
        return CampaignResult(
            results=tuple(o.value for o in successes),
            seeds=tuple(o.seed for o in successes),
            failures=failures,
            skipped_seeds=tuple(job.seed for job in skipped),
            wall_clock=wall_clock,
            busy_time=sum(o.elapsed for o in outcomes),
            max_workers=workers,
        )
