"""The process-pool replication executor.

Execution model
---------------
A *campaign* is ``run_one(seed)`` evaluated over a deterministic seed list.
:func:`derive_seeds` reproduces the legacy serial loop's seeds
(``base_seed + k``), jobs are dispatched to a
:class:`concurrent.futures.ProcessPoolExecutor` in chunks, and outcomes are
re-assembled in replication order — so for the same seeds a parallel
campaign returns *bit-identical* statistics to the serial one (each
replication builds its own :class:`~repro.sim.random_streams.RandomStreams`
from its seed; nothing is shared across replications).

Failure semantics
-----------------
A replication that raises is captured as a :class:`ReplicationFailure`
(seed, error, full traceback) and excluded from the statistics; it never
kills the campaign.  That contract now extends past in-job exceptions to
the runtime itself:

* A **worker killed by the OS** (OOM, segfault, ``os._exit``) breaks the
  whole process pool; the executor respawns the pool, and the jobs that
  were in flight are either retried (seed-preserving, when a
  :class:`~repro.runtime.resilience.RetryPolicy` allows) or recorded as
  ``"worker died"`` failures — the campaign continues either way.
* A **hung job** is bounded by the policy's per-job wall-clock ``timeout``
  (pool path only; an in-process job cannot be interrupted): the worker is
  killed, the pool respawned, the job retried or recorded as a timeout
  failure, and in-flight bystanders are re-dispatched free of charge.
* **Retries** re-run the *same seed* after a deterministic exponential
  backoff, bounded per job by ``max_attempts`` and campaign-wide by
  ``retry_budget`` — so a retried replication contributes exactly the
  result a fault-free run would have, and final statistics stay
  bit-identical.
* A :class:`~repro.runtime.resilience.CheckpointJournal` (``journal=`` /
  ``resume=``) records every completed unit; resuming splices journaled
  results back by key, restarting an interrupted campaign from the last
  completed seed.

Callers that want the legacy fail-fast behaviour call
:meth:`CampaignResult.raise_if_failed`.

Fallbacks
---------
``max_workers=1`` runs in-process with the exact same bookkeeping (minus
timeouts), and an unpicklable ``run_one`` (e.g. a test lambda) degrades to
the serial path instead of crashing inside the pool — the results are
identical either way, only the wall-clock differs.  When parallelism was
*explicitly* requested (``max_workers > 1``) the downgrade emits a
:class:`RuntimeWarning` so slow campaigns stay diagnosable.
"""

from __future__ import annotations

import math
import os
import pickle
import time
import traceback
import warnings
from collections.abc import Callable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.runtime import chaos
from repro.runtime.resilience import CheckpointJournal, RetryPolicy, as_journal
from repro.sim.replication import ReplicationSummary

__all__ = [
    "CampaignResult",
    "ParallelReplicator",
    "ReplicationError",
    "ReplicationFailure",
    "default_worker_count",
    "derive_seeds",
]

#: Scalar statistics summarized by default — the legacy ``replicate`` set.
SUMMARY_FIELDS = ("mean_delay", "sigma", "utilization", "mean_queue_length")

#: Poll ceiling (seconds) for the dispatch loop when it cannot block
#: indefinitely (a per-job timeout to enforce or a backoff to wake for).
_POLL_SECONDS = 0.05


def default_worker_count(limit: int | None = None) -> int:
    """Worker count for ``max_workers=None``: the usable CPU count.

    ``limit`` caps the answer (e.g. the number of jobs — spawning more
    workers than jobs only burns fork time).
    """
    count = os.cpu_count() or 1
    if limit is not None:
        count = min(count, max(1, limit))
    return max(1, count)


def derive_seeds(num_replications: int, base_seed: int = 0) -> tuple[int, ...]:
    """The campaign's seed list: ``base_seed + k`` for each replication.

    This is exactly how the legacy serial ``replicate`` derived seeds, and
    it is the anchor of the determinism guarantee: parallel and serial
    campaigns evaluate the *same* seed list, and results are keyed by
    replication index, so summaries match bit for bit.
    """
    if num_replications < 1:
        raise ValueError("need at least one replication")
    return tuple(base_seed + k for k in range(num_replications))


@dataclass(frozen=True)
class ReplicationFailure:
    """One replication that raised instead of returning a result.

    Attributes
    ----------
    index:
        Replication index within the campaign (0-based).
    seed:
        The seed the failed replication ran with.
    error:
        ``repr`` of the exception (or a runtime verdict such as
        ``"worker died"`` / a timeout message).
    traceback:
        The worker-side formatted traceback, for post-mortems across the
        process boundary.
    attempts:
        How many times the job ran (``> 1`` when retries were spent on it).
    """

    index: int
    seed: int
    error: str
    traceback: str
    attempts: int = 1


class ReplicationError(RuntimeError):
    """Raised by :meth:`CampaignResult.raise_if_failed` when any seed died."""

    def __init__(self, failures: Sequence[ReplicationFailure]):
        self.failures = tuple(failures)
        lines = [f"{len(self.failures)} replication(s) failed:"]
        for failure in self.failures:
            lines.append(f"  seed {failure.seed}: {failure.error}")
            lines.append(failure.traceback.rstrip())
        super().__init__("\n".join(lines))


@dataclass(frozen=True)
class CampaignResult:
    """Everything a replication campaign produced.

    Attributes
    ----------
    results:
        Successful per-replication results, ordered by replication index
        (*not* completion order — that is what keeps parallel runs
        bit-identical to serial ones).
    seeds:
        Seed of each successful result, aligned with ``results``.
    failures:
        Captured :class:`ReplicationFailure` records, ordered by index.
    skipped_seeds:
        Seeds never dispatched because the wall-clock budget ran out.
    wall_clock:
        Campaign wall-clock seconds (dispatch to last collected result).
    busy_time:
        Summed per-replication execution seconds — across workers this
        exceeds ``wall_clock`` when parallelism is paying off.  Includes
        the journaled execution seconds of resumed units.
    max_workers:
        Worker processes used (1 = in-process serial path).
    retried_seeds:
        Seeds that needed more than one attempt (fault recovery at work).
    resumed:
        Units spliced in from a checkpoint journal instead of re-run.
    """

    results: tuple
    seeds: tuple[int, ...]
    failures: tuple[ReplicationFailure, ...]
    skipped_seeds: tuple[int, ...]
    wall_clock: float
    busy_time: float
    max_workers: int
    retried_seeds: tuple[int, ...] = ()
    resumed: int = 0

    @property
    def completed(self) -> int:
        """Number of replications that returned a result."""
        return len(self.results)

    @property
    def requested(self) -> int:
        """Replications asked for (completed + failed + skipped)."""
        return len(self.results) + len(self.failures) + len(self.skipped_seeds)

    @property
    def events_processed(self) -> int:
        """Simulator events fired across all successful replications."""
        return int(
            sum(getattr(result, "events_processed", 0) for result in self.results)
        )

    @property
    def events_per_second(self) -> float:
        """Aggregate simulation throughput: events / campaign wall-clock.

        0.0 when the campaign consumed no wall-clock time (every unit
        failed instantly, or everything was spliced from a checkpoint) —
        a measured "no throughput", never a division error or NaN that
        poisons downstream aggregation.
        """
        if self.wall_clock <= 0.0:
            return 0.0
        return self.events_processed / self.wall_clock

    def raise_if_failed(self) -> None:
        """Re-raise captured failures as one :class:`ReplicationError`."""
        if self.failures:
            raise ReplicationError(self.failures)

    def summaries(
        self, fields: Sequence[str] = SUMMARY_FIELDS
    ) -> dict[str, ReplicationSummary]:
        """Across-replication summaries of the named scalar attributes."""
        return {
            name: ReplicationSummary(
                tuple(float(getattr(result, name)) for result in self.results)
            )
            for name in fields
        }

    def describe(self) -> str:
        """One line of progress/timing stats for logs and benchmarks."""
        rate = self.events_per_second
        rate_text = f"{rate:,.0f} events/s" if not math.isnan(rate) else "n/a"
        parts = [
            f"{self.completed}/{self.requested} replications",
            f"{self.max_workers} worker(s)",
            f"{self.wall_clock:.2f} s wall",
            f"{self.busy_time:.2f} s busy",
            rate_text,
        ]
        if self.failures:
            parts.append(f"{len(self.failures)} failed")
        if self.skipped_seeds:
            parts.append(f"{len(self.skipped_seeds)} skipped (budget)")
        if self.retried_seeds:
            parts.append(f"{len(self.retried_seeds)} retried")
        if self.resumed:
            parts.append(f"{self.resumed} resumed (checkpoint)")
        return ", ".join(parts)


@dataclass(frozen=True)
class _Job:
    """One unit of dispatch: run ``task(seed)`` as replication ``index``.

    ``key`` identifies the unit in a checkpoint journal; empty means
    ``"seed=<seed>"`` (unique within one campaign because seeds are).
    """

    index: int
    seed: int
    task: Callable
    key: str = ""


def _job_key(job: _Job) -> str:
    return job.key or f"seed={job.seed}"


@dataclass(frozen=True)
class _Outcome:
    """What came back for one job (crosses the process boundary, so it
    carries strings rather than exception objects)."""

    index: int
    seed: int
    value: object
    error: str | None
    traceback: str | None
    elapsed: float
    attempts: int = 1
    from_checkpoint: bool = False


def _execute_job(job: _Job, attempt: int = 1) -> _Outcome:
    """Worker-side wrapper: run one job, capturing any exception.

    Publishes the ``(seed, attempt)`` context to :mod:`repro.runtime.chaos`
    first, which is what makes injected faults (and anything else keyed by
    attempt) deterministic.
    """
    started = time.perf_counter()
    chaos.set_context(job.seed, attempt)
    try:
        value = job.task(job.seed)
    except Exception as exc:  # noqa: BLE001 — failures must not kill the pool
        return _Outcome(
            index=job.index,
            seed=job.seed,
            value=None,
            error=repr(exc),
            traceback=traceback.format_exc(),
            elapsed=time.perf_counter() - started,
            attempts=attempt,
        )
    finally:
        chaos.set_context(None, 1)
    return _Outcome(
        index=job.index,
        seed=job.seed,
        value=value,
        error=None,
        traceback=None,
        elapsed=time.perf_counter() - started,
        attempts=attempt,
    )


def _is_picklable(value) -> bool:
    """Whether ``value`` can cross a process boundary."""
    try:
        pickle.dumps(value)
    except Exception:  # noqa: BLE001 — any pickling error means "no"
        return False
    return True


def _chunked(jobs: Sequence[_Job], size: int):
    """Yield ``jobs`` in dispatch chunks of ``size``."""
    for start in range(0, len(jobs), size):
        yield jobs[start : start + size]


@dataclass
class _Flight:
    """Parent-side bookkeeping for one in-flight pool job."""

    job: _Job
    attempt: int
    running_since: float | None = None


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Terminate a pool's workers and reap it (used for hung/broken pools)."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # noqa: BLE001 — already-dead workers are fine
            pass
    try:
        pool.shutdown(wait=True, cancel_futures=True)
    except Exception:  # noqa: BLE001 — a broken pool may object; it is gone either way
        pass


def _splice_checkpointed(
    jobs: list[_Job], journal: CheckpointJournal | None, resume: bool
) -> tuple[list[_Outcome], list[_Job]]:
    """Split ``jobs`` into journaled outcomes and still-to-run jobs."""
    if journal is None or not resume:
        return [], jobs
    completed = journal.load()
    restored: list[_Outcome] = []
    remaining: list[_Job] = []
    for job in jobs:
        record = completed.get(_job_key(job))
        if record is None:
            remaining.append(job)
            continue
        restored.append(
            _Outcome(
                index=job.index,
                seed=job.seed,
                value=record.value,
                error=None,
                traceback=None,
                elapsed=record.elapsed,
                attempts=record.attempts,
                from_checkpoint=True,
            )
        )
    return restored, remaining


def run_jobs(
    jobs: Sequence[_Job],
    max_workers: int | None = None,
    chunk_size: int | None = None,
    wall_clock_budget: float | None = None,
    policy: RetryPolicy | None = None,
    journal: CheckpointJournal | str | None = None,
    resume: bool = False,
) -> tuple[list[_Outcome], list[_Job], float, int]:
    """Run jobs over a process pool (or in-process) with chunked dispatch.

    The engine behind both :class:`ParallelReplicator` and
    :func:`~repro.runtime.sweep.sweep`.  Returns ``(outcomes, skipped,
    wall_clock, workers_used)`` where ``skipped`` are jobs never dispatched
    because ``wall_clock_budget`` (seconds) was exhausted.

    The pool is kept saturated: enough chunks are submitted up front to
    keep roughly two jobs per worker in flight, results are collected as
    they complete, and further chunks are submitted as slots free up — so
    even a campaign of ``n <= workers`` jobs fans out fully.  The budget is
    checked before each chunk submission; a dispatched job always runs to
    completion, so a budget never truncates an individual replication.

    ``policy`` (a :class:`~repro.runtime.resilience.RetryPolicy`) adds
    per-job timeouts and seed-preserving retries; ``journal``/``resume``
    add crash-safe checkpointing — see the module docstring for the
    failure-semantics contract.  Retries are charged work: once dispatched
    they run even after the wall-clock budget expires (the budget governs
    *new* chunk dispatch only).
    """
    jobs = list(jobs)
    if not jobs:
        return [], [], 0.0, 1
    policy = policy if policy is not None else RetryPolicy()
    journal = as_journal(journal)

    started = time.perf_counter()
    outcomes, remaining = _splice_checkpointed(jobs, journal, resume)
    if not remaining:
        return outcomes, [], time.perf_counter() - started, 1

    workers = (
        default_worker_count(limit=len(remaining))
        if max_workers is None
        else max(1, int(max_workers))
    )
    if workers > 1 and not all(_is_picklable(job) for job in remaining):
        if max_workers is not None:
            warnings.warn(
                f"max_workers={max_workers} requested but the task is not "
                "picklable; running serially in-process (results are "
                "identical, only slower)",
                RuntimeWarning,
                stacklevel=3,
            )
        workers = 1  # unpicklable task: degrade to the identical serial path
    if chunk_size is None:
        chunk_size = max(1, math.ceil(len(remaining) / max(1, 2 * workers)))
    chunk_size = max(1, int(chunk_size))

    skipped: list[_Job] = []
    retry_budget_left = policy.retry_budget  # None = unlimited

    def over_budget() -> bool:
        return (
            wall_clock_budget is not None
            and time.perf_counter() - started >= wall_clock_budget
        )

    def can_retry(attempts_used: int) -> bool:
        if attempts_used >= policy.max_attempts:
            return False
        return retry_budget_left is None or retry_budget_left > 0

    def charge_retry() -> None:
        nonlocal retry_budget_left
        if retry_budget_left is not None:
            retry_budget_left -= 1

    def finalize(outcome: _Outcome, job: _Job) -> None:
        outcomes.append(outcome)
        if journal is not None:
            if outcome.error is None:
                journal.record(
                    key=_job_key(job),
                    index=job.index,
                    seed=job.seed,
                    value=outcome.value,
                    elapsed=outcome.elapsed,
                    attempts=outcome.attempts,
                )
            else:
                journal.record_failure(
                    key=_job_key(job),
                    index=job.index,
                    seed=job.seed,
                    error=outcome.error,
                    attempts=outcome.attempts,
                )

    if workers == 1:
        for chunk in _chunked(remaining, chunk_size):
            if over_budget():
                skipped.extend(chunk)
                continue
            for job in chunk:
                attempt = 1
                while True:
                    outcome = _execute_job(job, attempt)
                    if outcome.error is None or not can_retry(attempt):
                        finalize(outcome, job)
                        break
                    charge_retry()
                    attempt += 1
                    pause = policy.backoff_delay(job.seed, attempt)
                    if pause > 0.0:
                        time.sleep(pause)
        return outcomes, skipped, time.perf_counter() - started, workers

    chunks = list(_chunked(remaining, chunk_size))
    position = 0
    retry_queue: list[tuple[float, _Job, int]] = []  # (not_before, job, attempt)
    in_flight: dict = {}  # future -> _Flight
    pool = ProcessPoolExecutor(max_workers=workers)

    def respawn() -> None:
        nonlocal pool
        _kill_pool(pool)
        pool = ProcessPoolExecutor(max_workers=workers)

    def submit(job: _Job, attempt: int) -> None:
        try:
            future = pool.submit(_execute_job, job, attempt)
        except BrokenProcessPool:
            respawn()
            future = pool.submit(_execute_job, job, attempt)
        in_flight[future] = _Flight(job=job, attempt=attempt)

    def queue_retry(job: _Job, attempts_used: int, charged: bool) -> None:
        # ``charged`` retries consumed an attempt (real failures); free
        # requeues (innocent bystanders of a pool kill) re-run unchanged.
        next_attempt = attempts_used + 1 if charged else attempts_used
        if charged:
            charge_retry()
        not_before = started_retry = time.perf_counter()
        if charged:
            not_before = started_retry + policy.backoff_delay(
                job.seed, next_attempt
            )
        retry_queue.append((not_before, job, next_attempt))

    def worker_death(flight: _Flight) -> None:
        if policy.retries_enabled and can_retry(flight.attempt):
            queue_retry(flight.job, flight.attempt, charged=True)
            return
        finalize(
            _Outcome(
                index=flight.job.index,
                seed=flight.job.seed,
                value=None,
                error="worker died (process pool crashed mid-job)",
                traceback=(
                    "worker process terminated without returning a result "
                    "(BrokenProcessPool); no worker-side traceback exists\n"
                ),
                elapsed=0.0,
                attempts=flight.attempt,
            ),
            flight.job,
        )

    def top_up() -> None:
        # Keep ~2 jobs per worker in flight: no worker idles at a chunk
        # boundary, while later chunks stay unsubmitted (and therefore
        # skippable) when the budget runs out.  Due retries dispatch first:
        # they are already-charged work and immune to the budget.
        nonlocal position
        now = time.perf_counter()
        waiting: list[tuple[float, _Job, int]] = []
        for not_before, job, attempt in retry_queue:
            if not_before <= now and len(in_flight) < 2 * workers:
                submit(job, attempt)
            else:
                waiting.append((not_before, job, attempt))
        retry_queue[:] = waiting
        while position < len(chunks) and len(in_flight) < 2 * workers:
            if over_budget():
                break
            for job in chunks[position]:
                submit(job, 1)
            position += 1

    try:
        top_up()
        while in_flight or retry_queue:
            if not in_flight:
                # Only backoff timers left: sleep to the earliest and retry.
                pause = min(entry[0] for entry in retry_queue) - time.perf_counter()
                if pause > 0.0:
                    time.sleep(pause)
                top_up()
                continue
            poll = None
            if policy.timeout is not None:
                poll = min(_POLL_SECONDS, policy.timeout / 4.0)
            elif retry_queue:
                poll = _POLL_SECONDS
            done, _ = wait(in_flight, timeout=poll, return_when=FIRST_COMPLETED)

            pool_broken = False
            casualties: list[_Flight] = []
            for future in done:
                flight = in_flight.pop(future)
                try:
                    outcome = future.result()
                except BrokenProcessPool:
                    pool_broken = True
                    casualties.append(flight)
                    continue
                except Exception as exc:  # noqa: BLE001 — parent-side dispatch error
                    outcome = _Outcome(
                        index=flight.job.index,
                        seed=flight.job.seed,
                        value=None,
                        error=repr(exc),
                        traceback=traceback.format_exc(),
                        elapsed=0.0,
                        attempts=flight.attempt,
                    )
                if outcome.error is not None and can_retry(flight.attempt):
                    queue_retry(flight.job, flight.attempt, charged=True)
                else:
                    finalize(outcome, flight.job)

            if pool_broken:
                # Every other in-flight future is doomed with the pool; a
                # crashed worker costs the affected jobs one attempt each,
                # never the campaign.
                casualties.extend(in_flight.values())
                in_flight.clear()
                respawn()
                for flight in casualties:
                    worker_death(flight)

            if policy.timeout is not None and in_flight:
                now = time.perf_counter()
                for future, flight in in_flight.items():
                    if flight.running_since is None and future.running():
                        flight.running_since = now
                overdue = [
                    future
                    for future, flight in in_flight.items()
                    if flight.running_since is not None
                    and now - flight.running_since >= policy.timeout
                ]
                if overdue:
                    # A hung worker cannot be interrupted per-job: kill the
                    # pool, respawn, charge the overdue jobs, and re-dispatch
                    # the innocent bystanders free of charge.
                    victims = [in_flight[future] for future in overdue]
                    bystanders = [
                        flight
                        for future, flight in in_flight.items()
                        if future not in set(overdue)
                    ]
                    in_flight.clear()
                    respawn()
                    for flight in victims:
                        if can_retry(flight.attempt):
                            queue_retry(flight.job, flight.attempt, charged=True)
                        else:
                            finalize(
                                _Outcome(
                                    index=flight.job.index,
                                    seed=flight.job.seed,
                                    value=None,
                                    error=(
                                        "TimeoutError: job exceeded the "
                                        f"{policy.timeout:g} s wall-clock "
                                        "timeout"
                                    ),
                                    traceback=(
                                        "job killed after exceeding its "
                                        "per-job timeout; no worker-side "
                                        "traceback exists\n"
                                    ),
                                    elapsed=policy.timeout,
                                    attempts=flight.attempt,
                                ),
                                flight.job,
                            )
                    for flight in bystanders:
                        queue_retry(flight.job, flight.attempt, charged=False)
            top_up()
    finally:
        pool.shutdown(wait=True, cancel_futures=True)

    for late_chunk in chunks[position:]:
        skipped.extend(late_chunk)
    return outcomes, skipped, time.perf_counter() - started, workers


class ParallelReplicator:
    """Fan ``run_one(seed)`` out over worker processes, deterministically.

    Parameters
    ----------
    max_workers:
        Worker processes; ``None`` uses the machine's CPU count (capped at
        the number of jobs), ``1`` forces the in-process serial path.
    chunk_size:
        Jobs dispatched per chunk; ``None`` picks ``ceil(n / 2·workers)``.
        Smaller chunks give a wall-clock budget finer granularity at
        slightly higher dispatch overhead.
    policy:
        Optional :class:`~repro.runtime.resilience.RetryPolicy` adding
        per-job timeouts and seed-preserving retries.
    checkpoint:
        Optional journal path (or
        :class:`~repro.runtime.resilience.CheckpointJournal`) recording
        every completed replication.
    resume:
        With ``checkpoint``, splice already-journaled replications back in
        instead of re-running them — final statistics are bit-identical to
        an uninterrupted run.
    engine:
        ``"heap"`` (default) ships each replication's pickled
        :class:`~repro.sim.replication.SimulationResult` back through the
        pool.  ``"columnar"`` expects ``run_one`` to be a columnar task
        (:mod:`repro.sim.columnar`) and transports results through one
        shared-memory scalar matrix instead
        (:func:`~repro.runtime.columnar.run_columnar_campaign`) — same
        seeds, failure semantics, and ``CampaignResult`` contract, with
        compact per-replication records.  ``"columnar-batched"`` expects a
        *batched* task — ``run_one(seeds) -> list of results`` — and
        dispatches contiguous seed groups into the lock-step 2-D kernel
        (:mod:`repro.sim.columnar_batch`); rows are bit-identical to
        ``"columnar"`` for the same seed list.

    Examples
    --------
    ``ParallelReplicator(max_workers=4).run(task, 8, base_seed=3)`` runs
    seeds 3..10 and returns summaries bit-identical to
    ``ParallelReplicator(max_workers=1).run(task, 8, base_seed=3)``.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        chunk_size: int | None = None,
        policy: RetryPolicy | None = None,
        checkpoint: CheckpointJournal | str | None = None,
        resume: bool = False,
        engine: str = "heap",
    ):
        if engine not in ("heap", "columnar", "columnar-batched"):
            raise ValueError(
                "engine must be 'heap', 'columnar', or 'columnar-batched' "
                f"(got {engine!r})"
            )
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.policy = policy
        self.checkpoint = checkpoint
        self.resume = resume
        self.engine = engine

    def run(
        self,
        run_one: Callable,
        num_replications: int,
        base_seed: int = 0,
        wall_clock_budget: float | None = None,
    ) -> CampaignResult:
        """Run the campaign and collect a :class:`CampaignResult`.

        ``run_one`` must be picklable (a module-level function or a
        :func:`functools.partial` over one) for the pool to be used;
        otherwise the campaign runs serially with identical results and a
        :class:`RuntimeWarning` is emitted when ``max_workers > 1`` was
        explicitly requested.
        """
        if self.engine in ("columnar", "columnar-batched"):
            # Imported lazily: runtime.columnar imports this module.
            from repro.runtime.columnar import run_columnar_campaign

            return run_columnar_campaign(
                run_one,
                num_replications,
                base_seed=base_seed,
                max_workers=self.max_workers,
                chunk_size=self.chunk_size,
                wall_clock_budget=wall_clock_budget,
                policy=self.policy,
                checkpoint=self.checkpoint,
                resume=self.resume,
                batch=self.engine == "columnar-batched",
            )
        seeds = derive_seeds(num_replications, base_seed)
        jobs = [
            _Job(index=k, seed=seed, task=run_one) for k, seed in enumerate(seeds)
        ]
        outcomes, skipped, wall_clock, workers = run_jobs(
            jobs,
            max_workers=self.max_workers,
            chunk_size=self.chunk_size,
            wall_clock_budget=wall_clock_budget,
            policy=self.policy,
            journal=self.checkpoint,
            resume=self.resume,
        )
        outcomes.sort(key=lambda outcome: outcome.index)
        successes = [o for o in outcomes if o.error is None]
        failures = tuple(
            ReplicationFailure(
                index=o.index,
                seed=o.seed,
                error=o.error,
                traceback=o.traceback,
                attempts=o.attempts,
            )
            for o in outcomes
            if o.error is not None
        )
        return CampaignResult(
            results=tuple(o.value for o in successes),
            seeds=tuple(o.seed for o in successes),
            failures=failures,
            skipped_seeds=tuple(job.seed for job in skipped),
            wall_clock=wall_clock,
            busy_time=sum(o.elapsed for o in outcomes),
            max_workers=workers,
            retried_seeds=tuple(
                sorted({o.seed for o in outcomes if o.attempts > 1})
            ),
            resumed=sum(1 for o in outcomes if o.from_checkpoint),
        )
