"""Analytic sweeps over the replication runtime.

The process-pool machinery in :mod:`repro.runtime.executor` was built for
simulation replications, but the paper's figure pipelines are mostly
*analytic* grids — Solution-2 load curves, QBD ladders, closed-form density
grids — whose points are just as independent as simulation seeds.  This
module adapts those zero-replication workloads onto :func:`repro.runtime
.sweep.sweep` so they share the pool, the failure capture, and the
determinism contract (results are keyed by grid position, never by
scheduling):

* :func:`run_analytic_sweep` — evaluate a list of labelled zero-argument
  tasks, one pool job each, returning results in input order.
* :func:`grid_map` — evaluate ``fn`` over a dense numpy grid in chunks
  (Figure-9-style density grids), reassembling the full curve.

With one worker both paths run in-process (no pool, no pickling), so small
smoke-test grids pay no dispatch overhead; on multicore machines the grid
fans out like any simulation campaign.  Tasks must be picklable (module
level functions or :func:`functools.partial` over them) to actually fan
out — the executor degrades to the identical serial path otherwise.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.markov.spectral import use_backend
from repro.runtime.resilience import CheckpointJournal, RetryPolicy
from repro.runtime.sweep import SweepPoint, sweep

__all__ = ["grid_map", "run_analytic_sweep"]


@dataclass(frozen=True)
class _SeedlessTask:
    """Picklable adapter giving a zero-argument task the ``task(seed)`` shape.

    Carries the analytic-backend selection into the worker *process*: the
    process-wide default set by the parent (e.g. the CLI's ``--backend``)
    does not survive pickling, so the resolved request rides on the task and
    is re-applied around the call via
    :func:`repro.markov.spectral.use_backend` (``None`` = leave the worker's
    default alone).
    """

    fn: Callable
    backend: str | None = None

    def __call__(self, seed: int):
        with use_backend(self.backend):
            return self.fn()


def run_analytic_sweep(
    tasks: Sequence[tuple[str, Callable]],
    max_workers: int | None = None,
    chunk_size: int | None = None,
    backend: str | None = None,
    policy: RetryPolicy | None = None,
    checkpoint: CheckpointJournal | str | None = None,
    resume: bool = False,
) -> list:
    """Evaluate labelled zero-argument tasks over the sweep pool.

    Parameters
    ----------
    tasks:
        ``(label, fn)`` pairs; each ``fn()`` computes one analytic grid
        point.  Labels must be unique (they key failure reports).
    max_workers, chunk_size:
        As in :func:`repro.runtime.sweep.sweep`.
    backend:
        Analytic grid-evaluation backend (``dense``/``krylov``/``auto``)
        applied around every task — in the worker process when the sweep
        fans out, so ``--backend`` selections survive the pool boundary.
        ``None`` (default) leaves each worker's process default in place.
    policy:
        Optional :class:`~repro.runtime.resilience.RetryPolicy`: per-point
        timeouts and retries (an analytic point is deterministic, but a
        worker can still be OOM-killed or hang in an ill-conditioned
        solve).
    checkpoint, resume:
        Optional crash-safe journal; with ``resume=True`` a sweep that
        died at grid point *k* recomputes only the missing points.  Keys
        are the task labels, so labels must be stable across runs.

    Returns
    -------
    The task results, in input order.  Any task failure re-raises as a
    :class:`~repro.runtime.executor.ReplicationError` carrying the
    worker-side traceback.
    """
    if not tasks:
        return []
    labels = [label for label, _ in tasks]
    points = [
        SweepPoint(
            label=label,
            task=_SeedlessTask(fn, backend=backend),
            num_replications=1,
        )
        for label, fn in tasks
    ]
    result = sweep(
        points,
        num_replications=1,
        max_workers=max_workers,
        chunk_size=chunk_size,
        policy=policy,
        checkpoint=checkpoint,
        resume=resume,
    )
    result.raise_if_failed()
    return [result[label].results[0] for label in labels]


def _apply_chunk(fn: Callable, chunk: np.ndarray) -> np.ndarray:
    return np.asarray(fn(chunk))


def grid_map(
    fn: Callable[[np.ndarray], np.ndarray],
    grid: np.ndarray,
    num_chunks: int | None = None,
    max_workers: int | None = None,
    backend: str | None = None,
    policy: RetryPolicy | None = None,
) -> np.ndarray:
    """Evaluate a vectorized ``fn`` over ``grid`` in parallel chunks.

    ``fn`` must map an abscissa array to a same-length value array and be
    picklable.  The grid is split into ``num_chunks`` contiguous chunks
    (default: one per worker the executor would use, capped at 8) and the
    partial curves are concatenated in grid order.  ``backend`` and
    ``policy`` have the :func:`run_analytic_sweep` semantics (chunk labels
    depend on ``num_chunks``, so checkpointing lives one level up).
    """
    grid = np.atleast_1d(np.asarray(grid))
    if grid.size == 0:
        return np.asarray(fn(grid))
    if num_chunks is None:
        from repro.runtime.executor import default_worker_count

        num_chunks = min(8, default_worker_count(limit=grid.size))
    num_chunks = max(1, min(int(num_chunks), grid.size))
    chunks = np.array_split(grid, num_chunks)
    tasks = [
        (f"chunk-{index}", partial(_apply_chunk, fn, chunk))
        for index, chunk in enumerate(chunks)
    ]
    parts = run_analytic_sweep(
        tasks, max_workers=max_workers, backend=backend, policy=policy
    )
    return np.concatenate([np.atleast_1d(part) for part in parts])
