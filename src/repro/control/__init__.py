"""Broadband network control applications (Sections 6–7 of the paper).

The paper's closing argument is that HAP should be "the computational base
to estimate the admissible workload for a given bandwidth (admission
control), or the required bandwidth for a given workload (bandwidth
allocation)", with admissible-call regions precomputed into lookup tables at
each ATM interface, and a connectionless (CL) overlay designed on top.

* :mod:`repro.control.admission_table` — admissible workload search and the
  precomputed decision table, with Hui-style linear approximation of the
  admissible region boundary.
* :mod:`repro.control.bandwidth` — minimum service rate meeting a delay (or
  waiting-time-percentile) target.
* :mod:`repro.control.overlay` — a small CL-overlay design study on a
  networkx topology: route CL traffic over virtual paths and size them with
  the HAP bandwidth rule.
"""

from repro.control.admission_table import (
    AdmissionTable,
    ProbeStats,
    admissible_region,
    build_admission_table,
    clear_probe_cache,
    linear_region_approximation,
    max_admissible_user_rate,
    pinned_population_params,
    probe_stats,
)
from repro.control.bandwidth import (
    bandwidth_for_delay_target,
    bandwidth_for_wait_percentile,
)
from repro.control.overlay import OverlayDesign, design_cl_overlay

__all__ = [
    "AdmissionTable",
    "OverlayDesign",
    "ProbeStats",
    "admissible_region",
    "bandwidth_for_delay_target",
    "bandwidth_for_wait_percentile",
    "build_admission_table",
    "clear_probe_cache",
    "design_cl_overlay",
    "linear_region_approximation",
    "max_admissible_user_rate",
    "pinned_population_params",
    "probe_stats",
]
