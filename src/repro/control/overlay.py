"""Connectionless (CL) overlay design on an ATM substrate (Section 7).

The paper closes with the B-ISDN design problem it motivates: given the
physical ATM topology and HAP descriptions of the CL traffic between LAN/MAN
attachment points, design the CL overlay — which virtual paths to set up and
how much bandwidth to give each — subject to a delay requirement
(CCITT I.211/I.327 framing).

This module is a working small-scale version of that study:

1. each traffic demand (a HAP per source–destination pair) is routed on the
   shortest physical path (networkx);
2. demands sharing a link are superposed — their HAPs merge by concatenating
   application types, which is exact for independent HAPs with a common user
   population model (the library verifies rate additivity in tests);
3. each link's bandwidth is sized with
   :func:`repro.control.bandwidth.bandwidth_for_delay_target` on the merged
   HAP, and the Poisson-sized alternative is reported for contrast — the
   paper's point being that Poisson sizing *underprovisions*.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import networkx as nx

from repro.control.bandwidth import bandwidth_for_delay_target
from repro.core.params import HAPParameters

__all__ = ["OverlayDesign", "design_cl_overlay", "merge_haps"]


def merge_haps(haps: list[HAPParameters], name: str = "merged") -> HAPParameters:
    """Superpose independent HAPs sharing one user-population model.

    All inputs must agree on the user-level rates (they describe the same
    user community reaching different servers); the merged HAP carries the
    union of their application types, so its ``lambda-bar`` is the sum of
    the components' (Equation 4 is linear in the application types).
    """
    if not haps:
        raise ValueError("nothing to merge")
    first = haps[0]
    for hap in haps[1:]:
        if (
            hap.user_arrival_rate != first.user_arrival_rate
            or hap.user_departure_rate != first.user_departure_rate
        ):
            raise ValueError(
                "merge_haps needs a common user population across components"
            )
    applications = tuple(app for hap in haps for app in hap.applications)
    return replace(first, applications=applications, name=name)


@dataclass(frozen=True)
class OverlayDesign:
    """The designed CL overlay.

    Attributes
    ----------
    routes:
        Demand id -> list of nodes along the chosen physical path.
    link_bandwidth:
        (u, v) -> bandwidth allocated with the HAP rule.
    link_bandwidth_poisson:
        The same links sized by the M/M/1 rule — systematically smaller,
        which is the paper's warning.
    total_bandwidth:
        Sum of HAP-sized link allocations.
    """

    routes: dict[str, list]
    link_bandwidth: dict[tuple, float]
    link_bandwidth_poisson: dict[tuple, float]
    total_bandwidth: float

    def describe(self) -> str:
        """Per-link allocation report."""
        lines = []
        for link, bandwidth in sorted(self.link_bandwidth.items()):
            poisson = self.link_bandwidth_poisson[link]
            lines.append(
                f"link {link}: HAP={bandwidth:.3f} Poisson={poisson:.3f} "
                f"(+{100 * (bandwidth / poisson - 1):.1f}%)"
            )
        lines.append(f"total HAP bandwidth: {self.total_bandwidth:.3f}")
        return "\n".join(lines)


def design_cl_overlay(
    topology: nx.Graph,
    demands: dict[str, tuple],
    delay_target: float,
) -> OverlayDesign:
    """Design the CL overlay for ``demands`` on ``topology``.

    Parameters
    ----------
    topology:
        Physical graph; edges may carry a ``weight`` for routing.
    demands:
        Demand id -> ``(source, destination, HAPParameters)``.
    delay_target:
        Per-link mean-delay requirement for the CL service.

    Raises
    ------
    networkx.NetworkXNoPath
        When a demand cannot be routed.
    """
    routes: dict[str, list] = {}
    per_link: dict[tuple, list[HAPParameters]] = {}
    for demand_id, (source, destination, hap) in demands.items():
        path = nx.shortest_path(topology, source, destination, weight="weight")
        routes[demand_id] = path
        for u, v in zip(path[:-1], path[1:]):
            link = (u, v) if (u, v) in per_link or (v, u) not in per_link else (v, u)
            per_link.setdefault(link, []).append(hap)

    link_bandwidth: dict[tuple, float] = {}
    link_bandwidth_poisson: dict[tuple, float] = {}
    for link, haps in per_link.items():
        merged = merge_haps(haps, name=f"link-{link}")
        link_bandwidth[link] = bandwidth_for_delay_target(merged, delay_target)
        # M/M/1 sizing: T = 1 / (mu - lambda) <= target.
        link_bandwidth_poisson[link] = (
            merged.mean_message_rate + 1.0 / delay_target
        )
    return OverlayDesign(
        routes=routes,
        link_bandwidth=link_bandwidth,
        link_bandwidth_poisson=link_bandwidth_poisson,
        total_bandwidth=sum(link_bandwidth.values()),
    )
