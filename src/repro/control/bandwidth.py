"""Bandwidth allocation: the smallest server meeting a performance target.

Section 6's headline implication: because HAP delay explodes with
utilization far faster than Poisson's, *under*-allocating bandwidth is
catastrophically worse than the Poisson model predicts, and "allocating
appropriate bandwidth is much more effective than allocating more buffer
space".  These helpers invert Solution 2: given the workload, find the
minimum ``mu''`` meeting a mean-delay or waiting-time-percentile target.
"""

from __future__ import annotations

from repro.core.params import HAPParameters
from repro.core.solution2 import solve_solution2

__all__ = ["bandwidth_for_delay_target", "bandwidth_for_wait_percentile"]


def _delay_at_service_rate(
    params: HAPParameters,
    service_rate: float,
    solver: str,
    solver_kwargs: dict,
) -> float:
    if solver not in ("solution2", "solution0"):
        # Validated outside the try: a typo'd solver name must surface as
        # a ValueError, not masquerade as an unmeetable delay target.
        raise ValueError(f"unknown solver {solver!r}")
    if params.mean_message_rate >= service_rate:
        return float("inf")
    try:
        if solver == "solution2":
            return solve_solution2(params, service_rate).mean_delay
        from repro.core.solution0 import solve_solution0

        return solve_solution0(
            params, service_rate, backend="qbd", **solver_kwargs
        ).mean_delay
    except (ValueError, ArithmeticError):
        return float("inf")


def bandwidth_for_delay_target(
    params: HAPParameters,
    delay_target: float,
    tol: float = 1e-6,
    solver: str = "solution2",
    **solver_kwargs,
) -> float:
    """Minimum service rate with HAP/M/1 mean delay <= target.

    Delay is monotone decreasing in ``mu''``, so bisection applies.  The
    result is always above both ``lambda-bar`` (stability) and
    ``1 / delay_target`` (one service must fit in the target).

    Parameters
    ----------
    solver:
        ``"solution2"`` (default, milliseconds per probe) is reliable when
        the resulting design lands under ~30 % utilization — the paper's
        recommended control-plane regime.  For aggressive targets whose
        design lands at high utilization, Solution 2 is badly optimistic
        (it drops interarrival correlation); pass ``"solution0"`` to size
        with the exact chain instead (seconds-to-minutes per probe;
        ``modulating_bounds=...`` is forwarded).
    """
    if delay_target <= 0:
        raise ValueError("delay target must be positive")
    lam = params.mean_message_rate
    low = max(lam, 1.0 / delay_target)
    high = max(2.0 * low, low + 1.0)
    while (
        _delay_at_service_rate(params, high, solver, solver_kwargs)
        > delay_target
    ):
        high *= 2.0
        if high > 1e9 * max(lam, 1.0):
            raise ArithmeticError("no finite bandwidth meets the delay target")
    while (high - low) / high > tol:
        mid = 0.5 * (low + high)
        if (
            _delay_at_service_rate(params, mid, solver, solver_kwargs)
            <= delay_target
        ):
            high = mid
        else:
            low = mid
    return high


def bandwidth_for_wait_percentile(
    params: HAPParameters,
    wait_limit: float,
    quantile: float = 0.95,
    tol: float = 1e-6,
) -> float:
    """Minimum service rate with ``P(wait <= wait_limit) >= quantile``.

    Uses the G/M/1 waiting-time distribution
    ``W(y) = 1 - sigma exp(-mu (1 - sigma) y)`` from Solution 2 — the form
    the paper derives in Section 3.2.2 — inverted by bisection on ``mu``.
    """
    if wait_limit <= 0:
        raise ValueError("wait limit must be positive")
    if not 0 < quantile < 1:
        raise ValueError("quantile must be in (0, 1)")

    def meets_target(service_rate: float) -> bool:
        if params.mean_message_rate >= service_rate:
            return False
        try:
            solution = solve_solution2(params, service_rate)
        except (ValueError, ArithmeticError):
            return False
        return float(solution.gm1.waiting_time_cdf(wait_limit)) >= quantile

    low = params.mean_message_rate
    high = max(2.0 * low, low + 1.0)
    while not meets_target(high):
        high *= 2.0
        if high > 1e9 * max(low, 1.0):
            raise ArithmeticError("no finite bandwidth meets the wait target")
    while (high - low) / high > tol:
        mid = 0.5 * (low + high)
        if meets_target(mid):
            high = mid
        else:
            low = mid
    return high
