"""Admission control: admissible workload and the decision table.

Section 7 of the paper sketches the deployment story: compute, offline, the
admissible number of connections per application type (for a delay/loss
requirement), store the region boundary in a table at each ATM interface,
and admit an incoming VC/VP request with a table lookup.  It cites Hui's
linear approximation for representing the region.

We implement exactly that pipeline on top of Solution 2 (the fast solver the
paper recommends for control-plane use at utilizations under ~30 %):

* :func:`max_admissible_user_rate` — largest user arrival rate keeping the
  Solution-2 delay under a target (bisection).
* :func:`admissible_region` — for a 2-application-type HAP, the maximal
  per-type population mix ``(n_1, n_2)`` meeting the delay target.
* :func:`linear_region_approximation` — Hui-style half-plane
  ``n_1 / N_1 + n_2 / N_2 <= 1`` fitted to the region's axis intercepts.
* :func:`build_admission_table` / :class:`AdmissionTable` — the precomputed
  lookup used on the admission fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.params import HAPParameters
from repro.core.solution2 import solve_solution2

__all__ = [
    "AdmissionTable",
    "admissible_region",
    "build_admission_table",
    "linear_region_approximation",
    "max_admissible_user_rate",
]


def _delay_at_user_rate(
    params: HAPParameters, user_rate: float, service_rate: float
) -> float:
    """Solution-2 delay after swapping in a new user arrival rate.

    Returns +inf for unstable loads, which the bisection treats as
    "not admissible".
    """
    candidate = replace(params, user_arrival_rate=user_rate)
    if candidate.mean_message_rate >= service_rate:
        return float("inf")
    try:
        return solve_solution2(candidate, service_rate).mean_delay
    except (ValueError, ArithmeticError):
        return float("inf")


def max_admissible_user_rate(
    params: HAPParameters,
    delay_target: float,
    service_rate: float | None = None,
    tol: float = 1e-4,
) -> float:
    """Largest ``lambda`` (user arrival rate) with Solution-2 delay <= target.

    Monotonicity of delay in ``lambda`` makes bisection safe.  Raises
    ``ValueError`` when even a vanishing load misses the target (i.e. the
    target is below one service time).
    """
    if service_rate is None:
        service_rate = params.common_service_rate()
    if delay_target <= 1.0 / service_rate:
        raise ValueError(
            f"delay target {delay_target:g} is at or below one mean service "
            f"time {1.0 / service_rate:g}; nothing is admissible"
        )
    low = 0.0
    high = params.user_arrival_rate
    # Grow the bracket until the target is violated (or we hit instability).
    while _delay_at_user_rate(params, high, service_rate) <= delay_target:
        low = high
        high *= 2.0
        if high > 1e6 * params.user_arrival_rate:
            return high  # effectively unconstrained
    while (high - low) / max(high, 1e-300) > tol:
        mid = 0.5 * (low + high)
        if _delay_at_user_rate(params, mid, service_rate) <= delay_target:
            low = mid
        else:
            high = mid
    return low


def _delay_for_population_mix(
    params: HAPParameters,
    populations: tuple[float, ...],
    service_rate: float,
) -> float:
    """Solution-2 delay when application populations are *pinned*.

    For admission control over connection-oriented services, the control
    variable is the number of admitted connections of each type, not the
    free-running population.  We model "``n_i`` connections of type ``i``"
    by scaling each type's invocation rate so its mean population equals
    ``n_i`` (the fluid-equivalent load), keeping everything else intact.
    """
    apps = []
    for app, target in zip(params.applications, populations):
        mean_now = params.mean_users * app.offered_instances
        if target <= 0:
            continue
        scale = target / mean_now
        apps.append(replace(app, arrival_rate=app.arrival_rate * scale))
    if not apps:
        return 0.0
    candidate = replace(params, applications=tuple(apps))
    if candidate.mean_message_rate >= service_rate:
        return float("inf")
    try:
        return solve_solution2(candidate, service_rate).mean_delay
    except (ValueError, ArithmeticError):
        return float("inf")


def admissible_region(
    params: HAPParameters,
    delay_target: float,
    service_rate: float | None = None,
    max_population: int = 200,
) -> list[tuple[int, int]]:
    """Admissible (n_1, n_2) mixes for a 2-application-type HAP.

    Returns, for each ``n_1``, the largest ``n_2`` such that pinning mean
    populations at ``(n_1, n_2)`` keeps Solution-2 delay within target —
    the staircase boundary of the paper's "admissible call region".
    """
    if params.num_app_types != 2:
        raise ValueError("admissible_region is defined for exactly 2 app types")
    if service_rate is None:
        service_rate = params.common_service_rate()
    boundary: list[tuple[int, int]] = []
    for n1 in range(max_population + 1):
        best_n2 = -1
        low, high = 0, max_population
        # n2 feasibility is monotone: binary search the boundary.
        while low <= high:
            mid = (low + high) // 2
            delay = _delay_for_population_mix(
                params, (float(n1), float(mid)), service_rate
            )
            if delay <= delay_target:
                best_n2 = mid
                low = mid + 1
            else:
                high = mid - 1
        if best_n2 < 0:
            break
        boundary.append((n1, best_n2))
    return boundary


def linear_region_approximation(
    boundary: list[tuple[int, int]],
) -> tuple[float, float]:
    """Fit Hui's linear region ``n1 / N1 + n2 / N2 <= 1``.

    ``N1`` and ``N2`` are the axis intercepts of the staircase boundary;
    the half-plane through them is the classical conservative-but-compact
    approximation the paper cites for table-free admission.
    """
    if not boundary:
        raise ValueError("empty admissible region")
    n2_at_zero = next((n2 for n1, n2 in boundary if n1 == 0), None)
    if n2_at_zero is None:
        raise ValueError("boundary must include the n1 = 0 axis point")
    n1_max = max(n1 for n1, n2 in boundary)
    if n1_max == 0 or n2_at_zero == 0:
        raise ValueError("degenerate region; intercepts must be positive")
    return float(n1_max), float(n2_at_zero)


@dataclass(frozen=True)
class AdmissionTable:
    """Precomputed admission decisions for population mixes.

    Attributes
    ----------
    boundary:
        ``boundary[n1]`` = max admissible ``n2`` (monotone non-increasing).
    delay_target:
        The delay requirement the table enforces.
    """

    boundary: tuple[tuple[int, int], ...]
    delay_target: float

    def admit(self, n1: int, n2: int) -> bool:
        """O(log) table lookup: is the mix ``(n1, n2)`` admissible?"""
        if n1 < 0 or n2 < 0:
            raise ValueError("populations cannot be negative")
        limits = dict(self.boundary)
        if n1 not in limits:
            return False
        return n2 <= limits[n1]

    @property
    def size(self) -> int:
        """Number of stored boundary points."""
        return len(self.boundary)


def build_admission_table(
    params: HAPParameters,
    delay_target: float,
    service_rate: float | None = None,
    max_population: int = 200,
) -> AdmissionTable:
    """Precompute the admissible region into a lookup table (Section 7)."""
    boundary = admissible_region(
        params, delay_target, service_rate, max_population
    )
    return AdmissionTable(boundary=tuple(boundary), delay_target=delay_target)
