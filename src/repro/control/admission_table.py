"""Admission control: admissible workload and the decision table.

Section 7 of the paper sketches the deployment story: compute, offline, the
admissible number of connections per application type (for a delay/loss
requirement), store the region boundary in a table at each ATM interface,
and admit an incoming VC/VP request with a table lookup.  It cites Hui's
linear approximation for representing the region.

We implement exactly that pipeline on top of Solution 2 (the fast solver the
paper recommends for control-plane use at utilizations under ~30 %):

* :func:`max_admissible_user_rate` — largest user arrival rate keeping the
  Solution-2 delay under a target (bisection).
* :func:`admissible_region` — for a 2-application-type HAP, the maximal
  per-type population mix ``(n_1, n_2)`` meeting the delay target.
* :func:`linear_region_approximation` — Hui-style half-plane
  ``n_1 / N_1 + n_2 / N_2 <= 1`` fitted to the region's axis intercepts.
* :func:`build_admission_table` / :class:`AdmissionTable` — the precomputed
  lookup used on the admission fast path, JSON round-trippable
  (schema ``repro-admission-table/1``) so services can load it at boot.

The delay probes behind the bisections are memoized in a keyed, bounded LRU
(:func:`probe_stats` exposes hit/solve counters): an admissible-region build
probes the same ``(params, mix, service_rate)`` points many times across
neighbouring binary searches, and surface builds over delay-target grids
(:mod:`repro.service.surfaces`) repeat whole rows — without the cache the
Solution-2 solves dominate surface-build time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from functools import lru_cache

from repro.core.params import HAPParameters
from repro.core.solution2 import solve_solution2

__all__ = [
    "AdmissionTable",
    "ProbeStats",
    "admissible_region",
    "build_admission_table",
    "clear_probe_cache",
    "linear_region_approximation",
    "max_admissible_user_rate",
    "pinned_population_params",
    "probe_stats",
]

#: JSON schema identifier for serialized tables; bump on breaking changes.
TABLE_SCHEMA = "repro-admission-table/1"

#: Bounded size of each memoized probe cache (entries, not bytes — a cached
#: entry is one float keyed by a parameter fingerprint).
_PROBE_CACHE_SIZE = 16_384


@dataclass(frozen=True)
class ProbeStats:
    """Accounting for the memoized Solution-2 delay probes.

    Attributes
    ----------
    probes:
        Total delay probes issued by the bisections (cache hits + solves).
    solves:
        Probes that actually ran a Solution-2 solve (cache misses).
    """

    probes: int
    solves: int

    @property
    def hits(self) -> int:
        """Probes answered from the cache without solving."""
        return self.probes - self.solves


def probe_stats() -> ProbeStats:
    """Current cumulative probe counters (process-wide, monotone).

    Callers wanting a per-operation delta should snapshot before and after;
    the benchmark suite asserts a repeated surface build adds zero solves.
    """
    rate = _cached_rate_delay.cache_info()
    mix = _cached_mix_delay.cache_info()
    return ProbeStats(
        probes=rate.hits + rate.misses + mix.hits + mix.misses,
        solves=rate.misses + mix.misses,
    )


def clear_probe_cache() -> None:
    """Drop every memoized probe (and reset the counters)."""
    _cached_rate_delay.cache_clear()
    _cached_mix_delay.cache_clear()


@lru_cache(maxsize=_PROBE_CACHE_SIZE)
def _cached_rate_delay(
    params: HAPParameters, user_rate: float, service_rate: float
) -> float:
    candidate = replace(params, user_arrival_rate=user_rate)
    if candidate.mean_message_rate >= service_rate:
        return float("inf")
    try:
        return solve_solution2(candidate, service_rate).mean_delay
    except (ValueError, ArithmeticError):
        return float("inf")


def _delay_at_user_rate(
    params: HAPParameters, user_rate: float, service_rate: float
) -> float:
    """Solution-2 delay after swapping in a new user arrival rate.

    Returns +inf for unstable loads, which the bisection treats as
    "not admissible".  Memoized: frozen parameter objects hash by value, so
    repeated probes across bisections cost one dict lookup.
    """
    return _cached_rate_delay(params, user_rate, service_rate)


def max_admissible_user_rate(
    params: HAPParameters,
    delay_target: float,
    service_rate: float | None = None,
    tol: float = 1e-4,
) -> float:
    """Largest ``lambda`` (user arrival rate) with Solution-2 delay <= target.

    Monotonicity of delay in ``lambda`` makes bisection safe.  Raises
    ``ValueError`` when even a vanishing load misses the target (i.e. the
    target is below one service time).
    """
    if service_rate is None:
        service_rate = params.common_service_rate()
    if delay_target <= 1.0 / service_rate:
        raise ValueError(
            f"delay target {delay_target:g} is at or below one mean service "
            f"time {1.0 / service_rate:g}; nothing is admissible"
        )
    low = 0.0
    high = params.user_arrival_rate
    # Grow the bracket until the target is violated (or we hit instability).
    while _delay_at_user_rate(params, high, service_rate) <= delay_target:
        low = high
        high *= 2.0
        if high > 1e6 * params.user_arrival_rate:
            return high  # effectively unconstrained
    while (high - low) / max(high, 1e-300) > tol:
        mid = 0.5 * (low + high)
        if _delay_at_user_rate(params, mid, service_rate) <= delay_target:
            low = mid
        else:
            high = mid
    return low


def pinned_population_params(
    params: HAPParameters, populations: tuple[float, ...]
) -> HAPParameters | None:
    """Parameters with application populations *pinned* at ``populations``.

    For admission control over connection-oriented services, the control
    variable is the number of admitted connections of each type, not the
    free-running population.  We model "``n_i`` connections of type ``i``"
    by scaling each type's invocation rate so its mean population equals
    ``n_i`` (the fluid-equivalent load), keeping everything else intact.
    Returns ``None`` when every population is pinned at zero (an empty mix
    offers no load).  Shared by the Solution-2 probes here and the exact
    QBD miss path in :mod:`repro.service.server`.
    """
    apps = []
    for app, target in zip(params.applications, populations):
        mean_now = params.mean_users * app.offered_instances
        if target <= 0:
            continue
        scaled = app.arrival_rate * (target / mean_now)
        if scaled <= 0:  # target so small the scaled rate underflowed
            continue
        apps.append(replace(app, arrival_rate=scaled))
    if not apps:
        return None
    return replace(params, applications=tuple(apps))


@lru_cache(maxsize=_PROBE_CACHE_SIZE)
def _cached_mix_delay(
    params: HAPParameters,
    populations: tuple[float, ...],
    service_rate: float,
) -> float:
    candidate = pinned_population_params(params, populations)
    if candidate is None:
        return 0.0
    if candidate.mean_message_rate >= service_rate:
        return float("inf")
    try:
        return solve_solution2(candidate, service_rate).mean_delay
    except (ValueError, ArithmeticError):
        return float("inf")


def _delay_for_population_mix(
    params: HAPParameters,
    populations: tuple[float, ...],
    service_rate: float,
) -> float:
    """Solution-2 delay with populations pinned (memoized probe).

    See :func:`pinned_population_params` for the pinning model.  The
    neighbouring binary searches of :func:`admissible_region` re-probe the
    same mixes constantly; the LRU turns those re-probes into lookups.
    """
    return _cached_mix_delay(params, tuple(populations), service_rate)


def admissible_region(
    params: HAPParameters,
    delay_target: float,
    service_rate: float | None = None,
    max_population: int = 200,
) -> list[tuple[int, int]]:
    """Admissible (n_1, n_2) mixes for a 2-application-type HAP.

    Returns, for each ``n_1``, the largest ``n_2`` such that pinning mean
    populations at ``(n_1, n_2)`` keeps Solution-2 delay within target —
    the staircase boundary of the paper's "admissible call region".
    """
    if params.num_app_types != 2:
        raise ValueError("admissible_region is defined for exactly 2 app types")
    if service_rate is None:
        service_rate = params.common_service_rate()
    boundary: list[tuple[int, int]] = []
    for n1 in range(max_population + 1):
        best_n2 = -1
        low, high = 0, max_population
        # n2 feasibility is monotone: binary search the boundary.
        while low <= high:
            mid = (low + high) // 2
            delay = _delay_for_population_mix(
                params, (float(n1), float(mid)), service_rate
            )
            if delay <= delay_target:
                best_n2 = mid
                low = mid + 1
            else:
                high = mid - 1
        if best_n2 < 0:
            break
        boundary.append((n1, best_n2))
    return boundary


def linear_region_approximation(
    boundary: list[tuple[int, int]],
) -> tuple[float, float]:
    """Fit Hui's linear region ``n1 / N1 + n2 / N2 <= 1``.

    ``N1`` and ``N2`` are the axis intercepts of the staircase boundary;
    the half-plane through them is the classical conservative-but-compact
    approximation the paper cites for table-free admission.
    """
    if not boundary:
        raise ValueError("empty admissible region")
    n2_at_zero = next((n2 for n1, n2 in boundary if n1 == 0), None)
    if n2_at_zero is None:
        raise ValueError("boundary must include the n1 = 0 axis point")
    n1_max = max(n1 for n1, n2 in boundary)
    if n1_max == 0 or n2_at_zero == 0:
        raise ValueError("degenerate region; intercepts must be positive")
    return float(n1_max), float(n2_at_zero)


@dataclass(frozen=True)
class AdmissionTable:
    """Precomputed admission decisions for population mixes.

    Attributes
    ----------
    boundary:
        ``boundary[n1]`` = max admissible ``n2`` (monotone non-increasing).
    delay_target:
        The delay requirement the table enforces.
    """

    boundary: tuple[tuple[int, int], ...]
    delay_target: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_limits", {n1: n2 for n1, n2 in self.boundary}
        )

    def admit(self, n1: int, n2: int) -> bool:
        """O(1) table lookup: is the mix ``(n1, n2)`` admissible?"""
        if n1 < 0 or n2 < 0:
            raise ValueError("populations cannot be negative")
        limit = self._limits.get(n1)
        if limit is None:
            return False
        return n2 <= limit

    @property
    def size(self) -> int:
        """Number of stored boundary points."""
        return len(self.boundary)

    def to_json(self, indent: int | None = None) -> str:
        """Serialize as a versioned JSON document (``repro-admission-table/1``).

        The artifact carries the staircase boundary and the delay target it
        enforces — everything an interface needs to answer admits without
        the model that built the table.
        """
        return json.dumps(
            {
                "schema": TABLE_SCHEMA,
                "delay_target": self.delay_target,
                "boundary": [[int(n1), int(n2)] for n1, n2 in self.boundary],
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "AdmissionTable":
        """Rebuild a table from :meth:`to_json` output.

        Raises
        ------
        ValueError
            When the document carries a missing or unknown ``schema`` — a
            stale artifact must be rebuilt, never silently reinterpreted
            (a wrong boundary admits traffic the delay target cannot carry).
        """
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"admission table is not valid JSON: {error}")
        schema = document.get("schema") if isinstance(document, dict) else None
        if schema != TABLE_SCHEMA:
            raise ValueError(
                f"unsupported admission-table schema {schema!r} "
                f"(expected {TABLE_SCHEMA}); rebuild the table with "
                "build_admission_table"
            )
        boundary = tuple(
            (int(n1), int(n2)) for n1, n2 in document["boundary"]
        )
        return cls(
            boundary=boundary, delay_target=float(document["delay_target"])
        )


def build_admission_table(
    params: HAPParameters,
    delay_target: float,
    service_rate: float | None = None,
    max_population: int = 200,
) -> AdmissionTable:
    """Precompute the admissible region into a lookup table (Section 7)."""
    boundary = admissible_region(
        params, delay_target, service_rate, max_population
    )
    return AdmissionTable(boundary=tuple(boundary), delay_target=delay_target)
