"""Busy-period ("mountain") analysis — Figures 14, 15 and 18.

The paper characterizes HAP's short-term congestion through the busy periods
of the message queue: a busy period starts when an arrival finds the system
empty and ends when it empties again.  Its *height* (peak queue length) and
*width* (duration) describe one "mountain".  Figure 18 compares HAP's and
Poisson's busy/idle statistics: similar means, wildly different variances
(618x for busy-period length in the paper's run).

:func:`analyze_busy_periods` reconstructs the periods from a queue's
busy-state transitions plus its queue-length trace;
:class:`BusyPeriodStats` carries the summary comparisons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.sim.server import FCFSQueue

__all__ = ["BusyPeriod", "BusyPeriodStats", "analyze_busy_periods"]


@dataclass(frozen=True)
class BusyPeriod:
    """One busy period of the queue.

    Attributes
    ----------
    start, end:
        Simulation times bounding the period.
    height:
        Peak number of messages in system during the period (the mountain's
        height).  0 when no trace was recorded.
    """

    start: float
    end: float
    height: float

    @property
    def width(self) -> float:
        """Duration of the period."""
        return self.end - self.start


@dataclass(frozen=True)
class BusyPeriodStats:
    """Summary statistics over the busy and idle periods of one run."""

    num_busy_periods: int
    mean_busy: float
    var_busy: float
    max_busy: float
    mean_idle: float
    var_idle: float
    mean_height: float
    var_height: float
    max_height: float

    @property
    def busy_fraction(self) -> float:
        """``mean busy / (mean busy + mean idle)`` — the paper reports ~55 %."""
        denom = self.mean_busy + self.mean_idle
        return self.mean_busy / denom if denom > 0 else math.nan

    def describe(self) -> str:
        """A compact report matching the paper's Figure 18 row layout."""
        return (
            f"n={self.num_busy_periods} "
            f"busy: mean={self.mean_busy:.4g} var={self.var_busy:.4g} "
            f"max={self.max_busy:.4g} | "
            f"idle: mean={self.mean_idle:.4g} var={self.var_idle:.4g} | "
            f"height: mean={self.mean_height:.4g} var={self.var_height:.4g} "
            f"max={self.max_height:.4g} | busy%={100 * self.busy_fraction:.1f}"
        )


def _pair_transitions(
    transitions: list[tuple[float, int]],
) -> tuple[list[tuple[float, float]], list[tuple[float, float]]]:
    """Split (+1/-1) transitions into complete (busy, idle) intervals.

    A leading ``-1`` (queue already busy at warmup) and a trailing unmatched
    ``+1`` (busy at horizon) are dropped: only complete periods count,
    mirroring the paper's statistics.
    """
    busy: list[tuple[float, float]] = []
    idle: list[tuple[float, float]] = []
    previous_time: float | None = None
    previous_kind: int | None = None
    for time, kind in transitions:
        if previous_kind is not None and kind != previous_kind:
            if kind == -1:  # closing a busy period
                busy.append((previous_time, time))
            else:  # closing an idle period
                idle.append((previous_time, time))
        previous_time, previous_kind = time, kind
    return busy, idle


def analyze_busy_periods(queue: FCFSQueue) -> tuple[list[BusyPeriod], BusyPeriodStats]:
    """Extract busy periods and their statistics from a finished queue.

    Heights require the queue to have been built with ``trace_stride=1``
    (every queue-length change recorded); with striding or no trace the
    heights are lower bounds or zero respectively.
    """
    busy_intervals, idle_intervals = _pair_transitions(queue.busy_transitions)
    if queue.trace is not None and len(queue.trace):
        times, values = queue.trace.as_arrays()
    else:
        times = np.empty(0)
        values = np.empty(0)
    periods = []
    for start, end in busy_intervals:
        if times.size:
            lo = np.searchsorted(times, start, side="left")
            hi = np.searchsorted(times, end, side="right")
            height = float(values[lo:hi].max()) if hi > lo else 0.0
        else:
            height = 0.0
        periods.append(BusyPeriod(start=start, end=end, height=height))

    stats = BusyPeriodStats(
        num_busy_periods=len(periods),
        mean_busy=_mean([p.width for p in periods]),
        var_busy=_var([p.width for p in periods]),
        max_busy=max((p.width for p in periods), default=math.nan),
        mean_idle=_mean([end - start for start, end in idle_intervals]),
        var_idle=_var([end - start for start, end in idle_intervals]),
        mean_height=_mean([p.height for p in periods]),
        var_height=_var([p.height for p in periods]),
        max_height=max((p.height for p in periods), default=math.nan),
    )
    return periods, stats


def _mean(values: list[float]) -> float:
    return float(np.mean(values)) if values else math.nan


def _var(values: list[float]) -> float:
    return float(np.var(values, ddof=1)) if len(values) > 1 else math.nan
