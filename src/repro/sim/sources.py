"""Traffic sources for the simulator.

The star is :class:`HAPSource`, a faithful event-driven implementation of the
paper's hierarchy: user instances arrive and depart; while present they
invoke application instances (which outlive them); while alive an application
emits messages.  The other sources are the baselines the paper (or its cited
literature) compares against:

* :class:`PoissonSource` — the classical model every figure is plotted
  against.
* :class:`MMPPSource` — an arbitrary finite MMPP (used both for the
  "conventional 2-state MMPP" baseline and to cross-check the HAP-to-MMPP
  mapping by simulation).
* :class:`OnOffSource` — an interrupted Poisson process; the paper notes the
  on–off model is a 2-level HAP with one message type.
* :class:`PacketTrainSource` — Jain & Routhier's packet-train model
  (reference [13]).
* :class:`ClientServerHAPSource` — HAP-CS with request/response chains.

Every source takes an ``emit`` callback (wired to
:meth:`repro.sim.server.FCFSQueue.arrive` by the drivers) so sources and
queues compose freely.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.client_server import ClientServerHAPParameters
from repro.core.params import HAPParameters
from repro.markov.ctmc import sample_embedded_jump
from repro.markov.mmpp import MMPP
from repro.sim.engine import Event, Simulator
from repro.sim.monitors import TimeWeightedValue, TraceRecorder
from repro.sim.random_streams import ExponentialBatcher
from repro.sim.server import Message

__all__ = [
    "ClientServerHAPSource",
    "HAPSource",
    "MMPPSource",
    "OnOffSource",
    "PacketTrainSource",
    "PoissonSource",
]

EmitFn = Callable[[Message], None]


def _make_draw(rng: np.random.Generator, rng_mode: str):
    """The mean -> variate sampler for the requested determinism domain.

    ``"legacy"`` draws one ``Generator.exponential`` per event — the
    bit-exact pre-rewrite stream.  ``"batched"`` serves variates from
    :class:`~repro.sim.random_streams.ExponentialBatcher` blocks:
    seed-stable and worker-count-stable, but a different (documented)
    determinism domain that is not bit-identical to legacy.
    """
    if rng_mode == "legacy":
        exponential = rng.exponential

        def draw(mean: float) -> float:
            return float(exponential(mean))

        return draw
    if rng_mode == "batched":
        return ExponentialBatcher(rng).draw
    raise ValueError(
        f"rng_mode must be 'legacy' or 'batched', got {rng_mode!r}"
    )


class PoissonSource:
    """Poisson arrivals at a fixed rate."""

    def __init__(
        self,
        sim: Simulator,
        rate: float,
        rng: np.random.Generator,
        emit: EmitFn,
        rng_mode: str = "legacy",
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.rate = rate
        self.rng = rng
        self.emit = emit
        self.messages_emitted = 0
        self._mean_gap = 1.0 / rate
        self._draw = _make_draw(rng, rng_mode)
        self._arrive_action = self._arrive  # bind once, reuse every event

    def start(self) -> None:
        """Schedule the first arrival."""
        self.sim.schedule(self._draw(self._mean_gap), self._arrive_action)

    def _arrive(self, sim: Simulator) -> None:
        self.messages_emitted += 1
        self.emit(Message(sim.now))
        sim.schedule(self._draw(self._mean_gap), self._arrive_action)


class _UserInstance:
    """One live user: departure callback + pending invocation slots.

    The instance *is* the departure event's action (``__call__``), and
    ``pending[i]`` holds the single in-flight invocation event for
    application type ``i`` — at most one exists per (user, type) at any
    moment, so fixed slots replace the legacy grow-and-prune event list.
    """

    __slots__ = ("source", "alive", "pending")

    def __init__(self, source: "HAPSource", num_app_types: int) -> None:
        self.source = source
        self.alive = True
        self.pending: list[Event | None] = [None] * num_app_types

    def __call__(self, sim: Simulator) -> None:
        """Depart: cancel pending invocations, decrement the population."""
        self.alive = False
        for event in self.pending:
            if event is not None:
                event.cancel()
        source = self.source
        source._set_users(source.users_present - 1)


class _Invocation:
    """Reusable action for one (user, application-type) invocation stream.

    Created once when the user arrives and rescheduled by reference — the
    legacy code allocated a fresh closure per invocation.
    """

    __slots__ = ("source", "user", "app_index", "mean_gap")

    def __init__(
        self,
        source: "HAPSource",
        user: _UserInstance,
        app_index: int,
        mean_gap: float,
    ) -> None:
        self.source = source
        self.user = user
        self.app_index = app_index
        self.mean_gap = mean_gap

    def __call__(self, sim: Simulator) -> None:
        user = self.user
        if not user.alive:
            return
        source = self.source
        app_index = self.app_index
        source._create_app_instance(app_index)
        user.pending[app_index] = source.sim.schedule(
            source._draw(self.mean_gap), self
        )


class _AppInstance:
    """One live application instance: departure callback + emission slots."""

    __slots__ = ("source", "alive", "app_type", "pending")

    def __init__(
        self, source: "HAPSource", app_type: int, num_message_types: int
    ) -> None:
        self.source = source
        self.alive = True
        self.app_type = app_type
        self.pending: list[Event | None] = [None] * num_message_types

    def __call__(self, sim: Simulator) -> None:
        """Depart: cancel pending emissions, decrement the population."""
        self.alive = False
        for event in self.pending:
            if event is not None:
                event.cancel()
        source = self.source
        source.apps_alive_by_type[self.app_type] -= 1
        source._set_apps(source.apps_alive - 1)


class _Emission:
    """Reusable action for one (application instance, message-type) stream."""

    __slots__ = ("source", "instance", "message_type", "mean_gap")

    def __init__(
        self,
        source: "HAPSource",
        instance: _AppInstance,
        message_type: int,
        mean_gap: float,
    ) -> None:
        self.source = source
        self.instance = instance
        self.message_type = message_type
        self.mean_gap = mean_gap

    def __call__(self, sim: Simulator) -> None:
        instance = self.instance
        if not instance.alive:
            return
        source = self.source
        message_type = self.message_type
        source.messages_emitted += 1
        source.emit(Message(sim.now, instance.app_type, message_type))
        instance.pending[message_type] = source.sim.schedule(
            source._draw(self.mean_gap), self
        )


class HAPSource:
    """The full 3-level HAP hierarchy as an event-driven source.

    Parameters
    ----------
    sim:
        The event loop.
    params:
        HAP description (general shape — symmetric not required).
    rng:
        Random generator (one stream drives the whole hierarchy; use
        distinct :class:`~repro.sim.random_streams.RandomStreams` names for
        source vs. server draws).
    emit:
        Called with each generated :class:`~repro.sim.server.Message`.
    track_populations:
        Record time-weighted user/application population statistics.
    trace_stride:
        When positive, also keep (time, population) traces for the user and
        application levels — Figures 16 and 17.

    user_lifetime, app_lifetime:
        Optional distribution overrides (objects with ``sample(rng)``) for
        user and application lifetimes.  The paper's analysis is all
        exponential; these hooks enable the heavy-tail ablation study
        (e.g. Pareto application lifetimes at the same mean), the door the
        self-similar-traffic literature later walked through.  Arrival
        *rates* stay exponential so Equation 4's mean rate still applies
        (rate x mean lifetime is what enters the load).
    rng_mode:
        ``"legacy"`` (default) draws one exponential per event and is
        bit-identical to the pre-rewrite engine at every seed.
        ``"batched"`` draws variates in numpy blocks
        (:class:`~repro.sim.random_streams.ExponentialBatcher`): a distinct
        determinism domain — seed-stable and worker-count-stable, but not
        bit-identical to legacy.  Lifetime-override draws and prepopulation
        Poisson draws stay on the per-call path in both modes.

    Notes
    -----
    Faithful to the paper's semantics: a user's departure cancels its
    *pending invocations* but not its running applications ("a user has
    departed but the application this user invoked may be still active").

    Hot-path layout (PR 2): every recurring callback is a reusable
    ``__slots__`` callable (:class:`_Invocation`, :class:`_Emission`, the
    instance records themselves for departures) instead of a per-event
    closure, and all ``1/rate`` means are precomputed once.  In legacy mode
    the draw order and schedule order are exactly the pre-rewrite ones —
    the golden-trace test locks this.
    """

    def __init__(
        self,
        sim: Simulator,
        params: HAPParameters,
        rng: np.random.Generator,
        emit: EmitFn,
        track_populations: bool = True,
        trace_stride: int = 0,
        user_lifetime=None,
        app_lifetime=None,
        rng_mode: str = "legacy",
    ):
        self.sim = sim
        self.params = params
        self.rng = rng
        self.emit = emit
        self.user_lifetime = user_lifetime
        self.app_lifetime = app_lifetime
        self.rng_mode = rng_mode
        self.users_present = 0
        self.apps_alive = 0
        self.apps_alive_by_type = [0] * params.num_app_types
        self.messages_emitted = 0
        self.user_population = (
            TimeWeightedValue(0.0) if track_populations else None
        )
        self.app_population = (
            TimeWeightedValue(0.0) if track_populations else None
        )
        self.user_trace = TraceRecorder(trace_stride) if trace_stride else None
        self.app_trace = TraceRecorder(trace_stride) if trace_stride else None
        self._draw = _make_draw(rng, rng_mode)
        # Per-level mean-gap (1/rate) tables, computed once.
        self._user_arrival_mean = 1.0 / params.user_arrival_rate
        self._user_lifetime_mean = 1.0 / params.user_departure_rate
        self._invocation_means = tuple(
            1.0 / app.arrival_rate for app in params.applications
        )
        self._app_lifetime_means = tuple(
            1.0 / app.departure_rate for app in params.applications
        )
        self._emission_means = tuple(
            tuple(1.0 / msg.arrival_rate for msg in app.messages)
            for app in params.applications
        )
        self._message_counts = tuple(
            len(app.messages) for app in params.applications
        )
        self._user_arrives_action = self._user_arrives  # bind once

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first user arrival."""
        self.sim.schedule(
            self._draw(self._user_arrival_mean), self._user_arrives_action
        )

    def prepopulate(self) -> None:
        """Start from the stationary populations instead of an empty node.

        Draws ``x ~ Poisson(lambda/mu)`` users with residual lifetimes and,
        for each application type, ``Poisson(x-bar * lambda_i/mu_i)`` live
        instances — a standard warm-start that shortens the warmup the
        paper's simulations needed.
        """
        users = self.rng.poisson(self.params.mean_users)
        for _ in range(users):
            self._create_user()
        for index, app in enumerate(self.params.applications):
            instances = self.rng.poisson(
                self.params.mean_users * app.offered_instances
            )
            for _ in range(instances):
                self._create_app_instance(index)

    # ------------------------------------------------------------------
    # User level
    # ------------------------------------------------------------------
    def _user_arrives(self, sim: Simulator) -> None:
        self._create_user()
        sim.schedule(
            self._draw(self._user_arrival_mean), self._user_arrives_action
        )

    def _create_user(self) -> None:
        user = _UserInstance(self, len(self._invocation_means))
        self._set_users(self.users_present + 1)
        if self.user_lifetime is not None:
            lifetime = float(self.user_lifetime.sample(self.rng))
        else:
            lifetime = self._draw(self._user_lifetime_mean)
        sim = self.sim
        draw = self._draw
        sim.schedule(lifetime, user)
        pending = user.pending
        for index, mean_gap in enumerate(self._invocation_means):
            invocation = _Invocation(self, user, index, mean_gap)
            pending[index] = sim.schedule(draw(mean_gap), invocation)

    # ------------------------------------------------------------------
    # Application level
    # ------------------------------------------------------------------
    def _create_app_instance(self, app_index: int) -> None:
        instance = _AppInstance(self, app_index, self._message_counts[app_index])
        self._set_apps(self.apps_alive + 1)
        self.apps_alive_by_type[app_index] += 1
        if self.app_lifetime is not None:
            lifetime = float(self.app_lifetime.sample(self.rng))
        else:
            lifetime = self._draw(self._app_lifetime_means[app_index])
        sim = self.sim
        draw = self._draw
        sim.schedule(lifetime, instance)
        pending = instance.pending
        for msg_index, mean_gap in enumerate(self._emission_means[app_index]):
            emission = _Emission(self, instance, msg_index, mean_gap)
            pending[msg_index] = sim.schedule(draw(mean_gap), emission)

    # ------------------------------------------------------------------
    # Population tracking
    # ------------------------------------------------------------------
    def _set_users(self, count: int) -> None:
        self.users_present = count
        if self.user_population is not None:
            self.user_population.update(self.sim.now, float(count))
        if self.user_trace is not None:
            self.user_trace.record(self.sim.now, float(count))

    def _set_apps(self, count: int) -> None:
        self.apps_alive = count
        if self.app_population is not None:
            self.app_population.update(self.sim.now, float(count))
        if self.app_trace is not None:
            self.app_trace.record(self.sim.now, float(count))

    def finalize(self) -> None:
        """Close population accumulators at the current clock."""
        if self.user_population is not None:
            self.user_population.finalize(self.sim.now)
        if self.app_population is not None:
            self.app_population.finalize(self.sim.now)


class MMPPSource:
    """Arrivals from an arbitrary finite MMPP.

    Simulated by the exponential-race construction: in modulating state
    ``s`` the next event is the minimum of an ``Exp(r_s)`` arrival and an
    ``Exp(-Q_ss)`` state change.
    """

    def __init__(
        self,
        sim: Simulator,
        mmpp: MMPP,
        rng: np.random.Generator,
        emit: EmitFn,
        initial_state: int | None = None,
    ):
        self.sim = sim
        self.mmpp = mmpp
        self.rng = rng
        self.emit = emit
        self.messages_emitted = 0
        self._jump_probs = mmpp.chain.embedded_transition_matrix()
        self._hold_rates = mmpp.chain.holding_rates()
        if initial_state is None:
            pi = mmpp.stationary_distribution()
            initial_state = int(rng.choice(mmpp.num_states, p=pi))
        self.state = initial_state
        self._pending: Event | None = None

    def start(self) -> None:
        """Schedule the first event in the current state."""
        self._schedule_next()

    def _schedule_next(self) -> None:
        rate = self._hold_rates[self.state] + self.mmpp.rates[self.state]
        if rate <= 0:
            return  # absorbing, silent state: nothing ever happens
        delay = float(self.rng.exponential(1.0 / rate))
        self._pending = self.sim.schedule(delay, self._fire)

    def _fire(self, sim: Simulator) -> None:
        arrival_rate = self.mmpp.rates[self.state]
        hold_rate = self._hold_rates[self.state]
        total = arrival_rate + hold_rate
        if self.rng.random() < arrival_rate / total:
            self.messages_emitted += 1
            self.emit(Message(arrival_time=sim.now))
        else:
            self.state = sample_embedded_jump(
                self._jump_probs, self.state, self.rng
            )
        self._schedule_next()


class OnOffSource:
    """An interrupted Poisson process (a single on–off source).

    While ON, arrivals are Poisson(``peak_rate``); ON periods last
    Exp(``off_rate``)... i.e. the source turns OFF at ``off_rate`` and back
    ON at ``on_rate``.  The paper observes this is a 2-level HAP with a
    single message type; it is also exactly a 2-state MMPP, and
    :meth:`to_mmpp` hands back that representation for analysis.
    """

    def __init__(
        self,
        sim: Simulator,
        on_rate: float,
        off_rate: float,
        peak_rate: float,
        rng: np.random.Generator,
        emit: EmitFn,
        start_on: bool | None = None,
    ):
        if min(on_rate, off_rate, peak_rate) <= 0:
            raise ValueError("all rates must be positive")
        self.sim = sim
        self.on_rate = on_rate
        self.off_rate = off_rate
        self.peak_rate = peak_rate
        self.rng = rng
        self.emit = emit
        self.messages_emitted = 0
        if start_on is None:
            start_on = rng.random() < on_rate / (on_rate + off_rate)
        self.is_on = bool(start_on)

    def mean_rate(self) -> float:
        """``peak_rate * on_fraction``."""
        return self.peak_rate * self.on_rate / (self.on_rate + self.off_rate)

    def to_mmpp(self) -> MMPP:
        """The equivalent 2-state MMPP (state 0 = OFF, state 1 = ON)."""
        generator = np.array(
            [[-self.on_rate, self.on_rate], [self.off_rate, -self.off_rate]]
        )
        return MMPP(generator, np.array([0.0, self.peak_rate]))

    def start(self) -> None:
        """Schedule the first event."""
        self._schedule_next()

    def _schedule_next(self) -> None:
        if self.is_on:
            rate = self.off_rate + self.peak_rate
        else:
            rate = self.on_rate
        self.sim.schedule(float(self.rng.exponential(1.0 / rate)), self._fire)

    def _fire(self, sim: Simulator) -> None:
        if not self.is_on:
            self.is_on = True
        elif self.rng.random() < self.peak_rate / (self.peak_rate + self.off_rate):
            self.messages_emitted += 1
            self.emit(Message(arrival_time=sim.now))
        else:
            self.is_on = False
        self._schedule_next()


class PacketTrainSource:
    """Jain & Routhier's packet-train model (the paper's reference [13]).

    Trains (bursts) arrive Poisson(``train_rate``); each train carries a
    geometric number of cars (mean ``mean_train_length``) separated by
    exponential inter-car gaps (mean ``1 / car_rate``).
    """

    def __init__(
        self,
        sim: Simulator,
        train_rate: float,
        mean_train_length: float,
        car_rate: float,
        rng: np.random.Generator,
        emit: EmitFn,
    ):
        if train_rate <= 0 or car_rate <= 0:
            raise ValueError("rates must be positive")
        if mean_train_length < 1:
            raise ValueError("a train has at least one car on average")
        self.sim = sim
        self.train_rate = train_rate
        self.mean_train_length = mean_train_length
        self.car_rate = car_rate
        self.rng = rng
        self.emit = emit
        self.messages_emitted = 0

    def mean_rate(self) -> float:
        """``train_rate * mean_train_length``."""
        return self.train_rate * self.mean_train_length

    def start(self) -> None:
        """Schedule the first train."""
        self.sim.schedule(
            float(self.rng.exponential(1.0 / self.train_rate)), self._train_arrives
        )

    def _train_arrives(self, sim: Simulator) -> None:
        # Geometric number of cars with mean L: success prob 1/L, support >= 1.
        cars = int(self.rng.geometric(1.0 / self.mean_train_length))
        self._emit_car(sim, remaining=cars)
        sim.schedule(
            float(self.rng.exponential(1.0 / self.train_rate)), self._train_arrives
        )

    def _emit_car(self, sim: Simulator, remaining: int) -> None:
        self.messages_emitted += 1
        self.emit(Message(arrival_time=sim.now))
        if remaining > 1:
            sim.schedule(
                float(self.rng.exponential(1.0 / self.car_rate)),
                lambda s: self._emit_car(s, remaining - 1),
            )


class ClientServerHAPSource:
    """HAP-CS: the hierarchy emits requests; served messages trigger chains.

    Wire :meth:`handle_departure` to the queue's ``on_departure`` hook.  A
    served *request* of type (i, j) triggers, with probability ``p^q_ij``, a
    *response* arriving ``round_trip_delay`` later; a served response
    triggers the next request with probability ``p^r_ij``.

    Requests carry ``kind="request"`` and responses ``kind="response"``, and
    their service times are drawn from the type's respective rates (the
    queue's own service distribution is bypassed via ``Message.service_time``
    — see :class:`ClientServerQueueAdapter` note below).
    """

    def __init__(
        self,
        sim: Simulator,
        params: ClientServerHAPParameters,
        rng: np.random.Generator,
        emit: EmitFn,
        track_populations: bool = True,
    ):
        self.sim = sim
        self.params = params
        self.rng = rng
        self.emit = emit
        self.requests_emitted = 0
        self.responses_emitted = 0
        # Reuse the plain HAP hierarchy for spontaneous request generation.
        hap_equivalent = self._spontaneous_hap()
        self.hierarchy = HAPSource(
            sim,
            hap_equivalent,
            rng,
            self._emit_spontaneous_request,
            track_populations=track_populations,
        )

    def _spontaneous_hap(self) -> HAPParameters:
        from repro.core.params import ApplicationType, MessageType

        apps = tuple(
            ApplicationType(
                arrival_rate=app.arrival_rate,
                departure_rate=app.departure_rate,
                messages=tuple(
                    MessageType(
                        arrival_rate=msg.arrival_rate,
                        service_rate=msg.request_service_rate,
                        name=msg.name,
                    )
                    for msg in app.messages
                ),
                name=app.name,
            )
            for app in self.params.applications
        )
        return HAPParameters(
            user_arrival_rate=self.params.user_arrival_rate,
            user_departure_rate=self.params.user_departure_rate,
            applications=apps,
            name=f"{self.params.name or 'hap-cs'}-spontaneous",
        )

    def start(self) -> None:
        """Start the underlying hierarchy."""
        self.hierarchy.start()

    def prepopulate(self) -> None:
        """Warm-start the hierarchy populations."""
        self.hierarchy.prepopulate()

    def _message_params(self, message: Message):
        app = self.params.applications[message.app_type]
        return app.messages[message.message_type]

    def _emit_spontaneous_request(self, message: Message) -> None:
        message.kind = "request"
        self.requests_emitted += 1
        self.emit(message)

    def handle_departure(self, sim: Simulator, message: Message) -> None:
        """Queue departure hook: continue the request/response chain."""
        if message.kind not in ("request", "response"):
            return
        msg_params = self._message_params(message)
        if message.kind == "request":
            if self.rng.random() < msg_params.p_response:
                self._schedule_followup(message, "response")
        else:
            if self.rng.random() < msg_params.p_next_request:
                self._schedule_followup(message, "request")

    def _schedule_followup(self, parent: Message, kind: str) -> None:
        app_type, message_type = parent.app_type, parent.message_type

        def arrive(sim: Simulator) -> None:
            message = Message(
                arrival_time=sim.now,
                app_type=app_type,
                message_type=message_type,
                kind=kind,
            )
            if kind == "request":
                self.requests_emitted += 1
            else:
                self.responses_emitted += 1
            self.emit(message)

        self.sim.schedule(self.params.round_trip_delay, arrive)
