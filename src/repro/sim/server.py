"""The FCFS single-server message queue (the "/M/1" of HAP/M/1).

Messages emitted by a source (:mod:`repro.sim.sources`) arrive here; the
server draws each message's service time from its distribution (exponential
``mu''`` in all of the paper's experiments) and serves in arrival order.

The queue exposes exactly the observables the paper reports:

* per-message delay (system time) and waiting time tallies,
* ``sigma`` — fraction of arrivals that found the server busy,
* time-averaged queue length and utilization,
* a queue-length trace and busy-period transitions for the "mountain"
  analysis of Figures 14–18.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.monitors import Tally, TimeWeightedValue, TraceRecorder
from repro.sim.random_streams import Exponential

__all__ = ["FCFSQueue", "Message"]


class Message:
    """One message travelling through the queue.

    A ``__slots__`` record: hundreds of thousands are allocated per
    replication, so there is no per-instance ``__dict__``, and the
    ``metadata`` dict — which only protocol/network experiments use — is
    allocated lazily on first access rather than per message.

    Attributes
    ----------
    arrival_time:
        When the message reached the queue.
    app_type, message_type:
        Indices identifying the generating leaf of the HAP hierarchy
        (-1 for sources without a hierarchy).
    service_time:
        Drawn at arrival; None until the message enters the queue.
    kind:
        Free-form tag (e.g. ``"request"`` / ``"response"`` for HAP-CS).
    metadata:
        Free-form dict (fragmentation bookkeeping, network timestamps);
        created on first access.
    """

    __slots__ = (
        "arrival_time",
        "app_type",
        "message_type",
        "service_time",
        "kind",
        "_metadata",
    )

    def __init__(
        self,
        arrival_time: float,
        app_type: int = -1,
        message_type: int = -1,
        service_time: float | None = None,
        kind: str = "",
        metadata: dict | None = None,
    ) -> None:
        self.arrival_time = arrival_time
        self.app_type = app_type
        self.message_type = message_type
        self.service_time = service_time
        self.kind = kind
        self._metadata = metadata

    @property
    def metadata(self) -> dict:
        """Per-message annotations; the dict materializes on first use."""
        md = self._metadata
        if md is None:
            md = self._metadata = {}
        return md

    @metadata.setter
    def metadata(self, value: dict) -> None:
        self._metadata = value

    def __repr__(self) -> str:
        return (
            f"Message(arrival_time={self.arrival_time!r}, "
            f"app_type={self.app_type!r}, message_type={self.message_type!r}, "
            f"service_time={self.service_time!r}, kind={self.kind!r})"
        )


class FCFSQueue:
    """A single-server FCFS queue with full instrumentation.

    Parameters
    ----------
    sim:
        The event loop.
    service:
        Service-time distribution (anything with ``sample(rng)``); a float
        is shorthand for ``Exponential(rate=value)``.
    rng:
        Generator for service draws.
    trace_stride:
        When positive, record the queue length at every change with this
        stride (0 disables tracing).
    warmup:
        Observations before this time are excluded from the tallies (the
        time-weighted stats start at the warmup boundary as well).
    on_departure:
        Optional callback ``(sim, message) -> None`` fired at each service
        completion — the HAP-CS source uses it to trigger responses.
    record_delays:
        Keep every post-warmup delay in ``delay_log`` (needed for the
        running-mean convergence study of Figure 13).
    """

    def __init__(
        self,
        sim: Simulator,
        service,
        rng: np.random.Generator,
        trace_stride: int = 0,
        warmup: float = 0.0,
        on_departure=None,
        record_delays: bool = False,
    ):
        if isinstance(service, (int, float)):
            service = Exponential(rate=float(service))
        self.sim = sim
        self.service = service
        self.rng = rng
        self.warmup = warmup
        self.on_departure = on_departure

        self._waiting: deque[Message] = deque()
        self._in_service: Message | None = None
        if warmup > sim.now:
            # Align the time-weighted collectors with the true queue state
            # exactly when statistics collection begins.
            sim.schedule_at(warmup, lambda s: self.sync_time_weighted())

        self.delays = Tally()
        self.waits = Tally()
        self.arrivals_total = 0
        self.arrivals_found_busy = 0
        self.queue_length = TimeWeightedValue(0.0, start_time=warmup)
        self.busy = TimeWeightedValue(0.0, start_time=warmup)
        self.trace: TraceRecorder | None = (
            TraceRecorder(trace_stride) if trace_stride > 0 else None
        )
        #: Per-message delays in completion order (when record_delays).
        self.delay_log: list[float] | None = [] if record_delays else None
        #: (time, +1/-1) busy-period transitions: +1 = busy period starts.
        self.busy_transitions: list[tuple[float, int]] = []

    # ------------------------------------------------------------------
    # Queue dynamics
    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Messages in system (waiting plus in service)."""
        return len(self._waiting) + (1 if self._in_service is not None else 0)

    def arrive(self, message: Message) -> None:
        """Accept a message; starts service immediately if the server is idle."""
        now = self.sim.now
        in_service = self._in_service
        if now >= self.warmup:
            self.arrivals_total += 1
            if in_service is not None:
                self.arrivals_found_busy += 1
            else:
                self.busy_transitions.append((now, +1))
        self._record_length_change(now, +1)
        if in_service is None:
            self._start_service(message)
        else:
            self._waiting.append(message)

    def _start_service(self, message: Message) -> None:
        message.service_time = self.service.sample(self.rng)
        self._in_service = message
        self._update_busy(self.sim.now, 1.0)
        self.sim.schedule(message.service_time, self._complete_service)

    def _update_busy(self, now: float, value: float) -> None:
        if now >= self.warmup:
            self.busy.update(now, value)
        else:
            self.busy.value = value

    def _complete_service(self, sim: Simulator) -> None:
        message = self._in_service
        now = sim.now
        if message.arrival_time >= self.warmup:
            delay = now - message.arrival_time
            self.delays.observe(delay)
            self.waits.observe(delay - message.service_time)
            if self.delay_log is not None:
                self.delay_log.append(delay)
        self._record_length_change(now, -1)
        self._in_service = None
        waiting = self._waiting
        if waiting:
            self._start_service(waiting.popleft())
        else:
            self._update_busy(now, 0.0)
            if now >= self.warmup:
                self.busy_transitions.append((now, -1))
        if self.on_departure is not None:
            self.on_departure(sim, message)

    def _record_length_change(self, now: float, delta: int) -> None:
        if now >= self.warmup:
            new_length = float(
                len(self._waiting)
                + (1 if self._in_service is not None else 0)
                + delta
            )
            self.queue_length.update(now, new_length)
            if self.trace is not None:
                self.trace.record(now, new_length)

    def sync_time_weighted(self) -> None:
        """Align the time-weighted collectors with the live queue state.

        The replication driver calls this exactly at the warmup boundary so
        that the time averages start from the real (warmed) queue state
        rather than from zero.
        """
        self.queue_length.value = float(self.length)
        self.busy.value = 1.0 if self._in_service is not None else 0.0

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Close the time-weighted accumulators at the current clock."""
        now = max(self.sim.now, self.warmup)
        self.queue_length.finalize(now)
        self.busy.finalize(now)

    @property
    def sigma_estimate(self) -> float:
        """Fraction of (post-warmup) arrivals that found the server busy."""
        if self.arrivals_total == 0:
            return float("nan")
        return self.arrivals_found_busy / self.arrivals_total

    @property
    def utilization_estimate(self) -> float:
        """Time-averaged busy fraction."""
        return self.busy.time_average

    @property
    def mean_delay(self) -> float:
        """Average system time of completed, post-warmup messages."""
        return self.delays.mean

    @property
    def mean_queue_length(self) -> float:
        """Time-averaged number in system."""
        return self.queue_length.time_average
