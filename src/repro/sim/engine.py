"""A minimal, fast discrete-event simulation engine.

The engine is a heap of timestamped callbacks.  Design choices driven by the
HAP workload:

* **Cancellable events.**  User departure must stop that user's pending
  application invocations; cancellation is O(1) by invalidation (the heap
  entry stays but is skipped when popped).  When invalidated entries pile up
  past half the heap, the heap is compacted in place so long campaigns with
  heavy churn stay O(log live) per operation.
* **Deterministic tie-breaking.**  Events at equal times fire in scheduling
  order (a monotone sequence number), so runs are exactly reproducible for a
  given seed.
* **No global state.**  Each :class:`Simulator` is self-contained; tests run
  many of them concurrently.

Hot-path layout (PR 2): the heap holds plain ``(time, sequence, event)``
tuples, so ordering is resolved by C-level tuple comparison on two numbers —
never by a Python ``__lt__``.  :class:`Event` is a ``__slots__`` record, and
:meth:`Simulator.run_until` binds ``heappop`` and the heap list locally and
inlines the pop-skip-fire loop.  Pop order is a total order on the unique
``(time, sequence)`` key, so none of this changes which event fires when:
the firing sequence is bit-identical to the pre-rewrite engine.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable

__all__ = ["Event", "Simulator"]

#: An event callback receives the simulator (for the clock and re-scheduling).
Action = Callable[["Simulator"], None]

#: Compact the heap only beyond this size — tiny heaps aren't worth a sweep.
_COMPACT_MIN_SIZE = 64


class Event:
    """A scheduled callback; fires at ``time``, ties broken by ``sequence``.

    Do not construct directly — use :meth:`Simulator.schedule`.
    """

    __slots__ = ("time", "sequence", "action", "cancelled", "_sim")

    def __init__(self, time: float, sequence: int, action: Action, sim) -> None:
        self.time = time
        self.sequence = sequence
        self.action = action
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when its time comes."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._note_cancelled()


class Simulator:
    """The event loop.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda s: fired.append(s.now))
    >>> _ = sim.schedule(1.0, lambda s: fired.append(s.now))
    >>> sim.run_until(10.0)
    >>> fired
    [1.0, 2.0]
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence: int = 0
        self._events_processed: int = 0
        self._cancelled_pending: int = 0

    @property
    def events_processed(self) -> int:
        """Number of (non-cancelled) events fired so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Heap size, including cancelled entries awaiting their pop."""
        return len(self._heap)

    def schedule(self, delay: float, action: Action) -> Event:
        """Schedule ``action`` to fire ``delay`` time units from now.

        Returns the :class:`Event`, whose :meth:`Event.cancel` removes it.

        Raises
        ------
        ValueError
            For negative or non-finite delays — time only moves forward,
            and a NaN delay would pass a plain ``delay < 0`` check yet
            corrupt heap ordering (NaN compares False against everything),
            silently stalling :meth:`run_until`.
        """
        if not math.isfinite(delay) or delay < 0:
            raise ValueError(
                f"delay must be finite and non-negative (got {delay})"
            )
        time = self.now + delay
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(time, sequence, action, self)
        heapq.heappush(self._heap, (time, sequence, event))
        return event

    def schedule_at(self, time: float, action: Action) -> Event:
        """Schedule ``action`` at absolute finite ``time >= now``."""
        if not math.isfinite(time) or time < self.now:
            raise ValueError(
                f"schedule time must be finite and >= current time "
                f"{self.now} (got {time})"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(time, sequence, action, self)
        heapq.heappush(self._heap, (time, sequence, event))
        return event

    def _note_cancelled(self) -> None:
        """Bookkeeping from :meth:`Event.cancel`; compacts when stale-heavy."""
        count = self._cancelled_pending + 1
        self._cancelled_pending = count
        heap = self._heap
        if len(heap) >= _COMPACT_MIN_SIZE and count > len(heap) // 2:
            # In-place so a loop holding a local reference keeps seeing the
            # live heap.  Pop order is the sorted (time, sequence) order, so
            # re-heapifying the survivors never reorders anything.
            heap[:] = [entry for entry in heap if not entry[2].cancelled]
            heapq.heapify(heap)
            self._cancelled_pending = 0

    def step(self) -> bool:
        """Fire the next live event.  Returns False when the heap is empty."""
        heap = self._heap
        while heap:
            time, _, event = heapq.heappop(heap)
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            event._sim = None
            self.now = time
            self._events_processed += 1
            event.action(self)
            return True
        return False

    def run_until(self, horizon: float) -> None:
        """Run events with ``time <= horizon``; the clock ends at ``horizon``.

        Events scheduled beyond the horizon stay in the heap, so the
        simulation can be resumed with a later horizon.
        """
        if horizon < self.now:
            raise ValueError("horizon lies in the past")
        heap = self._heap
        pop = heapq.heappop
        while heap:
            time = heap[0][0]
            if time > horizon:
                break
            _, _, event = pop(heap)
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            event._sim = None
            self.now = time
            self._events_processed += 1
            event.action(self)
        self.now = horizon

    def run_until_idle(self, max_events: int | None = None) -> None:
        """Run until no events remain (or ``max_events`` fired).

        Raises
        ------
        RuntimeError
            When ``max_events`` is exhausted — the usual sign of a source
            that reschedules itself forever without a horizon.
        """
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                raise RuntimeError(
                    f"still busy after {max_events} events; "
                    "use run_until with a horizon for open-ended sources"
                )
