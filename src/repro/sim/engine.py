"""A minimal, fast discrete-event simulation engine.

The engine is a heap of timestamped callbacks.  Design choices driven by the
HAP workload:

* **Cancellable events.**  User departure must stop that user's pending
  application invocations; cancellation is O(1) by invalidation (the heap
  entry stays but is skipped when popped).
* **Deterministic tie-breaking.**  Events at equal times fire in scheduling
  order (a monotone sequence number), so runs are exactly reproducible for a
  given seed.
* **No global state.**  Each :class:`Simulator` is self-contained; tests run
  many of them concurrently.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["Event", "Simulator"]

#: An event callback receives the simulator (for the clock and re-scheduling).
Action = Callable[["Simulator"], None]


@dataclass(order=True)
class Event:
    """A scheduled callback; ordered by ``(time, sequence)``.

    Do not construct directly — use :meth:`Simulator.schedule`.
    """

    time: float
    sequence: int
    action: Action = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when its time comes."""
        self.cancelled = True


class Simulator:
    """The event loop.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda s: fired.append(s.now))
    >>> _ = sim.schedule(1.0, lambda s: fired.append(s.now))
    >>> sim.run_until(10.0)
    >>> fired
    [1.0, 2.0]
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._sequence: int = 0
        self._events_processed: int = 0

    @property
    def events_processed(self) -> int:
        """Number of (non-cancelled) events fired so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Heap size, including cancelled entries awaiting their pop."""
        return len(self._heap)

    def schedule(self, delay: float, action: Action) -> Event:
        """Schedule ``action`` to fire ``delay`` time units from now.

        Returns the :class:`Event`, whose :meth:`Event.cancel` removes it.

        Raises
        ------
        ValueError
            For negative or non-finite delays — time only moves forward,
            and a NaN delay would pass a plain ``delay < 0`` check yet
            corrupt heap ordering (NaN compares False against everything),
            silently stalling :meth:`run_until`.
        """
        if not math.isfinite(delay) or delay < 0:
            raise ValueError(
                f"delay must be finite and non-negative (got {delay})"
            )
        return self.schedule_at(self.now + delay, action)

    def schedule_at(self, time: float, action: Action) -> Event:
        """Schedule ``action`` at absolute finite ``time >= now``."""
        if not math.isfinite(time) or time < self.now:
            raise ValueError(
                f"schedule time must be finite and >= current time "
                f"{self.now} (got {time})"
            )
        event = Event(time=time, sequence=self._sequence, action=action)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def step(self) -> bool:
        """Fire the next live event.  Returns False when the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_processed += 1
            event.action(self)
            return True
        return False

    def run_until(self, horizon: float) -> None:
        """Run events with ``time <= horizon``; the clock ends at ``horizon``.

        Events scheduled beyond the horizon stay in the heap, so the
        simulation can be resumed with a later horizon.
        """
        if horizon < self.now:
            raise ValueError("horizon lies in the past")
        while self._heap:
            event = self._heap[0]
            if event.time > horizon:
                break
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_processed += 1
            event.action(self)
        self.now = horizon

    def run_until_idle(self, max_events: int | None = None) -> None:
        """Run until no events remain (or ``max_events`` fired).

        Raises
        ------
        RuntimeError
            When ``max_events`` is exhausted — the usual sign of a source
            that reschedules itself forever without a horizon.
        """
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                raise RuntimeError(
                    f"still busy after {max_events} events; "
                    "use run_until with a horizon for open-ended sources"
                )
