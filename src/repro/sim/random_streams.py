"""Seeded random substreams and service/interarrival distributions.

Reproducibility discipline: every stochastic component of a simulation draws
from its own named substream, spawned from one master seed via numpy's
``SeedSequence``.  Adding a new component therefore never perturbs the draws
of existing ones — essential when comparing HAP against Poisson "on the same
randomness" and when hunting rare events like the paper's Figure-15 peak
busy period.

The distribution classes are deliberately tiny: a ``sample(rng)`` method, a
``mean()`` and a ``rate`` where meaningful.  The paper's analysis is all
exponential, but the simulator accepts any of these (e.g. Pareto message
sizes for the heavy-tail extension study).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Deterministic",
    "Erlang",
    "Exponential",
    "ExponentialBatcher",
    "Hyperexponential",
    "Pareto",
    "RandomStreams",
]


class RandomStreams:
    """A family of independent named random generators from one seed.

    Examples
    --------
    >>> streams = RandomStreams(seed=7)
    >>> rng = streams.get("user-arrivals")
    >>> rng2 = streams.get("user-arrivals")  # same object back
    >>> rng is rng2
    True
    """

    def __init__(self, seed: int | np.random.SeedSequence = 0):
        self._seed_sequence = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created deterministically on first use.

        The substream seed is derived from the master seed and the *name*
        (not creation order), so components can be instantiated in any order
        without changing anyone's draws.
        """
        if name not in self._streams:
            # Derive entropy from the name so ordering doesn't matter.
            name_entropy = np.frombuffer(
                name.encode("utf-8").ljust(4, b"\0"), dtype=np.uint8
            ).astype(np.uint32)
            child = np.random.SeedSequence(
                entropy=self._seed_sequence.entropy,
                spawn_key=tuple(int(v) for v in name_entropy),
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]


class ExponentialBatcher:
    """Unit-exponential variates drawn in numpy blocks, served one at a time.

    The engine behind ``rng_mode="batched"`` (see
    :class:`repro.sim.sources.HAPSource`) and the block-draw substrate of
    the columnar execution mode (:mod:`repro.sim.columnar`): instead of one
    ``Generator.exponential`` call per event — whose per-call overhead
    dominates Markov-modulated arrival simulation — a block of
    ``standard_exponential`` variates is drawn at once and handed out as
    plain Python floats, scaled by the requested mean.

    Determinism contract (different from the legacy per-call domain):

    * **seed-stable** — the same seed always yields the same variate
      sequence, because draws come from one generator in one fixed order;
    * **worker-count-stable** — each replication owns its generator, so the
      process-pool fan-out cannot interleave blocks across seeds;
    * **not bit-identical to legacy** — the block boundary changes the
      underlying bit-stream consumption, so individual variates differ from
      per-call draws even at the same seed.  Distributions are identical
      (``exponential(scale)`` is ``scale * standard_exponential()``).

    Means are validated *at draw time*: a nonpositive, NaN, or infinite
    mean raises immediately instead of emitting inf/NaN interarrivals.  The
    legacy per-call path is guarded downstream by
    :meth:`repro.sim.engine.Simulator.schedule`, but block-drawn variates
    can bypass the event heap entirely (the columnar engine never
    schedules), so the batcher is the last line of defence.
    """

    __slots__ = ("_rng", "_block_size", "_block", "_index")

    def __init__(self, rng: np.random.Generator, block_size: int = 4096):
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self._rng = rng
        self._block_size = block_size
        self._block: list[float] = []
        self._index = 0

    @staticmethod
    def _validate_mean(mean: float) -> None:
        # ``not (0 < mean < inf)`` is False for NaN too — one comparison
        # chain covers nonpositive, NaN, and infinite means on the hot path.
        if not 0.0 < mean < math.inf:
            raise ValueError(
                f"exponential mean must be positive and finite (got {mean})"
            )

    def draw(self, mean: float) -> float:
        """One exponential variate with the given ``mean`` (``1/rate``)."""
        self._validate_mean(mean)
        i = self._index
        block = self._block
        if i >= len(block):
            # tolist() hands back Python floats: indexing a list is much
            # cheaper than extracting numpy scalars in the event loop.
            block = self._block = self._rng.standard_exponential(
                self._block_size
            ).tolist()
            i = 0
        self._index = i + 1
        return block[i] * mean

    def draw_block(self, count: int, mean: float) -> np.ndarray:
        """``count`` exponential variates with the given ``mean``, as an array.

        Consumes the same underlying bit-stream as ``count`` calls to
        :meth:`draw` would (any partially-served block is used up first), so
        mixing scalar and block draws stays seed-deterministic.
        """
        self._validate_mean(mean)
        if count < 0:
            raise ValueError("count must be non-negative")
        remaining = len(self._block) - self._index
        if remaining >= count:
            i = self._index
            self._index = i + count
            return np.asarray(self._block[i : i + count], dtype=float) * mean
        head = np.asarray(self._block[self._index :], dtype=float)
        self._block = []
        self._index = 0
        tail = self._rng.standard_exponential(count - len(head))
        return np.concatenate([head, tail]) * mean


@dataclass(frozen=True)
class Exponential:
    """Exponential distribution with the given ``rate`` (mean ``1/rate``)."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value."""
        return float(rng.exponential(1.0 / self.rate))

    def mean(self) -> float:
        """``1 / rate``."""
        return 1.0 / self.rate


@dataclass(frozen=True)
class Deterministic:
    """A constant — used for fixed packetization/response processing times."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError("value must be non-negative")

    def sample(self, rng: np.random.Generator) -> float:
        """Always the constant."""
        return self.value

    def mean(self) -> float:
        """The constant itself."""
        return self.value


@dataclass(frozen=True)
class Erlang:
    """Erlang(``shape``, ``rate``) — sum of ``shape`` exponentials."""

    shape: int
    rate: float

    def __post_init__(self) -> None:
        if self.shape < 1:
            raise ValueError("shape must be a positive integer")
        if self.rate <= 0:
            raise ValueError("rate must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value."""
        return float(rng.gamma(self.shape, 1.0 / self.rate))

    def mean(self) -> float:
        """``shape / rate``."""
        return self.shape / self.rate


@dataclass(frozen=True)
class Hyperexponential:
    """Mixture of exponentials — higher variability than exponential.

    Parameters
    ----------
    probabilities:
        Branch probabilities (must sum to 1).
    rates:
        Rate of each exponential branch.
    """

    probabilities: tuple[float, ...]
    rates: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.probabilities) != len(self.rates) or not self.rates:
            raise ValueError("need matching, non-empty probabilities and rates")
        if abs(sum(self.probabilities) - 1.0) > 1e-9:
            raise ValueError("probabilities must sum to 1")
        if any(p < 0 for p in self.probabilities) or any(
            r <= 0 for r in self.rates
        ):
            raise ValueError("probabilities must be >= 0 and rates > 0")

    def sample(self, rng: np.random.Generator) -> float:
        """Pick a branch, then draw exponentially."""
        branch = rng.choice(len(self.rates), p=self.probabilities)
        return float(rng.exponential(1.0 / self.rates[branch]))

    def mean(self) -> float:
        """``sum_k p_k / r_k``."""
        return sum(p / r for p, r in zip(self.probabilities, self.rates))


@dataclass(frozen=True)
class Pareto:
    """Pareto(``shape``, ``scale``) on ``[scale, inf)`` — heavy tails.

    Used by the heavy-tail extension experiments (what happens to HAP's
    congestion picture when application lifetimes are not exponential —
    a nod to the self-similar-traffic literature that followed the paper).
    """

    shape: float
    scale: float

    def __post_init__(self) -> None:
        if self.shape <= 0 or self.scale <= 0:
            raise ValueError("shape and scale must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value (support ``[scale, inf)``)."""
        return float(self.scale * (1.0 + rng.pareto(self.shape)))

    def mean(self) -> float:
        """``shape * scale / (shape - 1)``; infinite for shape <= 1."""
        if self.shape <= 1.0:
            return float("inf")
        return self.shape * self.scale / (self.shape - 1.0)
