"""Multi-hop (tandem) queueing networks of FCFS servers.

The paper sizes overlay links one queue at a time (Section 7); this module
provides the simulation counterpart: a path of FCFS exponential servers
that messages traverse in order, with per-hop and end-to-end statistics.
Used by the overlay validation experiment to check that per-link HAP
sizing actually delivers the end-to-end delay target — a check the paper's
analytic treatment cannot make, because HAP's *departures* are not a HAP
(the queue reshapes the stream).

The implementation reuses :class:`~repro.sim.server.FCFSQueue` unchanged:
each hop's ``on_departure`` re-submits the message (with a fresh arrival
time) to the next hop, and end-to-end delay is accumulated in the message
metadata.
"""

from __future__ import annotations

from repro.sim.engine import Simulator
from repro.sim.monitors import Tally
from repro.sim.random_streams import Exponential, RandomStreams
from repro.sim.server import FCFSQueue, Message

__all__ = ["TandemNetwork"]


class TandemNetwork:
    """A fixed path of FCFS exponential servers.

    Parameters
    ----------
    sim:
        The event loop.
    service_rates:
        One exponential rate per hop, in traversal order.
    streams:
        Random streams; each hop draws from its own named substream.
    warmup:
        Statistics start time (applies to every hop and to the end-to-end
        tally).
    """

    def __init__(
        self,
        sim: Simulator,
        service_rates: list[float],
        streams: RandomStreams,
        warmup: float = 0.0,
    ):
        if not service_rates:
            raise ValueError("need at least one hop")
        self.sim = sim
        self.warmup = warmup
        self.end_to_end = Tally()
        self.queues: list[FCFSQueue] = []
        for index, rate in enumerate(service_rates):
            queue = FCFSQueue(
                sim,
                Exponential(rate),
                streams.get(f"hop-{index}"),
                warmup=warmup,
                on_departure=self._make_forwarder(index),
            )
            self.queues.append(queue)

    def _make_forwarder(self, index: int):
        def forward(sim: Simulator, message: Message) -> None:
            entered = message.metadata.get("entered_network")
            if index + 1 < len(self.queues):
                # Fresh arrival time so the next hop's delay is its own.
                next_message = Message(
                    arrival_time=sim.now,
                    app_type=message.app_type,
                    message_type=message.message_type,
                    kind=message.kind,
                    metadata=message.metadata,
                )
                self.queues[index + 1].arrive(next_message)
            elif entered is not None and entered >= self.warmup:
                self.end_to_end.observe(sim.now - entered)

        return forward

    def arrive(self, message: Message) -> None:
        """Entry point: submit a message to the first hop."""
        message.metadata["entered_network"] = self.sim.now
        self.queues[0].arrive(message)

    def finalize(self) -> None:
        """Close every hop's time-weighted statistics."""
        for queue in self.queues:
            queue.finalize()

    @property
    def num_hops(self) -> int:
        """Number of servers on the path."""
        return len(self.queues)

    def per_hop_delays(self) -> list[float]:
        """Mean delay at each hop."""
        return [queue.mean_delay for queue in self.queues]

    @property
    def mean_end_to_end_delay(self) -> float:
        """Mean total time across all hops."""
        return self.end_to_end.mean
