"""Discrete-event simulation substrate.

The paper validates every analytic result against an event-driven simulator;
this package is that simulator:

* :mod:`repro.sim.engine` — the event loop (heap scheduler with cancellable
  events).
* :mod:`repro.sim.random_streams` — seeded, named random-number substreams
  and the distribution objects the sources draw from.
* :mod:`repro.sim.sources` — traffic sources: the full HAP hierarchy,
  HAP-CS, Poisson, MMPP, on–off/IPP, and packet trains.
* :mod:`repro.sim.server` — the FCFS exponential (or general) single-server
  queue the messages feed.
* :mod:`repro.sim.monitors` — tallies, time-weighted statistics and traces.
* :mod:`repro.sim.busy_periods` — busy-period / "mountain" analysis
  (Figures 14, 15, 18).
* :mod:`repro.sim.replication` — warmup handling, replications, batch means,
  and the high-level :func:`repro.sim.replication.simulate_hap_mm1` driver.
* :mod:`repro.sim.columnar` — the columnar execution mode: whole-stream
  numpy generation (uniformization-thinning) plus a vectorized Lindley
  queue, an order of magnitude faster than the heap for chain-modulated
  sources.
"""

from repro.sim.busy_periods import BusyPeriod, BusyPeriodStats, analyze_busy_periods
from repro.sim.columnar import (
    lindley_waits,
    sample_mmpp_stream,
    sample_poisson_stream,
    simulate_hap_approx_columnar,
    simulate_hap_columnar,
    simulate_mmpp_columnar,
    simulate_poisson_columnar,
)
from repro.sim.engine import Event, Simulator
from repro.sim.monitors import Tally, TimeWeightedValue, TraceRecorder
from repro.sim.network import TandemNetwork
from repro.sim.protocol import Fragmenter, WindowRegulator
from repro.sim.random_streams import (
    Deterministic,
    Erlang,
    Exponential,
    Hyperexponential,
    Pareto,
    RandomStreams,
)
from repro.sim.replication import (
    SimulationResult,
    simulate_hap_mm1,
    simulate_source_mm1,
)
from repro.sim.server import FCFSQueue, Message
from repro.sim.sources import (
    ClientServerHAPSource,
    HAPSource,
    MMPPSource,
    OnOffSource,
    PacketTrainSource,
    PoissonSource,
)

__all__ = [
    "BusyPeriod",
    "BusyPeriodStats",
    "ClientServerHAPSource",
    "Deterministic",
    "Erlang",
    "Event",
    "Exponential",
    "FCFSQueue",
    "Fragmenter",
    "HAPSource",
    "Hyperexponential",
    "MMPPSource",
    "Message",
    "OnOffSource",
    "PacketTrainSource",
    "Pareto",
    "PoissonSource",
    "RandomStreams",
    "SimulationResult",
    "Simulator",
    "TandemNetwork",
    "Tally",
    "TimeWeightedValue",
    "TraceRecorder",
    "WindowRegulator",
    "analyze_busy_periods",
    "lindley_waits",
    "sample_mmpp_stream",
    "sample_poisson_stream",
    "simulate_hap_approx_columnar",
    "simulate_hap_columnar",
    "simulate_hap_mm1",
    "simulate_mmpp_columnar",
    "simulate_poisson_columnar",
    "simulate_source_mm1",
]
