"""Columnar simulation core: whole-stream arrays instead of heap events.

The tuple-heap engine (:mod:`repro.sim.engine`) pays Python-interpreter
overhead per *event*; this module pays it per *block*.  An entire arrival
stream is generated as numpy arrays — Poisson streams as blocked exponential
cumsums, MMPP streams by **uniformization-thinning** (walk the modulating
chain once, lay down candidate arrivals at the dominating rate ``r_max``,
keep each candidate with probability ``rate(state)/r_max``) — and the FCFS
queue is then solved in one pass with a vectorized **Lindley recursion**

    ``W[k] = max(0, W[k-1] + S[k-1] - (A[k] - A[k-1]))``

evaluated chunk-by-chunk via cumulative sums and running minima, so peak
temporary memory is bounded by the chunk size regardless of stream length.
No numba, no event heap: everything is numpy primitives.

The replication-batched variant (:mod:`repro.sim.columnar_batch`,
re-exported here as ``simulate_*_columnar_batch``) runs R replications in
lock-step as ``(R, block)`` 2-D arrays, bit-identical row for row to the
sequential functions below — one engine, two dispatch shapes.

Semantics contract (mirrors the heap engine observable-for-observable)
----------------------------------------------------------------------
* delays/waits are observed for messages that *arrived at or after the
  warmup* and *completed by the horizon* (exactly
  :meth:`repro.sim.server.FCFSQueue._complete_service`);
* ``sigma`` is the fraction of post-warmup arrivals that found the server
  busy (``W > 0``);
* utilization and mean queue length are time averages over
  ``[warmup, horizon]`` computed from exact busy/presence interval overlaps;
* ``events_processed`` counts arrivals, in-horizon departures, and
  modulating-chain jumps — the columnar analog of the heap's fired events.

Determinism contract (a third domain, beside ``legacy`` and ``batched``)
------------------------------------------------------------------------
All variates come from one :class:`~repro.sim.random_streams.RandomStreams`
pair of named substreams (``"columnar-source"``, ``"columnar-server"``) in a
fixed draw order: modulating-chain sojourns and jump targets first, then
candidate gaps, then thinning uniforms, then service times.  Results are
seed-stable and worker-count-stable; they are **not** bit-identical to
either heap domain (block boundaries change bit-stream consumption), and
the ``block_size`` is part of the contract — changing it changes the
variates.  The chunk size of the Lindley recursion is *not* part of the
contract: it only reassociates floating-point sums (see
:func:`lindley_waits`), never which variates are drawn.

Fallback rule
-------------
Columnar generation covers sources whose arrival process is fully
determined by a finite modulating chain (Poisson, MMPP, and the symmetric
HAP through its Section-3.1 ``(x, y)`` MMPP mapping).  State-*dependent*
dynamics — lifetime-distribution overrides, client–server feedback — need
the event heap; :func:`simulate_hap_columnar` falls back to
:func:`~repro.sim.replication.simulate_hap_mm1` for those and records the
fallback in ``extras["engine"]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.params import HAPParameters
from repro.markov.mmpp import MMPP
from repro.sim.random_streams import ExponentialBatcher, RandomStreams
from repro.sim.replication import SimulationResult, _validate_window

__all__ = [
    "BatchWorkspace",
    "MMPPStreamArrays",
    "lindley_waits",
    "lindley_waits_batch",
    "sample_mmpp_stream",
    "sample_mmpp_streams_batch",
    "sample_poisson_stream",
    "simulate_hap_approx_columnar",
    "simulate_hap_approx_columnar_batch",
    "simulate_hap_columnar",
    "simulate_mmpp_columnar",
    "simulate_mmpp_columnar_batch",
    "simulate_poisson_columnar",
    "simulate_poisson_columnar_batch",
]

#: Names served from :mod:`repro.sim.columnar_batch` via module
#: ``__getattr__`` (PEP 562) — the batch family is part of this module's
#: public API without this module importing the batch engine eagerly.
_BATCH_EXPORTS = frozenset(
    {
        "BatchWorkspace",
        "lindley_waits_batch",
        "sample_mmpp_streams_batch",
        "simulate_hap_approx_columnar_batch",
        "simulate_mmpp_columnar_batch",
        "simulate_poisson_columnar_batch",
    }
)


def __getattr__(name: str):
    if name in _BATCH_EXPORTS:
        from repro.sim import columnar_batch

        return getattr(columnar_batch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: Variates drawn per numpy block — part of the determinism contract.
DEFAULT_BLOCK_SIZE = 65_536

#: Arrivals processed per Lindley chunk — bounds temporaries, not results.
DEFAULT_CHUNK_SIZE = 262_144


class _UniformBlocks:
    """Uniform [0, 1) variates in blocks, scalar- or array-served.

    The uniform twin of :class:`~repro.sim.random_streams.ExponentialBatcher`
    (jump-target and thinning draws need uniforms, not exponentials), with
    the same bit-stream splicing rule: a partially served block is used up
    before the generator is asked for more, so mixing scalar and block
    draws stays seed-deterministic.
    """

    __slots__ = ("_rng", "_block_size", "_block", "_index")

    def __init__(self, rng: np.random.Generator, block_size: int = DEFAULT_BLOCK_SIZE):
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self._rng = rng
        self._block_size = block_size
        self._block: list[float] = []
        self._index = 0

    def draw(self) -> float:
        """One uniform variate."""
        i = self._index
        block = self._block
        if i >= len(block):
            block = self._block = self._rng.random(self._block_size).tolist()
            i = 0
        self._index = i + 1
        return block[i]

    def draw_block(self, count: int) -> np.ndarray:
        """``count`` uniform variates as an array (splices a partial block)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if len(self._block) - self._index >= count:
            i = self._index
            self._index = i + count
            return np.asarray(self._block[i : i + count], dtype=float)
        head = np.asarray(self._block[self._index :], dtype=float)
        self._block = []
        self._index = 0
        tail = self._rng.random(count - len(head))
        return np.concatenate([head, tail])


def _cumulative_exponentials(
    batcher: ExponentialBatcher, mean: float, horizon: float, block_size: int
) -> np.ndarray:
    """Event times of a rate-``1/mean`` Poisson process on ``(0, horizon]``.

    Gaps come from :meth:`ExponentialBatcher.draw_block`; each block is
    cumsum-ed onto a running offset, so generation is O(n) with numpy doing
    all the per-event work.
    """
    pieces: list[np.ndarray] = []
    offset = 0.0
    while offset <= horizon:
        times = offset + np.cumsum(batcher.draw_block(block_size, mean))
        offset = float(times[-1])
        pieces.append(times)
    times = np.concatenate(pieces)
    return times[times <= horizon]


def sample_poisson_stream(
    rate: float,
    horizon: float,
    rng: np.random.Generator,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> np.ndarray:
    """Arrival times of a Poisson(``rate``) process on ``(0, horizon]``."""
    if not 0.0 <= rate < math.inf:
        raise ValueError(f"rate must be non-negative and finite (got {rate})")
    if not 0.0 < horizon < math.inf:
        raise ValueError(f"horizon must be positive and finite (got {horizon})")
    if rate == 0.0:
        return np.empty(0)
    batcher = ExponentialBatcher(rng, block_size)
    return _cumulative_exponentials(batcher, 1.0 / rate, horizon, block_size)


@dataclass(frozen=True)
class MMPPStreamArrays:
    """A whole MMPP arrival stream plus its modulating-chain trajectory.

    Attributes
    ----------
    arrivals:
        Accepted (thinned) arrival times, sorted, within ``(0, horizon]``.
    jump_times:
        Modulating state-change times within ``(0, horizon]``.
    states:
        Visited states; ``states[0]`` holds from time 0, ``states[i]``
        from ``jump_times[i-1]`` (the chain is right-continuous).
    initial_state:
        Where the walk started (drawn from the stationary law by default).
    candidates:
        Uniformization candidates generated before thinning (diagnostics:
        the acceptance ratio is ``arrivals.size / candidates``).
    """

    arrivals: np.ndarray
    jump_times: np.ndarray
    states: np.ndarray
    initial_state: int
    candidates: int

    @property
    def num_jumps(self) -> int:
        """Modulating state changes within the horizon."""
        return int(self.jump_times.size)


@dataclass(frozen=True)
class _EmbeddedChain:
    """Padded per-state jump-chain lookup tables.

    ``cumulative[s, :lengths[s]]`` holds the cumulative transition
    probabilities out of state ``s`` (bit-identical to ``np.cumsum`` over
    that state's positive entries) and ``targets[s, :lengths[s]]`` the
    matching destination states.  Pad columns carry ``+inf`` cumulative
    values, so a right-sided rank query (``count of entries <= u``) over a
    full padded row equals ``searchsorted`` on the unpadded one — that is
    what lets the batched walk look all rows up with one 2-D gather.
    Memory is ``O(n_states * max_row_nnz)``: the truncated HAP lattices
    have a handful of neighbours per state, so the padding is tiny.
    """

    targets: np.ndarray  # (n_states, width) int64
    cumulative: np.ndarray  # (n_states, width) float64, +inf pads
    lengths: np.ndarray  # (n_states,) int64


def _embedded_chain(chain) -> _EmbeddedChain:
    """Build :class:`_EmbeddedChain` in one vectorized pass over the matrix.

    No per-state Python loop: the CSR path scatters ``indptr``/``data``
    straight into the padded matrices, the dense path masks positive
    entries, and one ``cumsum(axis=1)`` over the zero-padded rows produces
    per-row cumulatives bit-identical to the old row-by-row ``np.cumsum``
    (trailing zeros never perturb a leading prefix sum).
    """
    matrix = chain.embedded_transition_matrix()
    if sp.issparse(matrix):
        csr = matrix.tocsr()
        n_states = csr.shape[0]
        counts = np.diff(csr.indptr).astype(np.int64)
        width = max(int(counts.max(initial=0)), 1)
        row_of = np.repeat(np.arange(n_states), counts)
        col_of = np.arange(csr.indices.size) - np.repeat(
            csr.indptr[:-1].astype(np.int64), counts
        )
        data = csr.data
        target_values = csr.indices
    else:
        dense = np.asarray(matrix, dtype=float)
        n_states = dense.shape[0]
        mask = dense > 0.0
        counts = mask.sum(axis=1, dtype=np.int64)
        width = max(int(counts.max(initial=0)), 1)
        row_of, target_values = np.nonzero(mask)
        offsets = np.zeros(n_states, dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        col_of = np.arange(row_of.size) - offsets[row_of]
        data = dense[mask]
    padded = np.zeros((n_states, width))
    padded[row_of, col_of] = data
    cumulative = np.cumsum(padded, axis=1)
    cumulative[np.arange(width) >= counts[:, None]] = np.inf
    targets = np.zeros((n_states, width), dtype=np.int64)
    targets[row_of, col_of] = target_values
    return _EmbeddedChain(targets=targets, cumulative=cumulative, lengths=counts)


def _embedded_rows(chain) -> list[tuple[np.ndarray, np.ndarray]]:
    """Per-state ``(targets, cumulative probabilities)`` of the jump chain.

    Views into the padded :func:`_embedded_chain` tables — same arrays the
    old per-state CSR/dense loop produced, built vectorized.
    """
    packed = _embedded_chain(chain)
    return [
        (packed.targets[s, :n], packed.cumulative[s, :n])
        for s, n in enumerate(packed.lengths)
    ]


def sample_mmpp_stream(
    mmpp: MMPP,
    horizon: float,
    rng: np.random.Generator,
    initial_state: int | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> MMPPStreamArrays:
    """One MMPP arrival stream on ``(0, horizon]`` by uniformization-thinning.

    The modulating chain is walked once as its embedded jump chain (blocked
    exponential sojourns + blocked uniform jump targets — the only Python
    loop, one iteration per *state change*, orders of magnitude rarer than
    arrivals for the paper's parameters).  Candidate arrivals are then laid
    down as a Poisson(``r_max``) stream in one vectorized pass and thinned
    by the state-dependent acceptance probability ``rates[state]/r_max``,
    which yields exactly a Poisson process with the modulated rate
    conditional on the chain trajectory.

    Draw order (the determinism contract): initial state (one stationary
    choice, unless pinned), then the chain walk's interleaved sojourn/jump
    draws, then candidate gaps, then thinning uniforms.
    """
    if not 0.0 < horizon < math.inf:
        raise ValueError(f"horizon must be positive and finite (got {horizon})")
    rates = np.asarray(mmpp.rates, dtype=float)
    chain = mmpp.chain
    holding = np.asarray(chain.holding_rates(), dtype=float)
    if initial_state is None:
        pi = mmpp.stationary_distribution()
        initial_state = int(rng.choice(rates.size, p=pi))
    elif not 0 <= initial_state < rates.size:
        raise ValueError(f"initial_state {initial_state} out of range")

    rows = _embedded_rows(chain)
    sojourns = ExponentialBatcher(rng, block_size)
    uniforms = _UniformBlocks(rng, block_size)
    with np.errstate(divide="ignore"):
        sojourn_means = np.where(holding > 0.0, 1.0 / holding, np.inf)

    jump_list: list[float] = []
    state_list: list[int] = [initial_state]
    state = initial_state
    now = 0.0
    draw_sojourn = sojourns.draw
    draw_uniform = uniforms.draw
    while holding[state] > 0.0:
        now += draw_sojourn(sojourn_means[state])
        if now > horizon:
            break
        jump_list.append(now)
        targets, cumulative = rows[state]
        position = int(
            np.searchsorted(cumulative, draw_uniform(), side="right")
        )
        if position >= targets.size:  # guard the cumulative-rounding edge
            position = targets.size - 1
        state = int(targets[position])
        state_list.append(state)

    jump_times = np.asarray(jump_list, dtype=float)
    states = np.asarray(state_list, dtype=np.int64)

    r_max = float(rates.max()) if rates.size else 0.0
    if r_max <= 0.0:
        arrivals = np.empty(0)
        candidates = 0
    else:
        candidate_times = _cumulative_exponentials(
            sojourns, 1.0 / r_max, horizon, block_size
        )
        candidates = int(candidate_times.size)
        # State in effect at each candidate: count of jumps at-or-before it.
        state_at = states[
            np.searchsorted(jump_times, candidate_times, side="right")
        ]
        accept = uniforms.draw_block(candidates) * r_max < rates[state_at]
        arrivals = candidate_times[accept]

    return MMPPStreamArrays(
        arrivals=arrivals,
        jump_times=jump_times,
        states=states,
        initial_state=initial_state,
        candidates=candidates,
    )


def lindley_waits(
    arrival_times: np.ndarray,
    service_times: np.ndarray,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    initial_wait: float = 0.0,
) -> np.ndarray:
    """FCFS waiting times by the vectorized, chunked Lindley recursion.

    For ``U[k] = S[k-1] - (A[k] - A[k-1])`` the recursion
    ``W[k] = max(0, W[k-1] + U[k])`` unrolls, within a chunk entered with
    carry ``w0`` and local prefix sums ``C`` (``C[0] = 0``), to

        ``W[k] = max(0, C[k] - min(C[0..k-1]), w0 + C[k])``

    — one ``cumsum`` plus one ``minimum.accumulate`` per chunk, with the
    chunk's last wait carried into the next.  In exact arithmetic this *is*
    the sequential recursion; in floating point the prefix-sum
    reassociation perturbs results by at most a few ulps per chunk (a
    hypothesis test pins bit-exact agreement on a dyadic grid where all
    sums are representable, and ~1e-12 relative agreement in general).
    ``chunk_size`` moves results only within that same tolerance and is
    not part of the determinism contract.  Peak temporary memory is
    ``O(chunk_size)`` on top of the output array.
    """
    arrivals = np.ascontiguousarray(arrival_times, dtype=float)
    services = np.ascontiguousarray(service_times, dtype=float)
    if arrivals.ndim != 1 or arrivals.shape != services.shape:
        raise ValueError("arrival and service arrays must be 1-D and aligned")
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    if not math.isfinite(initial_wait) or initial_wait < 0.0:
        raise ValueError(f"initial_wait must be finite and >= 0 (got {initial_wait})")
    count = arrivals.size
    waits = np.empty(count)
    if count == 0:
        return waits
    if not np.isfinite(services).all() or (services < 0.0).any():
        raise ValueError("service times must be finite and non-negative")
    waits[0] = initial_wait
    carry = initial_wait
    for start in range(1, count, chunk_size):
        stop = min(start + chunk_size, count)
        gaps = np.diff(arrivals[start - 1 : stop])
        if (gaps < 0.0).any():
            raise ValueError("arrival times must be non-decreasing")
        increments = services[start - 1 : stop - 1] - gaps
        prefix = np.empty(increments.size + 1)
        prefix[0] = 0.0
        np.cumsum(increments, out=prefix[1:])
        running_min = np.minimum.accumulate(prefix[:-1])
        chunk = np.maximum(
            np.maximum(prefix[1:] - running_min, carry + prefix[1:]), 0.0
        )
        waits[start:stop] = chunk
        carry = float(chunk[-1])
    return waits


def _columnar_queue_result(
    arrivals: np.ndarray,
    services: np.ndarray,
    horizon: float,
    warmup: float,
    source_events: int,
    chunk_size: int,
    extras: dict,
) -> SimulationResult:
    """Fold a whole arrival/service stream into a :class:`SimulationResult`.

    Every statistic replicates the heap engine's observation rule — see the
    module docstring's semantics contract.
    """
    waits = lindley_waits(arrivals, services, chunk_size=chunk_size)
    return _queue_result_from_waits(
        arrivals, services, waits, horizon, warmup, source_events, extras
    )


def _queue_result_from_waits(
    arrivals: np.ndarray,
    services: np.ndarray,
    waits: np.ndarray,
    horizon: float,
    warmup: float,
    source_events: int,
    extras: dict,
) -> SimulationResult:
    """The statistics pass shared by the sequential and batched engines.

    Takes precomputed waits so the batched engine can feed rows of its 2-D
    Lindley recursion through the *same* reductions — bit-identity between
    the engines then follows from identical inputs, not parallel code.
    """
    observed = max(horizon - warmup, 1e-12)
    starts = arrivals + waits
    departures = starts + services
    delays = waits + services

    post_warmup = arrivals >= warmup
    arrivals_total = int(np.count_nonzero(post_warmup))
    in_horizon = departures <= horizon
    served = post_warmup & in_horizon
    observed_delays = delays[served]
    messages_served = int(observed_delays.size)

    if messages_served:
        mean_delay = float(observed_delays.mean())
        mean_wait = float(waits[served].mean())
    else:
        mean_delay = math.nan
        mean_wait = math.nan
    delay_variance = (
        float(observed_delays.var(ddof=1)) if messages_served >= 2 else math.nan
    )
    sigma = (
        float(np.count_nonzero(waits[post_warmup] > 0.0) / arrivals_total)
        if arrivals_total
        else math.nan
    )
    # Busy intervals [start, departure) are disjoint (one server); presence
    # intervals [arrival, departure) overlap-count the number in system.
    busy_overlap = np.clip(
        np.minimum(departures, horizon) - np.maximum(starts, warmup), 0.0, None
    )
    presence_overlap = np.clip(
        np.minimum(departures, horizon) - np.maximum(arrivals, warmup), 0.0, None
    )
    utilization = float(busy_overlap.sum() / observed)
    mean_queue_length = float(presence_overlap.sum() / observed)
    events = int(arrivals.size + np.count_nonzero(in_horizon) + source_events)

    return SimulationResult(
        mean_delay=mean_delay,
        mean_wait=mean_wait,
        sigma=sigma,
        utilization=utilization,
        mean_queue_length=mean_queue_length,
        messages_served=messages_served,
        effective_arrival_rate=arrivals_total / observed,
        horizon=horizon,
        delay_variance=delay_variance,
        events_processed=events,
        extras=extras,
    )


def _service_block(
    rng: np.random.Generator, count: int, service_rate: float, block_size: int
) -> np.ndarray:
    if service_rate <= 0.0 or not math.isfinite(service_rate):
        raise ValueError(
            f"service_rate must be positive and finite (got {service_rate})"
        )
    if count == 0:
        return np.empty(0)
    return ExponentialBatcher(rng, block_size).draw_block(
        count, 1.0 / service_rate
    )


def simulate_poisson_columnar(
    rate: float,
    horizon: float,
    service_rate: float,
    seed: int = 0,
    warmup: float | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> SimulationResult:
    """Columnar M/M/1: Poisson arrivals through the vectorized FCFS queue.

    The warmup default (5 % of the horizon) matches
    :func:`~repro.sim.replication.simulate_source_mm1`, so columnar and
    heap runs of the same workload estimate the same quantities.
    """
    if warmup is None:
        warmup = 0.05 * horizon
    _validate_window(horizon, warmup)
    streams = RandomStreams(seed)
    arrivals = sample_poisson_stream(
        rate, horizon, streams.get("columnar-source"), block_size=block_size
    )
    services = _service_block(
        streams.get("columnar-server"), arrivals.size, service_rate, block_size
    )
    return _columnar_queue_result(
        arrivals,
        services,
        horizon,
        warmup,
        source_events=0,
        chunk_size=chunk_size,
        extras={"engine": "columnar", "source": "poisson"},
    )


def simulate_mmpp_columnar(
    mmpp: MMPP,
    horizon: float,
    service_rate: float,
    seed: int = 0,
    warmup: float | None = None,
    initial_state: int | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> SimulationResult:
    """Columnar MMPP/M/1: one thinned stream through the Lindley queue."""
    if warmup is None:
        warmup = 0.05 * horizon
    _validate_window(horizon, warmup)
    streams = RandomStreams(seed)
    stream = sample_mmpp_stream(
        mmpp,
        horizon,
        streams.get("columnar-source"),
        initial_state=initial_state,
        block_size=block_size,
    )
    services = _service_block(
        streams.get("columnar-server"),
        stream.arrivals.size,
        service_rate,
        block_size,
    )
    return _columnar_queue_result(
        stream.arrivals,
        services,
        horizon,
        warmup,
        source_events=stream.num_jumps,
        chunk_size=chunk_size,
        extras={
            "engine": "columnar",
            "source": "mmpp",
            "modulating_states": int(np.asarray(mmpp.rates).size),
            "modulating_jumps": stream.num_jumps,
            "thinning_candidates": stream.candidates,
        },
    )


def simulate_hap_approx_columnar(
    params: HAPParameters,
    horizon: float,
    seed: int = 0,
    service_rate: float | None = None,
    warmup: float | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> SimulationResult:
    """Columnar M/HAP-approx/1 via the Section-3.1 symmetric MMPP mapping.

    The symmetric HAP's message process is exactly an MMPP on the collapsed
    ``(x, y)`` lattice; the only approximation is the truncation box (whose
    stationary boundary mass is tiny at the default bounds — the same chain
    Solutions 0/1 analyze).  Warmup and service-rate defaults match
    :func:`~repro.sim.replication.simulate_hap_mm1` so delay estimates are
    directly comparable to heap replications of the same parameters.
    """
    from repro.core.mmpp_mapping import symmetric_hap_to_mmpp

    if service_rate is None:
        service_rate = params.common_service_rate()
    if warmup is None:
        warmup = min(10.0 / params.user_departure_rate, 0.1 * horizon)
    mapped = symmetric_hap_to_mmpp(params)
    result = simulate_mmpp_columnar(
        mapped.mmpp,
        horizon,
        service_rate,
        seed=seed,
        warmup=warmup,
        block_size=block_size,
        chunk_size=chunk_size,
    )
    result.extras["source"] = "hap-approx"
    return result


def simulate_hap_columnar(
    params: HAPParameters,
    horizon: float,
    seed: int = 0,
    service_rate: float | None = None,
    warmup: float | None = None,
    user_lifetime=None,
    app_lifetime=None,
    rng_mode: str = "batched",
    block_size: int = DEFAULT_BLOCK_SIZE,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> SimulationResult:
    """Columnar HAP simulation with the documented heap fallback.

    Plain exponential HAP dynamics route through
    :func:`simulate_hap_approx_columnar`.  Lifetime-distribution overrides
    make the source state-dependent in a way no finite modulating chain
    captures, so those runs fall back to the event heap (a
    :class:`~repro.sim.sources.HAPSource` driving a
    :class:`~repro.sim.server.FCFSQueue`, exactly as
    :func:`~repro.sim.replication.simulate_hap_mm1` wires them) with
    ``extras["engine"] = "heap-fallback"`` recording the downgrade.
    ``rng_mode`` applies only on the fallback path.
    """
    if user_lifetime is None and app_lifetime is None:
        return simulate_hap_approx_columnar(
            params,
            horizon,
            seed=seed,
            service_rate=service_rate,
            warmup=warmup,
            block_size=block_size,
            chunk_size=chunk_size,
        )
    from repro.sim.engine import Simulator
    from repro.sim.random_streams import Exponential
    from repro.sim.replication import _collect
    from repro.sim.server import FCFSQueue
    from repro.sim.sources import HAPSource

    if service_rate is None:
        service_rate = params.common_service_rate()
    if warmup is None:
        warmup = min(10.0 / params.user_departure_rate, 0.1 * horizon)
    _validate_window(horizon, warmup)
    sim = Simulator()
    streams = RandomStreams(seed)
    queue = FCFSQueue(
        sim, Exponential(service_rate), streams.get("server"), warmup=warmup
    )
    source = HAPSource(
        sim,
        params,
        streams.get("hap-source"),
        queue.arrive,
        track_populations=False,
        user_lifetime=user_lifetime,
        app_lifetime=app_lifetime,
        rng_mode=rng_mode,
    )
    source.prepopulate()
    source.start()
    sim.run_until(horizon)
    queue.finalize()
    result = _collect(queue, horizon, warmup, collect_busy_periods=False)
    result.extras["engine"] = "heap-fallback"
    result.extras["fallback_reason"] = "state-dependent lifetime overrides"
    return result
