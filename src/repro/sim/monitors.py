"""Statistics collectors for the simulator.

Three collector shapes cover everything the paper measures:

* :class:`Tally` — per-observation statistics (message delays, waits).
* :class:`TimeWeightedValue` — time-averaged piecewise-constant processes
  (queue length, user/application populations, server busy state).
* :class:`TraceRecorder` — raw (time, value) series for the queue-length
  "mountain" plots (Figures 14–17) with optional reservoir-free striding to
  bound memory on long runs.

All use numerically stable streaming updates (Welford for tallies), so a
hundred-million-message run accumulates no cancellation error.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["Tally", "TimeWeightedValue", "TraceRecorder"]


class Tally:
    """Streaming mean/variance/extremes of observations (Welford update)."""

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count: int = 0
        self._mean: float = 0.0
        self._m2: float = 0.0
        self.minimum: float = math.inf
        self.maximum: float = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation (hot path: one read/write per attribute)."""
        count = self.count + 1
        self.count = count
        delta = value - self._mean
        mean = self._mean + delta / count
        self._mean = mean
        self._m2 += delta * (value - mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Sample mean (NaN when empty)."""
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance (NaN with fewer than two observations)."""
        if self.count < 2:
            return math.nan
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        variance = self.variance
        return math.sqrt(variance) if variance == variance else math.nan

    def merge(self, other: "Tally") -> "Tally":
        """Combined tally of two disjoint observation sets (Chan et al.)."""
        merged = Tally()
        merged.count = self.count + other.count
        if merged.count == 0:
            return merged
        delta = other._mean - self._mean
        merged._mean = self._mean + delta * other.count / merged.count
        merged._m2 = (
            self._m2
            + other._m2
            + delta**2 * self.count * other.count / merged.count
        )
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged


class TimeWeightedValue:
    """Time average and variance of a piecewise-constant process.

    Call :meth:`update` *before* changing the underlying value; the collector
    charges the old value for the elapsed interval.
    """

    __slots__ = (
        "value",
        "_last_time",
        "_weighted_sum",
        "_weighted_square_sum",
        "_total_time",
        "maximum",
    )

    def __init__(self, initial_value: float = 0.0, start_time: float = 0.0):
        self.value: float = initial_value
        self._last_time: float = start_time
        self._weighted_sum: float = 0.0
        self._weighted_square_sum: float = 0.0
        self._total_time: float = 0.0
        self.maximum: float = initial_value

    def update(self, now: float, new_value: float) -> None:
        """Account for time at the current value, then switch to ``new_value``."""
        elapsed = now - self._last_time
        if elapsed < 0.0:
            raise ValueError("time moved backwards")
        value = self.value
        self._weighted_sum += value * elapsed
        self._weighted_square_sum += value * value * elapsed
        self._total_time += elapsed
        self._last_time = now
        self.value = new_value
        if new_value > self.maximum:
            self.maximum = new_value

    def finalize(self, now: float) -> None:
        """Charge the current value up to ``now`` (call at simulation end)."""
        self.update(now, self.value)

    @property
    def time_average(self) -> float:
        """Time-weighted mean (NaN before any time has elapsed)."""
        if self._total_time == 0.0:
            return math.nan
        return self._weighted_sum / self._total_time

    @property
    def time_variance(self) -> float:
        """Time-weighted variance."""
        if self._total_time == 0.0:
            return math.nan
        mean = self.time_average
        return self._weighted_square_sum / self._total_time - mean**2

    @property
    def observed_time(self) -> float:
        """Total time accounted so far."""
        return self._total_time


class TraceRecorder:
    """(time, value) series with optional striding.

    Parameters
    ----------
    stride:
        Keep every ``stride``-th sample (1 = keep all).  The paper's Figure
        14/15 traces span hours of simulated time at millisecond resolution;
        striding keeps memory bounded without visibly changing the plots.
    """

    __slots__ = ("stride", "_times", "_values", "_counter")

    def __init__(self, stride: int = 1):
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.stride = stride
        self._times: list[float] = []
        self._values: list[float] = []
        self._counter = 0

    def record(self, time: float, value: float) -> None:
        """Maybe-record one sample (subject to the stride)."""
        self._counter += 1
        if self._counter % self.stride == 0:
            self._times.append(time)
            self._values.append(value)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The recorded series as numpy arrays."""
        return np.asarray(self._times), np.asarray(self._values)

    def __len__(self) -> int:
        return len(self._times)

    def window(self, start: float, end: float) -> tuple[np.ndarray, np.ndarray]:
        """The sub-series with ``start <= time <= end``."""
        times, values = self.as_arrays()
        mask = (times >= start) & (times <= end)
        return times[mask], values[mask]
