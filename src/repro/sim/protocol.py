"""Transmission-protocol elements: fragmentation and window flow control.

Section 6 of the paper proposes protocol-level remedies for HAP's
message-level burstiness: "we can design the end-to-end protocol, window
flow control for example, to reduce the message arrival rate ... and block
operations, by fragmenting messages into blocks along with window flow
control, to reduce the burst length."  The paper also notes (Section 2)
that messages are fragmented into packets or cells by the transmission
protocol, which is why its analysis stops at the message level.

This module makes those mechanisms concrete so their effect can be
measured:

* :class:`Fragmenter` — splits each message into ``blocks`` equal packets
  (carrying a share of the message's service demand).
* :class:`WindowRegulator` — a credit-based end-to-end window: at most
  ``window`` packets are outstanding in the network; further packets wait
  in an edge buffer.  Credits return on service completion (wire
  :meth:`handle_departure` to the queue's ``on_departure``).

The regulator instruments its edge buffer, so experiments can show where
the burst goes: windowing doesn't destroy the burst, it moves the waiting
from the shared network queue to the sender's edge — which is exactly what
protects *other* traffic sharing the server.
"""

from __future__ import annotations

from collections import deque

from repro.sim.engine import Simulator
from repro.sim.monitors import Tally, TimeWeightedValue
from repro.sim.server import Message

__all__ = ["Fragmenter", "WindowRegulator"]


class Fragmenter:
    """Split messages into fixed numbers of equal packets.

    Parameters
    ----------
    emit:
        Downstream acceptor for the packets (a queue's ``arrive`` or a
        :class:`WindowRegulator`'s ``offer``).
    blocks:
        Packets per message (the paper's "block operations").
    """

    def __init__(self, emit, blocks: int):
        if blocks < 1:
            raise ValueError("blocks must be at least 1")
        self.emit = emit
        self.blocks = blocks
        self.messages_fragmented = 0
        self.packets_emitted = 0

    def __call__(self, message: Message) -> None:
        """Fragment one message and forward its packets immediately."""
        self.messages_fragmented += 1
        for index in range(self.blocks):
            packet = Message(
                arrival_time=message.arrival_time,
                app_type=message.app_type,
                message_type=message.message_type,
                kind=message.kind or "packet",
                metadata={
                    "fragment": index,
                    "of": self.blocks,
                    **message.metadata,
                },
            )
            self.packets_emitted += 1
            self.emit(packet)


class WindowRegulator:
    """Credit-based end-to-end window flow control at the network edge.

    Parameters
    ----------
    sim:
        The event loop (used only for timestamps).
    forward:
        Acceptor for admitted packets (typically ``queue.arrive``).
    window:
        Maximum packets outstanding in the network at once.
    ack_delay:
        Extra delay before a completion's credit returns (models the
        acknowledgement's return trip); 0 by default.

    Notes
    -----
    Wire :meth:`handle_departure` into the downstream queue's
    ``on_departure`` hook; the regulator matches credits by counting, so
    the queue may serve other (unregulated) traffic too as long as only
    regulated packets carry ``metadata['windowed'] = True``.
    """

    def __init__(
        self,
        sim: Simulator,
        forward,
        window: int,
        ack_delay: float = 0.0,
    ):
        if window < 1:
            raise ValueError("window must be at least 1")
        if ack_delay < 0:
            raise ValueError("ack delay cannot be negative")
        self.sim = sim
        self.forward = forward
        self.window = window
        self.ack_delay = ack_delay
        self.outstanding = 0
        self._buffer: deque[Message] = deque()
        self.holding_delay = Tally()
        self.buffer_length = TimeWeightedValue(0.0)
        self.packets_admitted = 0

    def offer(self, packet: Message) -> None:
        """Accept a packet from the sender side."""
        packet.metadata["windowed"] = True
        packet.metadata["offered_at"] = self.sim.now
        if self.outstanding < self.window:
            self._admit(packet)
        else:
            self._buffer.append(packet)
            self.buffer_length.update(self.sim.now, float(len(self._buffer)))

    def _admit(self, packet: Message) -> None:
        self.outstanding += 1
        self.packets_admitted += 1
        self.holding_delay.observe(
            self.sim.now - packet.metadata["offered_at"]
        )
        # The network sees the admission instant as the arrival.
        packet.arrival_time = self.sim.now
        self.forward(packet)

    def handle_departure(self, sim: Simulator, message: Message) -> None:
        """Queue completion hook: return this packet's credit."""
        if not message.metadata.get("windowed"):
            return
        if self.ack_delay > 0:
            sim.schedule(self.ack_delay, lambda s: self._credit())
        else:
            self._credit()

    def _credit(self) -> None:
        self.outstanding -= 1
        if self._buffer:
            packet = self._buffer.popleft()
            self.buffer_length.update(self.sim.now, float(len(self._buffer)))
            self._admit(packet)

    @property
    def buffered(self) -> int:
        """Packets currently waiting at the edge."""
        return len(self._buffer)

    def finalize(self) -> None:
        """Close the time-weighted buffer statistic."""
        self.buffer_length.finalize(self.sim.now)
