"""Replication-batched columnar engine: whole campaigns as 2-D arrays.

The columnar engine (:mod:`repro.sim.columnar`) already pays Python
overhead per *block* instead of per event, but it still runs one
replication per call: every replication walks its own modulating chain,
lays its own candidate blocks, and allocates fresh temporaries.  A
Monte-Carlo campaign is R independent, identically structured
replications — exactly the shape that amortizes interpreter overhead to
near zero when stacked row-wise.  This module runs R replications in
**lock-step**:

* the R embedded jump chains advance *simultaneously* — one vectorized
  state lookup (a padded-cumulative rank gather over all rows) per chain
  step instead of one ``searchsorted`` per replication per step;
* ``Poisson(r_max)`` candidate generation and thinning run over a
  ``(R, block)`` 2-D workspace, rows retiring as they pass the horizon;
* the FCFS queue is solved by a row-wise chunked Lindley recursion
  (:func:`lindley_waits_batch`) — 2-D ``cumsum`` / ``minimum.accumulate``
  per chunk with a per-row scalar carry;
* a :class:`BatchWorkspace` pool preallocates every recurring buffer
  once per campaign and serves the hot numpy calls through ``out=``
  variants, so the steady state performs no heap allocation beyond the
  result arrays themselves.

Determinism contract (the same domain as the sequential columnar engine)
------------------------------------------------------------------------
Each row consumes its own :class:`~repro.sim.random_streams.RandomStreams`
substreams (``"columnar-source"``, ``"columnar-server"``) in *exactly* the
sequential draw order — block refills, splices, and all.  Rows are
therefore **bit-identical** to sequential ``simulate_*_columnar`` runs
with the same seeds and ``block_size``: interleaving draws *across* rows
is free (independent generators), and within a row the lock-step walk
preserves the per-row call sequence because every active row consumes
exactly one sojourn per step and one jump uniform per non-overshooting
step, so block refills stay synchronized.  Only ``extras`` metadata
differs (``engine="columnar-batched"`` plus batch bookkeeping).  Golden
arrays and hypothesis tests pin this contract.

Memory model
------------
The chain walk spans all R rows (jump storage is small: one float and one
int per modulating jump per row).  The candidate/thinning/Lindley phase —
whose temporaries scale with ``horizon * r_max`` per row — processes rows
in groups bounded by ``max_group_bytes`` (default 256 MiB), so peak
memory stays flat while interpreter overhead is still amortized across
the group.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.params import HAPParameters
from repro.markov.mmpp import MMPP
from repro.sim.columnar import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_CHUNK_SIZE,
    MMPPStreamArrays,
    _embedded_chain,
    _queue_result_from_waits,
    _service_block,
)
from repro.sim.random_streams import RandomStreams
from repro.sim.replication import SimulationResult, _validate_window

__all__ = [
    "BatchWorkspace",
    "lindley_waits_batch",
    "sample_mmpp_streams_batch",
    "simulate_hap_approx_columnar_batch",
    "simulate_mmpp_columnar_batch",
    "simulate_poisson_columnar_batch",
]

#: Default budget for one candidate/thinning/Lindley row group.
DEFAULT_GROUP_BYTES = 256 * 2**20

_EMPTY = np.empty(0)


class BatchWorkspace:
    """A keyed pool of reusable numpy buffers for the batched engine.

    ``array(key, shape)`` returns a view of a backing buffer that is
    allocated on first use and grown only when a larger request arrives —
    across the chunks, groups, and repeated batch calls of a campaign the
    steady state allocates nothing.  Buffers are plain ``np.empty``
    storage: callers own initialization.  Pass one workspace to repeated
    ``simulate_*_columnar_batch`` calls to share the pool; call
    :meth:`release` to drop the memory when a campaign ends.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def array(self, key: str, shape, dtype=np.float64) -> np.ndarray:
        """A ``shape``-shaped view of the (grown-once) buffer for ``key``."""
        if isinstance(shape, int):
            shape = (shape,)
        size = 1
        for dim in shape:
            size *= int(dim)
        dtype = np.dtype(dtype)
        buffer = self._buffers.get(key)
        if buffer is None or buffer.dtype != dtype or buffer.size < size:
            buffer = np.empty(max(size, 1), dtype=dtype)
            self._buffers[key] = buffer
        return buffer[:size].reshape(shape)

    @property
    def nbytes(self) -> int:
        """Bytes currently held across all pooled buffers."""
        return sum(buffer.nbytes for buffer in self._buffers.values())

    def release(self) -> None:
        """Drop every pooled buffer (outstanding views keep their storage)."""
        self._buffers.clear()


def _rows_per_group(
    bytes_per_row: float, max_group_bytes: int | None, total_rows: int
) -> int:
    """How many rows the candidate/Lindley phase processes at once."""
    budget = DEFAULT_GROUP_BYTES if max_group_bytes is None else max(
        int(max_group_bytes), 1
    )
    per_row = max(bytes_per_row, 1.0)
    return max(1, min(total_rows, int(budget / per_row)))


@dataclass
class _BatchWalk:
    """Everything the lock-step chain walk produced, per row.

    ``sojourn_leftovers``/``uniform_leftovers`` are the partially served
    variate blocks each row's generator would still hold after a
    sequential walk — the candidate and thinning phases splice them first,
    which is what keeps per-row bit-streams identical to the sequential
    engine's batcher semantics.
    """

    initial_states: np.ndarray
    jump_times: list[np.ndarray]
    states: list[np.ndarray]
    sojourn_leftovers: list[np.ndarray]
    uniform_leftovers: list[np.ndarray]


def _walk_embedded_chains(
    packed,
    holding: np.ndarray,
    sojourn_means: np.ndarray,
    rngs: Sequence[np.random.Generator],
    initial_states: np.ndarray,
    horizon: float,
    block_size: int,
    workspace: BatchWorkspace,
) -> _BatchWalk:
    """Advance R embedded jump chains simultaneously.

    One step of the loop advances *every* still-active row by one chain
    jump: gather the step's sojourn variates from the ``(R, block)``
    workspace, add state-dependent means, retire rows passing the
    horizon, then resolve all jump targets with a single padded-cumulative
    rank query (``count of cumulative <= u`` per row — exactly
    ``searchsorted(..., side="right")`` plus the sequential clamp).

    The per-row draw order is the sequential walk's: every active row
    consumes one sojourn per step and one jump uniform per
    non-overshooting step, so the ``(R, block)`` refills happen for all
    active rows at the same step (``step % block_size == 0``), each from
    its own generator, in the sequential order (sojourn block before
    uniform block).

    The hot loop runs one step for *all* rows in ~a dozen numpy calls:
    per-row position (``state``, ``now``) is kept compacted to the active
    rows so the common all-active case indexes the ``(R, block)``
    workspaces with plain slices, and rows retire (overshoot or absorbing
    state) by flushing their current-block jumps and freezing their
    batcher leftovers at that instant — an O(R)-rare event, off the hot
    path.  Absorbing-state checks are skipped entirely when the chain has
    none (every mapped HAP chain).
    """
    count = len(rngs)
    sojourn_blocks = workspace.array("walk-sojourns", (count, block_size))
    uniform_blocks = workspace.array("walk-uniforms", (count, block_size))
    jump_block = workspace.array("walk-jump-times", (count, block_size))
    state_block = workspace.array(
        "walk-jump-states", (count, block_size), dtype=np.int64
    )
    cumulative = packed.cumulative
    targets = packed.targets
    lengths_minus_1 = packed.lengths - 1
    holding_positive = holding > 0.0
    has_absorbing = not bool(holding_positive.all())

    jump_pieces: list[list[np.ndarray]] = [[] for _ in range(count)]
    state_pieces: list[list[np.ndarray]] = [[] for _ in range(count)]
    sojourn_leftovers: list[np.ndarray] = [_EMPTY] * count
    uniform_leftovers: list[np.ndarray] = [_EMPTY] * count

    # Compacted to active rows, aligned with ``row_ids``.  ``selector``
    # indexes the (count, block) workspaces: a plain slice while every row
    # is active (views, no fancy-indexing copies), the row-id array after
    # the first retirement.
    state_active = np.array(initial_states, dtype=np.int64)
    now_active = np.zeros(count)
    row_ids = np.arange(count)
    if has_absorbing:
        keep = holding_positive[state_active]
        row_ids = row_ids[keep]
        state_active = state_active[keep]
        now_active = now_active[keep]
    selector = slice(None) if row_ids.size == count else row_ids

    step = 0
    while row_ids.size:
        column = step % block_size
        if column == 0:
            if step:
                # Rows still active at a block boundary jumped at every
                # column of the finished block: flush it whole.
                for row in row_ids:
                    jump_pieces[row].append(jump_block[row].copy())
                    state_pieces[row].append(state_block[row].copy())
            for row in row_ids:
                rngs[row].standard_exponential(out=sojourn_blocks[row])
        advance = sojourn_blocks[selector, column] * sojourn_means[state_active]
        now_active += advance
        overshoot = now_active > horizon
        if overshoot.any():
            # Overshooting rows retire without jumping: they consumed the
            # sojourn at this column but no jump uniform, so the sojourn
            # leftover starts past this column and the uniform leftover at
            # it (empty at column 0 — the row's last uniform block, if
            # any, was exactly exhausted).
            for local in np.flatnonzero(overshoot):
                row = int(row_ids[local])
                jump_pieces[row].append(jump_block[row, :column].copy())
                state_pieces[row].append(state_block[row, :column].copy())
                sojourn_leftovers[row] = sojourn_blocks[row, column + 1 :]
                if column:
                    uniform_leftovers[row] = uniform_blocks[row, column:]
            keep = ~overshoot
            row_ids = row_ids[keep]
            state_active = state_active[keep]
            now_active = now_active[keep]
            if not row_ids.size:
                break
            selector = row_ids
        jump_block[selector, column] = now_active
        if column == 0:
            # Jump uniforms refill in the same step for every surviving
            # row (they all carry jumps == step), after the sojourn
            # refill — the sequential per-row call order.
            for row in row_ids:
                rngs[row].random(out=uniform_blocks[row])
        uniform = uniform_blocks[selector, column]
        position = (cumulative[state_active] <= uniform[:, None]).sum(axis=1)
        np.minimum(position, lengths_minus_1[state_active], out=position)
        state_active = targets[state_active, position]
        state_block[selector, column] = state_active
        if has_absorbing:
            alive = holding_positive[state_active]
            if not alive.all():
                # Absorbed rows recorded this step's jump, then stop: both
                # leftovers start past this column.
                for local in np.flatnonzero(~alive):
                    row = int(row_ids[local])
                    jump_pieces[row].append(
                        jump_block[row, : column + 1].copy()
                    )
                    state_pieces[row].append(
                        state_block[row, : column + 1].copy()
                    )
                    sojourn_leftovers[row] = sojourn_blocks[row, column + 1 :]
                    uniform_leftovers[row] = uniform_blocks[row, column + 1 :]
                row_ids = row_ids[alive]
                state_active = state_active[alive]
                now_active = now_active[alive]
                selector = row_ids
        step += 1

    jump_times: list[np.ndarray] = []
    states: list[np.ndarray] = []
    for row in range(count):
        if jump_pieces[row]:
            times = np.concatenate(jump_pieces[row])
            visited = np.concatenate(state_pieces[row])
        else:
            times = np.empty(0)
            visited = np.empty(0, dtype=np.int64)
        trajectory = np.empty(visited.size + 1, dtype=np.int64)
        trajectory[0] = initial_states[row]
        trajectory[1:] = visited
        jump_times.append(times)
        states.append(trajectory)
    return _BatchWalk(
        initial_states=np.asarray(initial_states, dtype=np.int64),
        jump_times=jump_times,
        states=states,
        sojourn_leftovers=sojourn_leftovers,
        uniform_leftovers=uniform_leftovers,
    )


def _blocked_cumulative_rows(
    rngs: Sequence[np.random.Generator],
    leftovers: Sequence[np.ndarray],
    mean: float,
    horizon: float,
    block_size: int,
    workspace: BatchWorkspace,
) -> list[np.ndarray]:
    """Rate-``1/mean`` Poisson event times on ``(0, horizon]``, per row.

    The 2-D twin of :func:`repro.sim.columnar._cumulative_exponentials`:
    rows advance block-by-block through one ``(R, block)`` workspace and
    retire as their running offset passes the horizon.  Each row's first
    block splices its leftover variates (a partially served walk block)
    before asking its generator for more — the batcher bit-stream rule.
    """
    count = len(rngs)
    blocks = workspace.array("cumulative-blocks", (count, block_size))
    scaled = workspace.array("cumulative-scaled", (block_size,))
    pieces: list[list[np.ndarray]] = [[] for _ in range(count)]
    offsets = np.zeros(count)
    alive = list(range(count))
    first = [True] * count
    while alive:
        survivors: list[int] = []
        for row in alive:
            block = blocks[row]
            if first[row]:
                first[row] = False
                head = leftovers[row]
                if head.size:
                    block[: head.size] = head
                    rngs[row].standard_exponential(out=block[head.size :])
                else:
                    rngs[row].standard_exponential(out=block)
            else:
                rngs[row].standard_exponential(out=block)
            np.multiply(block, mean, out=scaled)
            piece = np.cumsum(scaled)
            np.add(piece, offsets[row], out=piece)
            pieces[row].append(piece)
            offsets[row] = piece[-1]
            if offsets[row] <= horizon:
                survivors.append(row)
        alive = survivors
    times: list[np.ndarray] = []
    for row in range(count):
        merged = np.concatenate(pieces[row])
        pieces[row].clear()
        times.append(merged[merged <= horizon])
    return times


def _thin_group(
    walk: _BatchWalk,
    rows: Sequence[int],
    rates: np.ndarray,
    r_max: float,
    horizon: float,
    rngs: Sequence[np.random.Generator],
    block_size: int,
    workspace: BatchWorkspace,
) -> list[tuple[np.ndarray, int]]:
    """Candidates + thinning for one row group: ``(arrivals, candidates)``."""
    candidate_rows = _blocked_cumulative_rows(
        [rngs[row] for row in rows],
        [walk.sojourn_leftovers[row] for row in rows],
        1.0 / r_max,
        horizon,
        block_size,
        workspace,
    )
    output: list[tuple[np.ndarray, int]] = []
    for local, row in enumerate(rows):
        candidates = candidate_rows[local]
        # Rate at each candidate: the sequential engine gathers
        # rates[states[searchsorted(jump_times, t, "right")]] per candidate;
        # with sorted candidates the same map is a run-length expansion —
        # search the (few) jump times into the (many) candidates and repeat
        # each visited state's rate across its segment.  Pure integer
        # bookkeeping, so the thresholds are bit-identical.
        jump_times = walk.jump_times[row]
        cuts = np.empty(jump_times.size + 2, dtype=np.int64)
        cuts[0] = 0
        cuts[-1] = candidates.size
        cuts[1:-1] = np.searchsorted(candidates, jump_times, side="left")
        thresholds = np.repeat(rates[walk.states[row]], np.diff(cuts))
        leftover = walk.uniform_leftovers[row]
        if leftover.size >= candidates.size:
            uniforms = leftover[: candidates.size]
        else:
            uniforms = workspace.array("thin-uniforms", (candidates.size,))
            uniforms[: leftover.size] = leftover
            rngs[row].random(out=uniforms[leftover.size :])
        accept = uniforms * r_max < thresholds
        output.append((candidates[accept], int(candidates.size)))
    return output


def _lindley_rows(
    arrival_rows: Sequence[np.ndarray],
    service_rows: Sequence[np.ndarray],
    chunk_size: int,
    initial_wait: float,
    workspace: BatchWorkspace,
) -> list[np.ndarray]:
    """Row-wise chunked Lindley recursion over a padded ``(R, N)`` matrix.

    Returns *views* into the workspace's wait buffer (valid until the next
    Lindley call on the same workspace).  Rows are padded by repeating the
    last arrival with zero services, so padded increments are zero and the
    per-row scalar carry stays exact for short rows; every real column is
    bit-identical to :func:`repro.sim.columnar.lindley_waits` on that row
    (same chunk boundaries, same strictly-sequential ``cumsum`` /
    ``minimum.accumulate`` per row, same carry arithmetic).
    """
    if len(arrival_rows) != len(service_rows):
        raise ValueError("need matching arrival and service row lists")
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    if not math.isfinite(initial_wait) or initial_wait < 0.0:
        raise ValueError(
            f"initial_wait must be finite and >= 0 (got {initial_wait})"
        )
    count = len(arrival_rows)
    arrivals: list[np.ndarray] = []
    services: list[np.ndarray] = []
    sizes: list[int] = []
    for arrival_row, service_row in zip(arrival_rows, service_rows):
        arrival = np.ascontiguousarray(arrival_row, dtype=float)
        service = np.ascontiguousarray(service_row, dtype=float)
        if arrival.ndim != 1 or arrival.shape != service.shape:
            raise ValueError(
                "arrival and service arrays must be 1-D and aligned"
            )
        if arrival.size and (
            not np.isfinite(service).all() or (service < 0.0).any()
        ):
            raise ValueError("service times must be finite and non-negative")
        arrivals.append(arrival)
        services.append(service)
        sizes.append(arrival.size)
    width = max(sizes, default=0)
    if count == 0 or width == 0:
        return [np.empty(0) for _ in range(count)]

    arrival_pad = workspace.array("lindley-arrivals", (count, width))
    service_pad = workspace.array("lindley-services", (count, width))
    waits = workspace.array("lindley-waits", (count, width))
    for row in range(count):
        size = sizes[row]
        arrival_pad[row, :size] = arrivals[row]
        arrival_pad[row, size:] = arrivals[row][size - 1] if size else 0.0
        service_pad[row, :size] = services[row]
        service_pad[row, size:] = 0.0
    waits[:, 0] = initial_wait
    carry = workspace.array("lindley-carry", (count,))
    carry[:] = initial_wait
    for start in range(1, width, chunk_size):
        stop = min(start + chunk_size, width)
        span = stop - start
        increments = workspace.array("lindley-increments", (count, span))
        np.subtract(
            arrival_pad[:, start:stop],
            arrival_pad[:, start - 1 : stop - 1],
            out=increments,
        )
        if (increments < 0.0).any():
            raise ValueError("arrival times must be non-decreasing")
        np.subtract(
            service_pad[:, start - 1 : stop - 1], increments, out=increments
        )
        prefix = workspace.array("lindley-prefix", (count, span + 1))
        prefix[:, 0] = 0.0
        np.cumsum(increments, axis=1, out=prefix[:, 1:])
        scratch = workspace.array("lindley-scratch", (count, span))
        np.minimum.accumulate(prefix[:, :-1], axis=1, out=scratch)
        body = prefix[:, 1:]
        chunk = workspace.array("lindley-chunk", (count, span))
        np.subtract(body, scratch, out=chunk)
        np.add(carry[:, None], body, out=scratch)
        np.maximum(chunk, scratch, out=chunk)
        np.maximum(chunk, 0.0, out=chunk)
        waits[:, start:stop] = chunk
        carry[:] = chunk[:, -1]
    return [waits[row, : sizes[row]] for row in range(count)]


def lindley_waits_batch(
    arrival_rows: Sequence[np.ndarray],
    service_rows: Sequence[np.ndarray],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    initial_wait: float = 0.0,
    workspace: BatchWorkspace | None = None,
) -> list[np.ndarray]:
    """FCFS waits for R replications at once, row-wise chunked.

    The 2-D counterpart of :func:`repro.sim.columnar.lindley_waits`: rows
    are padded into one ``(R, N)`` matrix and each chunk is one
    ``cumsum(axis=1)`` + ``minimum.accumulate(axis=1)`` pass with a
    per-row scalar carry.  Every returned row is **bit-identical** to
    ``lindley_waits`` on that row alone (the per-row arithmetic and chunk
    boundaries are unchanged; only interpreter overhead is shared), and
    ``chunk_size`` remains outside the determinism contract exactly as in
    the 1-D case.
    """
    workspace = BatchWorkspace() if workspace is None else workspace
    rows = _lindley_rows(
        list(arrival_rows), list(service_rows), chunk_size, initial_wait,
        workspace,
    )
    return [row.copy() for row in rows]


def _mmpp_walks(
    mmpp: MMPP,
    horizon: float,
    rngs: Sequence[np.random.Generator],
    initial_state: int | None,
    block_size: int,
    workspace: BatchWorkspace,
) -> tuple[np.ndarray, _BatchWalk]:
    """Validate, draw initial states, and run the lock-step chain walk."""
    if not 0.0 < horizon < math.inf:
        raise ValueError(f"horizon must be positive and finite (got {horizon})")
    rates = np.asarray(mmpp.rates, dtype=float)
    chain = mmpp.chain
    holding = np.asarray(chain.holding_rates(), dtype=float)
    if initial_state is None:
        pi = mmpp.stationary_distribution()
        initial_states = np.array(
            [int(rng.choice(rates.size, p=pi)) for rng in rngs],
            dtype=np.int64,
        )
    else:
        if not 0 <= initial_state < rates.size:
            raise ValueError(f"initial_state {initial_state} out of range")
        initial_states = np.full(len(rngs), int(initial_state), dtype=np.int64)
    packed = _embedded_chain(chain)
    with np.errstate(divide="ignore"):
        sojourn_means = np.where(holding > 0.0, 1.0 / holding, np.inf)
    walk = _walk_embedded_chains(
        packed,
        holding,
        sojourn_means,
        rngs,
        initial_states,
        horizon,
        block_size,
        workspace,
    )
    return rates, walk


def sample_mmpp_streams_batch(
    mmpp: MMPP,
    horizon: float,
    rngs: Sequence[np.random.Generator],
    initial_state: int | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    workspace: BatchWorkspace | None = None,
    max_group_bytes: int | None = None,
) -> list[MMPPStreamArrays]:
    """R MMPP arrival streams in lock-step, one per generator.

    Row ``k`` is bit-identical (arrivals, jump times, states, candidate
    count) to ``sample_mmpp_stream(mmpp, horizon, rngs[k], ...)`` with a
    fresh generator in the same state — the batched determinism contract.
    Memory scales with ``R * horizon`` for the retained streams; the
    candidate phase itself is bounded by ``max_group_bytes``.
    """
    rngs = list(rngs)
    if not rngs:
        return []
    workspace = BatchWorkspace() if workspace is None else workspace
    rates, walk = _mmpp_walks(
        mmpp, horizon, rngs, initial_state, block_size, workspace
    )
    r_max = float(rates.max()) if rates.size else 0.0
    streams: list[MMPPStreamArrays] = []
    if r_max <= 0.0:
        for row in range(len(rngs)):
            streams.append(
                MMPPStreamArrays(
                    arrivals=np.empty(0),
                    jump_times=walk.jump_times[row],
                    states=walk.states[row],
                    initial_state=int(walk.initial_states[row]),
                    candidates=0,
                )
            )
        return streams
    group_rows = _rows_per_group(
        horizon * r_max * 8.0 * 6.0, max_group_bytes, len(rngs)
    )
    for start in range(0, len(rngs), group_rows):
        rows = range(start, min(start + group_rows, len(rngs)))
        thinned = _thin_group(
            walk, rows, rates, r_max, horizon, rngs, block_size, workspace
        )
        for local, row in enumerate(rows):
            arrivals, candidates = thinned[local]
            streams.append(
                MMPPStreamArrays(
                    arrivals=arrivals,
                    jump_times=walk.jump_times[row],
                    states=walk.states[row],
                    initial_state=int(walk.initial_states[row]),
                    candidates=candidates,
                )
            )
    return streams


def simulate_poisson_columnar_batch(
    rate: float,
    horizon: float,
    service_rate: float,
    seeds: Sequence[int],
    warmup: float | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    workspace: BatchWorkspace | None = None,
    max_group_bytes: int | None = None,
) -> list[SimulationResult]:
    """Batched columnar M/M/1: one result per seed, rows bit-identical to
    :func:`repro.sim.columnar.simulate_poisson_columnar` per seed."""
    if warmup is None:
        warmup = 0.05 * horizon
    _validate_window(horizon, warmup)
    if not 0.0 <= rate < math.inf:
        raise ValueError(f"rate must be non-negative and finite (got {rate})")
    if not 0.0 < horizon < math.inf:
        raise ValueError(f"horizon must be positive and finite (got {horizon})")
    seeds = [int(seed) for seed in seeds]
    if not seeds:
        return []
    workspace = BatchWorkspace() if workspace is None else workspace
    results: list[SimulationResult | None] = [None] * len(seeds)
    group_rows = _rows_per_group(
        horizon * rate * 8.0 * 5.0, max_group_bytes, len(seeds)
    )
    for start in range(0, len(seeds), group_rows):
        group = seeds[start : start + group_rows]
        streams = [RandomStreams(seed) for seed in group]
        if rate == 0.0:
            arrival_rows = [np.empty(0) for _ in group]
        else:
            arrival_rows = _blocked_cumulative_rows(
                [stream.get("columnar-source") for stream in streams],
                [_EMPTY] * len(group),
                1.0 / rate,
                horizon,
                block_size,
                workspace,
            )
        service_rows = [
            _service_block(
                streams[local].get("columnar-server"),
                arrival_rows[local].size,
                service_rate,
                block_size,
            )
            for local in range(len(group))
        ]
        wait_rows = _lindley_rows(
            arrival_rows, service_rows, chunk_size, 0.0, workspace
        )
        for local in range(len(group)):
            results[start + local] = _queue_result_from_waits(
                arrival_rows[local],
                service_rows[local],
                wait_rows[local],
                horizon,
                warmup,
                source_events=0,
                extras={
                    "engine": "columnar-batched",
                    "source": "poisson",
                    "batch_rows": len(seeds),
                },
            )
    return results


def simulate_mmpp_columnar_batch(
    mmpp: MMPP,
    horizon: float,
    service_rate: float,
    seeds: Sequence[int],
    warmup: float | None = None,
    initial_state: int | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    workspace: BatchWorkspace | None = None,
    max_group_bytes: int | None = None,
) -> list[SimulationResult]:
    """Batched columnar MMPP/M/1 — R replications in lock-step.

    One chain walk advances every row simultaneously; candidates,
    thinning, services, and the Lindley queue then run group-by-group
    within the ``max_group_bytes`` budget.  Result rows are bit-identical
    to :func:`repro.sim.columnar.simulate_mmpp_columnar` per seed (extras
    carry ``engine="columnar-batched"`` instead).
    """
    if warmup is None:
        warmup = 0.05 * horizon
    _validate_window(horizon, warmup)
    seeds = [int(seed) for seed in seeds]
    if not seeds:
        return []
    workspace = BatchWorkspace() if workspace is None else workspace
    streams = [RandomStreams(seed) for seed in seeds]
    source_rngs = [stream.get("columnar-source") for stream in streams]
    rates, walk = _mmpp_walks(
        mmpp, horizon, source_rngs, initial_state, block_size, workspace
    )
    r_max = float(rates.max()) if rates.size else 0.0
    results: list[SimulationResult | None] = [None] * len(seeds)
    group_rows = _rows_per_group(
        horizon * max(r_max, 0.0) * 8.0 * 6.0, max_group_bytes, len(seeds)
    )
    for start in range(0, len(seeds), group_rows):
        rows = range(start, min(start + group_rows, len(seeds)))
        if r_max <= 0.0:
            thinned = [(np.empty(0), 0) for _ in rows]
        else:
            thinned = _thin_group(
                walk, rows, rates, r_max, horizon, source_rngs, block_size,
                workspace,
            )
        arrival_rows = [arrivals for arrivals, _ in thinned]
        service_rows = [
            _service_block(
                streams[row].get("columnar-server"),
                arrival_rows[local].size,
                service_rate,
                block_size,
            )
            for local, row in enumerate(rows)
        ]
        wait_rows = _lindley_rows(
            arrival_rows, service_rows, chunk_size, 0.0, workspace
        )
        for local, row in enumerate(rows):
            jumps = int(walk.jump_times[row].size)
            results[row] = _queue_result_from_waits(
                arrival_rows[local],
                service_rows[local],
                wait_rows[local],
                horizon,
                warmup,
                source_events=jumps,
                extras={
                    "engine": "columnar-batched",
                    "source": "mmpp",
                    "modulating_states": int(rates.size),
                    "modulating_jumps": jumps,
                    "thinning_candidates": thinned[local][1],
                    "batch_rows": len(seeds),
                },
            )
    return results


def simulate_hap_approx_columnar_batch(
    params: HAPParameters,
    horizon: float,
    seeds: Sequence[int],
    service_rate: float | None = None,
    warmup: float | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    workspace: BatchWorkspace | None = None,
    max_group_bytes: int | None = None,
) -> list[SimulationResult]:
    """Batched columnar M/HAP-approx/1 via the symmetric MMPP mapping.

    Warmup and service-rate defaults mirror
    :func:`repro.sim.columnar.simulate_hap_approx_columnar`, so each row
    is bit-identical to the sequential run with the same seed.
    """
    from repro.core.mmpp_mapping import symmetric_hap_to_mmpp

    if service_rate is None:
        service_rate = params.common_service_rate()
    if warmup is None:
        warmup = min(10.0 / params.user_departure_rate, 0.1 * horizon)
    mapped = symmetric_hap_to_mmpp(params)
    results = simulate_mmpp_columnar_batch(
        mapped.mmpp,
        horizon,
        service_rate,
        seeds,
        warmup=warmup,
        block_size=block_size,
        chunk_size=chunk_size,
        workspace=workspace,
        max_group_bytes=max_group_bytes,
    )
    for result in results:
        result.extras["source"] = "hap-approx"
    return results
