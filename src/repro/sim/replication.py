"""High-level simulation drivers: warmup, replications, batch means.

:func:`simulate_hap_mm1` is the workhorse behind every simulated figure: it
wires a :class:`~repro.sim.sources.HAPSource` to a
:class:`~repro.sim.server.FCFSQueue`, handles warmup (with a warm-started
hierarchy), and returns a :class:`SimulationResult` carrying every statistic
the paper reports.  :func:`simulate_source_mm1` does the same for any other
source (Poisson, MMPP, on–off, packet train), so HAP-versus-baseline
comparisons share one code path.

The paper highlights (Figure 13) how slowly HAP simulations converge —
user-level dynamics at tens of minutes versus message service at tens of
milliseconds.  :func:`replicate` runs independent replications and reports a
confidence interval, which is how the benchmarks bound that fluctuation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.client_server import ClientServerHAPParameters
from repro.core.params import HAPParameters
from repro.sim.busy_periods import BusyPeriodStats, analyze_busy_periods
from repro.sim.engine import Simulator
from repro.sim.random_streams import Exponential, RandomStreams
from repro.sim.server import FCFSQueue
from repro.sim.sources import ClientServerHAPSource, HAPSource

__all__ = [
    "SimulationResult",
    "replicate",
    "simulate_client_server_mm1",
    "simulate_hap_mm1",
    "simulate_source_mm1",
]


@dataclass
class SimulationResult:
    """Everything one simulation run measured.

    Attributes mirror the paper's reported quantities; trace fields are None
    unless the run was asked to record them.
    """

    mean_delay: float
    mean_wait: float
    sigma: float
    utilization: float
    mean_queue_length: float
    messages_served: int
    effective_arrival_rate: float
    horizon: float
    busy_stats: BusyPeriodStats | None = None
    queue_trace: tuple[np.ndarray, np.ndarray] | None = None
    user_trace: tuple[np.ndarray, np.ndarray] | None = None
    app_trace: tuple[np.ndarray, np.ndarray] | None = None
    mean_users: float = math.nan
    mean_apps: float = math.nan
    delay_variance: float = math.nan
    events_processed: int = 0
    extras: dict = field(default_factory=dict)

    def littles_law_residual(self) -> float:
        """Relative gap between ``N`` and ``lambda T`` — a self-check."""
        if self.mean_queue_length == 0:
            return math.nan
        predicted = self.effective_arrival_rate * self.mean_delay
        return abs(predicted - self.mean_queue_length) / self.mean_queue_length


def simulate_hap_mm1(
    params: HAPParameters,
    horizon: float,
    seed: int = 0,
    service_rate: float | None = None,
    warmup: float | None = None,
    prepopulate: bool = True,
    trace_stride: int = 0,
    population_trace_stride: int = 0,
    collect_busy_periods: bool = False,
    rng_mode: str = "legacy",
) -> SimulationResult:
    """Simulate a HAP feeding an exponential FCFS server.

    Parameters
    ----------
    params:
        The HAP description.
    horizon:
        Simulated time (seconds, in the paper's units).
    seed:
        Master seed; source and server use independent substreams.
    service_rate:
        ``mu''``; defaults to the common message service rate.
    warmup:
        Statistics collection starts here; defaults to 10 user lifetimes or
        10 % of the horizon, whichever is smaller (with ``prepopulate`` the
        hierarchy starts near stationarity so a short warmup suffices).
    prepopulate:
        Start with stationary user/application populations.
    trace_stride:
        Record the queue length at every ``stride``-th change (0 = off);
        required (with 1) for exact busy-period heights.
    population_trace_stride:
        Record user/app population traces (Figures 16–17).
    collect_busy_periods:
        Compute :class:`~repro.sim.busy_periods.BusyPeriodStats`.
    rng_mode:
        Source draw mode: ``"legacy"`` (default, bit-identical to the
        pre-rewrite engine) or ``"batched"`` (numpy-block draws —
        seed-stable and worker-count-stable, its own determinism domain;
        see :class:`~repro.sim.sources.HAPSource`).  Server service draws
        stay per-call in both modes.
    """
    if service_rate is None:
        service_rate = params.common_service_rate()
    if warmup is None:
        warmup = min(10.0 / params.user_departure_rate, 0.1 * horizon)
    _validate_window(horizon, warmup)
    if collect_busy_periods and trace_stride == 0:
        trace_stride = 1

    sim = Simulator()
    streams = RandomStreams(seed)
    queue = FCFSQueue(
        sim,
        Exponential(service_rate),
        streams.get("server"),
        trace_stride=trace_stride,
        warmup=warmup,
    )
    source = HAPSource(
        sim,
        params,
        streams.get("hap-source"),
        queue.arrive,
        track_populations=True,
        trace_stride=population_trace_stride,
        rng_mode=rng_mode,
    )
    if prepopulate:
        source.prepopulate()
    source.start()
    sim.run_until(horizon)
    queue.finalize()
    source.finalize()

    return _collect(
        queue,
        horizon,
        warmup,
        collect_busy_periods,
        mean_users=source.user_population.time_average,
        mean_apps=source.app_population.time_average,
        user_trace=source.user_trace.as_arrays() if source.user_trace else None,
        app_trace=source.app_trace.as_arrays() if source.app_trace else None,
    )


def simulate_source_mm1(
    make_source,
    horizon: float,
    service_rate: float,
    seed: int = 0,
    warmup: float | None = None,
    trace_stride: int = 0,
    collect_busy_periods: bool = False,
) -> SimulationResult:
    """Simulate an arbitrary source against an exponential FCFS server.

    Parameters
    ----------
    make_source:
        Callable ``(sim, rng, emit) -> source`` where the source exposes
        ``start()``; see :mod:`repro.sim.sources` for ready-made ones.
    horizon, service_rate, seed, warmup, trace_stride, collect_busy_periods:
        As in :func:`simulate_hap_mm1`.
    """
    if warmup is None:
        warmup = 0.05 * horizon
    _validate_window(horizon, warmup)
    if collect_busy_periods and trace_stride == 0:
        trace_stride = 1
    sim = Simulator()
    streams = RandomStreams(seed)
    queue = FCFSQueue(
        sim,
        Exponential(service_rate),
        streams.get("server"),
        trace_stride=trace_stride,
        warmup=warmup,
    )
    source = make_source(sim, streams.get("source"), queue.arrive)
    source.start()
    sim.run_until(horizon)
    queue.finalize()
    return _collect(queue, horizon, warmup, collect_busy_periods)


def simulate_client_server_mm1(
    params: ClientServerHAPParameters,
    horizon: float,
    service_rate: float,
    seed: int = 0,
    warmup: float | None = None,
    prepopulate: bool = True,
) -> SimulationResult:
    """Simulate a HAP-CS source with request/response chains at one queue.

    The queue's ``on_departure`` hook feeds completions back to the source,
    closing the client–server loop; ``extras`` carries the request/response
    counts so tests can verify the chain-amplification closed form.
    """
    if warmup is None:
        warmup = min(10.0 / params.user_departure_rate, 0.1 * horizon)
    _validate_window(horizon, warmup)
    sim = Simulator()
    streams = RandomStreams(seed)
    source_holder: list[ClientServerHAPSource] = []

    def on_departure(sim_, message):
        source_holder[0].handle_departure(sim_, message)

    queue = FCFSQueue(
        sim,
        Exponential(service_rate),
        streams.get("server"),
        warmup=warmup,
        on_departure=on_departure,
    )
    source = ClientServerHAPSource(
        sim, params, streams.get("hap-cs-source"), queue.arrive
    )
    source_holder.append(source)
    if prepopulate:
        source.prepopulate()
    source.start()
    sim.run_until(horizon)
    queue.finalize()
    result = _collect(queue, horizon, warmup, collect_busy_periods=False)
    result.extras["requests_emitted"] = source.requests_emitted
    result.extras["responses_emitted"] = source.responses_emitted
    return result


def _validate_window(horizon: float, warmup: float) -> None:
    """Reject measurement windows that are empty or inverted.

    ``warmup >= horizon`` used to slip through and divide the arrival count
    by the ``1e-12`` floor in :func:`_collect`, yielding an absurd
    ``effective_arrival_rate`` (and NaN-free garbage downstream) instead of
    an error.
    """
    if not math.isfinite(horizon) or horizon <= 0:
        raise ValueError(f"horizon must be positive and finite (got {horizon})")
    if not math.isfinite(warmup) or warmup < 0:
        raise ValueError(f"warmup must be finite and >= 0 (got {warmup})")
    if warmup >= horizon:
        raise ValueError(
            f"warmup ({warmup}) must end before the horizon ({horizon}); "
            "nothing would be measured"
        )


def _collect(
    queue: FCFSQueue,
    horizon: float,
    warmup: float,
    collect_busy_periods: bool,
    mean_users: float = math.nan,
    mean_apps: float = math.nan,
    user_trace=None,
    app_trace=None,
) -> SimulationResult:
    observed = max(horizon - warmup, 1e-12)
    busy_stats = None
    if collect_busy_periods:
        _, busy_stats = analyze_busy_periods(queue)
    return SimulationResult(
        mean_delay=queue.mean_delay,
        mean_wait=queue.waits.mean,
        sigma=queue.sigma_estimate,
        utilization=queue.utilization_estimate,
        mean_queue_length=queue.mean_queue_length,
        messages_served=queue.delays.count,
        effective_arrival_rate=queue.arrivals_total / observed,
        horizon=horizon,
        busy_stats=busy_stats,
        queue_trace=queue.trace.as_arrays() if queue.trace else None,
        user_trace=user_trace,
        app_trace=app_trace,
        mean_users=mean_users,
        mean_apps=mean_apps,
        delay_variance=queue.delays.variance,
        events_processed=queue.sim.events_processed,
    )


@dataclass(frozen=True)
class ReplicationSummary:
    """Mean and confidence half-width of a statistic across replications."""

    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        """Across-replication mean."""
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Across-replication sample standard deviation."""
        return float(np.std(self.values, ddof=1)) if len(self.values) > 1 else math.nan

    def half_width(self, confidence: float = 0.95) -> float:
        """Student-t confidence half-width."""
        from scipy.stats import t as student_t

        n = len(self.values)
        if n < 2:
            return math.nan
        quantile = student_t.ppf(0.5 + confidence / 2.0, df=n - 1)
        return float(quantile * self.std / math.sqrt(n))


def replicate(
    run_one,
    num_replications: int,
    base_seed: int = 0,
    max_workers: int = 1,
) -> dict[str, ReplicationSummary]:
    """Run ``run_one(seed) -> SimulationResult`` over distinct seeds.

    Returns summaries for the scalar statistics (delay, sigma, utilization,
    queue length) keyed by name.  Delegates to
    :class:`repro.runtime.executor.ParallelReplicator`; seeds are
    ``base_seed + k`` at every worker count, and results are assembled in
    replication order, so ``max_workers=4`` returns summaries bit-identical
    to the legacy serial loop (``max_workers=1``, the default).  A
    replication that raises re-raises here — use the runtime directly for
    failure-tolerant campaigns.
    """
    from repro.runtime.executor import ParallelReplicator

    campaign = ParallelReplicator(max_workers=max_workers).run(
        run_one, num_replications, base_seed=base_seed
    )
    campaign.raise_if_failed()
    return campaign.summaries()
