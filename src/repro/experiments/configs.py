"""The paper's parameter sets and reference numbers.

Section 4 fixes one base parameter set and varies a single knob per figure:

    lambda = 0.0055, mu = 0.001, lambda' = 0.01, mu' = 0.01,
    lambda'' = 0.1,  mu'' = 20 (17 in Sections 4.3–4.4, 15 in Figure 18),
    l = 5, m = 3
    =>  lambda-bar = 8.25, x-bar = 5.5, y-bar = 27.5.

Figure 9's interarrival comparison uses lambda-bar = 7.5, which (together
with its quoted a(0) = 9.28 ≈ 0.3·(1 + 5 + 25) = 9.3) pins lambda = 0.005.

``paper_reference()`` collects the numbers the paper prints, so every
benchmark and EXPERIMENTS.md compares against a single source of truth.
"""

from __future__ import annotations

import os

from repro.core.params import HAPParameters

__all__ = ["base_parameters", "bench_scale", "fig9_parameters", "paper_reference"]


def base_parameters(
    service_rate: float = 20.0,
    user_arrival_rate: float = 0.0055,
    name: str = "paper-base",
) -> HAPParameters:
    """The Section-4 base HAP (``mu''`` per figure: 20, 17 or 15)."""
    return HAPParameters.symmetric(
        user_arrival_rate=user_arrival_rate,
        user_departure_rate=0.001,
        app_arrival_rate=0.01,
        app_departure_rate=0.01,
        message_arrival_rate=0.1,
        message_service_rate=service_rate,
        num_app_types=5,
        num_message_types=3,
        name=name,
    )


def fig9_parameters(service_rate: float = 20.0) -> HAPParameters:
    """The Figure-9 variant: lambda = 0.005, lambda-bar = 7.5."""
    return base_parameters(
        service_rate=service_rate, user_arrival_rate=0.005, name="fig9"
    )


def bench_scale() -> float:
    """Global benchmark scale factor from ``REPRO_BENCH_SCALE``.

    Values below 1 shrink simulation horizons (quicker, noisier); above 1
    lengthen them.  Defaults to 1.0 — roughly the sizes used to produce
    EXPERIMENTS.md.
    """
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def paper_reference() -> dict:
    """Numbers printed in the paper, keyed by experiment id."""
    return {
        "headline": {
            "lambda_bar": 8.25,
            "sigma": 0.50,
            "utilization": 0.42,
            "delay_solution0_and_sim": 0.55,
            "delay_solution12": 0.10,
            "delay_mm1": 0.085,
            "ratio_solution0_vs_mm1": 6.47,
        },
        "fig9": {
            "lambda_bar": 7.5,
            "hap_density_at_zero": 9.28,
            "poisson_density_at_zero": 7.5,
            "intersections": (0.077, 0.53),
            "mean_interarrival": 0.133,
        },
        "fig11": {
            "ratio_at_capacity_30": 1.1522,  # HAP delay 15.22 % above Poisson
            "ratio_at_utilization_0.64": 200.0,
        },
        "fig16_17": {
            "users_at_burst_onset": 13,
            "apps_at_burst_onset": 49,
            "mean_users": 5.5,
            "mean_apps": 27.5,
        },
        "fig18": {
            "busy_fraction": 0.55,
            "busy_variance_ratio": 618.0,
            "idle_variance_ratio": 15.0,
            "height_variance_ratio": 66.0,
            "mountain_count_deficit": 0.19,  # HAP has 19 % fewer busy periods
            "poisson_peak_height": 29,
            "hap_peak_height": 17000,
        },
        "sec5": {
            "joint_10pct_scaling_delay_change": -0.01,  # ±10 % both => ∓1 %
        },
        "accuracy": {
            "error_bound_when_conditions_hold": 0.05,
            "utilization_validity_limit": 0.30,
        },
    }
