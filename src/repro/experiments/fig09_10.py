"""Figures 9 and 10 — message interarrival time distribution, body and tail.

The paper plots HAP's closed-form ``a(t)`` against the load-equivalent
exponential (both at ``lambda-bar = 7.5``): HAP starts higher
(a(0) = 9.28 > 7.5), dips below the exponential through the middle, and
re-crosses into a heavier tail — intersections at t ≈ 0.077 and ≈ 0.53.
Short gaps are intra-burst, long gaps are between bursts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.interarrival import (
    InterarrivalDistribution,
    density_intersections,
    poisson_interarrival_density,
)
from repro.experiments.configs import fig9_parameters

__all__ = ["Fig9Result", "run_fig9", "run_fig10_tail"]


@dataclass(frozen=True)
class Fig9Result:
    """The interarrival comparison at equal mean rate."""

    lambda_bar: float
    hap_density_at_zero: float
    poisson_density_at_zero: float
    intersections: tuple[float, ...]
    grid: np.ndarray
    hap_density: np.ndarray
    poisson_density: np.ndarray

    def describe(self) -> str:
        """The numbers the paper quotes for Figure 9."""
        crossings = ", ".join(f"{t:.3f}" for t in self.intersections)
        return "\n".join(
            [
                f"lambda-bar = {self.lambda_bar:.4g} (paper: 7.5)",
                f"a(0): HAP = {self.hap_density_at_zero:.3f} (paper: 9.28), "
                f"Poisson = {self.poisson_density_at_zero:.3f} (paper: 7.5)",
                f"intersections at t = {crossings} (paper: 0.077, 0.53)",
            ]
        )


def run_fig9(grid_upper: float = 0.7, grid_points: int = 200) -> Fig9Result:
    """Compute both densities on a grid plus the crossing points."""
    params = fig9_parameters()
    dist = InterarrivalDistribution(params)
    rate = params.mean_message_rate
    grid = np.linspace(0.0, grid_upper, grid_points)
    return Fig9Result(
        lambda_bar=rate,
        hap_density_at_zero=dist.density_at_zero(),
        poisson_density_at_zero=rate,
        intersections=tuple(density_intersections(dist)),
        grid=grid,
        hap_density=dist.density(grid),
        poisson_density=poisson_interarrival_density(rate, grid),
    )


def run_fig10_tail(
    tail_start: float = 0.45, tail_end: float = 0.7, grid_points: int = 120
) -> Fig9Result:
    """The Figure-10 zoom: the tail window around the second crossing."""
    params = fig9_parameters()
    dist = InterarrivalDistribution(params)
    rate = params.mean_message_rate
    grid = np.linspace(tail_start, tail_end, grid_points)
    return Fig9Result(
        lambda_bar=rate,
        hap_density_at_zero=dist.density_at_zero(),
        poisson_density_at_zero=rate,
        intersections=tuple(
            t for t in density_intersections(dist) if tail_start <= t <= tail_end
        ),
        grid=grid,
        hap_density=dist.density(grid),
        poisson_density=poisson_interarrival_density(rate, grid),
    )
