"""Figures 9 and 10 — message interarrival time distribution, body and tail.

The paper plots HAP's closed-form ``a(t)`` against the load-equivalent
exponential (both at ``lambda-bar = 7.5``): HAP starts higher
(a(0) = 9.28 > 7.5), dips below the exponential through the middle, and
re-crosses into a heavier tail — intersections at t ≈ 0.077 and ≈ 0.53.
Short gaps are intra-burst, long gaps are between bursts.

:func:`run_fig9_empirical` backs the closed form with simulation: a
replicated campaign (via :func:`repro.runtime.sweep.sweep`) measures the
mean arrival rate the event-driven HAP actually produces and checks it
against ``lambda-bar`` — the paper's mean interarrival of 0.133 s.

The closed-form density grids themselves are embarrassingly parallel, so
:func:`run_fig9` and :func:`run_fig10_tail` evaluate them through
:func:`repro.runtime.analytic.grid_map`, which chunks the abscissa grid
over the same process pool the simulation campaigns use (and collapses to
one in-process vectorized call on a single worker).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.core.interarrival import (
    InterarrivalDistribution,
    density_intersections,
    poisson_interarrival_density,
)
from repro.experiments.configs import fig9_parameters
from repro.runtime.analytic import grid_map
from repro.runtime.sweep import SweepPoint, sweep
from repro.sim.replication import ReplicationSummary, simulate_hap_mm1

__all__ = [
    "Fig9EmpiricalResult",
    "Fig9Result",
    "run_fig9",
    "run_fig9_empirical",
    "run_fig10_tail",
]


@dataclass(frozen=True)
class Fig9Result:
    """The interarrival comparison at equal mean rate."""

    lambda_bar: float
    hap_density_at_zero: float
    poisson_density_at_zero: float
    intersections: tuple[float, ...]
    grid: np.ndarray
    hap_density: np.ndarray
    poisson_density: np.ndarray

    def describe(self) -> str:
        """The numbers the paper quotes for Figure 9."""
        crossings = ", ".join(f"{t:.3f}" for t in self.intersections)
        return "\n".join(
            [
                f"lambda-bar = {self.lambda_bar:.4g} (paper: 7.5)",
                f"a(0): HAP = {self.hap_density_at_zero:.3f} (paper: 9.28), "
                f"Poisson = {self.poisson_density_at_zero:.3f} (paper: 7.5)",
                f"intersections at t = {crossings} (paper: 0.077, 0.53)",
            ]
        )


def _hap_density(params, grid):
    """Picklable grid chunk task: the closed-form ``a(t)`` on ``grid``."""
    return InterarrivalDistribution(params).density(grid)


def run_fig9(
    grid_upper: float = 0.7,
    grid_points: int = 200,
    max_workers: int | None = None,
    backend: str | None = None,
) -> Fig9Result:
    """Compute both densities on a grid plus the crossing points.

    ``backend`` selects the analytic grid-evaluation backend
    (``dense``/``krylov``/``auto``); ``None`` keeps the process default.
    """
    params = fig9_parameters()
    dist = InterarrivalDistribution(params)
    rate = params.mean_message_rate
    grid = np.linspace(0.0, grid_upper, grid_points)
    return Fig9Result(
        lambda_bar=rate,
        hap_density_at_zero=dist.density_at_zero(),
        poisson_density_at_zero=rate,
        intersections=tuple(density_intersections(dist)),
        grid=grid,
        hap_density=grid_map(
            partial(_hap_density, params),
            grid,
            max_workers=max_workers,
            backend=backend,
        ),
        poisson_density=poisson_interarrival_density(rate, grid),
    )


@dataclass(frozen=True)
class Fig9EmpiricalResult:
    """Closed-form interarrival mean versus a replicated simulation.

    Attributes
    ----------
    lambda_bar:
        The closed-form mean message rate (paper: 7.5).
    rate_summary:
        Across-replication summary of the measured effective arrival rate.
    num_replications:
        Successful replications behind the summary.
    wall_clock:
        Campaign wall-clock seconds.
    """

    lambda_bar: float
    rate_summary: ReplicationSummary
    num_replications: int
    wall_clock: float

    @property
    def mean_interarrival(self) -> float:
        """Measured mean interarrival time (paper: 0.133 s)."""
        return 1.0 / self.rate_summary.mean

    def describe(self) -> str:
        """Closed form versus measurement, in the paper's units."""
        return "\n".join(
            [
                f"lambda-bar closed form = {self.lambda_bar:.4g} (paper: 7.5)",
                f"lambda-bar simulated   = {self.rate_summary.mean:.4g} "
                f"+/- {self.rate_summary.half_width():.2g} "
                f"({self.num_replications} replications)",
                f"mean interarrival      = {self.mean_interarrival:.4g} s "
                "(paper: 0.133)",
            ]
        )


def _fig9_rate_task(params, horizon, seed):
    """Picklable sweep task: one HAP run measuring the arrival rate."""
    return simulate_hap_mm1(params, horizon=horizon, seed=seed)


def run_fig9_empirical(
    horizon: float = 40_000.0,
    num_replications: int = 4,
    base_seed: int = 9,
    max_workers: int | None = None,
    policy=None,
    checkpoint=None,
    resume: bool = False,
) -> Fig9EmpiricalResult:
    """Validate the Figure-9 mean interarrival time by simulation.

    Runs a replicated campaign of the Figure-9 HAP through
    :func:`repro.runtime.sweep.sweep` and summarizes the measured effective
    arrival rate, whose reciprocal is the paper's 0.133 s mean
    interarrival.  ``policy``, ``checkpoint`` and ``resume`` have the
    :func:`~repro.runtime.sweep.sweep` semantics (an interrupted campaign
    resumes from its last completed seed).
    """
    params = fig9_parameters()
    result = sweep(
        [
            SweepPoint(
                "fig9-hap",
                partial(_fig9_rate_task, params, horizon),
                base_seed=base_seed,
            )
        ],
        num_replications=num_replications,
        max_workers=max_workers,
        policy=policy,
        checkpoint=checkpoint,
        resume=resume,
    )
    result.raise_if_failed()
    campaign = result["fig9-hap"]
    return Fig9EmpiricalResult(
        lambda_bar=params.mean_message_rate,
        rate_summary=campaign.summaries(("effective_arrival_rate",))[
            "effective_arrival_rate"
        ],
        num_replications=campaign.completed,
        # Per-point campaign wall_clock is deprecated (whole-sweep figure);
        # this is a one-point sweep, so the sweep total IS the campaign's.
        wall_clock=result.wall_clock,
    )


def run_fig10_tail(
    tail_start: float = 0.45,
    tail_end: float = 0.7,
    grid_points: int = 120,
    max_workers: int | None = None,
    backend: str | None = None,
) -> Fig9Result:
    """The Figure-10 zoom: the tail window around the second crossing."""
    params = fig9_parameters()
    dist = InterarrivalDistribution(params)
    rate = params.mean_message_rate
    grid = np.linspace(tail_start, tail_end, grid_points)
    return Fig9Result(
        lambda_bar=rate,
        hap_density_at_zero=dist.density_at_zero(),
        poisson_density_at_zero=rate,
        intersections=tuple(
            t for t in density_intersections(dist) if tail_start <= t <= tail_end
        ),
        grid=grid,
        hap_density=grid_map(
            partial(_hap_density, params),
            grid,
            max_workers=max_workers,
            backend=backend,
        ),
        poisson_density=poisson_interarrival_density(rate, grid),
    )
