"""Sections 6–7 — the broadband-control design study.

Not a numbered figure, but the paper's stated purpose for HAP: admission
control and bandwidth allocation.  This experiment exercises the
:mod:`repro.control` pipeline end to end:

1. the misengineering gap — bandwidth sized by the Poisson rule versus by
   HAP's Solution 2, for the same delay target (the paper's warning:
   Poisson sizing underprovisions, and the penalty explodes with load);
2. an admissible-call region for a two-application-type HAP, its Hui-style
   linear approximation, and the resulting admission lookup table;
3. a CL-overlay design on a small ATM topology.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.control.admission_table import (
    build_admission_table,
    linear_region_approximation,
)
from repro.control.bandwidth import bandwidth_for_delay_target
from repro.control.overlay import OverlayDesign, design_cl_overlay
from repro.core.params import ApplicationType, HAPParameters, MessageType
from repro.core.solution2 import solve_solution2
from repro.experiments.configs import base_parameters

__all__ = [
    "BandwidthGapPoint",
    "run_admission_study",
    "run_bandwidth_gap",
    "run_overlay_design",
]


@dataclass(frozen=True)
class BandwidthGapPoint:
    """Poisson-sized versus HAP-sized bandwidth at one delay target."""

    delay_target: float
    bandwidth_poisson: float
    bandwidth_hap: float
    delay_if_poisson_sized: float

    @property
    def underprovision_factor(self) -> float:
        """How much extra bandwidth HAP sizing demands."""
        return self.bandwidth_hap / self.bandwidth_poisson

    def describe(self) -> str:
        """One row of the misengineering table."""
        return (
            f"target T={self.delay_target:g}: Poisson mu={self.bandwidth_poisson:.2f} "
            f"HAP mu={self.bandwidth_hap:.2f} "
            f"(x{self.underprovision_factor:.2f}); Poisson-sized link actually "
            f"delivers T={self.delay_if_poisson_sized:.4g}"
        )


def run_bandwidth_gap(
    delay_targets: tuple[float, ...] = (0.3, 0.2, 0.15, 0.12),
) -> list[BandwidthGapPoint]:
    """Size the base workload's link by both rules at several targets."""
    params = base_parameters()
    lam = params.mean_message_rate
    points = []
    for target in delay_targets:
        poisson_mu = lam + 1.0 / target  # M/M/1: T = 1/(mu - lambda)
        hap_mu = bandwidth_for_delay_target(params, target)
        actual = solve_solution2(params, poisson_mu).mean_delay
        points.append(
            BandwidthGapPoint(
                delay_target=target,
                bandwidth_poisson=poisson_mu,
                bandwidth_hap=hap_mu,
                delay_if_poisson_sized=actual,
            )
        )
    return points


def two_type_hap() -> HAPParameters:
    """A 2-application-type HAP (interactive + file transfer) for the region."""
    interactive = ApplicationType(
        arrival_rate=0.01,
        departure_rate=0.01,
        messages=(MessageType(arrival_rate=0.1, service_rate=20.0, name="query"),),
        name="interactive",
    )
    transfer = ApplicationType(
        arrival_rate=0.005,
        departure_rate=0.01,
        messages=(MessageType(arrival_rate=0.3, service_rate=20.0, name="block"),),
        name="file-transfer",
    )
    return HAPParameters(
        user_arrival_rate=0.0055,
        user_departure_rate=0.001,
        applications=(interactive, transfer),
        name="two-type",
    )


def run_admission_study(
    delay_target: float = 0.12, max_population: int = 60
) -> tuple:
    """Admissible region, its linear approximation, and the lookup table.

    Returns ``(table, (N1, N2))`` — the staircase table and the Hui-style
    axis intercepts for table-free admission.
    """
    params = two_type_hap()
    table = build_admission_table(
        params, delay_target=delay_target, max_population=max_population
    )
    intercepts = linear_region_approximation(list(table.boundary))
    return table, intercepts


def run_overlay_design(delay_target: float = 0.2) -> OverlayDesign:
    """Size a CL overlay on a 5-node ATM mesh carrying three HAP demands."""
    topology = nx.Graph()
    topology.add_edges_from(
        [
            ("lan-a", "switch-1"),
            ("lan-b", "switch-1"),
            ("switch-1", "switch-2"),
            ("switch-2", "lan-c"),
            ("switch-2", "lan-d"),
        ]
    )
    demand_hap = base_parameters()
    demands = {
        "a-to-c": ("lan-a", "lan-c", demand_hap),
        "b-to-c": ("lan-b", "lan-c", demand_hap),
        "a-to-d": ("lan-a", "lan-d", demand_hap),
    }
    return design_cl_overlay(topology, demands, delay_target=delay_target)
