"""Section 6's protocol remedies, measured: windowing moves the burst.

One HAP workload is pushed through the same-capacity network queue three
ways:

* raw messages (the paper's baseline);
* fragmented into blocks (same offered work, finer granularity);
* fragmented *and* window-flow-controlled at the edge.

The network queue's peak length and delay collapse under windowing — the
paper's claim — while the edge buffer absorbs the wait, which is the part
the paper leaves implicit and the numbers make plain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.configs import base_parameters
from repro.sim.engine import Simulator
from repro.sim.protocol import Fragmenter, WindowRegulator
from repro.sim.random_streams import Exponential, RandomStreams
from repro.sim.server import FCFSQueue
from repro.sim.sources import HAPSource

__all__ = ["ProtocolStudyResult", "run_protocol_study"]


@dataclass(frozen=True)
class ProtocolArm:
    """One configuration's measurements."""

    label: str
    network_delay: float
    network_peak: float
    edge_delay: float
    edge_peak: float

    @property
    def end_to_end_delay(self) -> float:
        """Edge holding plus network time."""
        return self.network_delay + self.edge_delay

    def describe(self) -> str:
        """One comparison row."""
        return (
            f"{self.label:<22} network: delay {self.network_delay:.4f} s "
            f"peak {self.network_peak:5.0f} | edge: delay "
            f"{self.edge_delay:.4f} s peak {self.edge_peak:5.0f} | "
            f"end-to-end {self.end_to_end_delay:.4f} s"
        )


@dataclass(frozen=True)
class ProtocolStudyResult:
    """The three arms side by side."""

    raw: ProtocolArm
    fragmented: ProtocolArm
    windowed: ProtocolArm

    def describe(self) -> str:
        """The comparison table."""
        return "\n".join(
            arm.describe() for arm in (self.raw, self.fragmented, self.windowed)
        )


def _run_arm(
    label: str,
    horizon: float,
    seed: int,
    service_rate: float,
    blocks: int,
    window: int | None,
) -> ProtocolArm:
    params = base_parameters(service_rate=service_rate)
    sim = Simulator()
    streams = RandomStreams(seed)
    regulator_holder: list[WindowRegulator] = []

    def on_departure(sim_, message):
        if regulator_holder:
            regulator_holder[0].handle_departure(sim_, message)

    # Packets carry 1/blocks of a message's work: scale the service rate.
    queue = FCFSQueue(
        sim,
        Exponential(service_rate * blocks),
        streams.get("server"),
        warmup=0.05 * horizon,
        trace_stride=1,
        on_departure=on_departure,
    )
    if window is not None:
        regulator = WindowRegulator(sim, queue.arrive, window=window)
        regulator_holder.append(regulator)
        entry = regulator.offer
    else:
        entry = queue.arrive
    accept = Fragmenter(entry, blocks=blocks) if blocks > 1 else entry

    source = HAPSource(
        sim, params, streams.get("hap"), accept, track_populations=False
    )
    source.prepopulate()
    source.start()
    sim.run_until(horizon)
    queue.finalize()
    if regulator_holder:
        regulator_holder[0].finalize()
        edge_delay = regulator_holder[0].holding_delay.mean
        edge_peak = regulator_holder[0].buffer_length.maximum
        if edge_delay != edge_delay:  # NaN when nothing was ever held
            edge_delay = 0.0
    else:
        edge_delay, edge_peak = 0.0, 0.0
    return ProtocolArm(
        label=label,
        network_delay=queue.mean_delay,
        network_peak=queue.queue_length.maximum,
        edge_delay=edge_delay,
        edge_peak=edge_peak,
    )


def run_protocol_study(
    horizon: float = 200_000.0,
    seed: int = 61,
    service_rate: float = 17.0,
    blocks: int = 4,
    window: int = 8,
) -> ProtocolStudyResult:
    """Compare raw, fragmented, and windowed transport of the same HAP.

    All arms offer identical work to an identical-capacity server (packet
    service is ``blocks`` times faster than message service).
    """
    return ProtocolStudyResult(
        raw=_run_arm("raw messages", horizon, seed, service_rate, 1, None),
        fragmented=_run_arm(
            f"{blocks}-block fragments", horizon, seed, service_rate, blocks, None
        ),
        windowed=_run_arm(
            f"{blocks}-block + window {window}",
            horizon,
            seed,
            service_rate,
            blocks,
            window,
        ),
    )
