"""The paper's experiments: parameter sets and per-figure runners.

Every table and figure in the paper's evaluation maps to one module here
(see DESIGN.md's per-experiment index); the pytest-benchmark suite under
``benchmarks/`` is a thin wrapper that runs these and prints the same rows
the paper reports.  Examples reuse them too, so paper numbers live in
exactly one place.
"""

from repro.experiments.accuracy import run_accuracy_sweep, run_runtime_comparison
from repro.experiments.configs import (
    base_parameters,
    bench_scale,
    fig9_parameters,
    paper_reference,
)
from repro.experiments.control_study import (
    run_admission_study,
    run_bandwidth_gap,
    run_overlay_design,
)
from repro.experiments.extensions import (
    run_heavy_tail_ablation,
    run_multiplexing_study,
)
from repro.experiments.fig08 import run_fig8
from repro.experiments.fig09_10 import (
    run_fig9,
    run_fig9_empirical,
    run_fig10_tail,
)
from repro.experiments.fig11_12 import run_fig11, run_fig12
from repro.experiments.fig13_18 import run_fig13, run_fig14_to_17, run_fig18
from repro.experiments.fig19_20 import (
    run_fig19,
    run_fig20,
    run_sec5_joint_scaling,
)
from repro.experiments.headline import run_headline, run_headline_campaign

__all__ = [
    "base_parameters",
    "bench_scale",
    "fig9_parameters",
    "paper_reference",
    "run_accuracy_sweep",
    "run_admission_study",
    "run_bandwidth_gap",
    "run_fig8",
    "run_fig9",
    "run_fig9_empirical",
    "run_fig10_tail",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14_to_17",
    "run_fig18",
    "run_fig19",
    "run_fig20",
    "run_headline",
    "run_headline_campaign",
    "run_heavy_tail_ablation",
    "run_multiplexing_study",
    "run_overlay_design",
    "run_runtime_comparison",
    "run_sec5_joint_scaling",
]
