"""Figure 8 — equal mean rate, different shape, different burstiness.

Three symmetric HAPs with the same number of message-type leaves (hence the
same ``lambda-bar``, by Equation 5) but different branching:

    (a) l = 4, m = 1   — four applications, one message type each
    (b) l = 2, m = 2
    (c) l = 1, m = 4   — one application carrying all four types

A live application instance emits at ``m * lambda''``, so concentrating the
leaves under fewer applications concentrates the rate into fewer, hotter
modulating states: the paper's intuition is burstiness (c) > (b) > (a), and
this experiment confirms it on every metric (interarrival SCV, rate CV²,
Solution-2 delay at equal load, and IDC).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.arrival_rate import equivalent_rate_family
from repro.core.burstiness import BurstinessReport, burstiness_report
from repro.core.solution2 import solve_solution2
from repro.experiments.configs import base_parameters

__all__ = ["Fig8Result", "run_fig8"]


@dataclass(frozen=True)
class Fig8Result:
    """Burstiness metrics and Solution-2 delay for one family member."""

    report: BurstinessReport
    delay_solution2: float

    def describe(self) -> str:
        """One comparison row."""
        return f"{self.report.describe()} delay={self.delay_solution2:.4g}"


def run_fig8(
    leaf_counts: tuple[tuple[int, int], ...] = ((4, 1), (2, 2), (1, 4)),
    service_rate: float = 20.0,
    idc_horizon: float | None = 50.0,
) -> list[Fig8Result]:
    """Build the equal-rate family and measure each member's burstiness."""
    base = base_parameters(service_rate=service_rate)
    app = base.applications[0]
    msg = app.messages[0]
    # Use a 4-leaf family at the base per-leaf rates.
    from repro.core.params import HAPParameters

    family_base = HAPParameters.symmetric(
        base.user_arrival_rate,
        base.user_departure_rate,
        app.arrival_rate,
        app.departure_rate,
        msg.arrival_rate,
        msg.service_rate,
        num_app_types=leaf_counts[0][0],
        num_message_types=leaf_counts[0][1],
    )
    results = []
    for params in equivalent_rate_family(family_base, list(leaf_counts)):
        report = burstiness_report(params, idc_horizon=idc_horizon)
        delay = solve_solution2(params, service_rate).mean_delay
        results.append(Fig8Result(report=report, delay_solution2=delay))
    return results
