"""Closing the Section-7 loop: does HAP-based link sizing actually hold up?

The overlay designer (:mod:`repro.control.overlay`) sizes links with
Solution 2 — fast enough for a control plane, but valid (Section 4.1) only
when the resulting design lands below roughly 30 % utilization.  These
experiments check designed links by simulation, in both regimes:

* :func:`run_link_sizing_validation` — a link sized inside the validity
  region is confirmed by simulation, while the same link sized by the
  Poisson rule overshoots its target.  Then an *aggressive* target (whose
  design lands at high utilization) shows Solution-2 sizing failing by an
  order of magnitude — and exact Solution-0 sizing fixing it.
* :func:`run_tandem_validation` — a two-hop path at the designed
  bandwidth: per-hop and end-to-end delay, showing the first hop absorbs
  the burst (HAP departures are smoother than HAP arrivals, so per-link
  budgets compose conservatively downstream).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.control.bandwidth import bandwidth_for_delay_target
from repro.core.params import HAPParameters
from repro.experiments.configs import base_parameters
from repro.sim.engine import Simulator
from repro.sim.network import TandemNetwork
from repro.sim.random_streams import Exponential, RandomStreams
from repro.sim.server import FCFSQueue
from repro.sim.sources import HAPSource

__all__ = [
    "LinkValidationResult",
    "TandemValidationResult",
    "run_link_sizing_validation",
    "run_tandem_validation",
]


def _simulate_link(
    demands: list[HAPParameters],
    service_rate: float,
    horizon: float,
    seed: int,
) -> float:
    """Mean delay of one or more HAP demands multiplexed on one link."""
    sim = Simulator()
    streams = RandomStreams(seed)
    queue = FCFSQueue(
        sim,
        Exponential(service_rate),
        streams.get("server"),
        warmup=0.05 * horizon,
    )
    for index, params in enumerate(demands):
        source = HAPSource(
            sim,
            params,
            streams.get(f"demand-{index}"),
            queue.arrive,
            track_populations=False,
        )
        source.prepopulate()
        source.start()
    sim.run_until(horizon)
    queue.finalize()
    return queue.mean_delay


@dataclass(frozen=True)
class LinkValidationResult:
    """Designed-versus-delivered delay in both sizing regimes."""

    safe_target: float
    safe_bandwidth_hap: float
    safe_bandwidth_poisson: float
    safe_measured_hap: float
    safe_measured_poisson: float
    aggressive_target: float
    aggressive_bandwidth_sol2: float
    aggressive_measured_sol2: float
    aggressive_bandwidth_exact: float
    aggressive_measured_exact: float

    def describe(self) -> str:
        """The validation rows."""
        return "\n".join(
            [
                f"safe regime (design lands under ~30% load), target "
                f"{self.safe_target:g} s:",
                f"  HAP/Sol-2 sizing mu={self.safe_bandwidth_hap:.2f}: "
                f"measured T={self.safe_measured_hap:.4f} s  "
                f"({'within 15% of' if self.safe_measured_hap < 1.15 * self.safe_target else 'MISSES'} target)",
                f"  Poisson sizing   mu={self.safe_bandwidth_poisson:.2f}: "
                f"measured T={self.safe_measured_poisson:.4f} s  "
                f"({'MISSES' if self.safe_measured_poisson > self.safe_target else 'meets'})",
                f"aggressive target {self.aggressive_target:g} s "
                "(design lands at high load):",
                f"  Sol-2 sizing  mu={self.aggressive_bandwidth_sol2:.2f}: "
                f"measured T={self.aggressive_measured_sol2:.3f} s  "
                f"(off by {self.aggressive_measured_sol2 / self.aggressive_target:.0f}x)",
                f"  Sol-0 sizing  mu={self.aggressive_bandwidth_exact:.2f}: "
                f"measured T={self.aggressive_measured_exact:.3f} s "
                "(orders of magnitude closer; residual gap is the exact "
                "solver's own truncation at burst states)",
            ]
        )


def run_link_sizing_validation(
    safe_target: float = 0.06,
    aggressive_target: float = 0.35,
    horizon: float = 300_000.0,
    seed: int = 71,
    exact_bounds: tuple[int, int] = (14, 70),
) -> LinkValidationResult:
    """Size a link in both regimes and simulate every design."""
    demand = base_parameters()
    lam = demand.mean_message_rate

    # Safe regime: Solution-2 design inside its validity region.
    mu_hap = bandwidth_for_delay_target(demand, safe_target)
    mu_poisson = lam + 1.0 / safe_target
    safe_hap = _simulate_link([demand], mu_hap, horizon, seed)
    safe_poisson = _simulate_link([demand], mu_poisson, horizon, seed)

    # Aggressive regime: Solution 2 is optimistic; Solution 0 is not.
    mu_sol2 = bandwidth_for_delay_target(demand, aggressive_target)
    mu_exact = bandwidth_for_delay_target(
        demand,
        aggressive_target,
        tol=5e-3,
        solver="solution0",
        modulating_bounds=exact_bounds,
    )
    aggressive_sol2 = _simulate_link([demand], mu_sol2, horizon, seed + 1)
    aggressive_exact = _simulate_link([demand], mu_exact, horizon, seed + 1)
    return LinkValidationResult(
        safe_target=safe_target,
        safe_bandwidth_hap=mu_hap,
        safe_bandwidth_poisson=mu_poisson,
        safe_measured_hap=safe_hap,
        safe_measured_poisson=safe_poisson,
        aggressive_target=aggressive_target,
        aggressive_bandwidth_sol2=mu_sol2,
        aggressive_measured_sol2=aggressive_sol2,
        aggressive_bandwidth_exact=mu_exact,
        aggressive_measured_exact=aggressive_exact,
    )


@dataclass(frozen=True)
class TandemValidationResult:
    """Per-hop and end-to-end delay on a designed two-hop path."""

    per_link_target: float
    bandwidth: float
    hop_delays: tuple[float, ...]
    end_to_end_delay: float

    def describe(self) -> str:
        """The validation rows."""
        hops = ", ".join(f"{delay:.4f}" for delay in self.hop_delays)
        return (
            f"two-hop path, each hop mu={self.bandwidth:.2f} "
            f"(designed for T<={self.per_link_target:g} s/hop)\n"
            f"  per-hop delays: [{hops}] s\n"
            f"  end-to-end: {self.end_to_end_delay:.4f} s "
            f"(budget {2 * self.per_link_target:g} s)"
        )


def run_tandem_validation(
    per_link_target: float = 0.06,
    horizon: float = 300_000.0,
    seed: int = 73,
) -> TandemValidationResult:
    """Simulate a HAP demand across two identically-sized hops."""
    demand = base_parameters()
    bandwidth = bandwidth_for_delay_target(demand, per_link_target)
    sim = Simulator()
    streams = RandomStreams(seed)
    network = TandemNetwork(
        sim, [bandwidth, bandwidth], streams, warmup=0.05 * horizon
    )
    source = HAPSource(
        sim,
        demand,
        streams.get("demand"),
        network.arrive,
        track_populations=False,
    )
    source.prepopulate()
    source.start()
    sim.run_until(horizon)
    network.finalize()
    return TandemValidationResult(
        per_link_target=per_link_target,
        bandwidth=bandwidth,
        hop_delays=tuple(network.per_hop_delays()),
        end_to_end_delay=network.mean_end_to_end_delay,
    )
