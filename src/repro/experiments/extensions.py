"""Extension studies beyond the paper's figures.

Two experiments the paper points at but does not run:

* :func:`run_multiplexing_study` — Section 6 warns that "multiplexing HAP
  traffic with non-HAP traffic should be avoided, especially when the
  non-HAP traffic is some real-time application.  More numerical results
  are required to justify this implication."  We supply those numbers: a
  Poisson ("real-time") stream is multiplexed on one server either with an
  equal-rate second Poisson stream or with an equal-rate HAP, and its
  *own* per-class delay is compared.
* :func:`run_heavy_tail_ablation` — the paper's lifetimes are exponential;
  the self-similar-traffic literature that superseded it (Leland et al.)
  hinges on heavy-tailed activity periods.  The simulator accepts lifetime
  overrides, so we re-run the base workload with Pareto application
  lifetimes at the *same mean* and watch the congestion metrics worsen.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.configs import base_parameters
from repro.sim.engine import Simulator
from repro.sim.random_streams import Exponential, Pareto, RandomStreams
from repro.sim.server import FCFSQueue
from repro.sim.sources import HAPSource, PoissonSource

__all__ = [
    "HeavyTailResult",
    "MultiplexingResult",
    "run_heavy_tail_ablation",
    "run_multiplexing_study",
]


@dataclass(frozen=True)
class MultiplexingResult:
    """Per-class delay of a 'real-time' Poisson stream under two neighbours."""

    poisson_rate: float
    neighbour_rate: float
    service_rate: float
    delay_with_poisson_neighbour: float
    delay_with_hap_neighbour: float

    @property
    def penalty(self) -> float:
        """How much worse the real-time class fares beside HAP."""
        return (
            self.delay_with_hap_neighbour / self.delay_with_poisson_neighbour
        )

    def describe(self) -> str:
        """The Section-6 implication, quantified."""
        return (
            f"real-time class ({self.poisson_rate:g} msgs/s) on a "
            f"{self.service_rate:g} msgs/s server:\n"
            f"  beside Poisson neighbour : delay "
            f"{self.delay_with_poisson_neighbour:.4f} s\n"
            f"  beside HAP neighbour     : delay "
            f"{self.delay_with_hap_neighbour:.4f} s "
            f"({self.penalty:.1f}x worse)"
        )


def _per_class_delay(
    horizon: float,
    service_rate: float,
    seed: int,
    attach_sources,
) -> dict[str, float]:
    """Run one multiplexed queue; return mean delay per message ``kind``."""
    sim = Simulator()
    streams = RandomStreams(seed)
    per_class: dict[str, list[float]] = {}

    def on_departure(sim_, message):
        if message.arrival_time >= queue.warmup:
            per_class.setdefault(message.kind, []).append(
                sim_.now - message.arrival_time
            )

    queue = FCFSQueue(
        sim,
        Exponential(service_rate),
        streams.get("server"),
        warmup=0.05 * horizon,
        on_departure=on_departure,
    )
    attach_sources(sim, streams, queue)
    sim.run_until(horizon)
    return {
        kind: sum(delays) / len(delays) for kind, delays in per_class.items()
    }


def run_multiplexing_study(
    horizon: float = 300_000.0,
    service_rate: float = 20.0,
    seed: int = 31,
) -> MultiplexingResult:
    """Quantify the Section-6 'do not multiplex with HAP' implication.

    The real-time class is Poisson at rate 4; its neighbour contributes
    8.25 msgs/s either as a second Poisson or as the paper's base HAP.
    Total utilization is identical in both runs; only the neighbour's
    correlation structure differs.
    """
    realtime_rate = 4.0
    params = base_parameters()
    neighbour_rate = params.mean_message_rate

    def tag(kind):
        def wrap(queue_arrive):
            def emit(message):
                message.kind = kind
                queue_arrive(message)

            return emit

        return wrap

    def with_poisson(sim, streams, queue):
        PoissonSource(
            sim, realtime_rate, streams.get("rt"), tag("realtime")(queue.arrive)
        ).start()
        PoissonSource(
            sim,
            neighbour_rate,
            streams.get("bg"),
            tag("background")(queue.arrive),
        ).start()

    def with_hap(sim, streams, queue):
        PoissonSource(
            sim, realtime_rate, streams.get("rt"), tag("realtime")(queue.arrive)
        ).start()
        source = HAPSource(
            sim,
            params,
            streams.get("bg"),
            tag("background")(queue.arrive),
            track_populations=False,
        )
        source.prepopulate()
        source.start()

    baseline = _per_class_delay(horizon, service_rate, seed, with_poisson)
    mixed = _per_class_delay(horizon, service_rate, seed, with_hap)
    return MultiplexingResult(
        poisson_rate=realtime_rate,
        neighbour_rate=neighbour_rate,
        service_rate=service_rate,
        delay_with_poisson_neighbour=baseline["realtime"],
        delay_with_hap_neighbour=mixed["realtime"],
    )


@dataclass(frozen=True)
class HeavyTailResult:
    """Exponential versus same-mean Pareto application lifetimes.

    Both arms are replicated over seeds.  With heavy tails the *mean* of a
    finite run is dominated by whether a monster session landed in the
    window, so the robust signature is dispersion: the across-seed spread
    of the delay estimate (and of the peak queue) blows up even though the
    nominal load is identical.  This is exactly the predictability loss the
    self-similar-traffic literature later formalized.
    """

    pareto_shape: float
    delays_exponential: tuple[float, ...]
    delays_pareto: tuple[float, ...]
    peaks_exponential: tuple[float, ...]
    peaks_pareto: tuple[float, ...]

    @staticmethod
    def _spread(values: tuple[float, ...]) -> float:
        import numpy as np

        return float(np.std(values) / np.mean(values))

    @property
    def dispersion_exponential(self) -> float:
        """Coefficient of variation of the delay estimate across seeds."""
        return self._spread(self.delays_exponential)

    @property
    def dispersion_pareto(self) -> float:
        """Same, for the heavy-tailed arm."""
        return self._spread(self.delays_pareto)

    def describe(self) -> str:
        """The ablation rows."""
        import numpy as np

        return (
            f"application lifetimes at equal mean, "
            f"{len(self.delays_exponential)} seeds each:\n"
            f"  exponential : delay {np.mean(self.delays_exponential):.3f} s "
            f"(seed CV {self.dispersion_exponential:.2f}), "
            f"max peak {max(self.peaks_exponential):.0f}\n"
            f"  Pareto(a={self.pareto_shape:g})  : delay "
            f"{np.mean(self.delays_pareto):.3f} s "
            f"(seed CV {self.dispersion_pareto:.2f}), "
            f"max peak {max(self.peaks_pareto):.0f}"
        )


def run_heavy_tail_ablation(
    horizon: float = 150_000.0,
    pareto_shape: float = 2.1,
    seeds: tuple[int, ...] = (37, 41, 43, 47, 53),
    service_rate: float = 17.0,
) -> HeavyTailResult:
    """Swap exponential application lifetimes for same-mean Pareto ones.

    Shape 2.1 keeps the variance finite (so the comparison converges at
    all) but enormous — lifetime SCV = 1/(a(a-2)) ≈ 4.8 versus the
    exponential's 1.  Mean lifetime is pinned at the paper's
    ``1/mu' = 100 s`` so Equation 4's load is untouched.
    """
    if pareto_shape <= 2.0:
        raise ValueError(
            "need pareto_shape > 2 (finite variance) for a convergent study"
        )
    params = base_parameters(service_rate=service_rate)
    mean_lifetime = 1.0 / params.applications[0].departure_rate
    scale = mean_lifetime * (pareto_shape - 1.0) / pareto_shape
    results: dict[str, list[tuple[float, float]]] = {
        "exponential": [],
        "pareto": [],
    }
    for seed in seeds:
        for label, lifetime in (
            ("exponential", None),
            ("pareto", Pareto(shape=pareto_shape, scale=scale)),
        ):
            sim = Simulator()
            streams = RandomStreams(seed)
            queue = FCFSQueue(
                sim,
                Exponential(service_rate),
                streams.get("server"),
                warmup=0.05 * horizon,
                trace_stride=1,
            )
            source = HAPSource(
                sim,
                params,
                streams.get("hap"),
                queue.arrive,
                track_populations=False,
                app_lifetime=lifetime,
            )
            source.prepopulate()
            source.start()
            sim.run_until(horizon)
            queue.finalize()
            results[label].append(
                (queue.mean_delay, queue.queue_length.maximum)
            )
    return HeavyTailResult(
        pareto_shape=pareto_shape,
        delays_exponential=tuple(d for d, _ in results["exponential"]),
        delays_pareto=tuple(d for d, _ in results["pareto"]),
        peaks_exponential=tuple(p for _, p in results["exponential"]),
        peaks_pareto=tuple(p for _, p in results["pareto"]),
    )
