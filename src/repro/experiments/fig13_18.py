"""Figures 13–18 — short-term behaviour: fluctuation, mountains, busy periods.

One long HAP run (``mu'' = 17``) feeds Figures 13–17:

* Figure 13 — the running mean of delay keeps fluctuating (multi-time-scale
  dynamics plus occasional congestion events);
* Figure 14 — the queue-length trace over a one-hour window shows
  "mountains";
* Figure 15 — the peak busy period (the paper's run had a mountain over
  17 000 messages lasting ~80 minutes; a tail event of their seed — we
  report our own peak and, always, Poisson's tiny one);
* Figures 16/17 — user and application populations at the onset of the peak
  busy period sit far above their means (13 vs 5.5 and 49 vs 27.5 in the
  paper).

Figure 18 compares busy/idle-period and height statistics between HAP and
Poisson at ``mu'' = 15``: means are similar, variances are wildly apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.analysis.convergence import running_mean, running_mean_fluctuation
from repro.experiments.configs import base_parameters
from repro.runtime.sweep import SweepPoint, sweep
from repro.sim.busy_periods import BusyPeriodStats
from repro.sim.replication import (
    SimulationResult,
    simulate_hap_mm1,
    simulate_source_mm1,
)
from repro.sim.sources import PoissonSource

__all__ = [
    "Fig13Result",
    "Fig18Result",
    "MountainResult",
    "run_fig13",
    "run_fig14_to_17",
    "run_fig18",
]


@dataclass(frozen=True)
class Fig13Result:
    """Running-mean fluctuation of HAP versus Poisson delay estimates."""

    hap_running_mean: np.ndarray
    poisson_running_mean: np.ndarray
    hap_fluctuation: float
    poisson_fluctuation: float

    def describe(self) -> str:
        """Fluctuation in the final half of each run."""
        return (
            f"running-mean fluctuation (last half): "
            f"HAP={self.hap_fluctuation:.4f} "
            f"Poisson={self.poisson_fluctuation:.4f} "
            f"(paper: HAP visibly unconverged where Poisson is flat)"
        )


def run_fig13(
    horizon: float = 600_000.0,
    seed: int = 13,
    service_rate: float = 17.0,
    max_workers: int | None = None,
    policy=None,
) -> Fig13Result:
    """Compare convergence of the two delay estimators.

    Uses per-message delays recorded by dedicated runs; the running mean of
    those delays is exactly the paper's y-axis.  The HAP and Poisson runs
    are independent grid points of a :func:`repro.runtime.sweep.sweep`, so
    on a multi-core machine they execute concurrently; both pin the same
    ``seed``, so results match the legacy serial driver exactly.  These
    are the repo's longest single runs, so ``policy`` (a
    :class:`~repro.runtime.resilience.RetryPolicy`) is worth setting on
    shared machines where a worker can be OOM-killed mid-run.
    """
    params = base_parameters(service_rate=service_rate)
    result = sweep(
        [
            SweepPoint(
                "hap",
                partial(_hap_delay_task, params, horizon, service_rate),
                base_seed=seed,
            ),
            SweepPoint(
                "poisson",
                partial(
                    _poisson_delay_task,
                    params.mean_message_rate,
                    horizon,
                    service_rate,
                ),
                base_seed=seed,
            ),
        ],
        num_replications=1,
        max_workers=max_workers,
        policy=policy,
    )
    result.raise_if_failed()
    hap_delays = result["hap"].results[0]
    poisson_delays = result["poisson"].results[0]
    return Fig13Result(
        hap_running_mean=running_mean(hap_delays),
        poisson_running_mean=running_mean(poisson_delays),
        hap_fluctuation=running_mean_fluctuation(hap_delays),
        poisson_fluctuation=running_mean_fluctuation(poisson_delays),
    )


def _hap_delay_task(params, horizon, service_rate, seed) -> np.ndarray:
    """Picklable sweep task: the HAP delay sequence for one seed."""
    return _delay_sequence_hap(params, horizon, seed, service_rate)


def _poisson_delay_task(rate, horizon, service_rate, seed) -> np.ndarray:
    """Picklable sweep task: the Poisson delay sequence for one seed."""
    return _delay_sequence_poisson(rate, horizon, seed, service_rate)


def _delay_sequence_hap(params, horizon, seed, service_rate) -> np.ndarray:
    """Per-message delays of one HAP run, in completion order."""
    from repro.sim.engine import Simulator
    from repro.sim.random_streams import Exponential, RandomStreams
    from repro.sim.server import FCFSQueue
    from repro.sim.sources import HAPSource

    sim = Simulator()
    streams = RandomStreams(seed)
    queue = FCFSQueue(
        sim, Exponential(service_rate), streams.get("server"), record_delays=True
    )
    source = HAPSource(sim, params, streams.get("hap-source"), queue.arrive)
    source.prepopulate()
    source.start()
    sim.run_until(horizon)
    return np.asarray(queue.delay_log)


def _delay_sequence_poisson(rate, horizon, seed, service_rate) -> np.ndarray:
    from repro.sim.engine import Simulator
    from repro.sim.random_streams import Exponential, RandomStreams
    from repro.sim.server import FCFSQueue

    sim = Simulator()
    streams = RandomStreams(seed)
    queue = FCFSQueue(
        sim, Exponential(service_rate), streams.get("server"), record_delays=True
    )
    source = PoissonSource(sim, rate, streams.get("source"), queue.arrive)
    source.start()
    sim.run_until(horizon)
    return np.asarray(queue.delay_log)


@dataclass(frozen=True)
class MountainResult:
    """Figures 14–17 from one traced HAP run."""

    simulation: SimulationResult
    peak_height: float
    peak_start: float
    peak_width: float
    users_at_peak_onset: float
    apps_at_peak_onset: float
    one_hour_window: tuple[np.ndarray, np.ndarray]

    def describe(self) -> str:
        """The Figure-15/16/17 numbers."""
        return "\n".join(
            [
                f"peak busy period: height={self.peak_height:.0f} messages, "
                f"width={self.peak_width:.0f} s "
                "(paper's seed saw 17000 messages / ~80 min)",
                f"populations at its onset: users={self.users_at_peak_onset:.0f} "
                f"(mean {self.simulation.mean_users:.1f}), "
                f"apps={self.apps_at_peak_onset:.0f} "
                f"(mean {self.simulation.mean_apps:.1f}) "
                "(paper: 13 vs 5.5 and 49 vs 27.5)",
            ]
        )


def run_fig14_to_17(
    horizon: float = 600_000.0,
    seed: int = 14,
    service_rate: float = 17.0,
) -> MountainResult:
    """One traced run: mountains, the peak one, and populations at onset."""
    params = base_parameters(service_rate=service_rate)
    result = simulate_hap_mm1(
        params,
        horizon=horizon,
        seed=seed,
        service_rate=service_rate,
        trace_stride=1,
        population_trace_stride=1,
        collect_busy_periods=True,
    )
    # Locate the peak mountain directly from the queue-length trace.
    times, values = result.queue_trace
    peak_index = int(np.argmax(values))
    peak_height = float(values[peak_index])
    peak_time = float(times[peak_index])
    # Walk outwards to the surrounding empty-queue instants.
    left = peak_index
    while left > 0 and values[left] > 0:
        left -= 1
    right = peak_index
    while right < len(values) - 1 and values[right] > 0:
        right += 1
    peak_start, peak_end = float(times[left]), float(times[right])

    users_at_onset = _value_at(result.user_trace, peak_start)
    apps_at_onset = _value_at(result.app_trace, peak_start)
    window_start = max(times[0], peak_time - 1800.0)
    window = (
        times[(times >= window_start) & (times <= window_start + 3600.0)],
        values[(times >= window_start) & (times <= window_start + 3600.0)],
    )
    return MountainResult(
        simulation=result,
        peak_height=peak_height,
        peak_start=peak_start,
        peak_width=peak_end - peak_start,
        users_at_peak_onset=users_at_onset,
        apps_at_peak_onset=apps_at_onset,
        one_hour_window=window,
    )


def _value_at(trace: tuple[np.ndarray, np.ndarray] | None, time: float) -> float:
    if trace is None or len(trace[0]) == 0:
        return float("nan")
    times, values = trace
    index = int(np.searchsorted(times, time, side="right")) - 1
    return float(values[max(index, 0)])


@dataclass(frozen=True)
class Fig18Result:
    """Busy/idle statistics, HAP versus Poisson at the same load."""

    hap: BusyPeriodStats
    poisson: BusyPeriodStats

    @property
    def busy_variance_ratio(self) -> float:
        """Paper: 618x."""
        return self.hap.var_busy / self.poisson.var_busy

    @property
    def idle_variance_ratio(self) -> float:
        """Paper: 15x."""
        return self.hap.var_idle / self.poisson.var_idle

    @property
    def height_variance_ratio(self) -> float:
        """Paper: 66x."""
        return self.hap.var_height / self.poisson.var_height

    @property
    def mountain_count_deficit(self) -> float:
        """Fraction fewer HAP busy periods (paper: ~19 %)."""
        return 1.0 - self.hap.num_busy_periods / self.poisson.num_busy_periods

    def describe(self) -> str:
        """The Figure-18 table."""
        return "\n".join(
            [
                "HAP     : " + self.hap.describe(),
                "Poisson : " + self.poisson.describe(),
                f"variance ratios busy/idle/height = "
                f"{self.busy_variance_ratio:.0f}x / "
                f"{self.idle_variance_ratio:.0f}x / "
                f"{self.height_variance_ratio:.0f}x "
                "(paper: 618x / 15x / 66x)",
                f"HAP has {100 * self.mountain_count_deficit:.0f}% fewer busy "
                "periods (paper: 19%)",
            ]
        )


def _fig18_hap_task(params, horizon, service_rate, seed) -> SimulationResult:
    """Picklable sweep task: one busy-period-instrumented HAP run."""
    return simulate_hap_mm1(
        params,
        horizon=horizon,
        seed=seed,
        service_rate=service_rate,
        collect_busy_periods=True,
    )


def _make_poisson_source(rate, sim, rng, emit) -> PoissonSource:
    """Picklable source factory for :func:`_fig18_poisson_task`."""
    return PoissonSource(sim, rate, rng, emit)


def _fig18_poisson_task(rate, horizon, service_rate, seed) -> SimulationResult:
    """Picklable sweep task: the load-matched Poisson run."""
    return simulate_source_mm1(
        partial(_make_poisson_source, rate),
        horizon=horizon,
        service_rate=service_rate,
        seed=seed,
        collect_busy_periods=True,
    )


def run_fig18(
    horizon: float = 600_000.0,
    seed: int = 18,
    service_rate: float = 15.0,
    max_workers: int | None = None,
    policy=None,
) -> Fig18Result:
    """Busy/idle/height statistics for HAP and the load-matched Poisson.

    The two runs are grid points of one :func:`repro.runtime.sweep.sweep`
    (concurrent on multi-core machines); each pins the same ``seed`` the
    legacy serial driver used, so the statistics are unchanged.  ``policy``
    adds :func:`run_fig13`'s retry/timeout protection.
    """
    params = base_parameters(service_rate=service_rate)
    result = sweep(
        [
            SweepPoint(
                "hap",
                partial(_fig18_hap_task, params, horizon, service_rate),
                base_seed=seed,
            ),
            SweepPoint(
                "poisson",
                partial(
                    _fig18_poisson_task,
                    params.mean_message_rate,
                    horizon,
                    service_rate,
                ),
                base_seed=seed,
            ),
        ],
        num_replications=1,
        max_workers=max_workers,
        policy=policy,
    )
    result.raise_if_failed()
    hap = result["hap"].results[0]
    poisson = result["poisson"].results[0]
    return Fig18Result(hap=hap.busy_stats, poisson=poisson.busy_stats)
