"""Section 4.1 — accuracy of Solutions 1 and 2 against the exact answer.

The paper's findings, which this experiment reproduces as a table:

* with the validity conditions satisfied and utilization under ~30 %, the
  approximations land within ~5 % of Solution 0 / simulation;
* past 30 % utilization they "drift far away" (they lose the correlation
  between successive interarrivals and go optimistic);
* Solutions 1 and 2 agree with each other to ~1 % whenever the tighter
  condition (1b) holds;
* relative runtime: Solution 0 >> Solution 1 >> Solution 2 (two weeks /
  seven hours / minutes on the 1993 hardware).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.solution0 import solve_solution0
from repro.core.solution1 import solve_solution1
from repro.core.solution2 import solve_solution2
from repro.experiments.configs import base_parameters

__all__ = ["AccuracyPoint", "run_accuracy_sweep", "run_runtime_comparison"]


@dataclass(frozen=True)
class AccuracyPoint:
    """Errors of Solutions 1/2 relative to the exact Solution 0."""

    service_rate: float
    utilization: float
    delay_exact: float
    delay_solution1: float
    delay_solution2: float

    @property
    def error_solution1(self) -> float:
        """Relative error of Solution 1."""
        return abs(self.delay_solution1 - self.delay_exact) / self.delay_exact

    @property
    def error_solution2(self) -> float:
        """Relative error of Solution 2."""
        return abs(self.delay_solution2 - self.delay_exact) / self.delay_exact

    @property
    def solutions_12_gap(self) -> float:
        """Relative gap between the two approximations (paper: < 1 %)."""
        return abs(self.delay_solution1 - self.delay_solution2) / self.delay_solution2

    def describe(self) -> str:
        """One accuracy-table row."""
        return (
            f"mu''={self.service_rate:<6g} rho={self.utilization:.3f} "
            f"T0={self.delay_exact:.4g} "
            f"err1={100 * self.error_solution1:.1f}% "
            f"err2={100 * self.error_solution2:.1f}% "
            f"gap12={100 * self.solutions_12_gap:.2f}%"
        )


def run_accuracy_sweep(
    service_rates: tuple[float, ...] = (30.0, 40.0, 60.0, 100.0, 20.0, 15.0),
    modulating_bounds: tuple[int, int] | None = None,
) -> list[AccuracyPoint]:
    """Compare the three solutions across utilizations.

    The first few service rates keep utilization under 30 % (the validity
    region); the last ones cross it, where the approximations go optimistic.
    """
    points = []
    for mu in service_rates:
        params = base_parameters(service_rate=mu)
        exact = solve_solution0(
            params, backend="qbd", modulating_bounds=modulating_bounds
        )
        sol1 = solve_solution1(params)
        sol2 = solve_solution2(params)
        points.append(
            AccuracyPoint(
                service_rate=mu,
                utilization=params.mean_message_rate / mu,
                delay_exact=exact.mean_delay,
                delay_solution1=sol1.mean_delay,
                delay_solution2=sol2.mean_delay,
            )
        )
    return points


@dataclass(frozen=True)
class RuntimeComparison:
    """Wall-clock seconds of each solution on a common parameter set."""

    seconds_solution0: float
    seconds_solution1: float
    seconds_solution2: float

    def describe(self) -> str:
        """The 1993 ordering (2 weeks / 7 h / 5–7 min), on today's hardware."""
        return (
            f"Solution 0: {self.seconds_solution0:.2f}s, "
            f"Solution 1: {self.seconds_solution1:.2f}s, "
            f"Solution 2: {self.seconds_solution2:.2f}s "
            "(paper: 2 weeks / 7 hours / 5-7 minutes)"
        )


def run_runtime_comparison(
    modulating_bounds: tuple[int, int] = (14, 70),
) -> RuntimeComparison:
    """Time the three solutions on the base parameters.

    A reduced modulating box keeps Solution 0 affordable while preserving
    the ordering; absolute times are hardware-bound anyway.
    """
    params = base_parameters(service_rate=20.0)
    start = time.perf_counter()
    solve_solution0(params, backend="qbd", modulating_bounds=modulating_bounds)
    t0 = time.perf_counter() - start
    start = time.perf_counter()
    solve_solution1(params, bounds=modulating_bounds)
    t1 = time.perf_counter() - start
    start = time.perf_counter()
    solve_solution2(params)
    t2 = time.perf_counter() - start
    return RuntimeComparison(
        seconds_solution0=t0, seconds_solution1=t1, seconds_solution2=t2
    )
