"""Figures 11 and 12 — mean delay versus server capacity / arrival rate.

Figure 11 fixes the workload (``lambda-bar = 8.25``) and sweeps the server
capacity ``mu''``; Figure 12 fixes ``mu'' = 17`` and sweeps the load through
the user arrival rate ``lambda``.  The paper's observation: the HAP/Poisson
delay gap is mild at low utilization (15.22 % above M/M/1 at ``mu'' = 30``)
and explodes as utilization grows (about 200x at 64 %).

Both sweeps share one row shape: simulation is the ground truth for HAP,
with Solution 2 alongside to show where its light-load validity ends, and
M/M/1 as the Poisson baseline.

Sweep points are independent (each carries its own seed and parameter set),
so both figures fan their points over the shared replication runtime via
:func:`repro.runtime.analytic.run_analytic_sweep` — serial and parallel
runs produce identical point lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

from repro.core.params import HAPParameters
from repro.core.solution0 import solve_solution0
from repro.core.solution2 import solve_solution2
from repro.experiments.configs import base_parameters
from repro.queueing.mm1 import solve_mm1
from repro.runtime.analytic import run_analytic_sweep
from repro.sim.replication import simulate_hap_mm1

__all__ = ["SweepPoint", "run_fig11", "run_fig12"]


@dataclass(frozen=True)
class SweepPoint:
    """One sweep position of Figure 11 or 12."""

    sweep_value: float
    utilization: float
    delay_simulation: float
    sigma_simulation: float
    delay_exact: float
    delay_solution2: float
    delay_mm1: float

    @property
    def ratio_vs_mm1(self) -> float:
        """Exact (Solution 0) HAP delay over M/M/1 delay — the noise-free
        version of the paper's gap; the simulation column shows agreement."""
        return self.delay_exact / self.delay_mm1

    @property
    def sim_ratio_vs_mm1(self) -> float:
        """Simulated HAP delay over M/M/1 delay."""
        return self.delay_simulation / self.delay_mm1

    def describe(self) -> str:
        """One table row."""
        return (
            f"value={self.sweep_value:<8g} rho={self.utilization:.3f} "
            f"T_exact={self.delay_exact:.4g} T_sim={self.delay_simulation:.4g} "
            f"T_sol2={self.delay_solution2:.4g} "
            f"T_mm1={self.delay_mm1:.4g} ratio={self.ratio_vs_mm1:.2f}"
        )


#: Truncation spread (standard deviations) for the exact column's chain;
#: 4 sigma keeps the sweep affordable at a small, documented accuracy cost
#: (the full-accuracy headline run uses the 6-sigma default).
_EXACT_SPREAD = 4.0


def _sweep_point(
    params: HAPParameters,
    service_rate: float,
    sweep_value: float,
    horizon: float,
    seed: int,
) -> SweepPoint:
    lam = params.mean_message_rate
    sim = simulate_hap_mm1(
        params, horizon=horizon, seed=seed, service_rate=service_rate
    )
    import numpy as np

    u = params.mean_users
    c_total = sum(app.offered_instances for app in params.applications)
    x_max = int(np.ceil(u + _EXACT_SPREAD * np.sqrt(u)))
    y_var = u * c_total * (1.0 + c_total)
    y_max = int(np.ceil(u * c_total + _EXACT_SPREAD * np.sqrt(y_var)))
    exact = solve_solution0(
        params,
        service_rate,
        backend="qbd",
        modulating_bounds=(max(x_max, 2), max(y_max, 2)),
    )
    sol2 = solve_solution2(params, service_rate)
    mm1 = solve_mm1(lam, service_rate)
    return SweepPoint(
        sweep_value=sweep_value,
        utilization=lam / service_rate,
        delay_simulation=sim.mean_delay,
        sigma_simulation=sim.sigma,
        delay_exact=exact.mean_delay,
        delay_solution2=sol2.mean_delay,
        delay_mm1=mm1.mean_delay,
    )


def run_fig11(
    capacities: tuple[float, ...] = (13.0, 15.0, 17.0, 20.0, 25.0, 30.0, 40.0),
    horizon: float = 300_000.0,
    seed: int = 11,
    max_workers: int | None = None,
    backend: str | None = None,
    policy=None,
    checkpoint=None,
    resume: bool = False,
) -> list[SweepPoint]:
    """Delay versus server capacity at fixed ``lambda-bar = 8.25``.

    The lowest capacities sit at the paper's 64 % utilization corner where
    HAP's delay blows up; expect large run-to-run variation there (that
    *is* the finding).  Points are independent and fan out over
    ``max_workers`` processes (default: one per CPU); ``backend`` selects
    the analytic grid-evaluation backend inside each worker.  ``policy``,
    ``checkpoint`` and ``resume`` have the
    :func:`~repro.runtime.analytic.run_analytic_sweep` semantics — a
    checkpointed sweep interrupted mid-grid resumes from the last
    completed capacity point.
    """
    params = base_parameters()
    tasks = [
        (f"mu={mu:g}", partial(_sweep_point, params, mu, mu, horizon, seed + k))
        for k, mu in enumerate(capacities)
    ]
    return run_analytic_sweep(
        tasks,
        max_workers=max_workers,
        backend=backend,
        policy=policy,
        checkpoint=checkpoint,
        resume=resume,
    )


def run_fig12(
    user_rates: tuple[float, ...] = (
        0.002,
        0.003,
        0.004,
        0.0055,
        0.007,
        0.008,
    ),
    service_rate: float = 17.0,
    horizon: float = 300_000.0,
    seed: int = 12,
    max_workers: int | None = None,
    backend: str | None = None,
    policy=None,
    checkpoint=None,
    resume: bool = False,
) -> list[SweepPoint]:
    """Delay versus message arrival rate at fixed ``mu'' = 17``.

    The sweep changes the load the way the paper does — through the user
    arrival rate ``lambda`` — so the hierarchy's shape stays fixed while
    ``lambda-bar`` scales linearly.  Points fan out over ``max_workers``
    processes like :func:`run_fig11`, with the same resilience knobs.
    """
    tasks = []
    for k, lam in enumerate(user_rates):
        params = base_parameters(
            service_rate=service_rate, user_arrival_rate=lam
        )
        tasks.append(
            (
                f"lambda={lam:g}",
                partial(
                    _sweep_point,
                    params,
                    service_rate,
                    params.mean_message_rate,
                    horizon,
                    seed + k,
                ),
            )
        )
    return run_analytic_sweep(
        tasks,
        max_workers=max_workers,
        backend=backend,
        policy=policy,
        checkpoint=checkpoint,
        resume=resume,
    )
