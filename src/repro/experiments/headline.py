"""Section-4 headline experiment: all three solutions + simulation + M/M/1.

The paper's opening numbers (base parameters, ``mu'' = 20``):

    lambda-bar = 8.25, sigma = 0.50, rho = 0.42,
    HAP/M/1 delay = 0.55 by Solution 0 and simulation,
                    0.10 by Solutions 1 and 2,
    M/M/1 delay    = 0.085  (HAP 6.47x higher by Solution 0 / simulation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.solution0 import solve_solution0
from repro.core.solution1 import solve_solution1
from repro.core.solution2 import solve_solution2
from repro.experiments.configs import base_parameters
from repro.queueing.mm1 import solve_mm1
from repro.sim.replication import simulate_hap_mm1

__all__ = ["HeadlineResult", "run_headline"]


@dataclass(frozen=True)
class HeadlineResult:
    """Delays and sigmas from every route to the same queue."""

    lambda_bar: float
    delay_solution0: float
    sigma_solution0: float
    utilization_solution0: float
    delay_solution1: float
    sigma_solution1: float
    delay_solution2: float
    sigma_solution2: float
    delay_simulation: float
    sigma_simulation: float
    delay_mm1: float

    @property
    def ratio_solution0_vs_mm1(self) -> float:
        """The 6.47x of the paper."""
        return self.delay_solution0 / self.delay_mm1

    @property
    def ratio_solution2_vs_mm1(self) -> float:
        """The paper's "17.65 % higher" (its 0.10 / 0.085)."""
        return self.delay_solution2 / self.delay_mm1

    def describe(self) -> str:
        """Rows shaped like the paper's Section-4 paragraph."""
        return "\n".join(
            [
                f"lambda-bar            = {self.lambda_bar:.4g}",
                f"Solution 0 : delay={self.delay_solution0:.4g} "
                f"sigma={self.sigma_solution0:.3f} rho={self.utilization_solution0:.3f}",
                f"Solution 1 : delay={self.delay_solution1:.4g} "
                f"sigma={self.sigma_solution1:.3f}",
                f"Solution 2 : delay={self.delay_solution2:.4g} "
                f"sigma={self.sigma_solution2:.3f}",
                f"Simulation : delay={self.delay_simulation:.4g} "
                f"sigma={self.sigma_simulation:.3f}",
                f"M/M/1      : delay={self.delay_mm1:.4g}",
                f"Solution0/MM1 ratio = {self.ratio_solution0_vs_mm1:.2f} "
                "(paper: 6.47)",
                f"Solution2/MM1 ratio = {self.ratio_solution2_vs_mm1:.2f} "
                "(paper: 1.18)",
            ]
        )


def run_headline(
    sim_horizon: float = 400_000.0,
    seed: int = 7,
    solution0_bounds: tuple[int, int] | None = None,
) -> HeadlineResult:
    """Run the full Section-4 cross-method comparison.

    Parameters
    ----------
    sim_horizon:
        Simulated seconds (the paper's own Figure 13 shows convergence needs
        a lot; 4e5 s keeps the benchmark affordable and lands within the
        run-to-run fluctuation band).
    seed:
        Simulation seed.
    solution0_bounds:
        Modulating-chain truncation for Solution 0 (None = automatic; pass
        something small like (14, 70) to trade accuracy for speed).
    """
    params = base_parameters(service_rate=20.0)
    mm1 = solve_mm1(params.mean_message_rate, 20.0)
    sol0 = solve_solution0(
        params, backend="qbd", modulating_bounds=solution0_bounds
    )
    sol1 = solve_solution1(params)
    sol2 = solve_solution2(params)
    sim = simulate_hap_mm1(params, horizon=sim_horizon, seed=seed)
    return HeadlineResult(
        lambda_bar=params.mean_message_rate,
        delay_solution0=sol0.mean_delay,
        sigma_solution0=sol0.sigma,
        utilization_solution0=sol0.utilization,
        delay_solution1=sol1.mean_delay,
        sigma_solution1=sol1.sigma,
        delay_solution2=sol2.mean_delay,
        sigma_solution2=sol2.sigma,
        delay_simulation=sim.mean_delay,
        sigma_simulation=sim.sigma,
        delay_mm1=mm1.mean_delay,
    )
