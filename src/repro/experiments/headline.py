"""Section-4 headline experiment: all three solutions + simulation + M/M/1.

The paper's opening numbers (base parameters, ``mu'' = 20``):

    lambda-bar = 8.25, sigma = 0.50, rho = 0.42,
    HAP/M/1 delay = 0.55 by Solution 0 and simulation,
                    0.10 by Solutions 1 and 2,
    M/M/1 delay    = 0.085  (HAP 6.47x higher by Solution 0 / simulation).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

from repro.core.solution0 import solve_solution0
from repro.core.solution1 import solve_solution1
from repro.core.solution2 import solve_solution2
from repro.experiments.configs import base_parameters
from repro.queueing.mm1 import solve_mm1
from repro.runtime.executor import CampaignResult, ParallelReplicator
from repro.sim.replication import simulate_hap_mm1

__all__ = [
    "HeadlineCampaignResult",
    "HeadlineResult",
    "run_headline",
    "run_headline_campaign",
    "run_headline_columnar_campaign",
]


@dataclass(frozen=True)
class HeadlineResult:
    """Delays and sigmas from every route to the same queue."""

    lambda_bar: float
    delay_solution0: float
    sigma_solution0: float
    utilization_solution0: float
    delay_solution1: float
    sigma_solution1: float
    delay_solution2: float
    sigma_solution2: float
    delay_simulation: float
    sigma_simulation: float
    delay_mm1: float

    @property
    def ratio_solution0_vs_mm1(self) -> float:
        """The 6.47x of the paper."""
        return self.delay_solution0 / self.delay_mm1

    @property
    def ratio_solution2_vs_mm1(self) -> float:
        """The paper's "17.65 % higher" (its 0.10 / 0.085)."""
        return self.delay_solution2 / self.delay_mm1

    def describe(self) -> str:
        """Rows shaped like the paper's Section-4 paragraph."""
        return "\n".join(
            [
                f"lambda-bar            = {self.lambda_bar:.4g}",
                f"Solution 0 : delay={self.delay_solution0:.4g} "
                f"sigma={self.sigma_solution0:.3f} rho={self.utilization_solution0:.3f}",
                f"Solution 1 : delay={self.delay_solution1:.4g} "
                f"sigma={self.sigma_solution1:.3f}",
                f"Solution 2 : delay={self.delay_solution2:.4g} "
                f"sigma={self.sigma_solution2:.3f}",
                f"Simulation : delay={self.delay_simulation:.4g} "
                f"sigma={self.sigma_simulation:.3f}",
                f"M/M/1      : delay={self.delay_mm1:.4g}",
                f"Solution0/MM1 ratio = {self.ratio_solution0_vs_mm1:.2f} "
                "(paper: 6.47)",
                f"Solution2/MM1 ratio = {self.ratio_solution2_vs_mm1:.2f} "
                "(paper: 1.18)",
            ]
        )


def run_headline(
    sim_horizon: float = 400_000.0,
    seed: int = 7,
    solution0_bounds: tuple[int, int] | None = None,
) -> HeadlineResult:
    """Run the full Section-4 cross-method comparison.

    Parameters
    ----------
    sim_horizon:
        Simulated seconds (the paper's own Figure 13 shows convergence needs
        a lot; 4e5 s keeps the benchmark affordable and lands within the
        run-to-run fluctuation band).
    seed:
        Simulation seed.
    solution0_bounds:
        Modulating-chain truncation for Solution 0 (None = automatic; pass
        something small like (14, 70) to trade accuracy for speed).
    """
    params = base_parameters(service_rate=20.0)
    mm1 = solve_mm1(params.mean_message_rate, 20.0)
    sol0 = solve_solution0(
        params, backend="qbd", modulating_bounds=solution0_bounds
    )
    sol1 = solve_solution1(params)
    sol2 = solve_solution2(params)
    sim = simulate_hap_mm1(params, horizon=sim_horizon, seed=seed)
    return _assemble(params, mm1, sol0, sol1, sol2, sim.mean_delay, sim.sigma)


def _assemble(params, mm1, sol0, sol1, sol2, sim_delay, sim_sigma):
    """Fold the per-method numbers into a :class:`HeadlineResult`."""
    return HeadlineResult(
        lambda_bar=params.mean_message_rate,
        delay_solution0=sol0.mean_delay,
        sigma_solution0=sol0.sigma,
        utilization_solution0=sol0.utilization,
        delay_solution1=sol1.mean_delay,
        sigma_solution1=sol1.sigma,
        delay_solution2=sol2.mean_delay,
        sigma_solution2=sol2.sigma,
        delay_simulation=sim_delay,
        sigma_simulation=sim_sigma,
        delay_mm1=mm1.mean_delay,
    )


@dataclass(frozen=True)
class HeadlineCampaignResult:
    """The headline comparison with a replicated, parallel simulation column.

    Attributes
    ----------
    headline:
        The cross-method numbers, with the simulation column set to the
        across-replication mean.
    campaign:
        The raw :class:`~repro.runtime.executor.CampaignResult` — seeds,
        failures, wall-clock, events/sec.
    """

    headline: HeadlineResult
    campaign: CampaignResult

    def describe(self) -> str:
        """Headline rows plus confidence interval and campaign stats."""
        summaries = self.campaign.summaries()
        delay = summaries["mean_delay"]
        return "\n".join(
            [
                self.headline.describe(),
                f"sim delay CI95     = {delay.mean:.4g} "
                f"+/- {delay.half_width():.2g} "
                f"({self.campaign.completed} replications)",
                f"campaign           : {self.campaign.describe()}",
            ]
        )


def _headline_sim_task(params, horizon, seed):
    """Picklable campaign task: one headline-parameter HAP simulation."""
    return simulate_hap_mm1(params, horizon=horizon, seed=seed)


def run_headline_campaign(
    num_replications: int = 4,
    sim_horizon: float = 400_000.0,
    base_seed: int = 7,
    max_workers: int | None = None,
    solution0_bounds: tuple[int, int] | None = None,
) -> HeadlineCampaignResult:
    """The Section-4 comparison with a replicated simulation estimate.

    One long seed is exactly the Figure-13 trap — the mean delay is carried
    by rare mega-bursts — so the simulation column here is the mean over
    ``num_replications`` independent seeds, fanned out over ``max_workers``
    processes (``None`` = machine CPU count).  Analytic solutions run once,
    in-process, while the campaign is embarrassingly parallel.
    """
    params = base_parameters(service_rate=20.0)
    mm1 = solve_mm1(params.mean_message_rate, 20.0)
    sol0 = solve_solution0(
        params, backend="qbd", modulating_bounds=solution0_bounds
    )
    sol1 = solve_solution1(params)
    sol2 = solve_solution2(params)
    campaign = ParallelReplicator(max_workers=max_workers).run(
        partial(_headline_sim_task, params, sim_horizon),
        num_replications,
        base_seed=base_seed,
    )
    campaign.raise_if_failed()
    summaries = campaign.summaries()
    headline = _assemble(
        params,
        mm1,
        sol0,
        sol1,
        sol2,
        summaries["mean_delay"].mean,
        summaries["sigma"].mean,
    )
    return HeadlineCampaignResult(headline=headline, campaign=campaign)


def _headline_columnar_task(params, horizon, seed):
    """Picklable columnar campaign task over the headline parameters.

    Imported lazily so loading the experiments package never pulls the
    columnar stack in; each worker builds the (per-process LRU-cached)
    symmetric MMPP mapping once and reuses it across its replications.
    """
    from repro.sim.columnar import simulate_hap_approx_columnar

    return simulate_hap_approx_columnar(params, horizon, seed=seed)


def _headline_columnar_batch_task(params, horizon, seeds):
    """Picklable batched columnar task: one whole seed group in lock-step."""
    from repro.sim.columnar import simulate_hap_approx_columnar_batch

    return simulate_hap_approx_columnar_batch(params, horizon, seeds)


def run_headline_columnar_campaign(
    num_replications: int = 4,
    sim_horizon: float = 400_000.0,
    base_seed: int = 7,
    max_workers: int | None = None,
    engine: str = "columnar",
) -> CampaignResult:
    """The headline simulation column via the columnar engine.

    Same parameters and seed derivation as :func:`run_headline_campaign`'s
    simulation leg, but each replication generates its whole M/HAP-approx
    arrival stream as numpy arrays and solves the queue with the vectorized
    Lindley recursion (:mod:`repro.sim.columnar`), with results transported
    through one shared-memory matrix.  ``engine="columnar-batched"`` runs
    contiguous seed groups in lock-step through the 2-D batched kernel
    instead (:mod:`repro.sim.columnar_batch`) — row-for-row bit-identical,
    one kernel call per worker.  Returns the raw campaign — callers compare
    its ``mean_delay`` summary against the heap campaign's (the BENCH_6
    agreement gate does exactly that).
    """
    if engine not in ("columnar", "columnar-batched"):
        raise ValueError(
            "engine must be 'columnar' or 'columnar-batched' "
            f"(got {engine!r})"
        )
    params = base_parameters(service_rate=20.0)
    task = (
        _headline_columnar_batch_task
        if engine == "columnar-batched"
        else _headline_columnar_task
    )
    campaign = ParallelReplicator(max_workers=max_workers, engine=engine).run(
        partial(task, params, sim_horizon),
        num_replications,
        base_seed=base_seed,
    )
    campaign.raise_if_failed()
    return campaign
