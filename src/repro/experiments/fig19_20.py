"""Figures 19 and 20 plus the Section-5 rate studies (Solution 2 based).

Figure 19 perturbs the arrival rate of one level at a time (±5 % steps) and
plots delay against the resulting ``lambda-bar``: upper-level rates move
``lambda-bar`` most; lower-level rates move *burstiness* most (so at equal
``lambda-bar`` the curve perturbed at the message level sits highest).

Section 5 also scales arrival *and* departure rates of one level together —
``lambda-bar`` is invariant (Equation 4 depends only on ratios), but faster
churn shortens bursts: +10 % on both moved delay by about -1 % in the paper.

Figure 20 bounds users at 12 and applications at 60 and shows both
``lambda-bar`` and delay drop, more at higher load.

The Figure 19/20 grid points are independent closed-form solves, so both
sweeps fan out over :func:`repro.runtime.analytic.run_analytic_sweep`.
The Section-5 joint-scaling study is the exception: its QBD solves share a
modulating box and neighbouring factors have nearby rate matrices, so it
runs serially and *warm-starts* each solve from the previous factor's
converged ``R`` (see :func:`run_sec5_joint_scaling`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

from repro.core.admission import solve_bounded_solution2
from repro.core.params import HAPParameters
from repro.core.solution2 import solve_solution2
from repro.experiments.configs import base_parameters
from repro.runtime.analytic import run_analytic_sweep

__all__ = [
    "LevelSweepPoint",
    "Fig20Point",
    "run_fig19",
    "run_fig20",
    "run_sec5_joint_scaling",
]


@dataclass(frozen=True)
class LevelSweepPoint:
    """One (level, factor) perturbation result."""

    level: str
    factor: float
    lambda_bar: float
    delay: float
    sigma: float

    def describe(self) -> str:
        """One row of Figure 19."""
        return (
            f"{self.level:<12} x{self.factor:<5.2f} "
            f"lambda-bar={self.lambda_bar:.4g} delay={self.delay:.4g} "
            f"sigma={self.sigma:.3f}"
        )


def _fig19_point(
    base: HAPParameters, level: str, factor: float, service_rate: float
) -> LevelSweepPoint:
    params = base.scaled(level, "arrival", factor)
    solution = solve_solution2(params, service_rate)
    return LevelSweepPoint(
        level=level,
        factor=factor,
        lambda_bar=params.mean_message_rate,
        delay=solution.mean_delay,
        sigma=solution.sigma,
    )


def run_fig19(
    factors: tuple[float, ...] = (0.85, 0.90, 0.95, 1.0, 1.05, 1.10, 1.15),
    service_rate: float = 20.0,
    max_workers: int | None = None,
    backend: str | None = None,
    policy=None,
    checkpoint=None,
    resume: bool = False,
) -> list[LevelSweepPoint]:
    """Perturb each level's arrival rate and solve with Solution 2.

    The paper notes Solutions 1/2 are only trend-accurate past 30 %
    utilization, and uses them exactly this way — for the trend.  The
    ``3 levels x len(factors)`` grid fans out over ``max_workers``
    processes; results keep the serial (level, factor) order.  ``policy``,
    ``checkpoint`` and ``resume`` have the
    :func:`~repro.runtime.analytic.run_analytic_sweep` semantics.
    """
    base = base_parameters(service_rate=service_rate)
    tasks = [
        (
            f"{level}-x{factor:g}",
            partial(_fig19_point, base, level, factor, service_rate),
        )
        for level in ("user", "application", "message")
        for factor in factors
    ]
    return run_analytic_sweep(
        tasks,
        max_workers=max_workers,
        backend=backend,
        policy=policy,
        checkpoint=checkpoint,
        resume=resume,
    )


def run_sec5_joint_scaling(
    factors: tuple[float, ...] = (0.9, 1.0, 1.1),
    level: str = "application",
    service_rate: float = 20.0,
    modulating_bounds: tuple[int, int] = (16, 80),
) -> list[LevelSweepPoint]:
    """Scale arrival and departure together: same ``lambda-bar``, less burst.

    The paper: sources that "come frequently but go quickly generate shorter
    bursts than [equal-load] sources that come infrequently but stay longer";
    +10 % on both moved delay about -1 %.

    Reproduction note: Solution 2's closed form depends on the level rates
    only through their *ratios* (``a_i = lambda_i / mu_i``), so it is
    mathematically invariant under this scaling — the churn-speed effect
    lives in the interarrival *correlation* that Solutions 1/2 discard.  We
    therefore run this study with Solution 0 (exact QBD), which shows the
    paper's ~1 % effect at the application level.

    All factors share one modulating box, and a ±10 % rate scaling moves
    the matrix-geometric ``R`` only slightly, so the sweep runs serially
    and warm-starts each factor's fixed point from the previous factor's
    converged ``R`` (the warm-start contract documented in EXPERIMENTS.md).
    """
    from repro.core.solution0 import solve_solution0

    base = base_parameters(service_rate=service_rate)
    points = []
    previous_rate_matrix = None
    for factor in factors:
        params = base.scaled(level, "both", factor)
        solution = solve_solution0(
            params,
            service_rate,
            backend="qbd",
            modulating_bounds=modulating_bounds,
            qbd_initial_rate_matrix=previous_rate_matrix,
        )
        previous_rate_matrix = solution.rate_matrix
        points.append(
            LevelSweepPoint(
                level=f"{level}(both)",
                factor=factor,
                lambda_bar=params.mean_message_rate,
                delay=solution.mean_delay,
                sigma=solution.sigma,
            )
        )
    return points


@dataclass(frozen=True)
class Fig20Point:
    """Bounded versus unbounded delay at one load level."""

    user_arrival_rate: float
    lambda_bar_unbounded: float
    delay_unbounded: float
    lambda_bar_bounded: float
    delay_bounded: float

    @property
    def delay_reduction(self) -> float:
        """Fractional delay saved by the admission bound."""
        return 1.0 - self.delay_bounded / self.delay_unbounded

    def describe(self) -> str:
        """One row of Figure 20."""
        return (
            f"lambda={self.user_arrival_rate:g}: unbounded "
            f"(rate={self.lambda_bar_unbounded:.3g}, T={self.delay_unbounded:.4g}) "
            f"bounded (rate={self.lambda_bar_bounded:.3g}, "
            f"T={self.delay_bounded:.4g}) saving={100 * self.delay_reduction:.1f}%"
        )


def _fig20_point(
    lam: float, max_users: int, max_apps: int, service_rate: float
) -> Fig20Point:
    params = base_parameters(service_rate=service_rate, user_arrival_rate=lam)
    unbounded = solve_solution2(params, service_rate)
    bounded = solve_bounded_solution2(
        params, max_users=max_users, max_apps=max_apps, service_rate=service_rate
    )
    return Fig20Point(
        user_arrival_rate=lam,
        lambda_bar_unbounded=params.mean_message_rate,
        delay_unbounded=unbounded.mean_delay,
        lambda_bar_bounded=bounded.mean_rate,
        delay_bounded=bounded.mean_delay,
    )


def run_fig20(
    user_rates: tuple[float, ...] = (0.004, 0.005, 0.0055, 0.006, 0.0065, 0.007),
    max_users: int = 12,
    max_apps: int = 60,
    service_rate: float = 20.0,
    max_workers: int | None = None,
    backend: str | None = None,
    policy=None,
    checkpoint=None,
    resume: bool = False,
) -> list[Fig20Point]:
    """Sweep the load; compare unbounded Solution 2 with the bounded variant.

    The paper's bounds: 12 users / 60 applications, versus 60/300 as the
    "effectively unbounded" reference (our unbounded arm is the closed form,
    i.e. genuinely unbounded).  Load points are independent and fan out
    over ``max_workers`` processes, with :func:`run_fig19`'s resilience
    knobs.
    """
    tasks = [
        (
            f"lambda={lam:g}",
            partial(_fig20_point, lam, max_users, max_apps, service_rate),
        )
        for lam in user_rates
    ]
    return run_analytic_sweep(
        tasks,
        max_workers=max_workers,
        backend=backend,
        policy=policy,
        checkpoint=checkpoint,
        resume=resume,
    )
