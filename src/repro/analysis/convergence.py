"""Convergence diagnostics — the Figure-13 machinery.

The paper's Figure 13 plots the running mean of HAP delay over an enormous
simulation and shows it fluctuating long after a Poisson run would have
settled: HAP compounds user-level dynamics (tens of minutes) with message
service (milliseconds), and occasional multi-minute congestion events keep
kicking the estimate.  :func:`running_mean` reproduces that curve and
:func:`running_mean_fluctuation` condenses it into a comparable number.
"""

from __future__ import annotations

import numpy as np

__all__ = ["batch_means", "running_mean", "running_mean_fluctuation"]


def running_mean(values: np.ndarray) -> np.ndarray:
    """Cumulative mean of a sample sequence (Figure 13's y-axis)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return values
    return np.cumsum(values) / np.arange(1, values.size + 1)


def running_mean_fluctuation(values: np.ndarray, tail_fraction: float = 0.5) -> float:
    """Normalized fluctuation of the running mean over its final stretch.

    Computes ``(max - min) / final`` of the running mean restricted to the
    last ``tail_fraction`` of the sequence.  A well-converged estimator is
    close to 0; the paper's HAP runs stay visibly above Poisson's.
    """
    if not 0 < tail_fraction <= 1:
        raise ValueError("tail_fraction must be in (0, 1]")
    means = running_mean(values)
    if means.size == 0:
        return float("nan")
    tail = means[int(means.size * (1.0 - tail_fraction)) :]
    final = tail[-1]
    if final == 0:
        return float("nan")
    return float((tail.max() - tail.min()) / abs(final))


def batch_means(
    values: np.ndarray, num_batches: int = 20
) -> tuple[np.ndarray, float, float]:
    """Classical batch-means estimate: (batch means, overall mean, std error).

    Splits the (warmup-free) observation sequence into ``num_batches``
    contiguous batches; the batch means are approximately independent when
    batches are longer than the autocorrelation time, giving a defensible
    standard error for correlated simulation output.
    """
    values = np.asarray(values, dtype=float)
    if num_batches < 2:
        raise ValueError("need at least two batches")
    if values.size < num_batches:
        raise ValueError("fewer observations than batches")
    usable = values[: values.size - values.size % num_batches]
    batches = usable.reshape(num_batches, -1).mean(axis=1)
    overall = float(batches.mean())
    std_error = float(batches.std(ddof=1) / np.sqrt(num_batches))
    return batches, overall, std_error
