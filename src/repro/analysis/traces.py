"""Empirical statistics of arrival-timestamp traces.

The measurement side of the paper's world: given raw arrival instants
(from the simulator, or — for a downstream user — from a packet capture),
estimate the quantities the model predicts, so model and measurement meet
on the same axes:

* empirical interarrival histogram / ccdf against the closed-form ``a(t)``;
* empirical index of dispersion for counts (IDC) over a range of window
  sizes — the classic burstiness-across-time-scales plot;
* empirical peak-to-mean rate ratios per window size.

All functions take a plain 1-D array of arrival times.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "empirical_idc",
    "empirical_interarrival_ccdf",
    "interarrival_autocorrelation",
    "interarrival_times",
    "peak_to_mean_ratio",
    "rate_in_windows",
]


def interarrival_times(arrivals: np.ndarray) -> np.ndarray:
    """Gaps between consecutive arrivals.

    Raises
    ------
    ValueError
        If fewer than two arrivals or the times are not non-decreasing.
    """
    arrivals = np.asarray(arrivals, dtype=float)
    if arrivals.size < 2:
        raise ValueError("need at least two arrivals")
    gaps = np.diff(arrivals)
    if np.any(gaps < 0):
        raise ValueError("arrival times must be non-decreasing")
    return gaps


def empirical_interarrival_ccdf(
    arrivals: np.ndarray, ts: np.ndarray
) -> np.ndarray:
    """``P_hat(T > t)`` evaluated at each ``t`` in ``ts``."""
    gaps = np.sort(interarrival_times(arrivals))
    ts = np.atleast_1d(np.asarray(ts, dtype=float))
    # Fraction of gaps strictly greater than t.
    counts = gaps.size - np.searchsorted(gaps, ts, side="right")
    return counts / gaps.size


def rate_in_windows(arrivals: np.ndarray, window: float) -> np.ndarray:
    """Arrival counts per consecutive window of length ``window``."""
    arrivals = np.asarray(arrivals, dtype=float)
    if arrivals.size == 0:
        raise ValueError("empty trace")
    if window <= 0:
        raise ValueError("window must be positive")
    span = arrivals[-1] - arrivals[0]
    num_windows = int(span / window)
    if num_windows < 1:
        raise ValueError("trace shorter than one window")
    edges = arrivals[0] + window * np.arange(num_windows + 1)
    counts, _ = np.histogram(arrivals, bins=edges)
    return counts


def empirical_idc(
    arrivals: np.ndarray, windows: np.ndarray
) -> np.ndarray:
    """Index of dispersion for counts at each window size.

    ``IDC(w) = Var(N_w) / E(N_w)`` over consecutive windows of length
    ``w``.  For Poisson traffic this is ~1 at every scale; HAP's climbs
    with the window as the slower modulating levels come into view.
    """
    windows = np.atleast_1d(np.asarray(windows, dtype=float))
    values = np.empty(windows.shape)
    for k, window in enumerate(windows):
        counts = rate_in_windows(arrivals, window)
        mean = counts.mean()
        values[k] = counts.var() / mean if mean > 0 else np.nan
    return values


def interarrival_autocorrelation(
    arrivals: np.ndarray, max_lag: int = 10
) -> np.ndarray:
    """Sample autocorrelation of successive interarrival times.

    Returns lags ``1 .. max_lag``.  This is the statistic whose loss the
    paper blames for Solutions 1/2 failing at load: Poisson (any renewal)
    traffic has ~0 at every lag; HAP's is strongly positive — messages of
    the same burst share their modulating state.  Compare against the exact
    :meth:`repro.markov.mmpp.MMPP.interarrival_autocorrelation`.
    """
    gaps = interarrival_times(arrivals)
    if max_lag < 1:
        raise ValueError("max_lag must be >= 1")
    if gaps.size <= max_lag:
        raise ValueError("trace too short for the requested lag")
    centered = gaps - gaps.mean()
    variance = float(centered @ centered) / gaps.size
    if variance == 0:
        return np.zeros(max_lag)
    values = np.empty(max_lag)
    for lag in range(1, max_lag + 1):
        values[lag - 1] = (
            float(centered[:-lag] @ centered[lag:]) / gaps.size / variance
        )
    return values


def peak_to_mean_ratio(arrivals: np.ndarray, window: float) -> float:
    """Max over mean of the per-window arrival counts."""
    counts = rate_in_windows(arrivals, window)
    mean = counts.mean()
    if mean == 0:
        raise ValueError("no arrivals in any window")
    return float(counts.max() / mean)
