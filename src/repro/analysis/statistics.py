"""Small statistics helpers shared by tests, benchmarks and examples."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["Summary", "confidence_interval", "relative_error", "summarize"]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def describe(self) -> str:
        """One-line rendering."""
        return (
            f"n={self.count} mean={self.mean:.6g} std={self.std:.6g} "
            f"min={self.minimum:.6g} max={self.maximum:.6g}"
        )


def summarize(values) -> Summary:
    """Summarize a sequence of numbers.

    Raises
    ------
    ValueError
        On an empty sample.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std(ddof=1)) if array.size > 1 else math.nan,
        minimum=float(array.min()),
        maximum=float(array.max()),
    )


def confidence_interval(
    values, confidence: float = 0.95
) -> tuple[float, float, float]:
    """(mean, low, high) Student-t confidence interval for the mean."""
    from scipy.stats import t as student_t

    array = np.asarray(list(values), dtype=float)
    if array.size < 2:
        raise ValueError("need at least two values for a confidence interval")
    mean = float(array.mean())
    half = float(
        student_t.ppf(0.5 + confidence / 2.0, df=array.size - 1)
        * array.std(ddof=1)
        / math.sqrt(array.size)
    )
    return mean, mean - half, mean + half


def relative_error(estimate: float, reference: float) -> float:
    """``|estimate - reference| / |reference|`` (NaN when reference is 0)."""
    if reference == 0:
        return math.nan
    return abs(estimate - reference) / abs(reference)
