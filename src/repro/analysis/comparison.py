"""HAP-versus-baseline comparison tables.

Every numerical section of the paper boils down to a small table: a sweep
variable, HAP's number, Poisson's number, and their ratio.  These helpers
build and render such tables uniformly so each benchmark prints rows in the
same shape the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ComparisonRow", "comparison_table", "format_table"]


@dataclass(frozen=True)
class ComparisonRow:
    """One sweep point: a label plus named values."""

    label: str
    values: dict[str, float] = field(default_factory=dict)


def comparison_table(
    labels, columns: dict[str, list[float]]
) -> list[ComparisonRow]:
    """Zip per-column value lists into rows.

    Raises
    ------
    ValueError
        When column lengths disagree with the number of labels.
    """
    labels = list(labels)
    for name, values in columns.items():
        if len(values) != len(labels):
            raise ValueError(
                f"column {name!r} has {len(values)} values for {len(labels)} labels"
            )
    return [
        ComparisonRow(
            label=str(label),
            values={name: values[k] for name, values in columns.items()},
        )
        for k, label in enumerate(labels)
    ]


def format_table(rows: list[ComparisonRow], precision: int = 4) -> str:
    """Render rows as an aligned text table (used by benchmark printouts)."""
    if not rows:
        return "(empty table)"
    columns = list(rows[0].values.keys())
    header = ["label"] + columns
    body = [
        [row.label] + [f"{row.values[c]:.{precision}g}" for c in columns]
        for row in rows
    ]
    widths = [
        max(len(header[k]), *(len(line[k]) for line in body))
        for k in range(len(header))
    ]
    def render(line):
        return "  ".join(cell.rjust(width) for cell, width in zip(line, widths))

    return "\n".join([render(header)] + [render(line) for line in body])
