"""Result analysis: statistics, convergence diagnostics, comparison tables."""

from repro.analysis.comparison import ComparisonRow, comparison_table, format_table
from repro.analysis.convergence import (
    batch_means,
    running_mean,
    running_mean_fluctuation,
)
from repro.analysis.statistics import (
    confidence_interval,
    relative_error,
    summarize,
)
from repro.analysis.traces import (
    empirical_idc,
    empirical_interarrival_ccdf,
    interarrival_times,
    peak_to_mean_ratio,
    rate_in_windows,
)

__all__ = [
    "ComparisonRow",
    "batch_means",
    "comparison_table",
    "confidence_interval",
    "empirical_idc",
    "empirical_interarrival_ccdf",
    "format_table",
    "interarrival_times",
    "peak_to_mean_ratio",
    "rate_in_windows",
    "relative_error",
    "running_mean",
    "running_mean_fluctuation",
    "summarize",
]
