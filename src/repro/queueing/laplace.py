"""Numerical Laplace transforms of interarrival distributions.

Solution 2's σ-algorithm needs ``A*(s) = ∫ a(t) e^{-st} dt`` for the
closed-form but non-elementary HAP interarrival density.  Integrating the
*density* directly is delicate because ``a(t)`` has a spike at zero (HAP's
short intra-burst gaps); integrating the complementary CDF through

    A*(s) = 1 - s * ∫_0^∞ Abar(t) e^{-st} dt

is much better conditioned, so that is the default path.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy.integrate import quad

__all__ = ["laplace_of_density", "laplace_of_interarrival_from_ccdf"]


def laplace_of_density(
    density: Callable[[float], float],
    s: float,
    upper: float = np.inf,
    **quad_kwargs,
) -> float:
    """``∫_0^upper density(t) e^{-st} dt`` by adaptive quadrature.

    Parameters
    ----------
    density:
        Scalar density function of ``t``.
    s:
        Transform variable (must be non-negative for a proper transform).
    upper:
        Upper integration limit; infinite by default.
    """
    if s < 0:
        raise ValueError("transform variable must be non-negative")

    def integrand(t: float) -> float:
        return density(t) * np.exp(-s * t)

    value, _ = quad(integrand, 0.0, upper, limit=200, **quad_kwargs)
    return float(value)


def laplace_of_interarrival_from_ccdf(
    ccdf: Callable[[float], float],
    s: float,
    upper: float = np.inf,
    **quad_kwargs,
) -> float:
    """``A*(s)`` of a non-negative random variable from its ccdf.

    Uses ``E[e^{-sT}] = 1 - s ∫ P(T > t) e^{-st} dt``, which avoids
    integrating the spiked density.  For ``s = 0`` the transform is exactly 1.
    """
    if s < 0:
        raise ValueError("transform variable must be non-negative")
    if s == 0:
        return 1.0

    def integrand(t: float) -> float:
        return ccdf(t) * np.exp(-s * t)

    value, _ = quad(integrand, 0.0, upper, limit=200, **quad_kwargs)
    return float(1.0 - s * value)
