"""Little's-law helpers.

The paper leans on Little's result twice: Solution 0 converts the mean number
of messages in the chain to mean delay, and the simulator cross-checks its
delay tally against the time-averaged queue length.  Keeping the conversions
in one place makes those cross-checks explicit in tests.
"""

from __future__ import annotations

__all__ = ["mean_delay_from_queue", "mean_queue_from_delay"]


def mean_delay_from_queue(mean_queue_length: float, arrival_rate: float) -> float:
    """``T = N / lambda``.

    Raises
    ------
    ValueError
        If the arrival rate is not positive or the queue length is negative.
    """
    if arrival_rate <= 0:
        raise ValueError("arrival rate must be positive")
    if mean_queue_length < 0:
        raise ValueError("mean queue length cannot be negative")
    return mean_queue_length / arrival_rate


def mean_queue_from_delay(mean_delay: float, arrival_rate: float) -> float:
    """``N = lambda T``.

    Raises
    ------
    ValueError
        If the arrival rate is not positive or the delay is negative.
    """
    if arrival_rate <= 0:
        raise ValueError("arrival rate must be positive")
    if mean_delay < 0:
        raise ValueError("mean delay cannot be negative")
    return arrival_rate * mean_delay
