"""The G/M/1 queue and the paper's σ-algorithm.

Solutions 1 and 2 of the paper reduce HAP/M/1 to a G/M/1 queue: the message
interarrival time is expressed as a distribution ``a(t)`` (losing the
correlation between successive intervals — the approximation the paper
quantifies in Section 4.1), and the queue is then solved through the unique
root ``sigma`` in (0, 1) of

    A*(mu - mu * sigma) = sigma

where ``A*`` is the Laplace transform of the interarrival density.  From
``sigma``:

* mean delay       ``T = 1 / (mu (1 - sigma))``
* waiting-time CDF ``W(y) = 1 - sigma * exp(-mu (1 - sigma) y)``
* probability an arrival finds the server busy is ``sigma`` itself.

The paper solves the root with a damped averaging iteration (its
"σ-algorithm", Section 3.2.2); we provide that iteration verbatim for
fidelity plus a bracketed Brent solve used as the production path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy.optimize import brentq

__all__ = ["GM1Solution", "sigma_fixed_point_paper", "solve_gm1"]

#: Laplace transform of the interarrival density, ``s -> A*(s)``.
LaplaceFn = Callable[[float], float]


@dataclass(frozen=True)
class GM1Solution:
    """Stationary quantities of a G/M/1 queue derived from ``sigma``.

    Attributes
    ----------
    sigma:
        Root of ``A*(mu (1 - sigma)) = sigma``; also the probability that an
        arriving customer finds the server busy.
    service_rate:
        Exponential service rate ``mu``.
    arrival_rate:
        Mean arrival rate ``1 / E[T]`` (supplied by the caller; needed for
        Little's-law quantities).
    """

    sigma: float
    service_rate: float
    arrival_rate: float

    @property
    def mean_delay(self) -> float:
        """Mean time in system ``1 / (mu (1 - sigma))``."""
        return 1.0 / (self.service_rate * (1.0 - self.sigma))

    @property
    def mean_waiting_time(self) -> float:
        """Mean time in queue ``sigma / (mu (1 - sigma))``."""
        return self.sigma / (self.service_rate * (1.0 - self.sigma))

    @property
    def mean_queue_length(self) -> float:
        """Mean number in system via Little's law."""
        return self.arrival_rate * self.mean_delay

    @property
    def utilization(self) -> float:
        """Offered load ``lambda / mu`` (time-stationary busy fraction)."""
        return self.arrival_rate / self.service_rate

    def waiting_time_cdf(self, y: np.ndarray) -> np.ndarray:
        """``W(y) = 1 - sigma exp(-mu (1 - sigma) y)`` for ``y >= 0``."""
        y = np.asarray(y, dtype=float)
        return 1.0 - self.sigma * np.exp(
            -self.service_rate * (1.0 - self.sigma) * y
        )

    def delay_percentile(self, q: float) -> float:
        """Inverse of the *system-time* CDF (exponential with rate
        ``mu (1 - sigma)`` for G/M/1)."""
        if not 0 < q < 1:
            raise ValueError("quantile must be in (0, 1)")
        return -np.log(1.0 - q) / (self.service_rate * (1.0 - self.sigma))


def sigma_fixed_point_paper(
    laplace: LaplaceFn,
    service_rate: float,
    initial: float = 0.5,
    tol: float = 1e-10,
    max_iterations: int = 10_000,
) -> float:
    """The paper's σ-algorithm: damped averaging to the fixed point.

    Step 1 picks any starting value in (0, 1); Step 2 evaluates
    ``A*(mu - mu sigma)``; Step 3 averages it with the current iterate.  The
    paper argues convergence from the monotonicity of ``A*`` along the ray.

    Raises
    ------
    ArithmeticError
        When the iteration fails to converge (e.g. an unstable queue, where
        the only root in [0, 1] is ``sigma = 1``).
    """
    sigma = float(initial)
    if not 0.0 < sigma < 1.0:
        raise ValueError("initial sigma must be in (0, 1)")
    for _ in range(max_iterations):
        image = laplace(service_rate * (1.0 - sigma))
        if abs(image - sigma) < tol:
            return sigma
        sigma = 0.5 * (image + sigma)
    raise ArithmeticError(
        f"sigma-algorithm did not converge within {max_iterations} iterations "
        f"(last iterate {sigma:g})"
    )


def _sigma_brent(laplace: LaplaceFn, service_rate: float, tol: float) -> float:
    """Bracketed Brent solve of ``A*(mu(1 - s)) - s = 0`` on (0, 1).

    ``s = 1`` is always a root; stability puts a second root strictly inside
    (0, 1).  We bracket away from 1 by walking left until the residual
    changes sign.
    """

    def residual(s: float) -> float:
        return laplace(service_rate * (1.0 - s)) - s

    left = 1e-12
    if residual(left) < 0:
        # A*(mu) < 0 is impossible for a genuine transform; treat as no root.
        raise ArithmeticError("Laplace transform evaluated negative near s=0")
    right = 1.0 - 1e-9
    # For a stable queue the residual is negative somewhere left of 1.
    probe = right
    while residual(probe) > 0:
        probe = 1.0 - 2.0 * (1.0 - probe)
        if probe <= left:
            raise ValueError(
                "no interior sigma root: the queue appears unstable "
                "(mean arrival rate >= service rate)"
            )
    return float(brentq(residual, left, probe, xtol=tol))


def solve_gm1(
    laplace: LaplaceFn,
    service_rate: float,
    arrival_rate: float,
    method: str = "brent",
    tol: float = 1e-10,
) -> GM1Solution:
    """Solve a G/M/1 queue given the interarrival Laplace transform.

    Parameters
    ----------
    laplace:
        ``A*(s)``, the Laplace transform of the interarrival density.
    service_rate:
        Exponential service rate ``mu``.
    arrival_rate:
        Mean arrival rate (``1 / E[T]``), used for Little's-law outputs.
    method:
        ``"brent"`` (default, bracketed root) or ``"paper"`` (the averaging
        σ-algorithm exactly as published).
    """
    if service_rate <= 0 or arrival_rate <= 0:
        raise ValueError("rates must be positive")
    if arrival_rate >= service_rate:
        raise ValueError(
            f"unstable G/M/1: arrival rate {arrival_rate:g} >= "
            f"service rate {service_rate:g}"
        )
    if method == "paper":
        sigma = sigma_fixed_point_paper(laplace, service_rate, tol=tol)
    elif method == "brent":
        sigma = _sigma_brent(laplace, service_rate, tol=tol)
    else:
        raise ValueError(f"unknown method {method!r}; use 'brent' or 'paper'")
    return GM1Solution(
        sigma=sigma, service_rate=service_rate, arrival_rate=arrival_rate
    )
