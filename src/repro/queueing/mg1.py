"""The M/G/1 queue (Pollaczek–Khinchine).

Not used by the paper's headline results (its server is exponential) but part
of the substrate: the HAP-CS example uses deterministic response processing,
and the library is meant to be adoptable beyond the single experiment set.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MG1Solution", "solve_mg1"]


@dataclass(frozen=True)
class MG1Solution:
    """Stationary quantities of an M/G/1 queue from service moments.

    Attributes
    ----------
    arrival_rate:
        Poisson arrival rate ``lambda``.
    service_mean:
        First moment of service time ``E[S]``.
    service_second_moment:
        Second moment ``E[S^2]``.
    """

    arrival_rate: float
    service_mean: float
    service_second_moment: float

    @property
    def utilization(self) -> float:
        """``rho = lambda E[S]``."""
        return self.arrival_rate * self.service_mean

    @property
    def service_scv(self) -> float:
        """Squared coefficient of variation of service time."""
        return self.service_second_moment / self.service_mean**2 - 1.0

    @property
    def mean_waiting_time(self) -> float:
        """P-K mean wait ``lambda E[S^2] / (2 (1 - rho))``."""
        return (
            self.arrival_rate
            * self.service_second_moment
            / (2.0 * (1.0 - self.utilization))
        )

    @property
    def mean_delay(self) -> float:
        """Mean time in system (wait plus service)."""
        return self.mean_waiting_time + self.service_mean

    @property
    def mean_queue_length(self) -> float:
        """Mean number in system by Little's law."""
        return self.arrival_rate * self.mean_delay


def solve_mg1(
    arrival_rate: float,
    service_mean: float,
    service_second_moment: float,
) -> MG1Solution:
    """Validate inputs and return the M/G/1 closed forms.

    Raises
    ------
    ValueError
        On non-positive rates/moments, a second moment below the square of
        the mean (impossible), or an unstable queue.
    """
    if arrival_rate <= 0 or service_mean <= 0:
        raise ValueError("arrival rate and service mean must be positive")
    # Tolerate float rounding at the deterministic boundary E[S^2] == E[S]^2.
    if service_second_moment < service_mean**2 * (1.0 - 1e-12):
        raise ValueError("E[S^2] cannot be below (E[S])^2")
    if arrival_rate * service_mean >= 1.0:
        raise ValueError("unstable M/G/1: rho >= 1")
    return MG1Solution(
        arrival_rate=arrival_rate,
        service_mean=service_mean,
        service_second_moment=service_second_moment,
    )
