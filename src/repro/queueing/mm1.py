"""The M/M/1 queue — the paper's Poisson baseline.

Every HAP result in the paper is reported against the M/M/1 queue with the
same mean arrival rate (``lambda-bar``) and the same server, so these small
closed forms appear in nearly every benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MM1Solution", "solve_mm1"]


@dataclass(frozen=True)
class MM1Solution:
    """Closed-form stationary quantities of an M/M/1 queue.

    Attributes
    ----------
    arrival_rate:
        Poisson arrival rate ``lambda``.
    service_rate:
        Exponential service rate ``mu``.
    """

    arrival_rate: float
    service_rate: float

    @property
    def utilization(self) -> float:
        """``rho = lambda / mu``."""
        return self.arrival_rate / self.service_rate

    @property
    def mean_delay(self) -> float:
        """Mean time in system ``T = 1 / (mu - lambda)``."""
        return 1.0 / (self.service_rate - self.arrival_rate)

    @property
    def mean_waiting_time(self) -> float:
        """Mean time in queue (excluding service)."""
        return self.mean_delay - 1.0 / self.service_rate

    @property
    def mean_queue_length(self) -> float:
        """Mean number in system ``rho / (1 - rho)``."""
        rho = self.utilization
        return rho / (1.0 - rho)

    @property
    def probability_busy(self) -> float:
        """Probability an arrival finds the server busy (PASTA: ``rho``)."""
        return self.utilization

    def queue_length_pmf(self, max_length: int) -> np.ndarray:
        """``P(N = k) = (1 - rho) rho^k`` for ``k = 0 .. max_length``."""
        rho = self.utilization
        return (1.0 - rho) * rho ** np.arange(max_length + 1)

    def delay_ccdf(self, t: np.ndarray) -> np.ndarray:
        """``P(T > t) = exp(-(mu - lambda) t)`` (system time is exponential)."""
        t = np.asarray(t, dtype=float)
        return np.exp(-(self.service_rate - self.arrival_rate) * t)

    def mean_busy_period(self) -> float:
        """Mean busy-period length ``1 / (mu - lambda)``."""
        return 1.0 / (self.service_rate - self.arrival_rate)

    def busy_period_variance(self) -> float:
        """Variance of the M/M/1 busy period.

        ``Var[B] = (1 + rho) / (mu^2 (1 - rho)^3)`` — the comparison point
        for the paper's Figure 18 busy-period statistics.
        """
        rho = self.utilization
        return (1.0 + rho) / (self.service_rate**2 * (1.0 - rho) ** 3)

    def mean_idle_period(self) -> float:
        """Mean idle-period length ``1 / lambda``."""
        return 1.0 / self.arrival_rate


def solve_mm1(arrival_rate: float, service_rate: float) -> MM1Solution:
    """Validate stability and return the M/M/1 closed forms.

    Raises
    ------
    ValueError
        On non-positive rates or an unstable queue (``lambda >= mu``).
    """
    if arrival_rate <= 0 or service_rate <= 0:
        raise ValueError("rates must be positive")
    if arrival_rate >= service_rate:
        raise ValueError(
            f"unstable M/M/1: lambda {arrival_rate:g} >= mu {service_rate:g}"
        )
    return MM1Solution(arrival_rate=arrival_rate, service_rate=service_rate)
