"""Analytic queueing-theory substrate.

Classical single-server results used throughout the reproduction:

* :mod:`repro.queueing.mm1` — M/M/1, the paper's Poisson baseline.
* :mod:`repro.queueing.mg1` — M/G/1 Pollaczek–Khinchine results.
* :mod:`repro.queueing.gm1` — G/M/1 via the root ``sigma`` of
  ``A*(mu - mu sigma) = sigma``, including the paper's averaging
  "σ-algorithm" and a fast Brent variant.
* :mod:`repro.queueing.littles_law` — Little's-law helpers.
* :mod:`repro.queueing.laplace` — numerical Laplace transforms of densities
  and complementary CDFs.
"""

from repro.queueing.gm1 import (
    GM1Solution,
    sigma_fixed_point_paper,
    solve_gm1,
)
from repro.queueing.laplace import (
    laplace_of_density,
    laplace_of_interarrival_from_ccdf,
)
from repro.queueing.littles_law import mean_delay_from_queue, mean_queue_from_delay
from repro.queueing.mg1 import MG1Solution, solve_mg1
from repro.queueing.mm1 import MM1Solution, solve_mm1

__all__ = [
    "GM1Solution",
    "MG1Solution",
    "MM1Solution",
    "laplace_of_density",
    "laplace_of_interarrival_from_ccdf",
    "mean_delay_from_queue",
    "mean_queue_from_delay",
    "sigma_fixed_point_paper",
    "solve_gm1",
    "solve_mg1",
    "solve_mm1",
]
