"""Precomputed admission-decision surfaces and their versioned artifact.

The offline half of the serving story.  A :class:`DecisionSurfaces` holds,
over a grid of delay targets ``d_0 < d_1 < ... < d_{D-1}``:

* ``max_n2[i, k]`` — the admissible-region staircase at target ``d_i``: the
  largest type-2 population admissible beside ``n_1 = k`` connections of
  type 1 (``-1`` where nothing is admissible), computed by
  :func:`repro.control.admission_table.admissible_region`;
* ``bandwidth[i]`` — the minimum service rate meeting target ``d_i`` for
  the *unpinned* workload, from
  :func:`repro.control.bandwidth.bandwidth_for_delay_target`.

Rows are independent, so the build fans out one task per delay target over
:func:`repro.runtime.analytic.run_analytic_sweep` — the same pool, failure
capture, and determinism contract as every analytic figure sweep.

Conservative interpolation contract
-----------------------------------
Both stored quantities are monotone in the grid axes: ``max_n2`` is
non-decreasing in the delay target and non-increasing in ``n_1``;
``bandwidth`` is non-increasing in the delay target.  Off-grid queries are
therefore answered from the *conservative corner* of the enclosing cell —
the boundary row at the **largest grid target <= the queried target** and
the column at **ceil(n_1)**; the bandwidth at the **largest grid target <=
the queried target**.  By monotonicity the corner value can only *tighten*
a decision relative to the true surface (admit fewer connections, allocate
more bandwidth), never loosen it.  The bilinear (surface) / linear
(bandwidth) interpolation across the cell is also computed and reported as
``estimate`` — useful for capacity planning — but the admit/allocate
decision always uses the corner bound.  ``tests/service`` proves the
contract by property test: every interpolated admit is re-admitted by a
direct Solution-2 solve at the queried point.
"""

from __future__ import annotations

import json
import math
import warnings
import zipfile
from dataclasses import dataclass
from functools import partial
from pathlib import Path

import numpy as np

from repro.control.admission_table import admissible_region
from repro.control.bandwidth import bandwidth_for_delay_target
from repro.core.params import ApplicationType, HAPParameters, MessageType

__all__ = [
    "DecisionSurfaces",
    "SURFACE_SCHEMA",
    "SurfaceBound",
    "binary_sidecar_path",
    "build_decision_surfaces",
    "load_surfaces",
    "save_surfaces",
    "save_surfaces_binary",
]

#: Artifact schema identifier; bump on incompatible layout changes.
SURFACE_SCHEMA = "repro-admission-surface/1"

#: Relative tolerance for "this query sits exactly on a grid target".
_GRID_RTOL = 1e-9


def _params_to_dict(params: HAPParameters) -> dict:
    """JSON-safe description of a parameter set (for the artifact)."""
    return {
        "user_arrival_rate": params.user_arrival_rate,
        "user_departure_rate": params.user_departure_rate,
        "name": params.name,
        "applications": [
            {
                "arrival_rate": app.arrival_rate,
                "departure_rate": app.departure_rate,
                "name": app.name,
                "messages": [
                    {
                        "arrival_rate": msg.arrival_rate,
                        "service_rate": msg.service_rate,
                        "name": msg.name,
                    }
                    for msg in app.messages
                ],
            }
            for app in params.applications
        ],
    }


def _params_from_dict(document: dict) -> HAPParameters:
    """Rebuild a :class:`HAPParameters` from :func:`_params_to_dict`."""
    return HAPParameters(
        user_arrival_rate=float(document["user_arrival_rate"]),
        user_departure_rate=float(document["user_departure_rate"]),
        name=str(document.get("name", "")),
        applications=tuple(
            ApplicationType(
                arrival_rate=float(app["arrival_rate"]),
                departure_rate=float(app["departure_rate"]),
                name=str(app.get("name", "")),
                messages=tuple(
                    MessageType(
                        arrival_rate=float(msg["arrival_rate"]),
                        service_rate=float(msg["service_rate"]),
                        name=str(msg.get("name", "")),
                    )
                    for msg in app["messages"]
                ),
            )
            for app in document["applications"]
        ),
    )


@dataclass(frozen=True)
class SurfaceBound:
    """One off-hot-path surface answer: the bound actually used + context.

    Attributes
    ----------
    max_n2:
        Conservative-corner bound on the type-2 population (``-1`` when the
        corner admits nothing).
    estimate:
        Bilinear interpolation of the boundary across the enclosing cell —
        planning information only, never the decision.
    exact:
        Whether the query sat exactly on a grid point (tier "surface"
        rather than "interpolated").
    """

    max_n2: float
    estimate: float
    exact: bool


@dataclass(frozen=True)
class DecisionSurfaces:
    """Precomputed admission/bandwidth surfaces over a delay-target grid.

    Attributes
    ----------
    params:
        The 2-application-type HAP the surfaces were computed for.
    service_rate:
        The queue service rate the delay targets are measured against.
    delay_targets:
        Strictly increasing grid of delay targets (the surface rows).
    max_n2:
        ``(D, K)`` staircase boundary; ``max_n2[i, k]`` is the largest
        admissible ``n_2`` beside ``n_1 = k`` under target
        ``delay_targets[i]``, ``-1`` where nothing is admissible.
    bandwidth:
        ``(D,)`` minimum service rate meeting each delay target.
    """

    params: HAPParameters
    service_rate: float
    delay_targets: np.ndarray
    max_n2: np.ndarray
    bandwidth: np.ndarray

    # ------------------------------------------------------------------
    # Shape helpers
    # ------------------------------------------------------------------
    @property
    def max_population(self) -> int:
        """Largest ``n_1`` the surface covers (columns are 0..max)."""
        return self.max_n2.shape[1] - 1

    @property
    def grid_points(self) -> int:
        """Total stored boundary entries (rows x columns)."""
        return int(self.max_n2.size)

    def covers(self, n1: float, delay_target: float) -> bool:
        """Whether ``(n1, delay_target)`` lies inside the surface hull.

        Queries outside the hull are *misses* — the service answers them
        with a live solve (or a conservative deny when solving fails).
        """
        return bool(
            0.0 <= n1 <= self.max_population
            and self.delay_targets[0] <= delay_target <= self.delay_targets[-1]
        )

    def tightened(self, by: float = 1.0) -> "DecisionSurfaces":
        """A strictly more conservative copy: every boundary lowered ``by``.

        ``max_n2`` drops by ``by`` (floored at ``-1``, "admit nothing");
        the bandwidth rows are kept as-is — only the admission boundary
        tightens.  The primary use is hot-reload
        drills and emergency throttling: an operator can publish a
        tightened generation fleet-wide without rebuilding surfaces, and
        because the new boundary is everywhere at or below the old one the
        swap can only under-admit, never over-admit.
        """
        if by < 0:
            raise ValueError("by must be non-negative")
        return DecisionSurfaces(
            params=self.params,
            service_rate=self.service_rate,
            delay_targets=self.delay_targets,
            max_n2=np.maximum(self.max_n2 - float(by), -1.0),
            bandwidth=self.bandwidth,
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def admit_batch(
        self,
        n1: np.ndarray,
        n2: np.ndarray,
        delay_target: np.ndarray,
    ) -> np.ndarray:
        """Vectorized exact-grid admits: one boolean per query row.

        The tier-1 hot path: every query must sit exactly on the grid
        (integral ``n1`` within range, ``delay_target`` equal to a grid
        row).  Off-grid rows raise ``ValueError`` — routing them to tier 2
        or 3 is the service's job, not a silent reinterpretation here.
        """
        n1 = np.asarray(n1, dtype=float)
        n2 = np.asarray(n2, dtype=float)
        delay_target = np.asarray(delay_target, dtype=float)
        rows = np.searchsorted(self.delay_targets, delay_target)
        rows = np.clip(rows, 0, len(self.delay_targets) - 1)
        on_grid_delay = np.isclose(
            self.delay_targets[rows], delay_target, rtol=_GRID_RTOL, atol=0.0
        )
        integral_n1 = (n1 == np.floor(n1)) & (n1 >= 0) & (n1 <= self.max_population)
        if not bool(np.all(on_grid_delay & integral_n1)):
            raise ValueError(
                "admit_batch requires exact-grid queries; route off-grid "
                "points through interpolate/solve tiers"
            )
        bounds = self.max_n2[rows, n1.astype(np.intp)]
        return n2 <= bounds

    def grid_mask(self, n1: np.ndarray, delay_target: np.ndarray) -> np.ndarray:
        """Vectorized tier classifier: which query rows sit exactly on grid.

        The batched protocol verb splits a mixed-tier request with this
        mask: ``True`` rows answer through :meth:`admit_batch` in one
        vectorized pass, the rest route through the interpolation/solve
        tiers row by row — so only true misses ever reach the solver pool.
        """
        n1 = np.asarray(n1, dtype=float)
        delay_target = np.asarray(delay_target, dtype=float)
        rows = np.clip(
            np.searchsorted(self.delay_targets, delay_target),
            0,
            len(self.delay_targets) - 1,
        )
        on_grid_delay = np.isclose(
            self.delay_targets[rows], delay_target, rtol=_GRID_RTOL, atol=0.0
        )
        # Mirror grid_bound exactly: a delay marginally past the hull edge
        # is a miss there (covers() runs first), so it must be one here.
        in_hull = (delay_target >= self.delay_targets[0]) & (
            delay_target <= self.delay_targets[-1]
        )
        integral_n1 = (n1 == np.floor(n1)) & (n1 >= 0) & (n1 <= self.max_population)
        return on_grid_delay & in_hull & integral_n1

    def grid_bound(self, n1: float, delay_target: float) -> float | None:
        """Exact-grid boundary value, or ``None`` when the query is off-grid."""
        if not self.covers(n1, delay_target):
            return None
        if n1 != math.floor(n1):
            return None
        row = int(np.searchsorted(self.delay_targets, delay_target))
        row = min(row, len(self.delay_targets) - 1)
        if not math.isclose(
            float(self.delay_targets[row]), delay_target, rel_tol=_GRID_RTOL
        ):
            return None
        return float(self.max_n2[row, int(n1)])

    def interpolated_bound(
        self, n1: float, delay_target: float
    ) -> SurfaceBound | None:
        """Conservative bound + bilinear estimate for an in-hull query.

        Returns ``None`` outside the hull (a true miss).  See the module
        docstring for the conservative-corner contract.
        """
        if not self.covers(n1, delay_target):
            return None
        targets = self.delay_targets
        # Row index of the largest grid target <= the query (conservative:
        # a tighter target admits no more than the queried one).
        row_lo = int(np.searchsorted(targets, delay_target, side="right")) - 1
        if row_lo < 0:  # pragma: no cover — covers() already excluded this
            return None
        row_hi = min(row_lo + 1, len(targets) - 1)
        col_lo = int(math.floor(n1))
        col_hi = min(int(math.ceil(n1)), self.max_population)
        row_is_exact = math.isclose(
            float(targets[row_lo]), delay_target, rel_tol=_GRID_RTOL
        )
        exact = row_is_exact and col_lo == col_hi
        # Conservative corner: tightest target row, largest n1 column.
        bound = float(self.max_n2[row_lo, col_hi])
        # Bilinear estimate across the enclosing cell (reporting only).
        if row_hi == row_lo:
            theta_d = 0.0
        else:
            span = float(targets[row_hi] - targets[row_lo])
            theta_d = (delay_target - float(targets[row_lo])) / span
        theta_n = n1 - col_lo if col_hi != col_lo else 0.0
        corners = self.max_n2[
            np.ix_((row_lo, row_hi), (col_lo, col_hi))
        ].astype(float)
        estimate = float(
            (1 - theta_d) * ((1 - theta_n) * corners[0, 0] + theta_n * corners[0, 1])
            + theta_d * ((1 - theta_n) * corners[1, 0] + theta_n * corners[1, 1])
        )
        return SurfaceBound(max_n2=bound, estimate=estimate, exact=exact)

    def bandwidth_bound(
        self, delay_target: float
    ) -> tuple[float, float, bool] | None:
        """``(conservative bandwidth, interpolated estimate, exact)``.

        Conservative means *never under-provision*: the allocation answered
        is the one computed for the largest grid target <= the query, which
        by monotonicity is at least the true requirement.  ``None`` when
        the target lies outside the grid (a miss).
        """
        targets = self.delay_targets
        if not targets[0] <= delay_target <= targets[-1]:
            return None
        row_lo = int(np.searchsorted(targets, delay_target, side="right")) - 1
        row_hi = min(row_lo + 1, len(targets) - 1)
        exact = math.isclose(
            float(targets[row_lo]), delay_target, rel_tol=_GRID_RTOL
        )
        bound = float(self.bandwidth[row_lo])
        if row_hi == row_lo:
            estimate = bound
        else:
            span = float(targets[row_hi] - targets[row_lo])
            theta = (delay_target - float(targets[row_lo])) / span
            estimate = float(
                (1 - theta) * self.bandwidth[row_lo]
                + theta * self.bandwidth[row_hi]
            )
        return bound, estimate, exact

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self, indent: int | None = None) -> str:
        """Serialize to the versioned boot artifact (``repro-admission-surface/1``)."""
        document = {
            "schema": SURFACE_SCHEMA,
            "service_rate": self.service_rate,
            "params": _params_to_dict(self.params),
            "delay_targets": [float(d) for d in self.delay_targets],
            "max_n2": self.max_n2.astype(float).tolist(),
            "bandwidth": [
                None if math.isinf(b) else float(b) for b in self.bandwidth
            ],
        }
        return json.dumps(document, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "DecisionSurfaces":
        """Load a :meth:`to_json` artifact, refusing stale schemas.

        Raises
        ------
        ValueError
            On invalid JSON or a missing/unknown ``schema`` field — a
            service must never boot on a surface laid out for a different
            code version (a misread boundary silently admits bad traffic).
        """
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"surface artifact is not valid JSON: {error}")
        schema = document.get("schema") if isinstance(document, dict) else None
        if schema != SURFACE_SCHEMA:
            raise ValueError(
                f"unsupported surface schema {schema!r} (expected "
                f"{SURFACE_SCHEMA}); rebuild with `cli build-surfaces`"
            )
        bandwidth = np.asarray(
            [
                math.inf if value is None else float(value)
                for value in document["bandwidth"]
            ]
        )
        surfaces = cls(
            params=_params_from_dict(document["params"]),
            service_rate=float(document["service_rate"]),
            delay_targets=np.asarray(document["delay_targets"], dtype=float),
            max_n2=np.asarray(document["max_n2"], dtype=float),
            bandwidth=bandwidth,
        )
        surfaces._validate()
        return surfaces

    def _validate(self) -> None:
        targets = self.delay_targets
        if targets.ndim != 1 or len(targets) < 1:
            raise ValueError("surface needs at least one delay target")
        if np.any(np.diff(targets) <= 0):
            raise ValueError("delay targets must be strictly increasing")
        if self.max_n2.shape != (len(targets), self.max_n2.shape[1]):
            raise ValueError("max_n2 rows must match the delay-target grid")
        if self.bandwidth.shape != (len(targets),):
            raise ValueError("bandwidth must carry one value per target")

    def describe(self) -> str:
        """One-paragraph summary for CLI output and logs."""
        return (
            f"decision surfaces: {len(self.delay_targets)} delay target(s) "
            f"x {self.max_population + 1} populations "
            f"({self.grid_points} boundary entries), targets "
            f"[{self.delay_targets[0]:g}, {self.delay_targets[-1]:g}] s, "
            f"service rate {self.service_rate:g}"
        )


def _surface_row(
    params: HAPParameters,
    service_rate: float,
    max_population: int,
    delay_target: float,
) -> tuple[np.ndarray, float]:
    """One fan-out task: the staircase row + bandwidth for one target."""
    row = np.full(max_population + 1, -1.0)
    try:
        boundary = admissible_region(
            params, delay_target, service_rate, max_population
        )
    except ValueError:
        boundary = []
    for n1, n2 in boundary:
        row[n1] = float(n2)
    try:
        bandwidth = bandwidth_for_delay_target(params, delay_target)
    except (ValueError, ArithmeticError):
        bandwidth = math.inf
    return row, bandwidth


def build_decision_surfaces(
    params: HAPParameters,
    delay_targets,
    max_population: int = 40,
    service_rate: float | None = None,
    max_workers: int | None = None,
) -> DecisionSurfaces:
    """Compute the decision surfaces, one fan-out task per delay target.

    Parameters
    ----------
    params:
        A 2-application-type HAP (the admissible region is 2-D, matching
        the paper's Section-7 study).
    delay_targets:
        The grid of delay targets; sorted and deduplicated here.
    max_population:
        Largest ``n_1`` (and ``n_2`` search bound) the surface covers.
    service_rate:
        Queue service rate; defaults to the common ``mu''``.
    max_workers:
        Pool width for the row fan-out (1 = in-process, which also keeps
        the memoized probe cache warm across rows).
    """
    if params.num_app_types != 2:
        raise ValueError(
            "decision surfaces need exactly 2 application types "
            f"(got {params.num_app_types}); the admissible region is 2-D"
        )
    if max_population < 1:
        raise ValueError("max_population must be at least 1")
    targets = np.unique(np.asarray(list(delay_targets), dtype=float))
    if len(targets) == 0:
        raise ValueError("need at least one delay target")
    if np.any(targets <= 0):
        raise ValueError("delay targets must be positive")
    if service_rate is None:
        service_rate = params.common_service_rate()

    from repro.runtime.analytic import run_analytic_sweep

    tasks = [
        (
            f"delay-target={target:g}",
            partial(_surface_row, params, service_rate, max_population, target),
        )
        for target in targets
    ]
    rows = run_analytic_sweep(tasks, max_workers=max_workers)
    return DecisionSurfaces(
        params=params,
        service_rate=float(service_rate),
        delay_targets=targets,
        max_n2=np.vstack([row for row, _ in rows]),
        bandwidth=np.asarray([bandwidth for _, bandwidth in rows]),
    )


def save_surfaces(surfaces: DecisionSurfaces, path: str | Path) -> Path:
    """Write the artifact to ``path`` (pretty-printed JSON)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(surfaces.to_json(indent=2) + "\n")
    return path


def binary_sidecar_path(path: str | Path) -> Path:
    """The ``.npz`` sidecar next to a JSON artifact (``foo.json`` → ``foo.npz``)."""
    return Path(path).with_suffix(".npz")


def save_surfaces_binary(surfaces: DecisionSurfaces, path: str | Path) -> Path:
    """Write the binary ``.npz`` sidecar of the artifact.

    Grids are stored as raw float64 arrays (bit-identical to the in-memory
    surfaces, unlike the JSON round-trip which is only value-identical
    through ``repr``), the parameter set as a JSON blob, and the same
    versioned schema string the JSON artifact carries — the refusal
    contract applies to both transports.  A fleet boot memory-maps this
    file (or the shared-memory segment built from it) instead of parsing
    JSON once per shard.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(
        path,
        schema=np.array(SURFACE_SCHEMA),
        params_json=np.array(json.dumps(_params_to_dict(surfaces.params))),
        service_rate=np.array(surfaces.service_rate, dtype=float),
        delay_targets=np.asarray(surfaces.delay_targets, dtype=float),
        max_n2=np.asarray(surfaces.max_n2, dtype=float),
        bandwidth=np.asarray(surfaces.bandwidth, dtype=float),
    )
    return path


def _load_surfaces_binary(path: Path) -> DecisionSurfaces:
    """Load a :func:`save_surfaces_binary` sidecar, refusing stale schemas.

    Raises ``ValueError`` on an unreadable/truncated file or (separately
    worded, so callers can tell refusal from corruption) on a
    missing/unknown schema string.
    """
    try:
        with np.load(path, allow_pickle=False) as archive:
            members = set(archive.files)
            schema = (
                str(archive["schema"][()]) if "schema" in members else None
            )
            if schema != SURFACE_SCHEMA:
                raise _StaleSchemaError(
                    f"unsupported surface schema {schema!r} in binary sidecar "
                    f"{path} (expected {SURFACE_SCHEMA}); rebuild with "
                    "`cli build-surfaces --binary`"
                )
            surfaces = DecisionSurfaces(
                params=_params_from_dict(
                    json.loads(str(archive["params_json"][()]))
                ),
                service_rate=float(archive["service_rate"][()]),
                delay_targets=np.array(archive["delay_targets"], dtype=float),
                max_n2=np.array(archive["max_n2"], dtype=float),
                bandwidth=np.array(archive["bandwidth"], dtype=float),
            )
    except _StaleSchemaError:
        raise
    except (
        OSError,
        EOFError,
        KeyError,
        ValueError,
        json.JSONDecodeError,
        zipfile.BadZipFile,
    ) as error:
        raise ValueError(
            f"binary surface sidecar {path} is unreadable or truncated: "
            f"{error}"
        ) from error
    surfaces._validate()
    return surfaces


class _StaleSchemaError(ValueError):
    """A sidecar whose schema is wrong — refuse, never fall back silently."""


def load_surfaces(path: str | Path, prefer_binary: bool = True) -> DecisionSurfaces:
    """Load a surface artifact (schema-checked), preferring the sidecar.

    ``path`` may point at either transport:

    * a ``.npz`` sidecar — loaded directly (no JSON fallback);
    * a JSON artifact — when ``prefer_binary`` and the ``.npz`` sidecar
      from :func:`save_surfaces_binary` exists next to it, the sidecar is
      loaded instead (no JSON parse).  A *torn or truncated* sidecar falls
      back to the JSON artifact with a ``RuntimeWarning``; a sidecar with
      a *stale schema* refuses outright — a wrong-layout grid must never
      be silently shadowed by a differently-versioned twin.
    """
    path = Path(path)
    if path.suffix == ".npz":
        return _load_surfaces_binary(path)
    if prefer_binary:
        sidecar = binary_sidecar_path(path)
        if sidecar.exists():
            try:
                return _load_surfaces_binary(sidecar)
            except _StaleSchemaError:
                raise
            except ValueError as error:
                warnings.warn(
                    f"falling back to JSON artifact {path}: {error}",
                    RuntimeWarning,
                    stacklevel=2,
                )
    return DecisionSurfaces.from_json(path.read_text())
