"""The asyncio admission-control service: three tiers, conservative by design.

Answer path for an ``admit(n1, n2, delay_target)`` query:

1. **surface** — the query sits exactly on the precomputed grid: one array
   lookup, synchronous on the event loop (microseconds, vectorizable via
   :meth:`~repro.service.surfaces.DecisionSurfaces.admit_batch`).
2. **interpolated** — the query lies inside the grid hull but off-grid: the
   conservative-corner bound (see :mod:`repro.service.surfaces`), still
   synchronous.  The bilinear estimate rides along for planning.
3. **solve** — a true miss (outside the hull): a live solve dispatched to a
   reusable worker pool via ``run_in_executor`` under ``asyncio.wait_for``,
   so the event loop never blocks and no request outlives its deadline.
   The solve itself is a :class:`~repro.runtime.resilience.DegradationChain`
   (``admission-solve``): optionally the exact QBD ladder — warm-started
   across misses through the PR-3 mapping cache — then the Solution-2
   closed form.  A solve that times out, exhausts its ladder, or hits a
   poisoned rung (:mod:`repro.runtime.chaos`) degrades to tier
   **degraded**: a conservative *deny* (bandwidth queries answer ``inf`` —
   "do not commit").  The service may under-admit under faults; it never
   over-admits and never hangs.

Overload is a first-class operating mode, not an accident.  The only queue
that can grow without bound is the live-solve path (tiers 1/2 answer
synchronously in microseconds), so :class:`OverloadPolicy` bounds exactly
that: when ``max_inflight`` requests are already parked on the solver, or a
request's propagated deadline (``deadline_ms`` on the wire) cannot be met,
the service answers an immediate structured conservative deny with tier
**shed** instead of queueing.  Shedding trades an answer the client cannot
use (late) for one it can (an instant deny) — the service stays within its
latency contract under arbitrary miss pressure.  The TCP front end adds
per-connection read limits (an oversized request line answers a JSON error
and resyncs rather than killing the handler) and a max-connections cap.

The TCP front end (:func:`start_server`) speaks newline-delimited JSON —
one request object per line, one response object per line — the simplest
protocol a 1993-style ATM interface shim or a modern sidecar can speak.
It returns an :class:`AdmissionServer`, which proxies the asyncio server
surface and adds :meth:`AdmissionServer.drain`: stop accepting, let every
busy handler finish its current answer, then close — the building block
for the sharded fleet's graceful SIGTERM drain and rolling restarts.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from itertools import count

import numpy as np

from repro.control.admission_table import (
    _delay_for_population_mix,
    pinned_population_params,
)
from repro.control.bandwidth import bandwidth_for_delay_target
from repro.runtime import chaos
from repro.runtime.resilience import DegradationChain, DegradationError
from repro.service.surfaces import DecisionSurfaces

__all__ = [
    "AdmissionServer",
    "AdmissionService",
    "BandwidthAnswer",
    "BatchDecision",
    "Decision",
    "MAX_BATCH_ROWS",
    "OverloadPolicy",
    "start_server",
]

#: Degradation-chain identity for the miss path; chaos poison keys are
#: ``"admission-solve:qbd"`` / ``"admission-solve:solution2"``.
SOLVE_CHAIN = "admission-solve"

#: Largest row count one ``admit_batch`` request may carry — bounds the
#: memory a single protocol line can pin on the event loop.
MAX_BATCH_ROWS = 65_536


@dataclass(frozen=True)
class OverloadPolicy:
    """Explicit bounds the serving path enforces instead of best effort.

    Attributes
    ----------
    max_inflight:
        Most requests allowed to be simultaneously parked on the live-solve
        path (the only queue in the service that can grow — surface and
        interpolated answers are synchronous).  A request that would need a
        solve while the queue is full answers an immediate ``tier="shed"``
        conservative deny.  ``None`` leaves the queue unbounded.
    max_connections:
        Most concurrent client connections the front end will serve.  A
        connection beyond the cap is answered one structured error line and
        closed (counted under ``rejected``).  ``None`` = uncapped.
    max_line_bytes:
        Per-connection request-line byte cap.  An oversized frame answers a
        JSON error and the reader resyncs at the next newline instead of
        tearing the connection down (asyncio's own ``readline`` limit kills
        the handler with no reply).  The default fits a full
        ``MAX_BATCH_ROWS`` batch line with room to spare.
    """

    max_inflight: int | None = None
    max_connections: int | None = None
    max_line_bytes: int = 1 << 22

    def __post_init__(self) -> None:
        """Validate that every configured bound is positive."""
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1 (or None)")
        if self.max_connections is not None and self.max_connections < 1:
            raise ValueError("max_connections must be at least 1 (or None)")
        if self.max_line_bytes < 2:
            raise ValueError("max_line_bytes must fit at least one byte + newline")


@dataclass(frozen=True)
class Decision:
    """One admit/deny answer with its provenance.

    Attributes
    ----------
    admit:
        The decision.  Under degradation or shedding this is always
        ``False``.
    tier:
        ``"surface"`` | ``"interpolated"`` | ``"solve"`` | ``"degraded"``
        | ``"shed"``.
    max_n2:
        The boundary value the decision compared against (``None`` on the
        solve/degraded/shed tiers, which probe the queried point directly).
    estimate:
        Bilinear boundary estimate (interpolated tier only) — planning
        data, never the decision.
    latency_s:
        Service-side decision latency in seconds.
    detail:
        Human-readable context (degradation reason, solver rung, ...).
    generation:
        The surface generation that answered (bumped by hot reloads); every
        row of a batch and every field of one answer comes from exactly
        this generation.
    """

    admit: bool
    tier: str
    max_n2: float | None
    estimate: float | None
    latency_s: float
    detail: str = ""
    generation: int = 0


@dataclass(frozen=True)
class BatchDecision:
    """One ``admit_batch`` answer: per-row arrays plus the batch latency.

    Row ``i`` carries exactly what the per-query :class:`Decision` for the
    same ``(n1, n2, delay_target)`` would — same tier, same admit bit,
    same bound — the batch verb is a transport, not a different decision
    procedure (locked by a differential test in ``tests/service``).  The
    whole batch answers from one surface ``generation``: the surfaces are
    captured once at entry and threaded through the miss solves, so a hot
    reload mid-batch never mixes generations within one answer.
    """

    admit: list[bool]
    tier: list[str]
    max_n2: list[float | None]
    estimate: list[float | None]
    latency_s: float
    generation: int = 0

    @property
    def rows(self) -> int:
        """Number of queries answered by the batch."""
        return len(self.admit)


@dataclass(frozen=True)
class BandwidthAnswer:
    """One bandwidth-for-delay-target answer.

    ``bandwidth`` is ``inf`` on the degraded and shed tiers: a service that
    cannot size a link refuses to commit capacity rather than
    under-provisioning.
    """

    bandwidth: float
    estimate: float | None
    tier: str
    latency_s: float
    detail: str = ""
    generation: int = 0


def _solve_admit_miss(
    surfaces: DecisionSurfaces,
    n1: float,
    n2: float,
    delay_target: float,
    request_index: int,
    exact: bool,
    warm_state: dict,
):
    """Worker-pool body for a tier-3 admit: returns (delay, diagnostics).

    Runs in a pool thread, never on the event loop.  Chaos faults are
    honoured here: the active plan's injected delay for this request index
    is slept (a hung solve), and the degradation chain consults the
    poisoned-rung registry before each rung.
    """
    plan = chaos.active_plan()
    if plan is not None:
        chaos.set_context(request_index, 1)
        pause = plan.delay_for(request_index, 1)
        if pause > 0.0:
            time.sleep(pause)
    params = surfaces.params
    service_rate = surfaces.service_rate

    def qbd_rung() -> float:
        from repro.core.solution0 import solve_solution0

        pinned = pinned_population_params(params, (n1, n2))
        if pinned is None:
            return 0.0
        warm = warm_state.get("rate_matrix")
        try:
            result = solve_solution0(
                params=pinned,
                service_rate=service_rate,
                backend="qbd",
                qbd_initial_rate_matrix=warm,
            )
        except ValueError:
            if warm is None:
                raise
            # A warm R from a differently-shaped phase space (the auto
            # modulating bounds track the pinned mix) is rejected with a
            # ValueError; drop it and solve cold.
            warm_state.pop("rate_matrix", None)
            result = solve_solution0(
                params=pinned, service_rate=service_rate, backend="qbd"
            )
        if result.rate_matrix is not None:
            warm_state["rate_matrix"] = result.rate_matrix
        return result.mean_delay

    def solution2_rung() -> float:
        return _delay_for_population_mix(
            params, (float(n1), float(n2)), service_rate
        )

    rungs = [("qbd", qbd_rung)] if exact else []
    rungs.append(("solution2", solution2_rung))
    return DegradationChain(SOLVE_CHAIN, rungs).run()


def _solve_bandwidth_miss(
    surfaces: DecisionSurfaces, delay_target: float, request_index: int
):
    """Worker-pool body for a tier-3 bandwidth query."""
    plan = chaos.active_plan()
    if plan is not None:
        chaos.set_context(request_index, 1)
        pause = plan.delay_for(request_index, 1)
        if pause > 0.0:
            time.sleep(pause)

    def solution2_rung() -> float:
        return bandwidth_for_delay_target(surfaces.params, delay_target)

    return DegradationChain(SOLVE_CHAIN, [("solution2", solution2_rung)]).run()


class AdmissionService:
    """Answers admit/deny and bandwidth queries against decision surfaces.

    Parameters
    ----------
    surfaces:
        The precomputed :class:`~repro.service.surfaces.DecisionSurfaces`
        (typically loaded from the boot artifact).
    solve_timeout:
        Deadline in seconds for a tier-3 live solve; an overdue solve
        degrades to a conservative deny.  The deadline bounds the *answer*,
        not the worker thread (a stuck thread keeps its pool slot until it
        returns — size ``solver_workers`` accordingly).
    solver_workers:
        Width of the reusable solve pool (threads; the solves are
        numpy/scipy-bound and release the GIL in their kernels).
    exact:
        Route tier-3 admits through the exact QBD ladder (warm-started
        across misses via the cached HAP→MMPP mapping) before the
        Solution-2 closed form.  Off by default: Solution 2 is the paper's
        recommended control-plane solver in its validity region.
    counters_mirror:
        Optional sink receiving every counter increment as
        ``mirror.add(name, k)`` — how a sharded worker publishes its
        per-tier counters into the fleet's shared-memory block without
        the hot path ever taking a cross-process lock.
    overload:
        The :class:`OverloadPolicy` in force; the default leaves every
        bound off except the request-line byte cap.
    """

    def __init__(
        self,
        surfaces: DecisionSurfaces,
        solve_timeout: float = 10.0,
        solver_workers: int = 1,
        exact: bool = False,
        counters_mirror=None,
        overload: OverloadPolicy | None = None,
    ):
        if solve_timeout <= 0:
            raise ValueError("solve_timeout must be positive")
        if solver_workers < 1:
            raise ValueError("solver_workers must be at least 1")
        self.surfaces = surfaces
        #: Surface generation the service is answering from; hot reloads
        #: bump it via :meth:`set_surfaces` and every answer reports it.
        self.generation = 0
        self.solve_timeout = float(solve_timeout)
        self.exact = bool(exact)
        self.overload = overload if overload is not None else OverloadPolicy()
        self._pool = ThreadPoolExecutor(
            max_workers=solver_workers, thread_name_prefix="repro-solve"
        )
        self._qbd_warm: dict = {}
        self._request_index = count()
        self._mirror = counters_mirror
        #: Requests currently parked on the live-solve path — the bounded
        #: in-flight admission queue that :class:`OverloadPolicy` sheds on.
        self._solves_inflight = 0
        #: Fleet-wide counter view (set by the sharded worker); ``None``
        #: on a single-process service, where ``stats`` answers locally.
        self.fleet = None
        self.counters: dict[str, int] = {
            "surface": 0,
            "interpolated": 0,
            "solve": 0,
            "degraded": 0,
            "shed": 0,
            "rejected": 0,
            "denied": 0,
            "admitted": 0,
        }

    # ------------------------------------------------------------------
    # Decision paths
    # ------------------------------------------------------------------
    def _count(self, name: str, k: int = 1) -> None:
        self.counters[name] += k
        if self._mirror is not None:
            self._mirror.add(name, k)

    def _finish(self, decision: Decision) -> Decision:
        self._count(decision.tier)
        self._count("admitted" if decision.admit else "denied")
        return decision

    def set_surfaces(self, surfaces: DecisionSurfaces, generation: int) -> None:
        """Atomically swap in a new surface generation (hot reload).

        Runs synchronously on the event loop (no await points), and every
        decision method captures ``(surfaces, generation)`` once at entry,
        so no in-flight answer ever mixes generations.  The QBD warm-start
        cache is dropped — it belongs to the outgoing parameters.
        """
        self._qbd_warm.clear()
        self.surfaces = surfaces
        self.generation = int(generation)

    @staticmethod
    def _validate_admit_query(n1: float, n2: float, delay_target: float) -> None:
        for label, value in (("n1", n1), ("n2", n2)):
            if not math.isfinite(value) or value < 0:
                raise ValueError(f"{label} must be finite and non-negative")
        if not math.isfinite(delay_target) or delay_target <= 0:
            raise ValueError("delay_target must be finite and positive")

    def _shed_reason(self, deadline_s: float | None, started: float) -> str:
        """Why a solve-path request must shed right now ("" = proceed)."""
        limit = self.overload.max_inflight
        if limit is not None and self._solves_inflight >= limit:
            return (
                f"live-solve queue full ({self._solves_inflight} in flight, "
                f"max_inflight={limit}); conservative deny"
            )
        if deadline_s is not None:
            remaining = deadline_s - (time.perf_counter() - started)
            if remaining <= 0.0:
                return (
                    f"deadline ({deadline_s * 1e3:g}ms) exhausted before the "
                    "solve could start; conservative deny"
                )
        return ""

    def _solve_budget(self, deadline_s: float | None, started: float) -> float:
        """Remaining wall budget for a solve under the request deadline."""
        if deadline_s is None:
            return self.solve_timeout
        return min(
            self.solve_timeout, deadline_s - (time.perf_counter() - started)
        )

    async def admit(
        self,
        n1: float,
        n2: float,
        delay_target: float,
        deadline_s: float | None = None,
    ) -> Decision:
        """Admit or deny the mix ``(n1, n2)`` under ``delay_target``.

        ``deadline_s`` is the client-propagated answer deadline measured
        from now; it only governs the live-solve path (surface and
        interpolated answers cost microseconds and are always returned).
        A solve that cannot fit the remaining budget sheds conservatively.
        """
        started = time.perf_counter()
        self._validate_admit_query(n1, n2, delay_target)
        return await self._admit_with(
            self.surfaces,
            self.generation,
            float(n1),
            float(n2),
            float(delay_target),
            deadline_s,
            started,
        )

    async def _admit_with(
        self,
        surfaces: DecisionSurfaces,
        generation: int,
        n1: float,
        n2: float,
        delay_target: float,
        deadline_s: float | None,
        started: float,
    ) -> Decision:
        """The admit path against an explicit surface generation.

        ``admit`` and ``admit_batch`` capture ``(surfaces, generation)``
        exactly once and delegate here, so answers stay single-generation
        even when a hot reload lands while a miss solve is in flight.
        """
        bound = surfaces.grid_bound(n1, delay_target)
        if bound is not None:
            return self._finish(
                Decision(
                    admit=n2 <= bound,
                    tier="surface",
                    max_n2=bound,
                    estimate=None,
                    latency_s=time.perf_counter() - started,
                    generation=generation,
                )
            )

        interpolated = surfaces.interpolated_bound(n1, delay_target)
        if interpolated is not None:
            return self._finish(
                Decision(
                    admit=n2 <= interpolated.max_n2,
                    tier="interpolated",
                    max_n2=interpolated.max_n2,
                    estimate=interpolated.estimate,
                    latency_s=time.perf_counter() - started,
                    detail="conservative corner bound",
                    generation=generation,
                )
            )

        shed = self._shed_reason(deadline_s, started)
        if shed:
            return self._finish(
                Decision(
                    admit=False,
                    tier="shed",
                    max_n2=None,
                    estimate=None,
                    latency_s=time.perf_counter() - started,
                    detail=shed,
                    generation=generation,
                )
            )

        index = next(self._request_index)
        loop = asyncio.get_running_loop()
        self._solves_inflight += 1
        try:
            delay, diagnostics = await asyncio.wait_for(
                loop.run_in_executor(
                    self._pool,
                    _solve_admit_miss,
                    surfaces,
                    n1,
                    n2,
                    delay_target,
                    index,
                    self.exact,
                    self._qbd_warm,
                ),
                timeout=self._solve_budget(deadline_s, started),
            )
        except asyncio.TimeoutError:
            return self._finish(
                Decision(
                    admit=False,
                    tier="degraded",
                    max_n2=None,
                    estimate=None,
                    latency_s=time.perf_counter() - started,
                    detail=f"solve exceeded {self.solve_timeout:g}s deadline; "
                    "conservative deny",
                    generation=generation,
                )
            )
        except (DegradationError, Exception) as error:  # noqa: BLE001
            return self._finish(
                Decision(
                    admit=False,
                    tier="degraded",
                    max_n2=None,
                    estimate=None,
                    latency_s=time.perf_counter() - started,
                    detail=f"solve failed ({error!r}); conservative deny",
                    generation=generation,
                )
            )
        finally:
            self._solves_inflight -= 1
        return self._finish(
            Decision(
                admit=delay <= delay_target,
                tier="solve",
                max_n2=None,
                estimate=delay,
                latency_s=time.perf_counter() - started,
                detail=f"live solve answered by rung {diagnostics.rung!r}",
                generation=generation,
            )
        )

    async def admit_batch(
        self, n1, n2, delay_target, deadline_s: float | None = None
    ) -> BatchDecision:
        """Answer many admit queries in one call, splitting rows by tier.

        Exact-grid rows answer through the vectorized
        :meth:`~repro.service.surfaces.DecisionSurfaces.admit_batch` path
        in one numpy pass; in-hull off-grid rows take the conservative
        corner; only true misses reach the solver pool (concurrently, via
        the per-query admit path so deadlines, degradation, shedding, and
        chaos faults behave exactly as they do for single queries).  The
        surfaces are captured once at entry: every row answers from the
        same generation.
        """
        started = time.perf_counter()
        surfaces = self.surfaces
        generation = self.generation
        n1 = np.asarray(n1, dtype=float)
        n2 = np.asarray(n2, dtype=float)
        delay_target = np.asarray(delay_target, dtype=float)
        if not (n1.ndim == n2.ndim == delay_target.ndim == 1):
            raise ValueError("batch queries must be 1-D arrays")
        if not (n1.shape == n2.shape == delay_target.shape):
            raise ValueError("n1, n2, delay_target must have equal lengths")
        rows = int(n1.shape[0])
        if rows > MAX_BATCH_ROWS:
            raise ValueError(
                f"batch carries {rows} rows; the protocol limit is "
                f"{MAX_BATCH_ROWS}"
            )
        if rows == 0:
            return BatchDecision(
                admit=[],
                tier=[],
                max_n2=[],
                estimate=[],
                latency_s=time.perf_counter() - started,
                generation=generation,
            )
        for label, values in (("n1", n1), ("n2", n2)):
            if not bool(np.all(np.isfinite(values) & (values >= 0))):
                raise ValueError(f"{label} must be finite and non-negative")
        if not bool(np.all(np.isfinite(delay_target) & (delay_target > 0))):
            raise ValueError("delay_target must be finite and positive")

        admit: list[bool] = [False] * rows
        tier: list[str] = [""] * rows
        max_n2: list[float | None] = [None] * rows
        estimate: list[float | None] = [None] * rows

        on_grid = surfaces.grid_mask(n1, delay_target)
        grid_rows = np.flatnonzero(on_grid)
        if grid_rows.size:
            grid_admit = surfaces.admit_batch(
                n1[grid_rows], n2[grid_rows], delay_target[grid_rows]
            )
            target_rows = np.clip(
                np.searchsorted(
                    surfaces.delay_targets, delay_target[grid_rows]
                ),
                0,
                len(surfaces.delay_targets) - 1,
            )
            bounds = surfaces.max_n2[
                target_rows, n1[grid_rows].astype(np.intp)
            ]
            for offset, row in enumerate(grid_rows):
                admit[row] = bool(grid_admit[offset])
                tier[row] = "surface"
                max_n2[row] = float(bounds[offset])
            admitted = int(np.count_nonzero(grid_admit))
            self._count("surface", int(grid_rows.size))
            self._count("admitted", admitted)
            self._count("denied", int(grid_rows.size) - admitted)

        misses: list[int] = []
        for row in np.flatnonzero(~on_grid):
            row = int(row)
            bound = surfaces.interpolated_bound(
                float(n1[row]), float(delay_target[row])
            )
            if bound is None:
                misses.append(row)
                continue
            ok = float(n2[row]) <= bound.max_n2
            admit[row] = ok
            tier[row] = "interpolated"
            max_n2[row] = bound.max_n2
            estimate[row] = bound.estimate
            self._count("interpolated")
            self._count("admitted" if ok else "denied")

        if misses:
            decisions = await asyncio.gather(
                *(
                    self._admit_with(
                        surfaces,
                        generation,
                        float(n1[row]),
                        float(n2[row]),
                        float(delay_target[row]),
                        deadline_s,
                        started,
                    )
                    for row in misses
                )
            )
            for row, decision in zip(misses, decisions):
                admit[row] = decision.admit
                tier[row] = decision.tier
                max_n2[row] = decision.max_n2
                estimate[row] = decision.estimate

        return BatchDecision(
            admit=admit,
            tier=tier,
            max_n2=max_n2,
            estimate=estimate,
            latency_s=time.perf_counter() - started,
            generation=generation,
        )

    async def bandwidth(
        self, delay_target: float, deadline_s: float | None = None
    ) -> BandwidthAnswer:
        """Minimum bandwidth meeting ``delay_target`` (``inf`` = refused)."""
        started = time.perf_counter()
        surfaces = self.surfaces
        generation = self.generation
        if not math.isfinite(delay_target) or delay_target <= 0:
            raise ValueError("delay_target must be finite and positive")
        delay_target = float(delay_target)

        answer = surfaces.bandwidth_bound(delay_target)
        if answer is not None:
            bound, estimate, exact = answer
            tier = "surface" if exact else "interpolated"
            self._count(tier)
            return BandwidthAnswer(
                bandwidth=bound,
                estimate=estimate,
                tier=tier,
                latency_s=time.perf_counter() - started,
                generation=generation,
            )

        shed = self._shed_reason(deadline_s, started)
        if shed:
            self._count("shed")
            return BandwidthAnswer(
                bandwidth=math.inf,
                estimate=None,
                tier="shed",
                latency_s=time.perf_counter() - started,
                detail=shed,
                generation=generation,
            )

        index = next(self._request_index)
        loop = asyncio.get_running_loop()
        self._solves_inflight += 1
        try:
            bandwidth, diagnostics = await asyncio.wait_for(
                loop.run_in_executor(
                    self._pool,
                    _solve_bandwidth_miss,
                    surfaces,
                    delay_target,
                    index,
                ),
                timeout=self._solve_budget(deadline_s, started),
            )
        except asyncio.TimeoutError:
            self._count("degraded")
            return BandwidthAnswer(
                bandwidth=math.inf,
                estimate=None,
                tier="degraded",
                latency_s=time.perf_counter() - started,
                detail=f"solve exceeded {self.solve_timeout:g}s deadline; "
                "refusing to size the link",
                generation=generation,
            )
        except (DegradationError, Exception) as error:  # noqa: BLE001
            self._count("degraded")
            return BandwidthAnswer(
                bandwidth=math.inf,
                estimate=None,
                tier="degraded",
                latency_s=time.perf_counter() - started,
                detail=f"solve failed ({error!r}); refusing to size the link",
                generation=generation,
            )
        finally:
            self._solves_inflight -= 1
        self._count("solve")
        return BandwidthAnswer(
            bandwidth=bandwidth,
            estimate=bandwidth,
            tier="solve",
            latency_s=time.perf_counter() - started,
            detail=f"live solve answered by rung {diagnostics.rung!r}",
            generation=generation,
        )

    def stats(self) -> dict[str, int]:
        """A snapshot of the per-tier and admit/deny counters."""
        return dict(self.counters)

    def close(self) -> None:
        """Shut the solve pool down (pending solves are abandoned)."""
        self._pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "AdmissionService":
        """Context-manager entry (returns the service)."""
        return self

    def __exit__(self, *_exc) -> None:
        """Context-manager exit: close the solve pool."""
        self.close()


# ----------------------------------------------------------------------
# TCP front end (newline-delimited JSON)
# ----------------------------------------------------------------------
class _LineTooLong(Exception):
    """An incoming request frame exceeded the per-line byte cap."""

    def __init__(self, limit: int):
        super().__init__(
            f"request line exceeds the {limit}-byte limit; frame discarded"
        )
        self.limit = limit


class _LineReader:
    """Newline framing over ``StreamReader.read`` with an explicit byte cap.

    asyncio's own ``readline()`` raises on overrun *and clears its buffer*,
    so the stream can never resync to the next frame — the connection dies
    with no reply.  This reader raises :class:`_LineTooLong` exactly once
    per oversized frame, discards through the frame's terminating newline,
    and keeps the connection usable for the next request.
    """

    _CHUNK = 1 << 16

    def __init__(self, reader: asyncio.StreamReader, limit: int):
        self._reader = reader
        self._limit = int(limit)
        self._buffer = bytearray()
        self._discarding = False

    async def readline(self) -> bytes:
        """The next newline-terminated frame (``b""`` at EOF).

        Raises :class:`_LineTooLong` when a frame exceeds the cap; calling
        again resumes at the frame after the oversized one.
        """
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[: newline + 1])
                del self._buffer[: newline + 1]
                if self._discarding:
                    # Tail of a frame already reported oversized: drop it
                    # silently and parse the next frame.
                    self._discarding = False
                    continue
                if len(line) > self._limit:
                    raise _LineTooLong(self._limit)
                return line
            if self._discarding:
                self._buffer.clear()
            elif len(self._buffer) > self._limit:
                self._discarding = True
                self._buffer.clear()
                raise _LineTooLong(self._limit)
            chunk = await self._reader.read(self._CHUNK)
            if not chunk:
                return b""
            self._buffer.extend(chunk)


class _Connection:
    """Drain bookkeeping for one live client connection.

    ``busy`` is flipped around request processing with *no await points*
    between a frame becoming available and the flag being set — so a drain
    pass observing ``busy=False`` knows the handler is parked waiting for
    bytes and can close the connection without losing an answer.
    """

    __slots__ = ("writer", "busy")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.busy = False


class AdmissionServer:
    """The bound TCP front end plus its overload and drain machinery.

    Wraps the underlying :class:`asyncio.Server` and proxies its surface
    (``sockets``, ``close``, ``wait_closed``, ``serve_forever``, async
    context manager) so existing call sites keep working, while owning the
    connection registry that overload capping and :meth:`drain` need.
    """

    def __init__(self, service: AdmissionService):
        self.service = service
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[_Connection] = set()
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()

    async def _start(self, host: str, port: int, reuse_port: bool) -> None:
        """Bind the listening socket and start accepting."""
        self._server = await asyncio.start_server(
            self._handle, host=host, port=port, reuse_port=reuse_port or None
        )

    # -- asyncio.Server proxy ------------------------------------------
    @property
    def sockets(self):
        """The listening sockets (``sockets[0].getsockname()`` = address)."""
        return self._server.sockets

    def is_serving(self) -> bool:
        """Whether the server is currently accepting connections."""
        return self._server.is_serving()

    def close(self) -> None:
        """Stop accepting new connections (in-flight handlers continue)."""
        self._server.close()

    async def wait_closed(self) -> None:
        """Wait until the listening socket is fully closed."""
        await self._server.wait_closed()

    async def serve_forever(self) -> None:
        """Accept connections until cancelled or :meth:`close` is called."""
        await self._server.serve_forever()

    async def __aenter__(self) -> "AdmissionServer":
        """Async-context entry (returns the server)."""
        return self

    async def __aexit__(self, *_exc) -> None:
        """Async-context exit: close and wait for the listener."""
        self.close()
        await self.wait_closed()

    # -- overload / drain ----------------------------------------------
    @property
    def connections(self) -> int:
        """Number of currently-open client connections."""
        return len(self._connections)

    async def drain(self, timeout: float = 30.0) -> bool:
        """Graceful shutdown: refuse new work, finish all in-flight work.

        Stops accepting, immediately closes idle connections (their
        handlers are parked waiting for bytes — no answer is pending), and
        waits up to ``timeout`` seconds for every busy handler to write its
        current answer and notice the drain.  Returns ``True`` when every
        connection closed cleanly within the budget; on timeout the
        stragglers are force-closed and ``False`` is returned.
        """
        self._draining = True
        self._server.close()
        for conn in list(self._connections):
            if not conn.busy:
                conn.writer.close()
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
            clean = True
        except asyncio.TimeoutError:
            clean = False
            for conn in list(self._connections):
                conn.writer.close()
        await self._server.wait_closed()
        return clean

    async def _refuse(self, writer: asyncio.StreamWriter, error: str) -> None:
        """Answer one structured error line and close the connection."""
        try:
            writer.write(
                json.dumps({"ok": False, "error": error, "shed": True}).encode()
                + b"\n"
            )
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection: a request line in, a response line out."""
        service = self.service
        policy = service.overload
        if self._draining:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass
            return
        cap = policy.max_connections
        if cap is not None and len(self._connections) >= cap:
            service._count("rejected")
            await self._refuse(
                writer, f"connection limit ({cap}) reached; retry later"
            )
            return
        conn = _Connection(writer)
        self._connections.add(conn)
        self._idle.clear()
        lines = _LineReader(reader, policy.max_line_bytes)
        try:
            while True:
                try:
                    line = await lines.readline()
                except _LineTooLong as error:
                    response = {"ok": False, "error": str(error)}
                else:
                    if not line:
                        break
                    conn.busy = True
                    try:
                        request = json.loads(line)
                        if not isinstance(request, dict):
                            raise ValueError("request must be a JSON object")
                        response = await _handle_request(service, request)
                    except Exception as error:  # noqa: BLE001 — protocol errors answer, not kill
                        response = {"ok": False, "error": str(error)}
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
                conn.busy = False
                if self._draining:
                    break
        except (ConnectionError, OSError):
            # The peer vanished mid-read or mid-write (or a drain closed an
            # idle connection under us); nothing left to answer.
            pass
        finally:
            self._connections.discard(conn)
            if not self._connections:
                self._idle.set()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # Server shutdown cancels handlers mid-close; the connection
                # is going away either way, so end the task cleanly.
                pass


def _decision_payload(decision: Decision) -> dict:
    return {
        "ok": True,
        "admit": decision.admit,
        "tier": decision.tier,
        "max_n2": decision.max_n2,
        "estimate": decision.estimate,
        "latency_us": round(decision.latency_s * 1e6, 1),
        "detail": decision.detail,
        "gen": decision.generation,
    }


def _bandwidth_payload(answer: BandwidthAnswer) -> dict:
    return {
        "ok": True,
        "bandwidth": None if math.isinf(answer.bandwidth) else answer.bandwidth,
        "estimate": answer.estimate,
        "tier": answer.tier,
        "latency_us": round(answer.latency_s * 1e6, 1),
        "detail": answer.detail,
        "gen": answer.generation,
    }


def _batch_payload(batch: BatchDecision) -> dict:
    return {
        "ok": True,
        "rows": batch.rows,
        "admit": batch.admit,
        "tier": batch.tier,
        "max_n2": batch.max_n2,
        "estimate": batch.estimate,
        "latency_us": round(batch.latency_s * 1e6, 1),
        "gen": batch.generation,
    }


def _stats_payload(service: AdmissionService, request: dict) -> dict:
    """Local counters, or the fleet-wide sum when asked for (and sharded)."""
    if request.get("scope") == "fleet" and service.fleet is not None:
        return {
            "ok": True,
            "stats": service.fleet.totals(),
            "scope": "fleet",
            "shards": service.fleet.shards,
            "per_shard": service.fleet.per_shard(),
            "gen": service.generation,
        }
    return {
        "ok": True,
        "stats": service.stats(),
        "scope": "shard",
        "shards": 1,
        "gen": service.generation,
    }


def _deadline_seconds(request: dict) -> float | None:
    """The request's propagated deadline in seconds, if it carries one."""
    deadline_ms = request.get("deadline_ms")
    if deadline_ms is None:
        return None
    deadline_ms = float(deadline_ms)
    if not math.isfinite(deadline_ms):
        raise ValueError("deadline_ms must be finite")
    return deadline_ms / 1e3


async def _handle_request(service: AdmissionService, request: dict) -> dict:
    op = request.get("op")
    if op == "admit":
        decision = await service.admit(
            float(request["n1"]),
            float(request["n2"]),
            float(request["delay_target"]),
            deadline_s=_deadline_seconds(request),
        )
        return _decision_payload(decision)
    if op == "admit_batch":
        batch = await service.admit_batch(
            request["n1"],
            request["n2"],
            request["delay_target"],
            deadline_s=_deadline_seconds(request),
        )
        return _batch_payload(batch)
    if op == "bandwidth":
        answer = await service.bandwidth(
            float(request["delay_target"]), deadline_s=_deadline_seconds(request)
        )
        return _bandwidth_payload(answer)
    if op == "stats":
        return _stats_payload(service, request)
    if op == "ping":
        return {"ok": True, "pong": True}
    raise ValueError(f"unknown op {op!r}")


async def start_server(
    service: AdmissionService,
    host: str = "127.0.0.1",
    port: int = 0,
    reuse_port: bool = False,
) -> AdmissionServer:
    """Bind the TCP front end; ``port=0`` picks an ephemeral port.

    ``reuse_port=True`` binds with ``SO_REUSEPORT`` so several processes
    can listen on the same address and let the kernel load-balance
    accepted connections across them — the sharded fleet's front end
    (:mod:`repro.service.sharded`).

    Returns an :class:`AdmissionServer` already accepting connections; the
    bound address is ``server.sockets[0].getsockname()`` and graceful
    shutdown is :meth:`AdmissionServer.drain`.
    """
    server = AdmissionServer(service)
    await server._start(host, port, reuse_port)
    return server
