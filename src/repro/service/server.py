"""The asyncio admission-control service: three tiers, conservative by design.

Answer path for an ``admit(n1, n2, delay_target)`` query:

1. **surface** — the query sits exactly on the precomputed grid: one array
   lookup, synchronous on the event loop (microseconds, vectorizable via
   :meth:`~repro.service.surfaces.DecisionSurfaces.admit_batch`).
2. **interpolated** — the query lies inside the grid hull but off-grid: the
   conservative-corner bound (see :mod:`repro.service.surfaces`), still
   synchronous.  The bilinear estimate rides along for planning.
3. **solve** — a true miss (outside the hull): a live solve dispatched to a
   reusable worker pool via ``run_in_executor`` under ``asyncio.wait_for``,
   so the event loop never blocks and no request outlives its deadline.
   The solve itself is a :class:`~repro.runtime.resilience.DegradationChain`
   (``admission-solve``): optionally the exact QBD ladder — warm-started
   across misses through the PR-3 mapping cache — then the Solution-2
   closed form.  A solve that times out, exhausts its ladder, or hits a
   poisoned rung (:mod:`repro.runtime.chaos`) degrades to tier
   **degraded**: a conservative *deny* (bandwidth queries answer ``inf`` —
   "do not commit").  The service may under-admit under faults; it never
   over-admits and never hangs.

The TCP front end (:func:`start_server`) speaks newline-delimited JSON —
one request object per line, one response object per line — the simplest
protocol a 1993-style ATM interface shim or a modern sidecar can speak.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from itertools import count

import numpy as np

from repro.control.admission_table import (
    _delay_for_population_mix,
    pinned_population_params,
)
from repro.control.bandwidth import bandwidth_for_delay_target
from repro.runtime import chaos
from repro.runtime.resilience import DegradationChain, DegradationError
from repro.service.surfaces import DecisionSurfaces

__all__ = [
    "AdmissionService",
    "BandwidthAnswer",
    "BatchDecision",
    "Decision",
    "MAX_BATCH_ROWS",
    "start_server",
]

#: Degradation-chain identity for the miss path; chaos poison keys are
#: ``"admission-solve:qbd"`` / ``"admission-solve:solution2"``.
SOLVE_CHAIN = "admission-solve"

#: Largest row count one ``admit_batch`` request may carry — bounds the
#: memory a single protocol line can pin on the event loop.
MAX_BATCH_ROWS = 65_536


@dataclass(frozen=True)
class Decision:
    """One admit/deny answer with its provenance.

    Attributes
    ----------
    admit:
        The decision.  Under degradation this is always ``False``.
    tier:
        ``"surface"`` | ``"interpolated"`` | ``"solve"`` | ``"degraded"``.
    max_n2:
        The boundary value the decision compared against (``None`` on the
        solve/degraded tiers, which probe the queried point directly).
    estimate:
        Bilinear boundary estimate (interpolated tier only) — planning
        data, never the decision.
    latency_s:
        Service-side decision latency in seconds.
    detail:
        Human-readable context (degradation reason, solver rung, ...).
    """

    admit: bool
    tier: str
    max_n2: float | None
    estimate: float | None
    latency_s: float
    detail: str = ""


@dataclass(frozen=True)
class BatchDecision:
    """One ``admit_batch`` answer: per-row arrays plus the batch latency.

    Row ``i`` carries exactly what the per-query :class:`Decision` for the
    same ``(n1, n2, delay_target)`` would — same tier, same admit bit,
    same bound — the batch verb is a transport, not a different decision
    procedure (locked by a differential test in ``tests/service``).
    """

    admit: list[bool]
    tier: list[str]
    max_n2: list[float | None]
    estimate: list[float | None]
    latency_s: float

    @property
    def rows(self) -> int:
        """Number of queries answered by the batch."""
        return len(self.admit)


@dataclass(frozen=True)
class BandwidthAnswer:
    """One bandwidth-for-delay-target answer.

    ``bandwidth`` is ``inf`` on the degraded tier: a service that cannot
    size a link refuses to commit capacity rather than under-provisioning.
    """

    bandwidth: float
    estimate: float | None
    tier: str
    latency_s: float
    detail: str = ""


def _solve_admit_miss(
    surfaces: DecisionSurfaces,
    n1: float,
    n2: float,
    delay_target: float,
    request_index: int,
    exact: bool,
    warm_state: dict,
):
    """Worker-pool body for a tier-3 admit: returns (delay, diagnostics).

    Runs in a pool thread, never on the event loop.  Chaos faults are
    honoured here: the active plan's injected delay for this request index
    is slept (a hung solve), and the degradation chain consults the
    poisoned-rung registry before each rung.
    """
    plan = chaos.active_plan()
    if plan is not None:
        chaos.set_context(request_index, 1)
        pause = plan.delay_for(request_index, 1)
        if pause > 0.0:
            time.sleep(pause)
    params = surfaces.params
    service_rate = surfaces.service_rate

    def qbd_rung() -> float:
        from repro.core.solution0 import solve_solution0

        pinned = pinned_population_params(params, (n1, n2))
        if pinned is None:
            return 0.0
        warm = warm_state.get("rate_matrix")
        try:
            result = solve_solution0(
                params=pinned,
                service_rate=service_rate,
                backend="qbd",
                qbd_initial_rate_matrix=warm,
            )
        except ValueError:
            if warm is None:
                raise
            # A warm R from a differently-shaped phase space (the auto
            # modulating bounds track the pinned mix) is rejected with a
            # ValueError; drop it and solve cold.
            warm_state.pop("rate_matrix", None)
            result = solve_solution0(
                params=pinned, service_rate=service_rate, backend="qbd"
            )
        if result.rate_matrix is not None:
            warm_state["rate_matrix"] = result.rate_matrix
        return result.mean_delay

    def solution2_rung() -> float:
        return _delay_for_population_mix(
            params, (float(n1), float(n2)), service_rate
        )

    rungs = [("qbd", qbd_rung)] if exact else []
    rungs.append(("solution2", solution2_rung))
    return DegradationChain(SOLVE_CHAIN, rungs).run()


def _solve_bandwidth_miss(
    surfaces: DecisionSurfaces, delay_target: float, request_index: int
):
    """Worker-pool body for a tier-3 bandwidth query."""
    plan = chaos.active_plan()
    if plan is not None:
        chaos.set_context(request_index, 1)
        pause = plan.delay_for(request_index, 1)
        if pause > 0.0:
            time.sleep(pause)

    def solution2_rung() -> float:
        return bandwidth_for_delay_target(surfaces.params, delay_target)

    return DegradationChain(SOLVE_CHAIN, [("solution2", solution2_rung)]).run()


class AdmissionService:
    """Answers admit/deny and bandwidth queries against decision surfaces.

    Parameters
    ----------
    surfaces:
        The precomputed :class:`~repro.service.surfaces.DecisionSurfaces`
        (typically loaded from the boot artifact).
    solve_timeout:
        Deadline in seconds for a tier-3 live solve; an overdue solve
        degrades to a conservative deny.  The deadline bounds the *answer*,
        not the worker thread (a stuck thread keeps its pool slot until it
        returns — size ``solver_workers`` accordingly).
    solver_workers:
        Width of the reusable solve pool (threads; the solves are
        numpy/scipy-bound and release the GIL in their kernels).
    exact:
        Route tier-3 admits through the exact QBD ladder (warm-started
        across misses via the cached HAP→MMPP mapping) before the
        Solution-2 closed form.  Off by default: Solution 2 is the paper's
        recommended control-plane solver in its validity region.
    counters_mirror:
        Optional sink receiving every counter increment as
        ``mirror.add(name, k)`` — how a sharded worker publishes its
        per-tier counters into the fleet's shared-memory block without
        the hot path ever taking a cross-process lock.
    """

    def __init__(
        self,
        surfaces: DecisionSurfaces,
        solve_timeout: float = 10.0,
        solver_workers: int = 1,
        exact: bool = False,
        counters_mirror=None,
    ):
        if solve_timeout <= 0:
            raise ValueError("solve_timeout must be positive")
        if solver_workers < 1:
            raise ValueError("solver_workers must be at least 1")
        self.surfaces = surfaces
        self.solve_timeout = float(solve_timeout)
        self.exact = bool(exact)
        self._pool = ThreadPoolExecutor(
            max_workers=solver_workers, thread_name_prefix="repro-solve"
        )
        self._qbd_warm: dict = {}
        self._request_index = count()
        self._mirror = counters_mirror
        #: Fleet-wide counter view (set by the sharded worker); ``None``
        #: on a single-process service, where ``stats`` answers locally.
        self.fleet = None
        self.counters: dict[str, int] = {
            "surface": 0,
            "interpolated": 0,
            "solve": 0,
            "degraded": 0,
            "denied": 0,
            "admitted": 0,
        }

    # ------------------------------------------------------------------
    # Decision paths
    # ------------------------------------------------------------------
    def _count(self, name: str, k: int = 1) -> None:
        self.counters[name] += k
        if self._mirror is not None:
            self._mirror.add(name, k)

    def _finish(self, decision: Decision) -> Decision:
        self._count(decision.tier)
        self._count("admitted" if decision.admit else "denied")
        return decision

    @staticmethod
    def _validate_admit_query(n1: float, n2: float, delay_target: float) -> None:
        for label, value in (("n1", n1), ("n2", n2)):
            if not math.isfinite(value) or value < 0:
                raise ValueError(f"{label} must be finite and non-negative")
        if not math.isfinite(delay_target) or delay_target <= 0:
            raise ValueError("delay_target must be finite and positive")

    async def admit(self, n1: float, n2: float, delay_target: float) -> Decision:
        """Admit or deny the mix ``(n1, n2)`` under ``delay_target``."""
        started = time.perf_counter()
        self._validate_admit_query(n1, n2, delay_target)
        n1, n2, delay_target = float(n1), float(n2), float(delay_target)

        bound = self.surfaces.grid_bound(n1, delay_target)
        if bound is not None:
            return self._finish(
                Decision(
                    admit=n2 <= bound,
                    tier="surface",
                    max_n2=bound,
                    estimate=None,
                    latency_s=time.perf_counter() - started,
                )
            )

        interpolated = self.surfaces.interpolated_bound(n1, delay_target)
        if interpolated is not None:
            return self._finish(
                Decision(
                    admit=n2 <= interpolated.max_n2,
                    tier="interpolated",
                    max_n2=interpolated.max_n2,
                    estimate=interpolated.estimate,
                    latency_s=time.perf_counter() - started,
                    detail="conservative corner bound",
                )
            )

        index = next(self._request_index)
        loop = asyncio.get_running_loop()
        try:
            delay, diagnostics = await asyncio.wait_for(
                loop.run_in_executor(
                    self._pool,
                    _solve_admit_miss,
                    self.surfaces,
                    n1,
                    n2,
                    delay_target,
                    index,
                    self.exact,
                    self._qbd_warm,
                ),
                timeout=self.solve_timeout,
            )
        except asyncio.TimeoutError:
            return self._finish(
                Decision(
                    admit=False,
                    tier="degraded",
                    max_n2=None,
                    estimate=None,
                    latency_s=time.perf_counter() - started,
                    detail=f"solve exceeded {self.solve_timeout:g}s deadline; "
                    "conservative deny",
                )
            )
        except (DegradationError, Exception) as error:  # noqa: BLE001
            return self._finish(
                Decision(
                    admit=False,
                    tier="degraded",
                    max_n2=None,
                    estimate=None,
                    latency_s=time.perf_counter() - started,
                    detail=f"solve failed ({error!r}); conservative deny",
                )
            )
        return self._finish(
            Decision(
                admit=delay <= delay_target,
                tier="solve",
                max_n2=None,
                estimate=delay,
                latency_s=time.perf_counter() - started,
                detail=f"live solve answered by rung {diagnostics.rung!r}",
            )
        )

    async def admit_batch(self, n1, n2, delay_target) -> BatchDecision:
        """Answer many admit queries in one call, splitting rows by tier.

        Exact-grid rows answer through the vectorized
        :meth:`~repro.service.surfaces.DecisionSurfaces.admit_batch` path
        in one numpy pass; in-hull off-grid rows take the conservative
        corner; only true misses reach the solver pool (concurrently, via
        the per-query :meth:`admit` path so deadlines, degradation, and
        chaos faults behave exactly as they do for single queries).
        """
        started = time.perf_counter()
        n1 = np.asarray(n1, dtype=float)
        n2 = np.asarray(n2, dtype=float)
        delay_target = np.asarray(delay_target, dtype=float)
        if not (n1.ndim == n2.ndim == delay_target.ndim == 1):
            raise ValueError("batch queries must be 1-D arrays")
        if not (n1.shape == n2.shape == delay_target.shape):
            raise ValueError("n1, n2, delay_target must have equal lengths")
        rows = int(n1.shape[0])
        if rows > MAX_BATCH_ROWS:
            raise ValueError(
                f"batch carries {rows} rows; the protocol limit is "
                f"{MAX_BATCH_ROWS}"
            )
        if rows == 0:
            return BatchDecision(
                admit=[],
                tier=[],
                max_n2=[],
                estimate=[],
                latency_s=time.perf_counter() - started,
            )
        for label, values in (("n1", n1), ("n2", n2)):
            if not bool(np.all(np.isfinite(values) & (values >= 0))):
                raise ValueError(f"{label} must be finite and non-negative")
        if not bool(np.all(np.isfinite(delay_target) & (delay_target > 0))):
            raise ValueError("delay_target must be finite and positive")

        admit: list[bool] = [False] * rows
        tier: list[str] = [""] * rows
        max_n2: list[float | None] = [None] * rows
        estimate: list[float | None] = [None] * rows

        on_grid = self.surfaces.grid_mask(n1, delay_target)
        grid_rows = np.flatnonzero(on_grid)
        if grid_rows.size:
            grid_admit = self.surfaces.admit_batch(
                n1[grid_rows], n2[grid_rows], delay_target[grid_rows]
            )
            target_rows = np.clip(
                np.searchsorted(
                    self.surfaces.delay_targets, delay_target[grid_rows]
                ),
                0,
                len(self.surfaces.delay_targets) - 1,
            )
            bounds = self.surfaces.max_n2[
                target_rows, n1[grid_rows].astype(np.intp)
            ]
            for offset, row in enumerate(grid_rows):
                admit[row] = bool(grid_admit[offset])
                tier[row] = "surface"
                max_n2[row] = float(bounds[offset])
            admitted = int(np.count_nonzero(grid_admit))
            self._count("surface", int(grid_rows.size))
            self._count("admitted", admitted)
            self._count("denied", int(grid_rows.size) - admitted)

        misses: list[int] = []
        for row in np.flatnonzero(~on_grid):
            row = int(row)
            bound = self.surfaces.interpolated_bound(
                float(n1[row]), float(delay_target[row])
            )
            if bound is None:
                misses.append(row)
                continue
            ok = float(n2[row]) <= bound.max_n2
            admit[row] = ok
            tier[row] = "interpolated"
            max_n2[row] = bound.max_n2
            estimate[row] = bound.estimate
            self._count("interpolated")
            self._count("admitted" if ok else "denied")

        if misses:
            decisions = await asyncio.gather(
                *(
                    self.admit(
                        float(n1[row]), float(n2[row]), float(delay_target[row])
                    )
                    for row in misses
                )
            )
            for row, decision in zip(misses, decisions):
                admit[row] = decision.admit
                tier[row] = decision.tier
                max_n2[row] = decision.max_n2
                estimate[row] = decision.estimate

        return BatchDecision(
            admit=admit,
            tier=tier,
            max_n2=max_n2,
            estimate=estimate,
            latency_s=time.perf_counter() - started,
        )

    async def bandwidth(self, delay_target: float) -> BandwidthAnswer:
        """Minimum bandwidth meeting ``delay_target`` (``inf`` = refused)."""
        started = time.perf_counter()
        if not math.isfinite(delay_target) or delay_target <= 0:
            raise ValueError("delay_target must be finite and positive")
        delay_target = float(delay_target)

        answer = self.surfaces.bandwidth_bound(delay_target)
        if answer is not None:
            bound, estimate, exact = answer
            tier = "surface" if exact else "interpolated"
            self._count(tier)
            return BandwidthAnswer(
                bandwidth=bound,
                estimate=estimate,
                tier=tier,
                latency_s=time.perf_counter() - started,
            )

        index = next(self._request_index)
        loop = asyncio.get_running_loop()
        try:
            bandwidth, diagnostics = await asyncio.wait_for(
                loop.run_in_executor(
                    self._pool,
                    _solve_bandwidth_miss,
                    self.surfaces,
                    delay_target,
                    index,
                ),
                timeout=self.solve_timeout,
            )
        except asyncio.TimeoutError:
            self._count("degraded")
            return BandwidthAnswer(
                bandwidth=math.inf,
                estimate=None,
                tier="degraded",
                latency_s=time.perf_counter() - started,
                detail=f"solve exceeded {self.solve_timeout:g}s deadline; "
                "refusing to size the link",
            )
        except (DegradationError, Exception) as error:  # noqa: BLE001
            self._count("degraded")
            return BandwidthAnswer(
                bandwidth=math.inf,
                estimate=None,
                tier="degraded",
                latency_s=time.perf_counter() - started,
                detail=f"solve failed ({error!r}); refusing to size the link",
            )
        self._count("solve")
        return BandwidthAnswer(
            bandwidth=bandwidth,
            estimate=bandwidth,
            tier="solve",
            latency_s=time.perf_counter() - started,
            detail=f"live solve answered by rung {diagnostics.rung!r}",
        )

    def stats(self) -> dict[str, int]:
        """A snapshot of the per-tier and admit/deny counters."""
        return dict(self.counters)

    def close(self) -> None:
        """Shut the solve pool down (pending solves are abandoned)."""
        self._pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "AdmissionService":
        """Context-manager entry (returns the service)."""
        return self

    def __exit__(self, *_exc) -> None:
        """Context-manager exit: close the solve pool."""
        self.close()


# ----------------------------------------------------------------------
# TCP front end (newline-delimited JSON)
# ----------------------------------------------------------------------
def _decision_payload(decision: Decision) -> dict:
    return {
        "ok": True,
        "admit": decision.admit,
        "tier": decision.tier,
        "max_n2": decision.max_n2,
        "estimate": decision.estimate,
        "latency_us": round(decision.latency_s * 1e6, 1),
        "detail": decision.detail,
    }


def _bandwidth_payload(answer: BandwidthAnswer) -> dict:
    return {
        "ok": True,
        "bandwidth": None if math.isinf(answer.bandwidth) else answer.bandwidth,
        "estimate": answer.estimate,
        "tier": answer.tier,
        "latency_us": round(answer.latency_s * 1e6, 1),
        "detail": answer.detail,
    }


def _batch_payload(batch: BatchDecision) -> dict:
    return {
        "ok": True,
        "rows": batch.rows,
        "admit": batch.admit,
        "tier": batch.tier,
        "max_n2": batch.max_n2,
        "estimate": batch.estimate,
        "latency_us": round(batch.latency_s * 1e6, 1),
    }


def _stats_payload(service: AdmissionService, request: dict) -> dict:
    """Local counters, or the fleet-wide sum when asked for (and sharded)."""
    if request.get("scope") == "fleet" and service.fleet is not None:
        return {
            "ok": True,
            "stats": service.fleet.totals(),
            "scope": "fleet",
            "shards": service.fleet.shards,
            "per_shard": service.fleet.per_shard(),
        }
    return {"ok": True, "stats": service.stats(), "scope": "shard", "shards": 1}


async def _handle_request(service: AdmissionService, request: dict) -> dict:
    op = request.get("op")
    if op == "admit":
        decision = await service.admit(
            float(request["n1"]),
            float(request["n2"]),
            float(request["delay_target"]),
        )
        return _decision_payload(decision)
    if op == "admit_batch":
        batch = await service.admit_batch(
            request["n1"], request["n2"], request["delay_target"]
        )
        return _batch_payload(batch)
    if op == "bandwidth":
        answer = await service.bandwidth(float(request["delay_target"]))
        return _bandwidth_payload(answer)
    if op == "stats":
        return _stats_payload(service, request)
    if op == "ping":
        return {"ok": True, "pong": True}
    raise ValueError(f"unknown op {op!r}")


async def _handle_connection(
    service: AdmissionService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """One client connection: a request line in, a response line out."""
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
                response = await _handle_request(service, request)
            except Exception as error:  # noqa: BLE001 — protocol errors answer, not kill
                response = {"ok": False, "error": str(error)}
            writer.write(json.dumps(response).encode() + b"\n")
            await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError):
            # Server shutdown cancels handlers mid-close; the connection is
            # going away either way, so end the task cleanly.
            pass


async def start_server(
    service: AdmissionService,
    host: str = "127.0.0.1",
    port: int = 0,
    reuse_port: bool = False,
) -> asyncio.AbstractServer:
    """Bind the TCP front end; ``port=0`` picks an ephemeral port.

    ``reuse_port=True`` binds with ``SO_REUSEPORT`` so several processes
    can listen on the same address and let the kernel load-balance
    accepted connections across them — the sharded fleet's front end
    (:mod:`repro.service.sharded`).

    Returns the asyncio server (not yet ``serve_forever``-ed); the bound
    address is ``server.sockets[0].getsockname()``.
    """

    async def handler(reader, writer):
        await _handle_connection(service, reader, writer)

    return await asyncio.start_server(
        handler, host=host, port=port, reuse_port=reuse_port or None
    )
