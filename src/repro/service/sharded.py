"""Multi-core admission serving: an SO_REUSEPORT fleet of shard processes.

The single-process :class:`~repro.service.server.AdmissionService` is
GIL-capped: one event loop answers every cached lookup, so decisions/sec
plateaus no matter how many cores the host has.  This module scales the
same service horizontally with three pieces:

* **SO_REUSEPORT accept sharding** — every shard process binds its *own*
  listening socket on the *same* ``(host, port)`` with ``SO_REUSEPORT``;
  the kernel hashes incoming connections across the listening sockets, so
  no userspace proxy or accept lock sits on the hot path.  The supervisor
  holds the port with a bound-but-never-listening placeholder socket
  (non-listening sockets receive no connections), which both reserves an
  ephemeral ``port=0`` pick and keeps the address stable while shards die
  and respawn around it.

* **Zero-copy shared surfaces** — the supervisor publishes the
  ``delay_targets`` / ``max_n2`` / ``bandwidth`` grids once into a
  :mod:`multiprocessing.shared_memory` block (:class:`SharedSurfaces`);
  every shard maps the block and wraps numpy views around it instead of
  re-parsing the JSON artifact per process.  The versioned-schema refusal
  contract travels with the descriptor: a shard refuses to attach a
  segment published for a different schema.

* **Shared fleet counters** — per-tier counters live in one int64
  shared-memory table, one row per shard (single writer per row, no
  locks).  Any shard can answer ``{"op": "stats", "scope": "fleet"}`` by
  summing rows, so aggregate observability does not require asking every
  shard.

The supervisor monitors its workers and respawns crashed shards using the
campaign :class:`~repro.runtime.resilience.RetryPolicy` machinery — the
same deterministic backoff schedule, attempt cap, and fleet-wide retry
budget that bound worst-case work under repeated faults in campaign runs.
While a shard is down the survivors keep answering (the kernel only
balances across *live* listening sockets); the conservative-deny
contract is per-process and therefore unaffected by fleet membership.

Shards die gracefully as well as violently.  Each shard installs a
SIGTERM handler that drains its server — stop accepting, answer every
in-flight request, then exit 0 — and the monitor treats exit code 0 as
intentional (no respawn), so :meth:`ShardFleet.drain_shard` /
:meth:`ShardFleet.rolling_restart` can cycle the fleet one shard at a
time without ever losing an accepted request or all capacity at once.
A per-shard control pipe carries hot surface reloads: the supervisor
publishes a new :class:`SharedSurfaces` generation, every shard attaches
(schema-refused on mismatch, exactly like the JSON loader) and flips its
service atomically between requests, and only after all shards ack does
the supervisor unlink the old generation's segment (POSIX keeps mapped
pages alive for any solve still reading them).
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import secrets
import signal
import socket
import threading
import time
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.runtime import chaos
from repro.runtime.resilience import RetryPolicy
from repro.service.server import AdmissionService, OverloadPolicy, start_server
from repro.service.surfaces import (
    SURFACE_SCHEMA,
    DecisionSurfaces,
    _params_from_dict,
    _params_to_dict,
)

__all__ = [
    "COUNTER_FIELDS",
    "FleetCounters",
    "ShardConfig",
    "ShardFleet",
    "SharedSurfaces",
    "SurfaceDescriptor",
]

#: Counter table columns, in storage order (must cover every key the
#: service increments — :attr:`AdmissionService.counters`).
COUNTER_FIELDS = (
    "surface",
    "interpolated",
    "solve",
    "degraded",
    "denied",
    "admitted",
    "shed",
    "rejected",
)

_FIELD_INDEX = {name: column for column, name in enumerate(COUNTER_FIELDS)}

#: Default respawn schedule for crashed shards: a few fast retries with
#: the campaign backoff curve, budgeted fleet-wide so a crash-looping
#: shard cannot spin the supervisor forever.
DEFAULT_RESPAWN_POLICY = RetryPolicy(
    max_attempts=5,
    backoff_base=0.05,
    backoff_factor=2.0,
    backoff_max=2.0,
    jitter=0.0,
    retry_budget=16,
)


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach without registering in the resource tracker (3.13+).

    Same idiom as :mod:`repro.runtime.columnar`: the publisher owns
    unlinking; attachers that also register the segment race it at
    interpreter exit and spew spurious warnings.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover — Python < 3.13
        return shared_memory.SharedMemory(name=name)


# ----------------------------------------------------------------------
# Zero-copy surface transport
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SurfaceDescriptor:
    """Picklable handle a shard needs to map the published surfaces.

    Carries the scalar/metadata half of the artifact in-line (params as a
    JSON blob, service rate, schema string) and points at the shared
    segment for the grids.  The ``schema`` field keeps the versioned
    refusal contract across the shared-memory transport: attach refuses a
    descriptor stamped for a different layout exactly as
    :func:`~repro.service.surfaces.load_surfaces` refuses a stale file.
    """

    shm_name: str
    schema: str
    params_json: str
    service_rate: float
    targets: int
    populations: int
    #: Monotonic reload generation; 0 is the boot artifact, each hot
    #: reload publishes the next number and every answer reports which
    #: generation produced it.
    generation: int = 0


def _grid_floats(targets: int, populations: int) -> int:
    """Total float64 slots: delay_targets + bandwidth + max_n2."""
    return targets * (populations + 2)


class SharedSurfaces:
    """One shared-memory copy of the decision grids, mapped by every shard.

    ``publish`` (supervisor side) copies the grids into a fresh segment
    and owns its lifetime; ``attach`` (shard side) wraps zero-copy numpy
    views around the same pages.  The attached
    :class:`~repro.service.surfaces.DecisionSurfaces` is plugged straight
    into an :class:`~repro.service.server.AdmissionService` — the service
    only ever reads the grids.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        descriptor: SurfaceDescriptor,
        surfaces: DecisionSurfaces,
        owner: bool,
    ):
        self._shm = shm
        self.descriptor = descriptor
        self.surfaces = surfaces
        self._owner = owner

    @classmethod
    def publish(
        cls, surfaces: DecisionSurfaces, generation: int = 0
    ) -> "SharedSurfaces":
        """Copy ``surfaces``' grids into a new shared segment (supervisor).

        ``generation`` stamps the descriptor so shards and answers can
        name which reload produced them.
        """
        targets = len(surfaces.delay_targets)
        populations = surfaces.max_population + 1
        shm = shared_memory.SharedMemory(
            create=True,
            size=_grid_floats(targets, populations) * 8,
            name=f"repro-surface-{secrets.token_hex(4)}",
        )
        block = np.ndarray(
            (_grid_floats(targets, populations),), dtype=np.float64, buffer=shm.buf
        )
        block[:targets] = np.asarray(surfaces.delay_targets, dtype=float)
        block[targets : 2 * targets] = np.asarray(surfaces.bandwidth, dtype=float)
        block[2 * targets :] = np.asarray(
            surfaces.max_n2, dtype=float
        ).reshape(-1)
        descriptor = SurfaceDescriptor(
            shm_name=shm.name,
            schema=SURFACE_SCHEMA,
            params_json=json.dumps(_params_to_dict(surfaces.params)),
            service_rate=float(surfaces.service_rate),
            targets=targets,
            populations=populations,
            generation=int(generation),
        )
        return cls(shm, descriptor, surfaces, owner=True)

    @classmethod
    def attach(cls, descriptor: SurfaceDescriptor) -> "SharedSurfaces":
        """Map the published grids (shard side), refusing stale schemas."""
        if descriptor.schema != SURFACE_SCHEMA:
            raise ValueError(
                f"unsupported surface schema {descriptor.schema!r} in shared "
                f"segment {descriptor.shm_name} (expected {SURFACE_SCHEMA}); "
                "restart the fleet from a rebuilt artifact"
            )
        shm = _attach(descriptor.shm_name)
        targets = descriptor.targets
        populations = descriptor.populations
        block = np.ndarray(
            (_grid_floats(targets, populations),), dtype=np.float64, buffer=shm.buf
        )
        surfaces = DecisionSurfaces(
            params=_params_from_dict(json.loads(descriptor.params_json)),
            service_rate=descriptor.service_rate,
            delay_targets=block[:targets],
            max_n2=block[2 * targets :].reshape(targets, populations),
            bandwidth=block[targets : 2 * targets],
        )
        surfaces._validate()
        return cls(shm, descriptor, surfaces, owner=False)

    def close(self) -> None:
        """Drop this mapping (the owner also unlinks the segment)."""
        # The surfaces' arrays are views into shm.buf; drop them first so
        # close() does not fail with exported-pointer errors.
        self.surfaces = None
        try:
            self._shm.close()
            if self._owner:
                self._shm.unlink()
        except (FileNotFoundError, BufferError):  # pragma: no cover
            pass


# ----------------------------------------------------------------------
# Shared fleet counters
# ----------------------------------------------------------------------
class _CounterMirror:
    """Single-writer counter sink for one shard's row of the fleet table."""

    def __init__(self, row: np.ndarray):
        self._row = row

    def add(self, name: str, k: int = 1) -> None:
        column = _FIELD_INDEX.get(name)
        if column is not None:
            self._row[column] += k


class _FleetView:
    """Read side of the counter table, exposed as ``service.fleet``."""

    def __init__(self, table: np.ndarray, shard_index: int):
        self._table = table
        self.shard_index = shard_index

    @property
    def shards(self) -> int:
        return int(self._table.shape[0])

    def totals(self) -> dict[str, int]:
        """Fleet-wide per-tier counters (sum over shard rows)."""
        sums = self._table.sum(axis=0)
        return {name: int(sums[i]) for i, name in enumerate(COUNTER_FIELDS)}

    def per_shard(self) -> list[dict[str, int]]:
        """One counter dict per shard row, in shard order."""
        return [
            {name: int(row[i]) for i, name in enumerate(COUNTER_FIELDS)}
            for row in self._table
        ]


class FleetCounters:
    """The shards x counters int64 table in shared memory.

    Each shard writes only its own row (no cross-process locks on the
    decision path); readers may observe a row mid-increment, which skews
    a snapshot by at most the in-flight requests — fine for stats.
    """

    def __init__(self, shm: shared_memory.SharedMemory, shards: int, owner: bool):
        self._shm = shm
        self.shards = shards
        self._owner = owner
        self.table = np.ndarray(
            (shards, len(COUNTER_FIELDS)), dtype=np.int64, buffer=shm.buf
        )
        if owner:
            self.table[:] = 0

    @classmethod
    def publish(cls, shards: int) -> "FleetCounters":
        shm = shared_memory.SharedMemory(
            create=True,
            size=shards * len(COUNTER_FIELDS) * 8,
            name=f"repro-fleet-{secrets.token_hex(4)}",
        )
        return cls(shm, shards, owner=True)

    @classmethod
    def attach(cls, name: str, shards: int) -> "FleetCounters":
        return cls(_attach(name), shards, owner=False)

    @property
    def name(self) -> str:
        """The shared-memory block name shards attach by."""
        return self._shm.name

    def mirror(self, shard_index: int) -> _CounterMirror:
        """The single-writer increment handle for one shard's row."""
        return _CounterMirror(self.table[shard_index])

    def view(self, shard_index: int) -> _FleetView:
        """A read-only aggregation view anchored at one shard."""
        return _FleetView(self.table, shard_index)

    def totals(self) -> dict[str, int]:
        """Counter totals summed across every shard's row."""
        return self.view(0).totals()

    def close(self) -> None:
        """Release the mapping; the publishing owner also unlinks it."""
        self.table = None
        try:
            self._shm.close()
            if self._owner:
                self._shm.unlink()
        except (FileNotFoundError, BufferError):  # pragma: no cover
            pass


# ----------------------------------------------------------------------
# Shard worker
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardConfig:
    """Everything a spawned shard needs, picklable for the spawn context.

    ``control`` is the shard's end of a duplex :func:`multiprocessing.Pipe`
    (connections pickle across ``spawn`` via fd passing); the supervisor
    sends hot-reload messages down it and reads the acks back.
    """

    shard_index: int
    shards: int
    host: str
    port: int
    surface: SurfaceDescriptor
    counters_name: str
    solve_timeout: float = 10.0
    solver_workers: int = 1
    exact: bool = False
    chaos_plan: object | None = None
    overload: OverloadPolicy | None = None
    control: object | None = None
    drain_grace: float = 30.0


def _handle_control(service: AdmissionService, control, message, attachments) -> None:
    """Service one supervisor control message inside the shard.

    ``("reload", descriptor, generation)`` attaches the new shared
    generation (refusing a stale schema exactly like boot attach does) and
    flips the service atomically between requests; the ack —
    ``("ok", generation)`` or ``("error", reason)`` — goes back up the
    pipe.  ``attachments`` pins every mapped generation for the process
    lifetime so numpy views held by in-flight solves never lose their
    pages.
    """
    kind = message[0]
    if kind == "reload":
        _, descriptor, generation = message
        try:
            attached = SharedSurfaces.attach(descriptor)
        except (ValueError, FileNotFoundError) as error:
            control.send(("error", str(error)))
            return
        attachments.append(attached)
        service.set_surfaces(attached.surfaces, generation)
        control.send(("ok", generation))
    else:
        control.send(("error", f"unknown control verb {kind!r}"))


async def _shard_serve(
    service: AdmissionService, config: ShardConfig, ready, attachments
) -> None:
    """One shard's serve loop: accept until SIGTERM, then drain and exit.

    SIGTERM (what :meth:`ShardFleet.drain_shard` and ``process.terminate``
    send) triggers :meth:`~repro.service.server.AdmissionServer.drain`:
    the listener closes, every in-flight request is answered, then the
    loop exits cleanly — the process leaves with exit code 0, which the
    fleet monitor reads as "intentional, do not respawn".  The control
    pipe (hot reloads) is serviced on the event loop via ``add_reader``.
    """
    server = await start_server(
        service, host=config.host, port=config.port, reuse_port=True
    )
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()

    async def drain_and_exit() -> None:
        await server.drain(config.drain_grace)
        stop.set()

    def on_sigterm() -> None:
        asyncio.ensure_future(drain_and_exit())

    loop.add_signal_handler(signal.SIGTERM, on_sigterm)

    control = config.control

    def on_control() -> None:
        try:
            while control.poll():
                _handle_control(service, control, control.recv(), attachments)
        except (EOFError, OSError):
            # The supervisor closed its end (respawn or shutdown).
            loop.remove_reader(control.fileno())

    if control is not None:
        loop.add_reader(control.fileno(), on_control)
    # Signal readiness only once the SIGTERM handler is installed: the
    # supervisor may legitimately drain a shard the instant it reports
    # ready, and a SIGTERM landing before the handler exists would kill
    # the process on the default disposition (exit -15, read as a crash).
    ready.set()
    try:
        await stop.wait()
    finally:
        if control is not None:
            try:
                loop.remove_reader(control.fileno())
            except (OSError, ValueError):  # pragma: no cover — fd already gone
                pass
        loop.remove_signal_handler(signal.SIGTERM)
        server.close()
        await server.wait_closed()


def _shard_main(config: ShardConfig, ready) -> None:
    """Entry point of one shard process (module-level for spawn pickling)."""
    if config.chaos_plan is not None:
        chaos.activate(config.chaos_plan)
    shared = SharedSurfaces.attach(config.surface)
    counters = FleetCounters.attach(config.counters_name, config.shards)
    service = AdmissionService(
        shared.surfaces,
        solve_timeout=config.solve_timeout,
        solver_workers=config.solver_workers,
        exact=config.exact,
        counters_mirror=counters.mirror(config.shard_index),
        overload=config.overload,
    )
    service.generation = config.surface.generation
    service.fleet = counters.view(config.shard_index)
    attachments = [shared]
    try:
        asyncio.run(_shard_serve(service, config, ready, attachments))
    except KeyboardInterrupt:  # pragma: no cover — operator ^C
        pass
    finally:
        service.close()


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------
@dataclass
class _ShardSlot:
    process: multiprocessing.process.BaseProcess
    ready: object
    control: object | None = None
    attempts: int = 1
    respawns: int = 0
    #: Intentionally down or being cycled — the monitor must not respawn.
    parked: bool = False


class ShardFleet:
    """Supervisor for ``shards`` SO_REUSEPORT worker processes.

    Use as a context manager::

        with ShardFleet(surfaces, shards=4) as fleet:
            host, port = fleet.address
            ...  # point any number of clients at (host, port)

    The supervisor thread respawns crashed shards on the
    :class:`~repro.runtime.resilience.RetryPolicy` backoff schedule
    (deterministic per ``(shard_index, attempt)``); when a shard exhausts
    its attempts or the fleet-wide retry budget runs dry it stays down
    and the survivors carry the traffic.
    """

    def __init__(
        self,
        surfaces: DecisionSurfaces,
        shards: int,
        host: str = "127.0.0.1",
        port: int = 0,
        solve_timeout: float = 10.0,
        solver_workers: int = 1,
        exact: bool = False,
        chaos_plan=None,
        respawn_policy: RetryPolicy = DEFAULT_RESPAWN_POLICY,
        overload: OverloadPolicy | None = None,
        drain_grace: float = 30.0,
    ):
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if drain_grace <= 0:
            raise ValueError("drain_grace must be positive")
        if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover — linux CI
            raise OSError("SO_REUSEPORT is not available on this platform")
        self.shards = shards
        self.host = host
        self._requested_port = port
        self.solve_timeout = float(solve_timeout)
        self.solver_workers = int(solver_workers)
        self.exact = bool(exact)
        self.chaos_plan = chaos_plan
        self.respawn_policy = respawn_policy
        self.overload = overload
        self.drain_grace = float(drain_grace)
        self._surfaces = surfaces
        self._generation = 0
        self._shared: SharedSurfaces | None = None
        self.counters: FleetCounters | None = None
        self._reservation: socket.socket | None = None
        self._slots: list[_ShardSlot] = []
        self._ctx = multiprocessing.get_context("spawn")
        self._stop = threading.Event()
        self._monitor: threading.Thread | None = None
        self._retries_spent = 0
        self.port: int | None = None

    # -- lifecycle -----------------------------------------------------
    def _reserve_port(self) -> int:
        """Bind (never listen) a SO_REUSEPORT socket to hold the address."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((self.host, self._requested_port))
        self._reservation = sock
        return sock.getsockname()[1]

    def _config(self, shard_index: int, control) -> ShardConfig:
        return ShardConfig(
            shard_index=shard_index,
            shards=self.shards,
            host=self.host,
            port=self.port,
            surface=self._shared.descriptor,
            counters_name=self.counters.name,
            solve_timeout=self.solve_timeout,
            solver_workers=self.solver_workers,
            exact=self.exact,
            chaos_plan=self.chaos_plan,
            overload=self.overload,
            control=control,
            drain_grace=self.drain_grace,
        )

    def _spawn(self, shard_index: int) -> tuple:
        ready = self._ctx.Event()
        parent_end, child_end = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shard_main,
            args=(self._config(shard_index, child_end), ready),
            name=f"repro-shard-{shard_index}",
            daemon=True,
        )
        process.start()
        child_end.close()  # the shard holds the only live copy now
        return process, ready, parent_end

    def start(self, ready_timeout: float = 30.0) -> "ShardFleet":
        """Publish shared state, spawn every shard, wait until all listen."""
        if self._slots:
            raise RuntimeError("fleet already started")
        self.port = self._reserve_port()
        self._shared = SharedSurfaces.publish(self._surfaces, self._generation)
        self.counters = FleetCounters.publish(self.shards)
        try:
            for index in range(self.shards):
                process, ready, control = self._spawn(index)
                self._slots.append(
                    _ShardSlot(process=process, ready=ready, control=control)
                )
            deadline = time.monotonic() + ready_timeout
            for index, slot in enumerate(self._slots):
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not slot.ready.wait(remaining):
                    raise TimeoutError(
                        f"shard {index} did not start listening within "
                        f"{ready_timeout:g}s"
                    )
        except BaseException:
            self.stop()
            raise
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-fleet-monitor", daemon=True
        )
        self._monitor.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        """The fleet's shared listening address."""
        if self.port is None:
            raise RuntimeError("fleet is not started")
        return self.host, self.port

    def pids(self) -> list[int | None]:
        """Live shard PIDs in shard order (``None`` for a dead slot)."""
        return [
            slot.process.pid if slot.process.is_alive() else None
            for slot in self._slots
        ]

    def alive(self) -> int:
        """How many shards are currently listening-or-starting."""
        return sum(1 for slot in self._slots if slot.process.is_alive())

    # -- fault handling ------------------------------------------------
    def kill_shard(self, shard_index: int) -> int:
        """SIGKILL one shard (chaos harness hook); returns the old pid."""
        process = self._slots[shard_index].process
        pid = process.pid
        if pid is not None and process.is_alive():
            os.kill(pid, signal.SIGKILL)
            process.join(timeout=10.0)
        return pid

    def _monitor_loop(self) -> None:
        policy = self.respawn_policy
        while not self._stop.wait(0.05):
            for index, slot in enumerate(self._slots):
                if slot.parked or slot.process.is_alive() or self._stop.is_set():
                    continue
                if slot.process.exitcode == 0:
                    # A clean exit is a graceful drain, not a crash: the
                    # shard answered everything it accepted and left on
                    # purpose.  Park the slot; restart_shard() revives it.
                    slot.parked = True
                    continue
                next_attempt = slot.attempts + 1
                if next_attempt > policy.max_attempts:
                    continue  # shard exhausted its attempts; stays down
                if (
                    policy.retry_budget is not None
                    and self._retries_spent >= policy.retry_budget
                ):
                    continue  # fleet-wide budget dry
                delay = policy.backoff_delay(index, next_attempt)
                if delay > 0.0 and self._stop.wait(delay):
                    return
                if self._stop.is_set():
                    return
                slot.process.join(timeout=0.1)
                if slot.control is not None:
                    slot.control.close()
                process, ready, control = self._spawn(index)
                slot.process = process
                slot.ready = ready
                slot.control = control
                slot.attempts = next_attempt
                slot.respawns += 1
                self._retries_spent += 1

    def respawns(self) -> int:
        """Total successful respawn dispatches since start."""
        return sum(slot.respawns for slot in self._slots)

    # -- graceful drain / rolling restart ------------------------------
    def drain_shard(self, shard_index: int, timeout: float = 30.0) -> bool:
        """Gracefully drain one shard: SIGTERM, wait for its clean exit.

        The shard stops accepting, answers every request it had in flight,
        and exits 0; the slot is parked so the monitor never respawns it
        (use :meth:`restart_shard` to revive it).  Survivor shards keep
        answering throughout — the kernel only balances connections across
        live listeners.  Returns ``True`` when the shard exited cleanly
        within ``timeout``.
        """
        slot = self._slots[shard_index]
        slot.parked = True
        process = slot.process
        if process.is_alive():
            process.terminate()  # SIGTERM → in-shard drain handler
            process.join(timeout)
        return (not process.is_alive()) and process.exitcode == 0

    def restart_shard(self, shard_index: int, ready_timeout: float = 30.0) -> None:
        """Spawn a fresh process into a parked/dead slot; wait until it listens.

        The replacement attaches the *current* surface generation (a drain
        + restart after a hot reload comes back on the new surfaces) and
        its attempt counter resets — a deliberate restart is not a crash.
        """
        slot = self._slots[shard_index]
        if slot.process.is_alive():
            raise RuntimeError(
                f"shard {shard_index} is still running; drain it first"
            )
        if slot.control is not None:
            slot.control.close()
        process, ready, control = self._spawn(shard_index)
        slot.process = process
        slot.ready = ready
        slot.control = control
        slot.attempts = 1
        if not ready.wait(ready_timeout):
            raise TimeoutError(
                f"restarted shard {shard_index} did not start listening "
                f"within {ready_timeout:g}s"
            )
        slot.parked = False

    def rolling_restart(
        self, drain_timeout: float = 30.0, ready_timeout: float = 30.0
    ) -> int:
        """Drain and replace every shard, one at a time.

        At most one shard is down at any moment, so an ``shards >= 2``
        fleet keeps answering throughout — the availability property the
        chaos drain scenario and the rolling-restart bench assert.
        Returns the number of shards cycled; raises on the first shard
        that fails to drain cleanly or to come back listening.
        """
        cycled = 0
        for index in range(self.shards):
            if not self.drain_shard(index, timeout=drain_timeout):
                raise RuntimeError(
                    f"shard {index} did not drain cleanly within "
                    f"{drain_timeout:g}s; aborting rolling restart"
                )
            self.restart_shard(index, ready_timeout=ready_timeout)
            cycled += 1
        return cycled

    # -- hot surface reload --------------------------------------------
    def reload_surfaces(
        self, surfaces: DecisionSurfaces, timeout: float = 30.0
    ) -> int:
        """Publish a new surface generation and flip every shard to it.

        The sequence is publish → broadcast → ack → unlink-old: the new
        grids go into a fresh shared segment, every live shard attaches it
        (schema-refused on mismatch, exactly like boot) and swaps its
        service atomically between requests, and only after *all* shards
        ack does the supervisor unlink the old generation — whose mapped
        pages POSIX keeps alive for any in-flight solve still reading
        them.  On any refusal or timeout the new segment is unlinked and
        the fleet stays on the old generation (the schema check is
        deterministic, so a refusal is unanimous — no shard flips).
        Returns the new generation number.
        """
        generation = self._generation + 1
        shared = SharedSurfaces.publish(surfaces, generation)
        try:
            self._broadcast_reload(shared.descriptor, generation, timeout)
        except BaseException:
            shared.close()
            raise
        old = self._shared
        self._shared = shared
        self._surfaces = surfaces
        self._generation = generation
        if old is not None:
            old.close()
        return generation

    def _broadcast_reload(
        self, descriptor: SurfaceDescriptor, generation: int, timeout: float
    ) -> None:
        """Send one reload to every live shard and collect every ack."""
        deadline = time.monotonic() + timeout
        live = [
            (index, slot)
            for index, slot in enumerate(self._slots)
            if slot.process.is_alive() and slot.control is not None
        ]
        for _, slot in live:
            slot.control.send(("reload", descriptor, generation))
        refusals = []
        for index, slot in live:
            remaining = max(deadline - time.monotonic(), 0.0)
            if not slot.control.poll(remaining):
                raise TimeoutError(
                    f"shard {index} did not ack the surface reload within "
                    f"{timeout:g}s"
                )
            answer = slot.control.recv()
            if answer[0] != "ok" or answer[1] != generation:
                refusals.append(f"shard {index}: {answer[1]}")
        if refusals:
            raise RuntimeError("surface reload refused: " + "; ".join(refusals))

    @property
    def generation(self) -> int:
        """The surface generation the fleet is currently serving."""
        return self._generation

    def stop(self) -> None:
        """Terminate every shard and release all shared state."""
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=10.0)
            self._monitor = None
        for slot in self._slots:
            if slot.process.is_alive():
                slot.process.terminate()
        for slot in self._slots:
            slot.process.join(timeout=10.0)
            if slot.process.is_alive():  # pragma: no cover — stuck worker
                slot.process.kill()
                slot.process.join(timeout=5.0)
            if slot.control is not None:
                slot.control.close()
        self._slots = []
        if self.counters is not None:
            self.counters.close()
            self.counters = None
        if self._shared is not None:
            self._shared.close()
            self._shared = None
        if self._reservation is not None:
            self._reservation.close()
            self._reservation = None

    def __enter__(self) -> "ShardFleet":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
