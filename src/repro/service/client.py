"""Client and closed-loop load generator for the admission service.

:class:`AdmissionClient` speaks the server's newline-delimited-JSON protocol
over one TCP connection; :func:`run_load` drives a fleet of such connections
closed-loop (each sends its next query as soon as the previous answer lands)
and reports decisions/sec with client-observed latency percentiles — the
numbers behind ``cli bench-serve`` and ``benchmarks/test_bench_service.py``.

Failures are accounted, never swallowed: :func:`run_load` optionally takes a
:class:`~repro.runtime.resilience.RetryPolicy` — the same policy object the
campaign runtime uses — and retries a query whose connection died or whose
deadline expired, reconnecting with deterministic seeded backoff (keyed by
the query's global index, so a replayed run backs off identically).  The
:class:`LoadReport` then carries ``shed`` / ``retried`` / ``failed`` counts
alongside the throughput numbers, which is how the rolling-restart and
overload scenarios prove "the fleet kept answering" quantitatively.

:func:`generate_queries` manufactures deterministic query mixes that pin a
specific answer tier (``cached`` / ``interpolated`` / ``miss``), so the
benchmarks measure one tier at a time instead of a blend.
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import dataclass, field

import numpy as np

from repro.runtime.resilience import RetryPolicy
from repro.service.surfaces import DecisionSurfaces

__all__ = [
    "AdmissionClient",
    "LoadReport",
    "generate_queries",
    "run_load",
]


class AdmissionClient:
    """One TCP connection to the admission service.

    Usage::

        client = await AdmissionClient.open("127.0.0.1", 4731)
        answer = await client.admit(3, 5, 0.02)
        await client.close()

    Requests on a single client are serialized (one in flight at a time);
    open several clients for concurrency, as :func:`run_load` does.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()

    @classmethod
    async def open(cls, host: str, port: int) -> "AdmissionClient":
        """Connect to a running service."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, payload: dict) -> dict:
        """Send one raw request object; return the response object.

        Raises ``RuntimeError`` when the server answers ``ok: false`` or
        ``ConnectionError`` when it hangs up mid-exchange.
        """
        line = json.dumps(payload).encode() + b"\n"
        async with self._lock:
            self._writer.write(line)
            await self._writer.drain()
            answer = await self._reader.readline()
        if not answer:
            raise ConnectionError("server closed the connection")
        response = json.loads(answer)
        if not response.get("ok", False):
            raise RuntimeError(
                f"service error: {response.get('error', 'unknown')!r}"
            )
        return response

    async def admit(
        self,
        n1: float,
        n2: float,
        delay_target: float,
        deadline_ms: float | None = None,
    ) -> dict:
        """Admit/deny the mix ``(n1, n2)`` under ``delay_target``.

        ``deadline_ms`` propagates the client's answer deadline to the
        server, which sheds (conservative deny, tier ``"shed"``) any live
        solve it could not finish in time instead of answering late.
        """
        payload = {"op": "admit", "n1": n1, "n2": n2, "delay_target": delay_target}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return await self.request(payload)

    async def admit_batch(
        self,
        n1: list[float],
        n2: list[float],
        delay_target: list[float],
        deadline_ms: float | None = None,
    ) -> dict:
        """Answer many admit queries in one protocol round trip.

        The response carries parallel per-row arrays (``admit``, ``tier``,
        ``max_n2``, ``estimate``) plus ``rows``; each row is identical to
        what the per-query :meth:`admit` would have answered.  The whole
        batch answers from one surface generation (``gen``).
        """
        payload = {
            "op": "admit_batch",
            "n1": list(n1),
            "n2": list(n2),
            "delay_target": list(delay_target),
        }
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return await self.request(payload)

    async def bandwidth(
        self, delay_target: float, deadline_ms: float | None = None
    ) -> dict:
        """Minimum bandwidth meeting ``delay_target`` (``null`` = refused)."""
        payload = {"op": "bandwidth", "delay_target": delay_target}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return await self.request(payload)

    async def stats(self, scope: str = "shard") -> dict:
        """Per-tier counters; ``scope="fleet"`` sums every shard's row."""
        return (await self.request({"op": "stats", "scope": scope}))["stats"]

    async def ping(self) -> dict:
        """Liveness probe."""
        return await self.request({"op": "ping"})

    async def close(self) -> None:
        """Close the connection."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def generate_queries(
    surfaces: DecisionSurfaces,
    tier: str,
    count: int,
    seed: int = 0,
) -> list[tuple[float, float, float]]:
    """Deterministic ``(n1, n2, delay_target)`` queries pinned to one tier.

    * ``"cached"`` — integral populations on exact grid delay targets:
      every query answers from the tier-1 surface lookup.
    * ``"interpolated"`` — fractional ``n1`` and/or between-row delay
      targets inside the hull: every query answers from the tier-2
      conservative interpolation.
    * ``"miss"`` — delay targets beyond the grid's last row: every query
      goes to the tier-3 live solve.

    Seeded (`numpy` PCG64), so benchmark runs replay the same mix.
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    rng = np.random.default_rng(seed)
    targets = surfaces.delay_targets
    max_pop = surfaces.max_population
    queries: list[tuple[float, float, float]] = []
    if tier == "cached":
        rows = rng.integers(0, len(targets), size=count)
        n1s = rng.integers(0, max_pop + 1, size=count)
        n2s = rng.integers(0, max_pop + 1, size=count)
        for row, n1, n2 in zip(rows, n1s, n2s):
            queries.append((float(n1), float(n2), float(targets[row])))
    elif tier == "interpolated":
        # Fractional n1 forces interpolation even on a single-row grid;
        # between-row delay targets add the second axis when available.
        n1s = rng.uniform(0.25, max(max_pop - 0.25, 0.3), size=count)
        n2s = rng.integers(0, max_pop + 1, size=count)
        if len(targets) > 1:
            rows = rng.integers(0, len(targets) - 1, size=count)
            theta = rng.uniform(0.2, 0.8, size=count)
            delays = targets[rows] + theta * (targets[rows + 1] - targets[rows])
        else:
            delays = np.full(count, float(targets[0]))
        for n1, n2, delay in zip(n1s, n2s, delays):
            queries.append((float(n1), float(n2), float(delay)))
    elif tier == "miss":
        n1s = rng.integers(0, max_pop + 1, size=count)
        n2s = rng.integers(0, max_pop + 1, size=count)
        scale = rng.uniform(1.5, 3.0, size=count)
        for n1, n2, s in zip(n1s, n2s, scale):
            queries.append((float(n1), float(n2), float(targets[-1]) * float(s)))
    else:
        raise ValueError(
            f"unknown tier {tier!r}; use 'cached', 'interpolated', or 'miss'"
        )
    return queries


@dataclass(frozen=True)
class LoadReport:
    """Aggregate result of one closed-loop load run.

    Attributes
    ----------
    requests:
        Total answered queries.
    elapsed_s:
        Wall-clock span of the run.
    decisions_per_sec:
        ``requests / elapsed_s``.
    p50_latency_ms, p99_latency_ms, max_latency_ms:
        Client-observed per-request latency percentiles (milliseconds).
    admitted, denied:
        Decision outcome counts (shed answers count as denied — they are).
    shed:
        Answers carrying tier ``"shed"`` — requests the server refused to
        queue (load shed) rather than answer late.
    retried:
        Re-sent attempts: the connection died, the open failed, or the
        per-query deadline expired, and the retry policy allowed another
        go (reconnect + deterministic backoff).
    failed:
        Queries that never got an answer after exhausting their attempts.
        Always zero without faults; the rolling-restart smoke asserts it
        stays zero *with* them.
    p99_accepted_ms:
        p99 latency over accepted (non-shed) answers only — the latency
        contract the overload bench gates (shed answers are near-instant
        and would flatter the percentile).  Batched runs whose batch
        contains any shed row are excluded from this percentile.
    tiers:
        Answer-tier histogram (``surface`` / ``interpolated`` / ``solve``
        / ``degraded`` / ``shed``) as reported per response.
    """

    requests: int
    elapsed_s: float
    decisions_per_sec: float
    p50_latency_ms: float
    p99_latency_ms: float
    max_latency_ms: float
    admitted: int
    denied: int
    shed: int = 0
    retried: int = 0
    failed: int = 0
    p99_accepted_ms: float = 0.0
    tiers: dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        """One-paragraph summary for CLI output."""
        tier_text = ", ".join(
            f"{tier}={count}" for tier, count in sorted(self.tiers.items())
        )
        return (
            f"{self.requests} decisions in {self.elapsed_s:.3f} s "
            f"({self.decisions_per_sec:,.0f}/s), latency p50 "
            f"{self.p50_latency_ms:.3f} ms / p99 {self.p99_latency_ms:.3f} ms "
            f"/ max {self.max_latency_ms:.3f} ms; "
            f"{self.admitted} admitted, {self.denied} denied, "
            f"{self.shed} shed, {self.retried} retried, "
            f"{self.failed} failed [{tier_text}]"
        )


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list.

    The rank is ``floor(q * (n - 1) + 0.5)`` — explicit round-half-up.
    ``round()`` would round half-to-even (banker's rounding), which makes
    p50 of an even-length sample flip between the two middle neighbours
    depending on the sample size's parity class, so the same latency
    distribution could report different medians across runs.
    """
    if not sorted_values:
        return 0.0
    rank = math.floor(q * (len(sorted_values) - 1) + 0.5)
    return sorted_values[min(len(sorted_values) - 1, rank)]


_ZERO_REPORT = LoadReport(
    requests=0,
    elapsed_s=0.0,
    decisions_per_sec=0.0,
    p50_latency_ms=0.0,
    p99_latency_ms=0.0,
    max_latency_ms=0.0,
    admitted=0,
    denied=0,
)

#: Transient faults worth a retry: the connection died under the query, the
#: reconnect was refused (a shard mid-drain), or the deadline expired with
#: the response still in flight (the stream is desynced either way).
_RETRYABLE = (ConnectionError, OSError, asyncio.TimeoutError)


async def run_load(
    host: str,
    port: int,
    queries: list[tuple[float, float, float]],
    connections: int = 4,
    batch_size: int = 0,
    retry: RetryPolicy | None = None,
    deadline_ms: float | None = None,
) -> LoadReport:
    """Drive ``queries`` through the service closed-loop; aggregate a report.

    The queries are dealt round-robin across ``connections`` TCP
    connections; each connection issues its next query the moment the
    previous answer arrives (closed loop, no think time), so the measured
    decisions/sec is the service's sustained throughput at that concurrency.
    Against a sharded fleet the same call measures aggregate fleet
    throughput — the kernel spreads the connections across shard processes.

    ``batch_size > 0`` switches each connection to the pipelined
    ``admit_batch`` verb, sending up to that many queries per protocol
    round trip.  Decisions/sec still counts individual query rows; the
    latency percentiles then describe whole round trips (one batch each),
    not per-row service time.

    ``retry`` (a campaign-grade :class:`RetryPolicy`) makes each query
    survive transient faults: a dead connection or expired ``deadline_ms``
    closes the stream, reconnects, sleeps the policy's deterministic
    backoff (seeded by the query's global index), and re-sends — up to
    ``retry.max_attempts`` total attempts.  Without a policy each query
    gets exactly one attempt.  Either way a query that never answers is
    *recorded* in ``LoadReport.failed``, not silently dropped.

    ``deadline_ms`` doubles as the client-side per-query timeout and the
    server-propagated shed deadline.

    An empty ``queries`` list reports all-zero (it used to divide by
    zero); ``connections`` beyond ``len(queries)`` is clamped so no dealt
    slice is empty.
    """
    if not queries:
        return _ZERO_REPORT
    if batch_size < 0:
        raise ValueError("batch_size must be non-negative")
    if deadline_ms is not None and deadline_ms <= 0:
        raise ValueError("deadline_ms must be positive (or None)")
    connections = max(1, min(connections, len(queries)))
    loop = asyncio.get_running_loop()
    max_attempts = retry.max_attempts if retry is not None else 1
    clients: list[AdmissionClient | None] = [None] * connections
    indexed = list(enumerate(queries))
    shards: list[list[tuple[int, tuple[float, float, float]]]] = [
        indexed[i::connections] for i in range(connections)
    ]
    latencies: list[float] = []
    accepted_latencies: list[float] = []
    tiers: dict[str, int] = {}
    requests = 0
    admitted = denied = retried = failed = 0

    async def attempt(slot: int, index: int, attempt_no: int, send):
        """One attempt of one query; returns the response or None (retryable).

        ``send`` issues the request against an open client.  Reconnects
        lazily; a failed attempt closes the slot's client so the next
        attempt starts from a fresh connection.
        """
        nonlocal retried
        if attempt_no > 1:
            retried += 1
            if retry is not None:
                pause = retry.backoff_delay(index, attempt_no)
                if pause > 0.0:
                    await asyncio.sleep(pause)
        try:
            if clients[slot] is None:
                clients[slot] = await AdmissionClient.open(host, port)
            call = send(clients[slot])
            if deadline_ms is not None:
                return await asyncio.wait_for(call, timeout=deadline_ms / 1e3)
            return await call
        except _RETRYABLE:
            broken, clients[slot] = clients[slot], None
            if broken is not None:
                await broken.close()
            return None

    def record(response: dict, latency: float) -> None:
        """Fold one scalar answer into the aggregate counters."""
        nonlocal requests, admitted, denied
        latencies.append(latency)
        requests += 1
        tier = response.get("tier", "unknown")
        tiers[tier] = tiers.get(tier, 0) + 1
        if tier != "shed":
            accepted_latencies.append(latency)
        if response.get("admit"):
            admitted += 1
        else:
            denied += 1

    async def drive(slot: int, shard) -> None:
        nonlocal failed
        for index, (n1, n2, delay_target) in shard:
            for attempt_no in range(1, max_attempts + 1):
                started = loop.time()
                response = await attempt(
                    slot,
                    index,
                    attempt_no,
                    lambda client: client.admit(
                        n1, n2, delay_target, deadline_ms=deadline_ms
                    ),
                )
                if response is not None:
                    record(response, loop.time() - started)
                    break
            else:
                failed += 1

    async def drive_batched(slot: int, shard) -> None:
        nonlocal requests, admitted, denied, failed
        for start in range(0, len(shard), batch_size):
            chunk = shard[start : start + batch_size]
            index = chunk[0][0]
            n1s, n2s, delays = (
                list(column) for column in zip(*(query for _, query in chunk))
            )
            for attempt_no in range(1, max_attempts + 1):
                started = loop.time()
                response = await attempt(
                    slot,
                    index,
                    attempt_no,
                    lambda client: client.admit_batch(
                        n1s, n2s, delays, deadline_ms=deadline_ms
                    ),
                )
                if response is None:
                    continue
                latency = loop.time() - started
                latencies.append(latency)
                rows = int(response.get("rows", len(chunk)))
                requests += rows
                row_tiers = response.get("tier", [])
                for tier in row_tiers:
                    tiers[tier] = tiers.get(tier, 0) + 1
                if "shed" not in row_tiers:
                    accepted_latencies.append(latency)
                hits = sum(bool(a) for a in response.get("admit", []))
                admitted += hits
                denied += rows - hits
                break
            else:
                failed += len(chunk)

    driver = drive_batched if batch_size > 0 else drive
    run_started = loop.time()
    try:
        await asyncio.gather(
            *(driver(slot, shard) for slot, shard in enumerate(shards))
        )
    finally:
        for client in clients:
            if client is not None:
                await client.close()
    elapsed = max(loop.time() - run_started, 1e-9)
    latencies.sort()
    accepted_latencies.sort()
    return LoadReport(
        requests=requests,
        elapsed_s=elapsed,
        decisions_per_sec=requests / elapsed,
        p50_latency_ms=_percentile(latencies, 0.50) * 1e3,
        p99_latency_ms=_percentile(latencies, 0.99) * 1e3,
        max_latency_ms=(latencies[-1] if latencies else 0.0) * 1e3,
        admitted=admitted,
        denied=denied,
        shed=tiers.get("shed", 0),
        retried=retried,
        failed=failed,
        p99_accepted_ms=_percentile(accepted_latencies, 0.99) * 1e3,
        tiers=tiers,
    )
