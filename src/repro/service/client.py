"""Client and closed-loop load generator for the admission service.

:class:`AdmissionClient` speaks the server's newline-delimited-JSON protocol
over one TCP connection; :func:`run_load` drives a fleet of such connections
closed-loop (each sends its next query as soon as the previous answer lands)
and reports decisions/sec with client-observed latency percentiles — the
numbers behind ``cli bench-serve`` and ``benchmarks/test_bench_service.py``.

:func:`generate_queries` manufactures deterministic query mixes that pin a
specific answer tier (``cached`` / ``interpolated`` / ``miss``), so the
benchmarks measure one tier at a time instead of a blend.
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import dataclass, field

import numpy as np

from repro.service.surfaces import DecisionSurfaces

__all__ = [
    "AdmissionClient",
    "LoadReport",
    "generate_queries",
    "run_load",
]


class AdmissionClient:
    """One TCP connection to the admission service.

    Usage::

        client = await AdmissionClient.open("127.0.0.1", 4731)
        answer = await client.admit(3, 5, 0.02)
        await client.close()

    Requests on a single client are serialized (one in flight at a time);
    open several clients for concurrency, as :func:`run_load` does.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()

    @classmethod
    async def open(cls, host: str, port: int) -> "AdmissionClient":
        """Connect to a running service."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, payload: dict) -> dict:
        """Send one raw request object; return the response object.

        Raises ``RuntimeError`` when the server answers ``ok: false`` or
        ``ConnectionError`` when it hangs up mid-exchange.
        """
        line = json.dumps(payload).encode() + b"\n"
        async with self._lock:
            self._writer.write(line)
            await self._writer.drain()
            answer = await self._reader.readline()
        if not answer:
            raise ConnectionError("server closed the connection")
        response = json.loads(answer)
        if not response.get("ok", False):
            raise RuntimeError(
                f"service error: {response.get('error', 'unknown')!r}"
            )
        return response

    async def admit(self, n1: float, n2: float, delay_target: float) -> dict:
        """Admit/deny the mix ``(n1, n2)`` under ``delay_target``."""
        return await self.request(
            {"op": "admit", "n1": n1, "n2": n2, "delay_target": delay_target}
        )

    async def admit_batch(
        self,
        n1: list[float],
        n2: list[float],
        delay_target: list[float],
    ) -> dict:
        """Answer many admit queries in one protocol round trip.

        The response carries parallel per-row arrays (``admit``, ``tier``,
        ``max_n2``, ``estimate``) plus ``rows``; each row is identical to
        what the per-query :meth:`admit` would have answered.
        """
        return await self.request(
            {
                "op": "admit_batch",
                "n1": list(n1),
                "n2": list(n2),
                "delay_target": list(delay_target),
            }
        )

    async def bandwidth(self, delay_target: float) -> dict:
        """Minimum bandwidth meeting ``delay_target`` (``null`` = refused)."""
        return await self.request({"op": "bandwidth", "delay_target": delay_target})

    async def stats(self, scope: str = "shard") -> dict:
        """Per-tier counters; ``scope="fleet"`` sums every shard's row."""
        return (await self.request({"op": "stats", "scope": scope}))["stats"]

    async def ping(self) -> dict:
        """Liveness probe."""
        return await self.request({"op": "ping"})

    async def close(self) -> None:
        """Close the connection."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def generate_queries(
    surfaces: DecisionSurfaces,
    tier: str,
    count: int,
    seed: int = 0,
) -> list[tuple[float, float, float]]:
    """Deterministic ``(n1, n2, delay_target)`` queries pinned to one tier.

    * ``"cached"`` — integral populations on exact grid delay targets:
      every query answers from the tier-1 surface lookup.
    * ``"interpolated"`` — fractional ``n1`` and/or between-row delay
      targets inside the hull: every query answers from the tier-2
      conservative interpolation.
    * ``"miss"`` — delay targets beyond the grid's last row: every query
      goes to the tier-3 live solve.

    Seeded (`numpy` PCG64), so benchmark runs replay the same mix.
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    rng = np.random.default_rng(seed)
    targets = surfaces.delay_targets
    max_pop = surfaces.max_population
    queries: list[tuple[float, float, float]] = []
    if tier == "cached":
        rows = rng.integers(0, len(targets), size=count)
        n1s = rng.integers(0, max_pop + 1, size=count)
        n2s = rng.integers(0, max_pop + 1, size=count)
        for row, n1, n2 in zip(rows, n1s, n2s):
            queries.append((float(n1), float(n2), float(targets[row])))
    elif tier == "interpolated":
        # Fractional n1 forces interpolation even on a single-row grid;
        # between-row delay targets add the second axis when available.
        n1s = rng.uniform(0.25, max(max_pop - 0.25, 0.3), size=count)
        n2s = rng.integers(0, max_pop + 1, size=count)
        if len(targets) > 1:
            rows = rng.integers(0, len(targets) - 1, size=count)
            theta = rng.uniform(0.2, 0.8, size=count)
            delays = targets[rows] + theta * (targets[rows + 1] - targets[rows])
        else:
            delays = np.full(count, float(targets[0]))
        for n1, n2, delay in zip(n1s, n2s, delays):
            queries.append((float(n1), float(n2), float(delay)))
    elif tier == "miss":
        n1s = rng.integers(0, max_pop + 1, size=count)
        n2s = rng.integers(0, max_pop + 1, size=count)
        scale = rng.uniform(1.5, 3.0, size=count)
        for n1, n2, s in zip(n1s, n2s, scale):
            queries.append((float(n1), float(n2), float(targets[-1]) * float(s)))
    else:
        raise ValueError(
            f"unknown tier {tier!r}; use 'cached', 'interpolated', or 'miss'"
        )
    return queries


@dataclass(frozen=True)
class LoadReport:
    """Aggregate result of one closed-loop load run.

    Attributes
    ----------
    requests:
        Total answered queries.
    elapsed_s:
        Wall-clock span of the run.
    decisions_per_sec:
        ``requests / elapsed_s``.
    p50_latency_ms, p99_latency_ms, max_latency_ms:
        Client-observed per-request latency percentiles (milliseconds).
    admitted, denied:
        Decision outcome counts.
    tiers:
        Answer-tier histogram (``surface`` / ``interpolated`` / ``solve``
        / ``degraded``) as reported per response.
    """

    requests: int
    elapsed_s: float
    decisions_per_sec: float
    p50_latency_ms: float
    p99_latency_ms: float
    max_latency_ms: float
    admitted: int
    denied: int
    tiers: dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        """One-paragraph summary for CLI output."""
        tier_text = ", ".join(
            f"{tier}={count}" for tier, count in sorted(self.tiers.items())
        )
        return (
            f"{self.requests} decisions in {self.elapsed_s:.3f} s "
            f"({self.decisions_per_sec:,.0f}/s), latency p50 "
            f"{self.p50_latency_ms:.3f} ms / p99 {self.p99_latency_ms:.3f} ms "
            f"/ max {self.max_latency_ms:.3f} ms; "
            f"{self.admitted} admitted, {self.denied} denied [{tier_text}]"
        )


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list.

    The rank is ``floor(q * (n - 1) + 0.5)`` — explicit round-half-up.
    ``round()`` would round half-to-even (banker's rounding), which makes
    p50 of an even-length sample flip between the two middle neighbours
    depending on the sample size's parity class, so the same latency
    distribution could report different medians across runs.
    """
    if not sorted_values:
        return 0.0
    rank = math.floor(q * (len(sorted_values) - 1) + 0.5)
    return sorted_values[min(len(sorted_values) - 1, rank)]


_ZERO_REPORT = LoadReport(
    requests=0,
    elapsed_s=0.0,
    decisions_per_sec=0.0,
    p50_latency_ms=0.0,
    p99_latency_ms=0.0,
    max_latency_ms=0.0,
    admitted=0,
    denied=0,
)


async def run_load(
    host: str,
    port: int,
    queries: list[tuple[float, float, float]],
    connections: int = 4,
    batch_size: int = 0,
) -> LoadReport:
    """Drive ``queries`` through the service closed-loop; aggregate a report.

    The queries are dealt round-robin across ``connections`` TCP
    connections; each connection issues its next query the moment the
    previous answer arrives (closed loop, no think time), so the measured
    decisions/sec is the service's sustained throughput at that concurrency.
    Against a sharded fleet the same call measures aggregate fleet
    throughput — the kernel spreads the connections across shard processes.

    ``batch_size > 0`` switches each connection to the pipelined
    ``admit_batch`` verb, sending up to that many queries per protocol
    round trip.  Decisions/sec still counts individual query rows; the
    latency percentiles then describe whole round trips (one batch each),
    not per-row service time.

    An empty ``queries`` list reports all-zero (it used to divide by
    zero); ``connections`` beyond ``len(queries)`` is clamped so no dealt
    slice is empty.
    """
    if not queries:
        return _ZERO_REPORT
    if batch_size < 0:
        raise ValueError("batch_size must be non-negative")
    connections = max(1, min(connections, len(queries)))
    loop = asyncio.get_running_loop()
    clients = [
        await AdmissionClient.open(host, port) for _ in range(connections)
    ]
    shards: list[list[tuple[float, float, float]]] = [
        queries[i::connections] for i in range(connections)
    ]
    latencies: list[float] = []
    tiers: dict[str, int] = {}
    requests = 0
    admitted = denied = 0

    async def drive(client: AdmissionClient, shard) -> None:
        nonlocal requests, admitted, denied
        for n1, n2, delay_target in shard:
            started = loop.time()
            response = await client.admit(n1, n2, delay_target)
            latencies.append(loop.time() - started)
            requests += 1
            tier = response.get("tier", "unknown")
            tiers[tier] = tiers.get(tier, 0) + 1
            if response.get("admit"):
                admitted += 1
            else:
                denied += 1

    async def drive_batched(client: AdmissionClient, shard) -> None:
        nonlocal requests, admitted, denied
        for start in range(0, len(shard), batch_size):
            chunk = shard[start : start + batch_size]
            n1s, n2s, delays = (list(column) for column in zip(*chunk))
            started = loop.time()
            response = await client.admit_batch(n1s, n2s, delays)
            latencies.append(loop.time() - started)
            requests += int(response.get("rows", len(chunk)))
            for tier in response.get("tier", []):
                tiers[tier] = tiers.get(tier, 0) + 1
            hits = sum(bool(a) for a in response.get("admit", []))
            admitted += hits
            denied += int(response.get("rows", len(chunk))) - hits

    driver = drive_batched if batch_size > 0 else drive
    run_started = loop.time()
    try:
        await asyncio.gather(
            *(driver(client, shard) for client, shard in zip(clients, shards))
        )
    finally:
        for client in clients:
            await client.close()
    elapsed = max(loop.time() - run_started, 1e-9)
    latencies.sort()
    return LoadReport(
        requests=requests,
        elapsed_s=elapsed,
        decisions_per_sec=requests / elapsed,
        p50_latency_ms=_percentile(latencies, 0.50) * 1e3,
        p99_latency_ms=_percentile(latencies, 0.99) * 1e3,
        max_latency_ms=(latencies[-1] if latencies else 0.0) * 1e3,
        admitted=admitted,
        denied=denied,
        tiers=tiers,
    )
