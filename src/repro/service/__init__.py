"""Online admission control: the production half of Section 7.

The paper's deployment story computes admissible regions *offline* and
answers each connection request with a table lookup at the interface.
:mod:`repro.control` reproduces the offline half; this package serves it:

* :mod:`repro.service.surfaces` — precomputed decision surfaces (admissible
  ``(n_1, n_2)`` boundary over a delay-target grid, plus the
  bandwidth-for-delay curve), built by fanning
  :func:`repro.runtime.analytic.run_analytic_sweep` over the grid and
  persisted as a versioned JSON artifact loaded at service boot.
* :mod:`repro.service.server` — an asyncio (stdlib-only) admission-control
  service with a three-tier answer path: vectorizable surface lookup,
  conservative interpolation between grid points, and a true solver miss
  executed off the event loop in a reusable worker pool.  Timed-out,
  poisoned, or failed solves degrade to a conservative *deny* — the service
  may refuse traffic the network could carry, but never admits traffic that
  would violate the delay target, and never hangs a request.
* :mod:`repro.service.client` — newline-delimited-JSON TCP client (single
  and pipelined-batch verbs) and the closed-loop load generator behind
  ``cli bench-serve``.
* :mod:`repro.service.sharded` — the multi-core fleet: ``SO_REUSEPORT``
  shard processes behind one address, zero-copy shared-memory surface
  grids, shared per-tier counter table, and a supervisor that respawns
  crashed shards on the :mod:`repro.runtime.resilience` backoff schedule.
"""

from repro.service.client import AdmissionClient, LoadReport, run_load
from repro.service.server import (
    AdmissionService,
    BandwidthAnswer,
    BatchDecision,
    Decision,
    start_server,
)
from repro.service.sharded import FleetCounters, ShardFleet, SharedSurfaces
from repro.service.surfaces import (
    SURFACE_SCHEMA,
    DecisionSurfaces,
    build_decision_surfaces,
    load_surfaces,
    save_surfaces,
    save_surfaces_binary,
)

__all__ = [
    "AdmissionClient",
    "AdmissionService",
    "BandwidthAnswer",
    "BatchDecision",
    "Decision",
    "DecisionSurfaces",
    "FleetCounters",
    "LoadReport",
    "SURFACE_SCHEMA",
    "ShardFleet",
    "SharedSurfaces",
    "build_decision_surfaces",
    "load_surfaces",
    "run_load",
    "save_surfaces",
    "save_surfaces_binary",
    "start_server",
]
