"""Online admission-control service: decisions/sec, one answer tier at a time.

Each benchmark boots the asyncio service with a precomputed decision
surface, drives a closed-loop query mix pinned to one answer tier through
real TCP connections (the same path ``cli bench-serve`` measures), and
reports sustained decisions/sec with client-observed latency percentiles.
The tiers are the service's whole point:

* **cached** — exact-grid lookups; the gate holds the ten-thousands/sec
  bar the precomputed-surface design exists to clear.
* **interpolated** — conservative corner bounds for off-grid queries.
* **miss** — live Solution-2 solves through the worker pool; the p99
  latency rides into the BENCH record and is gated (lower is better),
  because a slow miss path is exactly the regression the three-tier
  design guards against.

Two rungs cover the PR-9 serving work:

* **sharded cached** — an SO_REUSEPORT fleet mapping one shared-memory
  surface; the >= 3x-BENCH_7 multi-core assert is skipped (with an
  explicit warning) on boxes without enough cores, but the figure is
  always recorded so the baseline gate can pin it where it was measured.
* **batch cached** — the ``admit_batch`` verb amortizes protocol
  round-trips, so it must beat BENCH_7's scalar cached figure even on
  one core.

Two more cover the PR-10 overload hardening:

* **overload shed** — the same cached workload at 4x the connections
  with 5% live-solve queries against a one-worker solver behind a
  single-slot in-flight bound; excess solves shed as instant
  conservative denies, and *goodput* (accepted answers/sec) must stay
  within 20% of the uncontended cached rung while the accepted-request
  p99 stays bounded.
* **rolling restart** — a 2-shard fleet keeps answering a retried
  cached closed loop while every shard is drained and replaced one at a
  time; zero failed queries is the availability bar.

Request counts are floored well above ``REPRO_BENCH_SCALE`` quick runs:
throughput over a few hundred requests is dominated by connection setup
and would gate noise, not the service.
"""

from __future__ import annotations

import asyncio
import gc
import os
import threading
import time
import warnings

from _util import run_once

from repro.core.params import HAPParameters
from repro.runtime.resilience import RetryPolicy
from repro.service.client import generate_queries, run_load
from repro.service.server import AdmissionService, OverloadPolicy, start_server
from repro.service.sharded import ShardFleet
from repro.service.surfaces import build_decision_surfaces

#: BENCH_7's cached-tier decisions/sec — the reference both new serving
#: rungs are measured against (3x for the sharded fleet, 1x for batch).
BENCH7_CACHED_DECISIONS_PER_SEC = 12_053.5

_SURFACES = None


def _surfaces():
    """Build the benchmark surface once per session (probe-cache warm)."""
    global _SURFACES
    if _SURFACES is None:
        params = HAPParameters.symmetric(
            user_arrival_rate=0.05,
            user_departure_rate=0.05,
            app_arrival_rate=0.05,
            app_departure_rate=0.05,
            message_arrival_rate=0.4,
            message_service_rate=3.0,
            num_app_types=2,
            num_message_types=1,
            name="bench-serve",
        )
        _SURFACES = build_decision_surfaces(
            params, (0.6, 0.9, 1.4), max_population=8, max_workers=1
        )
    return _SURFACES


class _ServiceBenchResult:
    """Adapter exposing a LoadReport through run_once's record extractors.

    ``events_processed`` / ``wall_clock`` make ``events_per_sec`` equal the
    client-measured decisions/sec (the load run's span, not the benchmark's
    wall-clock with server boot included).
    """

    def __init__(self, report):
        self.report = report
        self.events_processed = report.requests
        self.wall_clock = report.elapsed_s


def _latency_extra(result) -> dict:
    return {
        "p50_latency_ms": round(result.report.p50_latency_ms, 3),
        "p99_latency_ms": round(result.report.p99_latency_ms, 3),
    }


def _load_without_gc(host, port, queries, connections, batch_size):
    """Run the closed loop with the cyclic collector paused.

    In a shared bench session the campaigns before this leave a large
    heap; cyclic-GC passes over it land on the event loop and halve the
    measured throughput.  Collect once, then pause the collector for the
    sub-second load run (refcounting still frees the hot-path garbage).
    """
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return asyncio.run(
            run_load(
                host,
                port,
                queries,
                connections=connections,
                batch_size=batch_size,
            )
        )
    finally:
        if gc_was_enabled:
            gc.enable()


def _serve_and_load(
    service: AdmissionService,
    queries: list,
    connections: int,
    batch_size: int = 0,
):
    """Serve on a dedicated thread/event loop; drive clients from this one.

    Sharing one loop between server and load generator halves the apparent
    throughput (every request pays both sides' scheduling on one loop); two
    loops is also what a real deployment looks like.
    """
    ready = threading.Event()
    box: dict = {}

    def serve() -> None:
        async def main():
            server = await start_server(service)
            box["port"] = server.sockets[0].getsockname()[1]
            box["loop"] = asyncio.get_running_loop()
            box["stop"] = asyncio.Event()
            ready.set()
            await box["stop"].wait()
            server.close()
            await server.wait_closed()

        asyncio.run(main())

    thread = threading.Thread(target=serve, name="bench-serve")
    thread.start()
    ready.wait()
    try:
        report = _load_without_gc(
            "127.0.0.1", box["port"], queries, connections, batch_size
        )
    finally:
        box["loop"].call_soon_threadsafe(box["stop"].set)
        thread.join()
        service.close()
    return report


def _drive(tier: str, requests: int, connections: int = 4, batch_size: int = 0):
    """One single-tier closed loop against an unbounded service."""
    surfaces = _surfaces()
    queries = generate_queries(surfaces, tier, requests)
    report = _serve_and_load(
        AdmissionService(surfaces), queries, connections, batch_size
    )
    return _ServiceBenchResult(report)


def _drive_sharded(
    tier: str, requests: int, shards: int, connections: int, batch_size: int = 0
):
    """Boot an SO_REUSEPORT fleet and drive the same closed loop at it."""
    surfaces = _surfaces()
    with ShardFleet(surfaces, shards=shards) as fleet:
        host, port = fleet.address
        queries = generate_queries(surfaces, tier, requests)
        report = _load_without_gc(host, port, queries, connections, batch_size)
    return _ServiceBenchResult(report)


def test_service_cached_decisions(benchmark, report, scale):
    requests = max(5000, int(12000 * scale))
    result = run_once(
        benchmark,
        lambda: _drive("cached", requests, connections=8),
        extra=_latency_extra,
    )
    load = result.report
    report("Service: cached-tier (surface lookup) decisions/sec", load.describe())
    assert load.tiers == {"surface": requests}
    # The headline bar: precomputed surfaces answer >= 10k decisions/sec.
    assert load.decisions_per_sec >= 10_000


def test_service_interpolated_decisions(benchmark, report, scale):
    requests = max(1000, int(4000 * scale))
    result = run_once(
        benchmark,
        lambda: _drive("interpolated", requests),
        extra=_latency_extra,
    )
    load = result.report
    report(
        "Service: interpolated-tier (conservative corner) decisions/sec",
        load.describe(),
    )
    assert load.tiers == {"interpolated": requests}
    assert load.decisions_per_sec >= 2_000


def test_service_miss_decisions(benchmark, report, scale):
    requests = max(200, int(800 * scale))
    result = run_once(
        benchmark, lambda: _drive("miss", requests), extra=_latency_extra
    )
    load = result.report
    report("Service: miss-tier (live solve) decisions/sec", load.describe())
    assert load.tiers == {"solve": requests}
    assert load.decisions_per_sec >= 100
    # A hung or runaway miss path shows up here long before the gate.
    assert load.p99_latency_ms < 250


def test_service_sharded_cached_decisions(benchmark, report, scale):
    cores = os.cpu_count() or 1
    shards = max(2, min(4, cores))
    requests = max(8000, int(24000 * scale))
    result = run_once(
        benchmark,
        lambda: _drive_sharded("cached", requests, shards=shards, connections=8),
        extra=lambda r: {**_latency_extra(r), "shards": shards, "cores": cores},
    )
    load = result.report
    report(
        f"Service: sharded cached-tier decisions/sec ({shards} shards)",
        load.describe(),
    )
    assert load.tiers == {"surface": requests}
    floor = 3.0 * BENCH7_CACHED_DECISIONS_PER_SEC
    if cores >= 4:
        # The tentpole gate: the fleet must turn spare cores into >= 3x
        # BENCH_7's single-process cached throughput.
        assert load.decisions_per_sec >= floor
    else:
        warnings.warn(
            f"sharded >=3x gate skipped: host has {cores} CPU(s), so the "
            f"fleet cannot exceed one core's throughput; recorded "
            f"{load.decisions_per_sec:.0f} decisions/sec against a "
            f"{floor:.0f}/sec multi-core bar",
            RuntimeWarning,
            stacklevel=2,
        )


def test_service_batch_cached_decisions(benchmark, report, scale):
    requests = max(20_000, int(48_000 * scale))
    result = run_once(
        benchmark,
        lambda: _drive("cached", requests, connections=4, batch_size=256),
        extra=lambda r: {**_latency_extra(r), "batch_size": 256},
    )
    load = result.report
    report(
        "Service: batched cached-tier (admit_batch, 256 rows) decisions/sec",
        load.describe(),
    )
    assert load.tiers == {"surface": requests}
    # Strictly better than BENCH_7's scalar cached rung: amortizing the
    # protocol round-trip must pay for itself even on one core.
    assert load.decisions_per_sec > BENCH7_CACHED_DECISIONS_PER_SEC


#: One live-solve query per this many in the overload mix.  5% misses
#: saturate a one-worker solver many times over (solves are milliseconds,
#: cached answers are tens of microseconds) while leaving goodput head-
#: room: shed answers do not count toward goodput, so a heavier miss
#: fraction would cap the gated ratio structurally, not behaviorally.
_MISS_EVERY = 20


def _overload_mix(surfaces, requests: int) -> list:
    """Deterministic cached/miss interleave for the overload rung.

    Every ``_MISS_EVERY``-th query is a live solve, so the one-worker
    solver saturates immediately and the bounded in-flight queue must
    shed — while the rest keep answering from the surface lookup.
    """
    misses = max(1, requests // _MISS_EVERY)
    cached = generate_queries(surfaces, "cached", requests - misses)
    miss = generate_queries(surfaces, "miss", misses)
    mix: list = []
    next_cached = next_miss = 0
    for index in range(requests):
        if index % _MISS_EVERY == _MISS_EVERY - 1 and next_miss < len(miss):
            mix.append(miss[next_miss])
            next_miss += 1
        else:
            mix.append(cached[next_cached])
            next_cached += 1
    return mix


class _OverloadBenchResult(_ServiceBenchResult):
    """Goodput adapter: events = accepted (non-shed) answers.

    ``events_per_sec`` therefore reads as shed-mode *goodput*, which is
    what the BENCH gate pins; the uncontended cached rate measured in the
    same run rides along for the in-test ratio assert.
    """

    def __init__(self, report, uncontended_per_sec: float):
        super().__init__(report)
        self.events_processed = report.requests - report.shed
        self.uncontended_per_sec = uncontended_per_sec


def _drive_overload_shed(requests: int):
    """Uncontended cached reference, then the same box at 4x connections.

    A warmup pass runs the exact miss set first so the measured phases
    see a steady-state service (cold first solves would charge one-time
    numpy setup to the overload phase), and each side keeps the better
    of two runs: the gated ratio compares steady states, not scheduler
    noise on a sub-second closed loop.
    """
    surfaces = _surfaces()
    _serve_and_load(
        AdmissionService(surfaces, solve_timeout=5.0, solver_workers=1),
        generate_queries(surfaces, "miss", max(1, requests // _MISS_EVERY))
        + generate_queries(surfaces, "cached", 1000),
        connections=8,
    )
    reference = max(
        (
            _serve_and_load(
                AdmissionService(surfaces),
                generate_queries(surfaces, "cached", requests),
                connections=8,
            )
            for _ in range(2)
        ),
        key=lambda r: r.decisions_per_sec,
    )
    # 4x the connections, 5% live-solve queries, one solver worker, and a
    # single-slot solve queue: excess misses must shed as instant
    # conservative denies instead of queuing behind the solver.
    best = None
    best_goodput = 0.0
    for _ in range(2):
        candidate = _serve_and_load(
            AdmissionService(
                surfaces,
                solve_timeout=5.0,
                solver_workers=1,
                overload=OverloadPolicy(max_inflight=1),
            ),
            _overload_mix(surfaces, requests),
            connections=32,
        )
        goodput = (candidate.requests - candidate.shed) / candidate.elapsed_s
        if best is None or goodput > best_goodput:
            best, best_goodput = candidate, goodput
    return _OverloadBenchResult(best, reference.decisions_per_sec)


def test_service_overload_shed(benchmark, report, scale):
    requests = max(10_000, int(24_000 * scale))
    result = run_once(
        benchmark,
        lambda: _drive_overload_shed(requests),
        extra=lambda r: {
            **_latency_extra(r),
            "p99_accepted_ms": round(r.report.p99_accepted_ms, 3),
            "shed_requests": r.report.shed,
            "uncontended_per_sec": round(r.uncontended_per_sec, 1),
        },
    )
    load = result.report
    goodput = (load.requests - load.shed) / load.elapsed_s
    report(
        "Service: shed-mode goodput under 4x overload (32 conns, 5% misses)",
        load.describe()
        + f"\ngoodput {goodput:,.1f}/s vs uncontended "
        f"{result.uncontended_per_sec:,.1f}/s",
    )
    assert load.failed == 0
    assert load.shed > 0  # the overload actually bit
    assert load.tiers.get("shed", 0) == load.shed
    # The headline gate: shedding keeps goodput within 20% of the
    # uncontended cached rung instead of letting queues collapse it.
    assert goodput >= 0.8 * result.uncontended_per_sec
    # Accepted answers keep a bounded tail — shed answers are instant and
    # excluded, live solves are capped by the 4-deep queue.
    assert load.p99_accepted_ms < 500.0


class _RestartBenchResult:
    """run_once adapter for the rolling-restart availability smoke."""

    def __init__(self, totals: dict, cycled: int, rounds: int, elapsed_s: float):
        self.requests = totals["requests"]
        self.failed = totals["failed"]
        self.retried = totals["retried"]
        self.cycled = cycled
        self.rounds = rounds
        self.events_processed = self.requests
        self.wall_clock = elapsed_s


def _drive_rolling_restart(requests_per_round: int):
    """Hammer a 2-shard fleet with cached load across a rolling restart."""
    surfaces = _surfaces()
    totals = {"requests": 0, "failed": 0, "retried": 0}
    with ShardFleet(surfaces, shards=2, solve_timeout=5.0) as fleet:
        host, port = fleet.address

        async def drive():
            retry = RetryPolicy(max_attempts=6, timeout=2.0, backoff_base=0.05)
            loop = asyncio.get_running_loop()
            restart = loop.run_in_executor(None, fleet.rolling_restart)
            started = time.perf_counter()
            rounds = 0
            while True:
                queries = generate_queries(
                    surfaces, "cached", requests_per_round, seed=rounds
                )
                round_report = await run_load(
                    host, port, queries, connections=4, retry=retry
                )
                totals["requests"] += round_report.requests
                totals["failed"] += round_report.failed
                totals["retried"] += round_report.retried
                rounds += 1
                if restart.done():
                    break
            cycled = await restart
            return cycled, rounds, time.perf_counter() - started

        cycled, rounds, elapsed = asyncio.run(drive())
    return _RestartBenchResult(totals, cycled, rounds, elapsed)


def test_service_rolling_restart_availability(benchmark, report, scale):
    per_round = max(200, int(800 * scale))
    result = run_once(
        benchmark,
        lambda: _drive_rolling_restart(per_round),
        extra=lambda r: {
            "failed_requests": r.failed,
            "retried_requests": r.retried,
            "restarts_cycled": r.cycled,
            "load_rounds": r.rounds,
        },
    )
    report(
        "Service: availability across a rolling restart (2 shards)",
        f"{result.requests} cached answers over {result.rounds} round(s) "
        f"while {result.cycled} shard(s) drained and respawned; "
        f"{result.failed} failed, {result.retried} retried",
    )
    assert result.cycled == 2
    # The availability bar: the fleet answered every query throughout —
    # retries absorb the one-shard-down windows, nothing is lost.
    assert result.failed == 0
    assert result.requests > 0
