"""Online admission-control service: decisions/sec, one answer tier at a time.

Each benchmark boots the asyncio service with a precomputed decision
surface, drives a closed-loop query mix pinned to one answer tier through
real TCP connections (the same path ``cli bench-serve`` measures), and
reports sustained decisions/sec with client-observed latency percentiles.
The tiers are the service's whole point:

* **cached** — exact-grid lookups; the gate holds the ten-thousands/sec
  bar the precomputed-surface design exists to clear.
* **interpolated** — conservative corner bounds for off-grid queries.
* **miss** — live Solution-2 solves through the worker pool; the p99
  latency rides into the BENCH record and is gated (lower is better),
  because a slow miss path is exactly the regression the three-tier
  design guards against.

Two rungs cover the PR-9 serving work:

* **sharded cached** — an SO_REUSEPORT fleet mapping one shared-memory
  surface; the >= 3x-BENCH_7 multi-core assert is skipped (with an
  explicit warning) on boxes without enough cores, but the figure is
  always recorded so the baseline gate can pin it where it was measured.
* **batch cached** — the ``admit_batch`` verb amortizes protocol
  round-trips, so it must beat BENCH_7's scalar cached figure even on
  one core.

Request counts are floored well above ``REPRO_BENCH_SCALE`` quick runs:
throughput over a few hundred requests is dominated by connection setup
and would gate noise, not the service.
"""

from __future__ import annotations

import asyncio
import gc
import os
import threading
import warnings

from _util import run_once

from repro.core.params import HAPParameters
from repro.service.client import generate_queries, run_load
from repro.service.server import AdmissionService, start_server
from repro.service.sharded import ShardFleet
from repro.service.surfaces import build_decision_surfaces

#: BENCH_7's cached-tier decisions/sec — the reference both new serving
#: rungs are measured against (3x for the sharded fleet, 1x for batch).
BENCH7_CACHED_DECISIONS_PER_SEC = 12_053.5

_SURFACES = None


def _surfaces():
    """Build the benchmark surface once per session (probe-cache warm)."""
    global _SURFACES
    if _SURFACES is None:
        params = HAPParameters.symmetric(
            user_arrival_rate=0.05,
            user_departure_rate=0.05,
            app_arrival_rate=0.05,
            app_departure_rate=0.05,
            message_arrival_rate=0.4,
            message_service_rate=3.0,
            num_app_types=2,
            num_message_types=1,
            name="bench-serve",
        )
        _SURFACES = build_decision_surfaces(
            params, (0.6, 0.9, 1.4), max_population=8, max_workers=1
        )
    return _SURFACES


class _ServiceBenchResult:
    """Adapter exposing a LoadReport through run_once's record extractors.

    ``events_processed`` / ``wall_clock`` make ``events_per_sec`` equal the
    client-measured decisions/sec (the load run's span, not the benchmark's
    wall-clock with server boot included).
    """

    def __init__(self, report):
        self.report = report
        self.events_processed = report.requests
        self.wall_clock = report.elapsed_s


def _latency_extra(result) -> dict:
    return {
        "p50_latency_ms": round(result.report.p50_latency_ms, 3),
        "p99_latency_ms": round(result.report.p99_latency_ms, 3),
    }


def _load_without_gc(host, port, queries, connections, batch_size):
    """Run the closed loop with the cyclic collector paused.

    In a shared bench session the campaigns before this leave a large
    heap; cyclic-GC passes over it land on the event loop and halve the
    measured throughput.  Collect once, then pause the collector for the
    sub-second load run (refcounting still frees the hot-path garbage).
    """
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return asyncio.run(
            run_load(
                host,
                port,
                queries,
                connections=connections,
                batch_size=batch_size,
            )
        )
    finally:
        if gc_was_enabled:
            gc.enable()


def _drive(tier: str, requests: int, connections: int = 4, batch_size: int = 0):
    """Serve on a dedicated thread/event loop; drive clients from this one.

    Sharing one loop between server and load generator halves the apparent
    throughput (every request pays both sides' scheduling on one loop); two
    loops is also what a real deployment looks like.
    """
    surfaces = _surfaces()
    service = AdmissionService(surfaces)
    ready = threading.Event()
    box: dict = {}

    def serve() -> None:
        async def main():
            server = await start_server(service)
            box["port"] = server.sockets[0].getsockname()[1]
            box["loop"] = asyncio.get_running_loop()
            box["stop"] = asyncio.Event()
            ready.set()
            await box["stop"].wait()
            server.close()
            await server.wait_closed()

        asyncio.run(main())

    thread = threading.Thread(target=serve, name="bench-serve")
    thread.start()
    ready.wait()
    try:
        queries = generate_queries(surfaces, tier, requests)
        report = _load_without_gc(
            "127.0.0.1", box["port"], queries, connections, batch_size
        )
    finally:
        box["loop"].call_soon_threadsafe(box["stop"].set)
        thread.join()
        service.close()
    return _ServiceBenchResult(report)


def _drive_sharded(
    tier: str, requests: int, shards: int, connections: int, batch_size: int = 0
):
    """Boot an SO_REUSEPORT fleet and drive the same closed loop at it."""
    surfaces = _surfaces()
    with ShardFleet(surfaces, shards=shards) as fleet:
        host, port = fleet.address
        queries = generate_queries(surfaces, tier, requests)
        report = _load_without_gc(host, port, queries, connections, batch_size)
    return _ServiceBenchResult(report)


def test_service_cached_decisions(benchmark, report, scale):
    requests = max(5000, int(12000 * scale))
    result = run_once(
        benchmark,
        lambda: _drive("cached", requests, connections=8),
        extra=_latency_extra,
    )
    load = result.report
    report("Service: cached-tier (surface lookup) decisions/sec", load.describe())
    assert load.tiers == {"surface": requests}
    # The headline bar: precomputed surfaces answer >= 10k decisions/sec.
    assert load.decisions_per_sec >= 10_000


def test_service_interpolated_decisions(benchmark, report, scale):
    requests = max(1000, int(4000 * scale))
    result = run_once(
        benchmark,
        lambda: _drive("interpolated", requests),
        extra=_latency_extra,
    )
    load = result.report
    report(
        "Service: interpolated-tier (conservative corner) decisions/sec",
        load.describe(),
    )
    assert load.tiers == {"interpolated": requests}
    assert load.decisions_per_sec >= 2_000


def test_service_miss_decisions(benchmark, report, scale):
    requests = max(200, int(800 * scale))
    result = run_once(
        benchmark, lambda: _drive("miss", requests), extra=_latency_extra
    )
    load = result.report
    report("Service: miss-tier (live solve) decisions/sec", load.describe())
    assert load.tiers == {"solve": requests}
    assert load.decisions_per_sec >= 100
    # A hung or runaway miss path shows up here long before the gate.
    assert load.p99_latency_ms < 250


def test_service_sharded_cached_decisions(benchmark, report, scale):
    cores = os.cpu_count() or 1
    shards = max(2, min(4, cores))
    requests = max(8000, int(24000 * scale))
    result = run_once(
        benchmark,
        lambda: _drive_sharded("cached", requests, shards=shards, connections=8),
        extra=lambda r: {**_latency_extra(r), "shards": shards, "cores": cores},
    )
    load = result.report
    report(
        f"Service: sharded cached-tier decisions/sec ({shards} shards)",
        load.describe(),
    )
    assert load.tiers == {"surface": requests}
    floor = 3.0 * BENCH7_CACHED_DECISIONS_PER_SEC
    if cores >= 4:
        # The tentpole gate: the fleet must turn spare cores into >= 3x
        # BENCH_7's single-process cached throughput.
        assert load.decisions_per_sec >= floor
    else:
        warnings.warn(
            f"sharded >=3x gate skipped: host has {cores} CPU(s), so the "
            f"fleet cannot exceed one core's throughput; recorded "
            f"{load.decisions_per_sec:.0f} decisions/sec against a "
            f"{floor:.0f}/sec multi-core bar",
            RuntimeWarning,
            stacklevel=2,
        )


def test_service_batch_cached_decisions(benchmark, report, scale):
    requests = max(20_000, int(48_000 * scale))
    result = run_once(
        benchmark,
        lambda: _drive("cached", requests, connections=4, batch_size=256),
        extra=lambda r: {**_latency_extra(r), "batch_size": 256},
    )
    load = result.report
    report(
        "Service: batched cached-tier (admit_batch, 256 rows) decisions/sec",
        load.describe(),
    )
    assert load.tiers == {"surface": requests}
    # Strictly better than BENCH_7's scalar cached rung: amortizing the
    # protocol round-trip must pay for itself even on one core.
    assert load.decisions_per_sec > BENCH7_CACHED_DECISIONS_PER_SEC
