"""Shared benchmark plumbing.

Each benchmark regenerates one of the paper's tables or figures and reports
its rows through the ``report`` fixture; the collected reports are printed
in the terminal summary, so ``pytest benchmarks/ --benchmark-only`` emits
the paper-shaped numbers alongside the timing table.

``REPRO_BENCH_SCALE`` (default 1.0) scales simulation horizons: 0.1 gives a
quick smoke pass, 4 gives tighter statistics than EXPERIMENTS.md used.
"""

from __future__ import annotations

import pytest

from repro.experiments.configs import bench_scale

_REPORTS: list[tuple[str, str]] = []


@pytest.fixture
def report():
    """Collect a titled text block for the terminal summary."""

    def add(title: str, text: str) -> None:
        _REPORTS.append((title, text))

    return add


@pytest.fixture
def scale() -> float:
    """The configured horizon scale factor."""
    return bench_scale()


def pytest_terminal_summary(terminalreporter):
    for title, text in _REPORTS:
        terminalreporter.write_sep("=", title)
        for line in text.splitlines():
            terminalreporter.write_line(line)
