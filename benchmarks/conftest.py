"""Shared benchmark plumbing.

Each benchmark regenerates one of the paper's tables or figures and reports
its rows through the ``report`` fixture; the collected reports are printed
in the terminal summary, so ``pytest benchmarks/ --benchmark-only`` emits
the paper-shaped numbers alongside the timing table.

``REPRO_BENCH_SCALE`` (default 1.0) scales simulation horizons: 0.1 gives a
quick smoke pass, 4 gives tighter statistics than EXPERIMENTS.md used.

Perf trajectory: every ``run_once`` call registers (wall-clock,
``Simulator.events_processed``, events/sec, worker count, peak RSS) for
its benchmark, and the session writes them as one JSON document —
``BENCH_10.json`` at the repo root by default, or wherever
``REPRO_BENCH_JSON`` points.  "Events" are whatever unit the benchmark
processes: simulator events for the campaigns, interarrival-grid
evaluations for the analytic-kernel and scale-ladder benchmarks,
admission decisions for the service benchmarks (which also attach
client-observed latency percentiles).  CI's
quick-scale job diffs that file against ``benchmarks/bench_baseline.json``
(see ``scripts/check_bench_regression.py``); schema documented in
EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

import _util
from repro.experiments.configs import bench_scale

_REPORTS: list[tuple[str, str]] = []

#: Default perf-trajectory output: BENCH_10.json next to this repo's root.
_DEFAULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_10.json"


@pytest.fixture
def report():
    """Collect a titled text block for the terminal summary."""

    def add(title: str, text: str) -> None:
        _REPORTS.append((title, text))

    return add


@pytest.fixture
def scale() -> float:
    """The configured horizon scale factor."""
    return bench_scale()


def _write_bench_json(records: list[dict]) -> Path:
    path = Path(os.environ.get("REPRO_BENCH_JSON", _DEFAULT_JSON))
    document = {
        "schema": "repro-bench/1",
        "created_unix": int(time.time()),
        "scale": bench_scale(),
        "workers_env": os.environ.get("REPRO_BENCH_WORKERS"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": records,
    }
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def pytest_terminal_summary(terminalreporter):
    for title, text in _REPORTS:
        terminalreporter.write_sep("=", title)
        for line in text.splitlines():
            terminalreporter.write_line(line)
    records = _util.drain_records()
    if records:
        path = _write_bench_json(records)
        terminalreporter.write_sep("=", "perf trajectory")
        terminalreporter.write_line(
            f"wrote {len(records)} benchmark record(s) to {path}"
        )
