"""Figure 12 — average delay versus message arrival rate at mu'' = 17.

Paper: the load is swept through the user arrival rate; the HAP-vs-Poisson
gap grows sharply with lambda-bar, mirroring Figure 11 from the other axis.
"""

from __future__ import annotations

from _util import run_once

from repro.experiments.fig11_12 import run_fig12


def test_fig12_delay_vs_arrival_rate(benchmark, report, scale):
    points = run_once(
        benchmark,
        lambda: run_fig12(
            user_rates=(0.002, 0.003, 0.004, 0.0055, 0.007, 0.008),
            horizon=300_000.0 * scale,
        ),
    )
    report(
        "Figure 12 (paper: delay vs lambda-bar at mu''=17; gap grows with load)",
        "\n".join(point.describe() for point in points),
    )
    # Exact delay grows with load, and the HAP/Poisson gap widens.
    delays = [point.delay_exact for point in points]
    assert all(a < b for a, b in zip(delays, delays[1:]))
    ratios = [point.ratio_vs_mm1 for point in points]
    assert all(a < b for a, b in zip(ratios, ratios[1:]))
    assert ratios[0] < 2.0  # gentle at light load
