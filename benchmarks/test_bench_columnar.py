"""Columnar engine benches: headline throughput and heap agreement.

The columnar engine (``repro.sim.columnar``) generates each replication's
whole M/HAP-approx arrival stream as numpy arrays and solves the queue
with the chunked Lindley recursion, so its events/sec ceiling is memory
bandwidth, not Python-level event dispatch.  Four benches:

* ``test_columnar_headline_campaign`` — the BENCH_6 throughput gate: the
  headline campaign (4 seeds, shared-memory result transport) must sustain
  >= 1M events/sec where the heap engine managed ~273k (BENCH_4).
* ``test_columnar_batched_headline_campaign`` — the BENCH_8 gate: a
  32-seed campaign through the replication-batched engine (all rows
  advanced in lock-step as 2-D arrays, one kernel call per worker) must
  sustain >= 4M events/sec at full scale — >= 3x the single-replication
  columnar throughput recorded in BENCH_6/ROADMAP (~1.24M).  The gate
  also proves the batching is free of statistical cost: row 0 must be
  bit-identical to a plain sequential columnar run of the same seed.
* ``test_columnar_vs_heap_agreement`` / the batched variant — the
  correctness side of the same coin: heap and columnar campaigns over
  identical parameters must agree on mean delay within 3 sigma of their
  combined replication standard errors.  (The engines draw from different
  determinism domains, so the comparison is statistical, never bitwise.)
"""

from __future__ import annotations

import math
import os
import time
from functools import partial

from _util import run_once

from repro.experiments.configs import base_parameters
from repro.experiments.headline import run_headline_columnar_campaign
from repro.runtime import ParallelReplicator
from repro.sim.replication import simulate_hap_mm1


def _bench_workers() -> int | None:
    workers_env = os.environ.get("REPRO_BENCH_WORKERS")
    return int(workers_env) if workers_env else None


def test_columnar_headline_campaign(benchmark, report, scale):
    campaign = run_once(
        benchmark,
        lambda: run_headline_columnar_campaign(
            num_replications=4,
            sim_horizon=400_000.0 * scale,
            max_workers=_bench_workers(),
        ),
    )
    delay = campaign.summaries()["mean_delay"]
    report(
        "Columnar headline campaign (4-seed M/HAP-approx, shared-memory "
        "transport; BENCH_6 gate: >= 1M events/s)",
        f"mean delay {delay.mean:.4f} +/- {delay.half_width():.2g} s, "
        f"{campaign.events_per_second:,.0f} events/s "
        f"({campaign.max_workers} worker(s), "
        f"{campaign.events_processed:,} events)",
    )
    assert campaign.failures == ()
    assert campaign.completed == 4
    # The hard throughput floor only binds at benchmark scale: tiny smoke
    # horizons amortise less setup, and the JSON gate re-checks it anyway.
    if scale >= 1.0:
        assert campaign.events_per_second >= 1_000_000


def test_columnar_batched_headline_campaign(benchmark, report, scale):
    from repro.sim.columnar import simulate_hap_approx_columnar

    params = base_parameters(service_rate=20.0)
    horizon = 400_000.0 * scale

    # Reference point, outside the benchmark timer: one sequential columnar
    # replication of the campaign's first seed.  Its throughput anchors the
    # recorded speedup, and its result doubles as the bit-identity witness.
    started = time.perf_counter()
    sequential = simulate_hap_approx_columnar(params, horizon, seed=7)
    single_rep_rate = sequential.events_processed / (
        time.perf_counter() - started
    )

    def speedup(campaign):
        return {
            "single_rep_events_per_sec": round(single_rep_rate, 1),
            "speedup_vs_single_rep": round(
                campaign.events_per_second / single_rep_rate, 2
            ),
        }

    campaign = run_once(
        benchmark,
        lambda: run_headline_columnar_campaign(
            num_replications=32,
            sim_horizon=horizon,
            max_workers=_bench_workers(),
            engine="columnar-batched",
        ),
        extra=speedup,
    )
    delay = campaign.summaries()["mean_delay"]
    report(
        "Batched columnar headline campaign (32-seed lock-step 2-D kernel; "
        "BENCH_8 gate: >= 4M events/s at full scale)",
        f"mean delay {delay.mean:.4f} +/- {delay.half_width():.2g} s, "
        f"{campaign.events_per_second:,.0f} events/s "
        f"({campaign.events_per_second / single_rep_rate:.2f}x one "
        f"sequential columnar replication at {single_rep_rate:,.0f} ev/s; "
        f"{campaign.max_workers} worker(s), "
        f"{campaign.events_processed:,} events)",
    )
    assert campaign.failures == ()
    assert campaign.completed == 32
    # Lock-step batching must not change a single bit: the campaign's first
    # row is the same replication the sequential engine just ran.
    first = campaign.results[0]
    for field in ("mean_delay", "sigma", "utilization", "messages_served"):
        assert getattr(first, field) == getattr(sequential, field)
    # The hard throughput floor only binds at benchmark scale (cf. the
    # columnar gate above): >= 4M ev/s is >= 3x the ~1.24M single-rep
    # columnar throughput BENCH_6 recorded on this container class.
    if scale >= 1.0:
        assert campaign.events_per_second >= 4_000_000


def test_columnar_vs_heap_agreement(benchmark, report, scale):
    params = base_parameters(service_rate=20.0)
    horizon = 100_000.0 * scale
    workers = _bench_workers()

    def both():
        heap = ParallelReplicator(max_workers=workers).run(
            partial(
                simulate_hap_mm1, params, horizon, rng_mode="batched"
            ),
            4,
            base_seed=7,
        )
        columnar = run_headline_columnar_campaign(
            num_replications=4, sim_horizon=horizon, max_workers=workers
        )
        return heap, columnar

    heap, columnar = run_once(benchmark, both)
    heap_delay = heap.summaries()["mean_delay"]
    columnar_delay = columnar.summaries()["mean_delay"]
    gap = abs(columnar_delay.mean - heap_delay.mean)
    combined_se = math.hypot(
        heap_delay.std / math.sqrt(len(heap_delay.values)),
        columnar_delay.std / math.sqrt(len(columnar_delay.values)),
    )
    report(
        "Columnar vs heap mean-delay agreement (4 seeds each, 3-sigma "
        "replication gate)",
        f"heap {heap_delay.mean:.4f} s vs columnar "
        f"{columnar_delay.mean:.4f} s; gap {gap:.4f} vs "
        f"3*SE {3.0 * combined_se:.4f} "
        f"(heap {heap.events_per_second:,.0f} ev/s, "
        f"columnar {columnar.events_per_second:,.0f} ev/s)",
    )
    assert heap.failures == () and columnar.failures == ()
    assert gap <= 3.0 * combined_se


def test_columnar_batched_vs_heap_agreement(benchmark, report, scale):
    params = base_parameters(service_rate=20.0)
    horizon = 100_000.0 * scale
    workers = _bench_workers()

    def both():
        heap = ParallelReplicator(max_workers=workers).run(
            partial(
                simulate_hap_mm1, params, horizon, rng_mode="batched"
            ),
            4,
            base_seed=7,
        )
        batched = run_headline_columnar_campaign(
            num_replications=4,
            sim_horizon=horizon,
            max_workers=workers,
            engine="columnar-batched",
        )
        return heap, batched

    heap, batched = run_once(benchmark, both)
    heap_delay = heap.summaries()["mean_delay"]
    batched_delay = batched.summaries()["mean_delay"]
    gap = abs(batched_delay.mean - heap_delay.mean)
    combined_se = math.hypot(
        heap_delay.std / math.sqrt(len(heap_delay.values)),
        batched_delay.std / math.sqrt(len(batched_delay.values)),
    )
    report(
        "Batched columnar vs heap mean-delay agreement (4 seeds each, "
        "3-sigma replication gate)",
        f"heap {heap_delay.mean:.4f} s vs batched "
        f"{batched_delay.mean:.4f} s; gap {gap:.4f} vs "
        f"3*SE {3.0 * combined_se:.4f} "
        f"(heap {heap.events_per_second:,.0f} ev/s, "
        f"batched {batched.events_per_second:,.0f} ev/s)",
    )
    assert heap.failures == () and batched.failures == ()
    assert gap <= 3.0 * combined_se
