"""Columnar engine benches: headline throughput and heap agreement.

The columnar engine (``repro.sim.columnar``) generates each replication's
whole M/HAP-approx arrival stream as numpy arrays and solves the queue
with the chunked Lindley recursion, so its events/sec ceiling is memory
bandwidth, not Python-level event dispatch.  Two benches:

* ``test_columnar_headline_campaign`` — the BENCH_6 throughput gate: the
  headline campaign (4 seeds, shared-memory result transport) must sustain
  >= 1M events/sec where the heap engine managed ~273k (BENCH_4).
* ``test_columnar_vs_heap_agreement`` — the correctness side of the same
  coin: heap and columnar campaigns over identical parameters must agree
  on mean delay within 3 sigma of their combined replication standard
  errors.  (The engines draw from different determinism domains, so the
  comparison is statistical, never bitwise.)
"""

from __future__ import annotations

import math
import os
from functools import partial

from _util import run_once

from repro.experiments.configs import base_parameters
from repro.experiments.headline import run_headline_columnar_campaign
from repro.runtime import ParallelReplicator
from repro.sim.replication import simulate_hap_mm1


def _bench_workers() -> int | None:
    workers_env = os.environ.get("REPRO_BENCH_WORKERS")
    return int(workers_env) if workers_env else None


def test_columnar_headline_campaign(benchmark, report, scale):
    campaign = run_once(
        benchmark,
        lambda: run_headline_columnar_campaign(
            num_replications=4,
            sim_horizon=400_000.0 * scale,
            max_workers=_bench_workers(),
        ),
    )
    delay = campaign.summaries()["mean_delay"]
    report(
        "Columnar headline campaign (4-seed M/HAP-approx, shared-memory "
        "transport; BENCH_6 gate: >= 1M events/s)",
        f"mean delay {delay.mean:.4f} +/- {delay.half_width():.2g} s, "
        f"{campaign.events_per_second:,.0f} events/s "
        f"({campaign.max_workers} worker(s), "
        f"{campaign.events_processed:,} events)",
    )
    assert campaign.failures == ()
    assert campaign.completed == 4
    # The hard throughput floor only binds at benchmark scale: tiny smoke
    # horizons amortise less setup, and the JSON gate re-checks it anyway.
    if scale >= 1.0:
        assert campaign.events_per_second >= 1_000_000


def test_columnar_vs_heap_agreement(benchmark, report, scale):
    params = base_parameters(service_rate=20.0)
    horizon = 100_000.0 * scale
    workers = _bench_workers()

    def both():
        heap = ParallelReplicator(max_workers=workers).run(
            partial(
                simulate_hap_mm1, params, horizon, rng_mode="batched"
            ),
            4,
            base_seed=7,
        )
        columnar = run_headline_columnar_campaign(
            num_replications=4, sim_horizon=horizon, max_workers=workers
        )
        return heap, columnar

    heap, columnar = run_once(benchmark, both)
    heap_delay = heap.summaries()["mean_delay"]
    columnar_delay = columnar.summaries()["mean_delay"]
    gap = abs(columnar_delay.mean - heap_delay.mean)
    combined_se = math.hypot(
        heap_delay.std / math.sqrt(len(heap_delay.values)),
        columnar_delay.std / math.sqrt(len(columnar_delay.values)),
    )
    report(
        "Columnar vs heap mean-delay agreement (4 seeds each, 3-sigma "
        "replication gate)",
        f"heap {heap_delay.mean:.4f} s vs columnar "
        f"{columnar_delay.mean:.4f} s; gap {gap:.4f} vs "
        f"3*SE {3.0 * combined_se:.4f} "
        f"(heap {heap.events_per_second:,.0f} ev/s, "
        f"columnar {columnar.events_per_second:,.0f} ev/s)",
    )
    assert heap.failures == () and columnar.failures == ()
    assert gap <= 3.0 * combined_se
