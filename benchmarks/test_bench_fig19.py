"""Figure 19 and the Section-5 rate studies.

Paper: perturbing any level's arrival rate by ±5 % moves lambda-bar
linearly, but at equal lambda-bar the perturbation of *lower* levels leaves
more burstiness (higher delay).  Scaling a level's arrival and departure
together keeps lambda-bar fixed and shortens bursts (+10 % → ≈ −1 % delay);
our reproduction shows that effect requires Solution 0 — Solutions 1/2 only
see rate ratios.
"""

from __future__ import annotations

from _util import run_once

from repro.experiments.fig19_20 import run_fig19, run_sec5_joint_scaling


def test_fig19_level_sweeps(benchmark, report):
    points = run_once(benchmark, lambda: run_fig19())
    by_level = {}
    for point in points:
        by_level.setdefault(point.level, []).append(point)
    rows = []
    for level, level_points in by_level.items():
        rows.extend(p.describe() for p in level_points)
    report(
        "Figure 19 (paper: lower-level rates drive burstiness at equal rate)",
        "\n".join(rows),
    )
    # At the same raised lambda-bar, the message-level perturbation is the
    # burstiest and the user-level the least.
    up = {p.level: p.delay for p in points if p.factor == 1.15}
    assert up["message"] >= up["application"] >= up["user"]
    down = {p.level: p.delay for p in points if p.factor == 0.85}
    assert down["message"] <= down["application"] <= down["user"]


def test_sec5_joint_scaling(benchmark, report):
    points = run_once(benchmark, lambda: run_sec5_joint_scaling())
    report(
        "Section 5 joint scaling (paper: +10% both => about -1% delay; "
        "Solutions 1/2 are invariant by construction)",
        "\n".join(point.describe() for point in points),
    )
    rates = [point.lambda_bar for point in points]
    assert max(rates) - min(rates) < 1e-9 * max(rates)
    delays = [point.delay for point in points]
    # Faster churn, same load, shorter bursts: delay decreases in factor.
    assert delays[0] > delays[1] > delays[2]
    relative_drop = (delays[1] - delays[2]) / delays[1]
    assert 0.001 < relative_drop < 0.05  # paper: about 1 %
