"""Section-4 headline: Solutions 0/1/2, simulation and M/M/1 side by side.

Paper: lambda-bar = 8.25, sigma = 0.50, rho = 0.42; delay 0.55 (Solution 0
and simulation) vs 0.10 (Solutions 1/2) vs 0.085 (M/M/1) — a 6.47x gap that
Poisson modelling misses entirely.

Two benches: the legacy single-seed cross-method comparison, and the
replicated campaign that fans simulation seeds over a process pool
(``REPRO_BENCH_WORKERS`` overrides the worker count; statistics are
bit-identical at any worker count, only the wall-clock changes).
"""

from __future__ import annotations

import os
from functools import partial

from _util import run_once

from repro.experiments.configs import base_parameters
from repro.experiments.headline import run_headline, run_headline_campaign
from repro.runtime import ParallelReplicator
from repro.sim.replication import simulate_hap_mm1


def _bench_workers() -> int | None:
    workers_env = os.environ.get("REPRO_BENCH_WORKERS")
    return int(workers_env) if workers_env else None


def test_headline_cross_method(benchmark, report, scale):
    result = run_once(
        benchmark, lambda: run_headline(sim_horizon=400_000.0 * scale)
    )
    report(
        "Section 4 headline (paper: T0=0.55, T12=0.10, Tmm1=0.085, "
        "sigma=0.50, rho=0.42)",
        result.describe(),
    )
    # Shape assertions: the orderings the paper's argument rests on.
    assert result.delay_solution0 > 3.0 * result.delay_mm1
    assert result.delay_solution2 < result.delay_solution0
    assert abs(result.sigma_solution0 - 0.5) < 0.05


def test_headline_replicated_campaign(benchmark, report, scale):
    workers = _bench_workers()
    result = run_once(
        benchmark,
        lambda: run_headline_campaign(
            num_replications=4,
            sim_horizon=100_000.0 * scale,
            max_workers=workers,
        ),
    )
    report(
        "Section 4 headline, replicated campaign "
        "(simulation column = 4-seed mean; parallel replication runtime)",
        result.describe(),
    )
    assert result.campaign.failures == ()
    assert result.campaign.completed == 4
    assert result.headline.delay_solution0 > 3.0 * result.headline.delay_mm1


def test_throughput_batched_campaign(benchmark, report, scale):
    """Simulation-only campaign in ``rng_mode="batched"``.

    The perf-trajectory counterpart of the headline campaign: same
    parameters, seeds, and horizon, but batched draws and no analytic
    solves, so ``BENCH_2.json`` reports the batched mode's own events/sec
    next to the legacy headline number.
    """
    params = base_parameters(service_rate=20.0)
    campaign = run_once(
        benchmark,
        lambda: ParallelReplicator(max_workers=_bench_workers()).run(
            partial(
                simulate_hap_mm1, params, 100_000.0 * scale, rng_mode="batched"
            ),
            4,
            base_seed=7,
        ),
    )
    mean_delay = campaign.summaries()["mean_delay"].mean
    report(
        "Throughput campaign, batched RNG (4-seed mean; own determinism "
        "domain — see EXPERIMENTS.md)",
        f"mean delay {mean_delay:.4f} s over {campaign.completed} seeds, "
        f"{campaign.events_per_second:,.0f} events/s "
        f"({campaign.max_workers} worker(s))",
    )
    assert campaign.failures == ()
    assert campaign.completed == 4
