"""Figure 18 — busy/idle-period statistics, HAP versus Poisson at mu'' = 15.

Paper: both have busy fraction ≈ 55 % and similar means, but HAP's
variances dwarf Poisson's (618x busy, 15x idle, 66x height) and HAP has
~19 % fewer busy periods (fewer, longer mountains).
"""

from __future__ import annotations

from _util import run_once

from repro.experiments.fig13_18 import run_fig18


def test_fig18_busy_period_statistics(benchmark, report, scale):
    result = run_once(
        benchmark, lambda: run_fig18(horizon=600_000.0 * scale)
    )
    report(
        "Figure 18 (paper: variance ratios 618x/15x/66x, 19% fewer periods, "
        "busy ~55%)",
        result.describe(),
    )
    # The variance gaps live in rare mountains; short smoke runs
    # (REPRO_BENCH_SCALE << 1) sample few of them, so thresholds scale.
    full = scale >= 0.5
    assert result.busy_variance_ratio > (30.0 if full else 5.0)
    assert result.height_variance_ratio > (10.0 if full else 1.5)
    assert result.idle_variance_ratio > (2.0 if full else 1.2)
    assert result.mountain_count_deficit > 0.05
    assert abs(result.hap.busy_fraction - 0.55) < 0.1
    assert abs(result.poisson.busy_fraction - 0.55) < 0.1
