"""Benchmark the analytic kernel layer (PR 3's perf target).

Two records feed the perf trajectory:

* ``test_analytic_interarrival_kernel`` — exact interarrival density and
  CDF over a dense grid on a Figure-9-family chain, via the cached
  spectral kernel.  "Events" are grid evaluations, so ``events_per_sec``
  is the interarrival-grid throughput the CI gate watches.
* The headline end-to-end wall-clock is gated through
  ``test_bench_headline.py::test_headline_cross_method`` (its
  ``wall_clock_s``), which CI now runs alongside this module.

The benchmark runs in a fresh process, so it times cold chain
construction and kernel factorization plus the grid evaluation — the
cost a figure pipeline actually pays on first touch; repeats within the
process would hit the mapping/kernel caches and measure nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from _util import run_once
from repro.core.mmpp_mapping import symmetric_hap_to_mmpp
from repro.experiments.configs import fig9_parameters

#: Grid sizes: dense enough that per-point expm would take minutes.
_DENSITY_POINTS = 20_000
_AUTOCOV_POINTS = 5_000


@dataclass(frozen=True)
class AnalyticKernelResult:
    """Benchmark output shaped for the perf-trajectory extractor."""

    events_processed: int
    density_at_zero: float
    cdf_at_end: float
    idc_at_100: float


def _evaluate_kernels() -> AnalyticKernelResult:
    params = fig9_parameters()
    # 510 phases: large enough to be representative, inside the spectral
    # (eigendecomposition) regime.
    mapped = symmetric_hap_to_mmpp(params, x_max=9, y_max=50)
    mmpp = mapped.mmpp
    grid = np.linspace(0.0, 0.7, _DENSITY_POINTS)
    density = mmpp.exact_interarrival_density(grid)
    cdf = mmpp.exact_interarrival_cdf(grid)
    lags = np.linspace(0.0, 500.0, _AUTOCOV_POINTS)
    autocov = mmpp.rate_autocovariance(lags)
    idc = mmpp.index_of_dispersion(100.0)
    assert autocov[0] > 0.0
    return AnalyticKernelResult(
        events_processed=2 * _DENSITY_POINTS + _AUTOCOV_POINTS,
        density_at_zero=float(density[0]),
        cdf_at_end=float(cdf[-1]),
        idc_at_100=idc,
    )


def test_analytic_interarrival_kernel(benchmark, report):
    """Spectral-kernel grid throughput on the Figure-9 chain."""
    result = run_once(benchmark, _evaluate_kernels)
    assert result.density_at_zero > 0.0
    assert 0.9 < result.cdf_at_end <= 1.0
    assert result.idc_at_100 > 1.0  # burstier than Poisson
    report(
        "analytic kernel (Figure-9 chain, 510 phases)",
        "\n".join(
            [
                f"grid evaluations : {result.events_processed:,}",
                f"a(0)             : {result.density_at_zero:.4f}",
                f"A(0.7)           : {result.cdf_at_end:.6f}",
                f"IDC(100)         : {result.idc_at_100:.2f}",
            ]
        ),
    )
