"""Section-7 sizing validated by simulation, in both load regimes.

Paper: Solution 2 is the recommended control-plane solver "for this level
of utilizations" (under ~30 %).  The benchmark shows what that caveat is
worth: inside the region, Solution-2 sizing delivers its target (and the
Poisson rule misses); at an aggressive target the Solution-2 design is off
by two orders of magnitude, and only exact (Solution-0) sizing comes close.
"""

from __future__ import annotations

from _util import run_once

from repro.experiments.overlay_validation import (
    run_link_sizing_validation,
    run_tandem_validation,
)


def test_link_sizing_both_regimes(benchmark, report, scale):
    result = run_once(
        benchmark,
        lambda: run_link_sizing_validation(horizon=200_000.0 * scale),
    )
    report(
        "Section 7 link sizing validated by simulation",
        result.describe(),
    )
    # Safe regime: the HAP design lands near its target, Poisson above it.
    assert result.safe_measured_hap < 1.3 * result.safe_target
    assert result.safe_measured_poisson > result.safe_measured_hap
    # Aggressive regime: Solution-2 sizing fails catastrophically...
    assert result.aggressive_measured_sol2 > 20.0 * result.aggressive_target
    # ...and exact sizing recovers most of the gap.
    assert (
        result.aggressive_measured_exact
        < result.aggressive_measured_sol2 / 10.0
    )


def test_tandem_budget(benchmark, report, scale):
    result = run_once(
        benchmark,
        lambda: run_tandem_validation(horizon=200_000.0 * scale),
    )
    report("Section 7 two-hop path at the designed bandwidth", result.describe())
    # Each hop is near its per-link budget; end-to-end is near the sum.
    for delay in result.hop_delays:
        assert delay < 1.5 * result.per_link_target
    assert result.end_to_end_delay < 1.5 * 2 * result.per_link_target
