"""Helpers shared by the benchmark modules."""

from __future__ import annotations

__all__ = ["run_once"]


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer and return it.

    The experiments are minutes-long simulations; statistical timing rounds
    would multiply that for no insight, so every benchmark uses one round.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
