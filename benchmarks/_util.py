"""Helpers shared by the benchmark modules.

Besides running each figure regeneration exactly once under the
pytest-benchmark timer, :func:`run_once` feeds the machine-readable perf
trajectory: it times the call itself, pulls ``Simulator.events_processed``
and the worker count out of whatever the benchmark returned, and registers
one record with the ``BENCH_*.json`` emitter in ``conftest.py``.  That file
is how a PR proves a speedup (or a regression gets caught in CI) — see
``scripts/check_bench_regression.py``.
"""

from __future__ import annotations

import os
import resource
import sys
import time

__all__ = ["drain_records", "peak_rss_mb", "run_once"]

#: Records accumulated this session; conftest drains them at exit.
_RECORDS: list[dict] = []


def _current_test_id() -> str:
    """The running test's ``file::name`` id (from pytest's own env var)."""
    current = os.environ.get("PYTEST_CURRENT_TEST", "unknown")
    test_id = current.split(" ")[0]
    return test_id.replace("benchmarks/", "", 1)


def _extract_events(result) -> int | None:
    """``events_processed`` from a benchmark's return value, if it has one.

    Covers the three shapes the benchmarks return: a ``SimulationResult``
    (``events_processed`` attribute), a ``CampaignResult`` (same attribute,
    summed over replications), and wrapper results that carry a campaign
    (e.g. ``HeadlineCampaignResult.campaign``).
    """
    for candidate in (result, getattr(result, "campaign", None)):
        events = getattr(candidate, "events_processed", None)
        if events is not None:
            return int(events)
    return None


def _extract_workers(result) -> int:
    """Worker count from a campaign-carrying result (1 for in-process runs)."""
    for candidate in (result, getattr(result, "campaign", None)):
        workers = getattr(candidate, "max_workers", None)
        if workers is not None:
            return int(workers)
    return 1


def _extract_campaign_wall(result) -> float | None:
    """The campaign's own wall-clock, when the result carries a campaign.

    Benchmarks like the headline mix a ~constant analytic solve with the
    simulation campaign; throughput gating must divide by the campaign's
    wall-clock, not the whole benchmark's, or the solver noise drowns the
    events/sec signal.
    """
    for candidate in (result, getattr(result, "campaign", None)):
        wall = getattr(candidate, "wall_clock", None)
        if wall is not None:
            return float(wall)
    return None


def peak_rss_mb() -> float:
    """Peak resident set size of this process, in MiB.

    Stdlib only (``resource.getrusage``) — the container deliberately has
    no ``psutil``.  ``ru_maxrss`` is kilobytes on Linux and bytes on macOS.
    It is a process-wide *high-water mark*: a memory-gated benchmark must
    run before anything hungrier in the same process, or it inherits the
    earlier peak (CI runs the scale rung first for exactly this reason).
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return peak / divisor


def drain_records() -> list[dict]:
    """Hand the accumulated records over (and clear the buffer)."""
    records = list(_RECORDS)
    _RECORDS.clear()
    return records


def run_once(benchmark, fn, extra=None):
    """Run ``fn`` exactly once under the benchmark timer and return it.

    The experiments are minutes-long simulations; statistical timing rounds
    would multiply that for no insight, so every benchmark uses one round.

    ``extra`` merges additional metrics into the emitted record — either a
    dict, or a callable receiving the benchmark's return value (how the
    service benchmarks attach client-observed latency percentiles).
    """
    started = time.perf_counter()
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    wall_clock = time.perf_counter() - started
    events = _extract_events(result)
    sim_wall = _extract_campaign_wall(result)
    rate_base = sim_wall if sim_wall else wall_clock
    record = {
        "id": _current_test_id(),
        "wall_clock_s": round(wall_clock, 6),
        "sim_wall_clock_s": round(sim_wall, 6) if sim_wall else None,
        "events_processed": events,
        "events_per_sec": (
            round(events / rate_base, 1) if events and rate_base > 0 else None
        ),
        "workers": _extract_workers(result),
        "peak_rss_mb": round(peak_rss_mb(), 1),
    }
    if extra is not None:
        record.update(extra(result) if callable(extra) else extra)
    _RECORDS.append(record)
    return result
