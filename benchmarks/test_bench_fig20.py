"""Figure 20 — admission control by bounding users and applications.

Paper: bounding users at 12 and applications at 60 (vs means 5.5 / 27.5)
cuts both lambda-bar and delay, and the saving grows with load — simple
admission control buys headroom exactly where HAP hurts most.
"""

from __future__ import annotations

from _util import run_once

from repro.experiments.fig19_20 import run_fig20


def test_fig20_bounding(benchmark, report):
    points = run_once(
        benchmark,
        lambda: run_fig20(
            user_rates=(0.004, 0.005, 0.0055, 0.006, 0.0065, 0.007),
            max_users=12,
            max_apps=60,
        ),
    )
    report(
        "Figure 20 (paper: bounds 12/60; saving grows with lambda-bar)",
        "\n".join(point.describe() for point in points),
    )
    savings = [point.delay_reduction for point in points]
    assert all(s > 0 for s in savings)
    assert savings == sorted(savings)  # monotone in load
    for point in points:
        assert point.lambda_bar_bounded < point.lambda_bar_unbounded
