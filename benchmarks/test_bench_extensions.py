"""Extension studies: the Section-6 multiplexing warning, quantified, and
the heavy-tailed-lifetime ablation pointing at the self-similar era.

Neither is a numbered figure; the paper explicitly defers the first
("more numerical results are required to justify this implication") and
the second is the door history walked through.  Both are part of the
reproduction's DESIGN.md inventory.
"""

from __future__ import annotations

from _util import run_once

from repro.experiments.extensions import (
    run_heavy_tail_ablation,
    run_multiplexing_study,
)


def test_multiplexing_penalty(benchmark, report, scale):
    result = run_once(
        benchmark, lambda: run_multiplexing_study(horizon=300_000.0 * scale)
    )
    report(
        "Section 6 multiplexing implication (paper: avoid mixing real-time "
        "with HAP)",
        result.describe(),
    )
    # Same total load, yet the real-time class suffers badly beside HAP.
    assert result.penalty > 2.0


def test_heavy_tail_ablation(benchmark, report, scale):
    result = run_once(
        benchmark,
        lambda: run_heavy_tail_ablation(horizon=150_000.0 * scale),
    )
    report(
        "Heavy-tail ablation (Pareto app lifetimes, same mean load)",
        result.describe()
        + "\nfinding: at mountain-dominated loads the Markovian user level"
        "\ndominates every affordable-horizon statistic — the lifetime-tail"
        "\neffect (long-range dependence) only emerges at window/horizon"
        "\nscales far beyond these runs, which is exactly why self-similarity"
        "\nwent undetected until very long traces were analyzed.",
    )
    # Well-defined invariants: equal offered load (M/G/infinity population
    # is insensitive to the lifetime law), and both arms produce mountains
    # far beyond anything Poisson could.
    assert len(result.delays_pareto) == len(result.delays_exponential)
    assert max(result.peaks_pareto) > 100
    assert max(result.peaks_exponential) > 100
    # Seed-to-seed dispersion is large in BOTH arms (the predictability
    # problem is already severe in the pure-Markov model).
    assert result.dispersion_exponential > 0.2
    assert result.dispersion_pareto > 0.2
