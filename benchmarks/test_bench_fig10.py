"""Figure 10 — the tail of the interarrival densities around t ≈ 0.53.

Paper: HAP's tail re-crosses the exponential near 0.53 and stays above it —
the long inter-burst gaps that give both curves the same mean.
"""

from __future__ import annotations

import numpy as np
from _util import run_once

from repro.experiments.fig09_10 import run_fig10_tail


def test_fig10_tail(benchmark, report):
    result = run_once(benchmark, lambda: run_fig10_tail(grid_points=200))
    rows = ["t        a_HAP(t)   a_Poisson(t)"]
    for t in (0.45, 0.5, 0.53, 0.6, 0.65, 0.7):
        index = int(np.argmin(np.abs(result.grid - t)))
        rows.append(
            f"{result.grid[index]:<8.3f} {result.hap_density[index]:<10.5f} "
            f"{result.poisson_density[index]:<10.5f}"
        )
    report("Figure 10 (paper: tail crossing at 0.53)", "\n".join(rows))
    # Before the crossing Poisson is above, after it HAP is above.
    below = int(np.argmin(np.abs(result.grid - 0.47)))
    above = int(np.argmin(np.abs(result.grid - 0.65)))
    assert result.hap_density[below] < result.poisson_density[below]
    assert result.hap_density[above] > result.poisson_density[above]
