"""Figure 9 — message interarrival density, HAP vs equal-load Poisson.

Paper (lambda-bar = 7.5): HAP a(0) = 9.28 vs Poisson 7.5; the curves cross
at t ≈ 0.077 and ≈ 0.53 — more short intra-burst gaps, more long
inter-burst gaps, Poisson wins in the middle.
"""

from __future__ import annotations

import numpy as np
from _util import run_once

from repro.experiments.fig09_10 import run_fig9


def test_fig9_interarrival_density(benchmark, report):
    result = run_once(benchmark, lambda: run_fig9(grid_points=400))
    rows = [result.describe(), "", "t        a_HAP(t)   a_Poisson(t)"]
    for t in (0.0, 0.05, 0.077, 0.1, 0.2, 0.3, 0.53, 0.6, 0.7):
        index = int(np.argmin(np.abs(result.grid - t)))
        rows.append(
            f"{result.grid[index]:<8.3f} {result.hap_density[index]:<10.4f} "
            f"{result.poisson_density[index]:<10.4f}"
        )
    report("Figure 9 (paper: a(0)=9.28 vs 7.5; crossings 0.077, 0.53)", "\n".join(rows))
    assert result.hap_density_at_zero > result.poisson_density_at_zero
    assert len(result.intersections) == 2
    assert abs(result.intersections[0] - 0.077) < 0.01
    assert abs(result.intersections[1] - 0.53) < 0.02
