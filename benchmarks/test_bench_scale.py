"""Scale-ladder benchmark for the sparse/Krylov analytic backend (PR 4).

Three rungs of the same headline HAP chain at growing truncation boxes:

* ``test_analytic_scale_ladder_8k`` — ~8,000 states (x_max=19, y_max=399),
  Krylov backend.  This is the CI quick-scale rung: it runs FIRST in the
  module (and first in CI's pytest invocation) because ``peak_rss_mb`` is a
  process-wide high-water mark — anything hungrier earlier would pollute it.
* ``test_analytic_scale_ladder_headline`` — the ~2.2k-state headline chain,
  where the dense eigendecomposition is still feasible: measures *both*
  backends on identical grids, locks them to 1e-9, and reports the dense
  factorization cost that the n^3 law projects onto the larger rungs.
* ``test_analytic_scale_ladder_30k`` — ~30,000 states (x_max=29, y_max=999).  The dense
  path at this size needs ~O(30000^3) flops (projected ~17 hours from the
  measured 2.2k eig) and ~50 GB for the eigenvector pair; the Krylov
  backend completes it in well under a minute at O(nnz + n) memory.  It
  runs LAST so its RSS high-water mark cannot leak into other records.

"Events" are analytic grid evaluations (density + cdf + autocovariance +
IDC quadrature points), so ``events_per_sec`` is grid-evals/sec and feeds
the ``analytic_scale_ladder_8k`` CI gates (throughput floor + RSS ceiling)
in ``scripts/check_bench_regression.py``.

``REPRO_BENCH_SCALE`` shrinks the grids (floors keep them meaningful); the
expm_multiply sweeps are dominated by ``||D0|| * t_max`` matvecs rather
than the point count, so wall-clock moves less than linearly with scale —
pin baselines at the same scale CI runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from _util import peak_rss_mb, run_once
from repro.core.mmpp_mapping import symmetric_hap_to_mmpp
from repro.experiments.configs import base_parameters

#: Full-scale grid sizes (per rung).
_DENSITY_POINTS = 2_000
_AUTOCOV_POINTS = 500
_IDC_QUAD_POINTS = 256

#: Dense-vs-Krylov equivalence bar on the headline rung (the tier-1 tests
#: lock the same bound; the benchmark re-asserts it on the exact grids it
#: times so the speedup claim and the accuracy claim cover the same run).
_EQUIVALENCE_ATOL = 1e-9

#: Ladder rungs: (label, x_max, y_max) -> (x_max+1)(y_max+1) states.
_RUNG_8K = (19, 399)
_RUNG_30K = (29, 999)


@dataclass(frozen=True)
class ScaleRungResult:
    """Benchmark output shaped for the perf-trajectory extractor."""

    events_processed: int
    num_states: int
    density_at_zero: float
    cdf_at_end: float
    idc_at_100: float
    peak_rss_mb: float
    dense_wall_s: float | None = None
    krylov_wall_s: float | None = None
    max_equivalence_error: float | None = None


def _grid_sizes(scale: float) -> tuple[int, int, int]:
    density = max(200, int(_DENSITY_POINTS * scale))
    autocov = max(100, int(_AUTOCOV_POINTS * scale))
    quad = max(64, int(_IDC_QUAD_POINTS * scale))
    return density, autocov, quad


def _run_rung(bounds: tuple[int, int], scale: float) -> ScaleRungResult:
    """One ladder rung under the Krylov backend: stationary + all grids."""
    x_max, y_max = bounds
    density_points, autocov_points, quad = _grid_sizes(scale)
    mapped = symmetric_hap_to_mmpp(base_parameters(), x_max=x_max, y_max=y_max)
    mmpp = mapped.mmpp
    grid = np.linspace(0.0, 0.7, density_points)
    lags = np.linspace(0.0, 500.0, autocov_points)
    started = time.perf_counter()
    density = mmpp.exact_interarrival_density(grid, backend="krylov")
    cdf = mmpp.exact_interarrival_cdf(grid, backend="krylov")
    autocov = mmpp.rate_autocovariance(lags, backend="krylov")
    idc = mmpp.index_of_dispersion(100.0, quad_points=quad, backend="krylov")
    krylov_wall = time.perf_counter() - started
    assert autocov[0] > 0.0
    return ScaleRungResult(
        events_processed=2 * density_points + autocov_points + quad,
        num_states=mmpp.num_states,
        density_at_zero=float(density[0]),
        cdf_at_end=float(cdf[-1]),
        idc_at_100=float(idc),
        peak_rss_mb=peak_rss_mb(),
        krylov_wall_s=krylov_wall,
    )


def _run_headline_equivalence(scale: float) -> ScaleRungResult:
    """Headline chain: dense and Krylov on identical grids, locked to 1e-9."""
    density_points, autocov_points, quad = _grid_sizes(scale)
    mapped = symmetric_hap_to_mmpp(base_parameters())
    mmpp = mapped.mmpp
    grid = np.linspace(0.0, 0.7, density_points)
    lags = np.linspace(0.0, 500.0, autocov_points)

    started = time.perf_counter()
    dense_density = mmpp.exact_interarrival_density(grid, backend="dense")
    dense_cdf = mmpp.exact_interarrival_cdf(grid, backend="dense")
    dense_autocov = mmpp.rate_autocovariance(lags, backend="dense")
    dense_idc = mmpp.index_of_dispersion(
        100.0, quad_points=quad, backend="dense"
    )
    dense_wall = time.perf_counter() - started

    started = time.perf_counter()
    krylov_density = mmpp.exact_interarrival_density(grid, backend="krylov")
    krylov_cdf = mmpp.exact_interarrival_cdf(grid, backend="krylov")
    krylov_autocov = mmpp.rate_autocovariance(lags, backend="krylov")
    krylov_idc = mmpp.index_of_dispersion(
        100.0, quad_points=quad, backend="krylov"
    )
    krylov_wall = time.perf_counter() - started

    error = max(
        float(np.abs(dense_density - krylov_density).max()),
        float(np.abs(dense_cdf - krylov_cdf).max()),
        float(np.abs(dense_autocov - krylov_autocov).max()),
        abs(dense_idc - krylov_idc),
    )
    assert error <= _EQUIVALENCE_ATOL, error
    return ScaleRungResult(
        events_processed=2 * (2 * density_points + autocov_points + quad),
        num_states=mmpp.num_states,
        density_at_zero=float(krylov_density[0]),
        cdf_at_end=float(krylov_cdf[-1]),
        idc_at_100=float(krylov_idc),
        peak_rss_mb=peak_rss_mb(),
        dense_wall_s=dense_wall,
        krylov_wall_s=krylov_wall,
        max_equivalence_error=error,
    )


def _rung_report(title: str, result: ScaleRungResult) -> tuple[str, str]:
    lines = [
        f"states           : {result.num_states:,}",
        f"grid evaluations : {result.events_processed:,}",
        f"a(0)             : {result.density_at_zero:.4f}",
        f"A(0.7)           : {result.cdf_at_end:.6f}",
        f"IDC(100)         : {result.idc_at_100:.2f}",
        f"peak RSS         : {result.peak_rss_mb:.0f} MiB",
    ]
    if result.krylov_wall_s is not None:
        lines.append(f"krylov wall      : {result.krylov_wall_s:.2f} s")
    if result.dense_wall_s is not None:
        lines.append(f"dense wall       : {result.dense_wall_s:.2f} s")
        # n^3 projection of the dense eigendecomposition onto the ladder.
        for target, label in ((8_000, "8k"), (30_000, "30k")):
            factor = (target / result.num_states) ** 3
            lines.append(
                f"dense @ {label:<4}     : ~{result.dense_wall_s * factor:,.0f} s "
                "(n^3 projection)"
            )
    if result.max_equivalence_error is not None:
        lines.append(
            f"dense vs krylov  : {result.max_equivalence_error:.2e} "
            f"(bar {_EQUIVALENCE_ATOL:g})"
        )
    return title, "\n".join(lines)


def test_analytic_scale_ladder_8k(benchmark, report, scale):
    """analytic_scale_ladder_8k: the CI-gated rung (throughput + RSS)."""
    result = run_once(benchmark, lambda: _run_rung(_RUNG_8K, scale))
    assert result.num_states == (_RUNG_8K[0] + 1) * (_RUNG_8K[1] + 1)
    assert result.density_at_zero > 0.0
    assert 0.9 < result.cdf_at_end <= 1.0
    assert result.idc_at_100 > 1.0
    report(*_rung_report("analytic_scale_ladder_8k (Krylov backend)", result))


def test_analytic_scale_ladder_headline(benchmark, report, scale):
    """Headline chain: dense-vs-Krylov 1e-9 lock plus both wall-clocks."""
    result = run_once(benchmark, lambda: _run_headline_equivalence(scale))
    assert result.max_equivalence_error is not None
    assert result.max_equivalence_error <= _EQUIVALENCE_ATOL
    report(
        *_rung_report(
            "analytic_scale_ladder_headline (dense vs krylov)", result
        )
    )


def test_analytic_scale_ladder_30k(benchmark, report, scale):
    """The past-the-dense-ceiling rung; must run LAST (RSS high-water)."""
    result = run_once(benchmark, lambda: _run_rung(_RUNG_30K, scale))
    assert result.num_states == (_RUNG_30K[0] + 1) * (_RUNG_30K[1] + 1)
    assert result.density_at_zero > 0.0
    assert 0.9 < result.cdf_at_end <= 1.0
    assert result.idc_at_100 > 1.0
    report(*_rung_report("analytic_scale_ladder_30k (Krylov backend)", result))
