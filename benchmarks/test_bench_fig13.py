"""Figure 13 — fluctuation of the HAP simulation's running-mean delay.

Paper: HAP runs are hard to converge — the running mean keeps lurching as
occasional multi-minute congestion events land, while the equal-load
Poisson estimate flattens quickly.
"""

from __future__ import annotations

from _util import run_once

from repro.experiments.fig13_18 import run_fig13


def test_fig13_running_mean_fluctuation(benchmark, report, scale):
    result = run_once(
        benchmark, lambda: run_fig13(horizon=600_000.0 * scale)
    )
    series = result.hap_running_mean
    checkpoints = [int(len(series) * f) - 1 for f in (0.25, 0.5, 0.75, 1.0)]
    rows = [result.describe(), "", "progress  HAP-running-mean  Poisson-running-mean"]
    for index in checkpoints:
        poisson_index = min(index, len(result.poisson_running_mean) - 1)
        rows.append(
            f"{(index + 1) / len(series):<9.2f} {series[index]:<17.5f} "
            f"{result.poisson_running_mean[poisson_index]:<.5f}"
        )
    report("Figure 13 (paper: HAP fluctuates long after Poisson settles)", "\n".join(rows))
    assert result.hap_fluctuation > 3.0 * result.poisson_fluctuation
