"""Section 4.1 — accuracy of Solutions 1/2 vs exact, and relative runtimes.

Paper: errors under ~5 % while utilization stays below ~30 % (and the
validity conditions hold); past that the approximations drift optimistic.
Runtimes on the 1993 SUN-4/280: two weeks / seven hours / 5–7 minutes for
Solutions 0/1/2 — we reproduce the ordering, not the absolute pain.
"""

from __future__ import annotations

from _util import run_once

from repro.experiments.accuracy import run_accuracy_sweep, run_runtime_comparison


def test_accuracy_table(benchmark, report):
    points = run_once(
        benchmark,
        lambda: run_accuracy_sweep(
            service_rates=(30.0, 40.0, 60.0, 20.0, 15.0),
            modulating_bounds=(16, 80),
        ),
    )
    report(
        "Section 4.1 accuracy (paper: <5% error below 30% load, drift above)",
        "\n".join(point.describe() for point in points),
    )
    in_region = [p for p in points if p.utilization <= 0.30]
    out_region = [p for p in points if p.utilization > 0.40]
    assert all(p.error_solution2 < 0.08 for p in in_region)
    assert all(
        p.error_solution2 > max(q.error_solution2 for q in in_region)
        for p in out_region
    )
    # Solutions 1 and 2 track each other far more tightly than either
    # tracks the exact answer (the paper's <1% observation).
    assert all(p.solutions_12_gap < 0.02 for p in points)


def test_runtime_ordering(benchmark, report):
    comparison = run_once(benchmark, lambda: run_runtime_comparison())
    report(
        "Section 4.1 runtimes (paper: 2 weeks / 7 hours / 5-7 minutes)",
        comparison.describe(),
    )
    assert (
        comparison.seconds_solution0
        > comparison.seconds_solution1
        > comparison.seconds_solution2
    )
