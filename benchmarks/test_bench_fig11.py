"""Figure 11 — average delay versus server capacity at lambda-bar = 8.25.

Paper: the HAP/Poisson delay gap is ~15 % at mu'' = 30 and explodes to
~200x at 64 % utilization (mu'' = 13).  Our exact (Solution 0 / QBD) column
reproduces both ends: ratio ≈ 1.13 at mu'' = 30 and ≈ 200x at mu'' = 13.
The simulation column undershoots badly at high load on any affordable
horizon — the mean there is carried by extremely rare mega-bursts, which is
precisely the paper's Figure-13/15 point.
"""

from __future__ import annotations

from _util import run_once

from repro.experiments.fig11_12 import run_fig11


def test_fig11_delay_vs_capacity(benchmark, report, scale):
    points = run_once(
        benchmark,
        lambda: run_fig11(
            capacities=(13.0, 15.0, 17.0, 20.0, 25.0, 30.0, 40.0),
            horizon=300_000.0 * scale,
        ),
    )
    report(
        "Figure 11 (paper: ratio ~1.15 at mu''=30, ~200x at rho=0.64)",
        "\n".join(point.describe() for point in points),
    )
    ratios = [point.ratio_vs_mm1 for point in points]
    # The gap grows monotonically as capacity shrinks...
    assert all(a > b for a, b in zip(ratios, ratios[1:]))
    # ...reaching the paper's two quoted anchors.
    assert 100.0 < ratios[0] < 400.0  # paper: ~200x at mu''=13
    at_30 = ratios[5]
    assert 1.05 < at_30 < 1.30  # paper: 1.15 at mu''=30
