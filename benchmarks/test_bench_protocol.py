"""Section 6's protocol remedies: fragmentation and window flow control.

Paper: "window flow control ... reduces the burst length at message level,
and block operations, by fragmenting messages into blocks along with
window flow control, [reduce] the burst length."  The benchmark pushes the
same workload through a raw, a fragmented, and a windowed configuration of
the same-capacity server and reports where the burst went.
"""

from __future__ import annotations

from _util import run_once

from repro.experiments.protocol_study import run_protocol_study


def test_protocol_remedies(benchmark, report, scale):
    result = run_once(
        benchmark,
        lambda: run_protocol_study(horizon=200_000.0 * scale),
    )
    report(
        "Section 6 protocol remedies (windowing caps the shared queue)",
        result.describe(),
    )
    # Windowing bounds the shared queue at the window size...
    assert result.windowed.network_peak <= 8
    # ...cutting its delay by an order of magnitude...
    assert result.windowed.network_delay < 0.3 * result.raw.network_delay
    # ...while the edge buffer, not the network, absorbs the burst.
    assert result.windowed.edge_peak > 10 * result.windowed.network_peak
