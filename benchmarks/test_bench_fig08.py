"""Figure 8 — equal lambda-bar, different branching, different burstiness.

Paper: merging/splitting branches preserves lambda-bar (Equation 5) but the
shape with all leaves under one application, (l=1, m=4), is the burstiest:
ordering (c) > (b) > (a).
"""

from __future__ import annotations

from _util import run_once

from repro.experiments.fig08 import run_fig8


def test_fig8_burstiness_ordering(benchmark, report):
    results = run_once(benchmark, lambda: run_fig8(idc_horizon=50.0))
    report(
        "Figure 8 (paper: same rate; burstiness (1,4) > (2,2) > (4,1))",
        "\n".join(r.describe() for r in results),
    )
    rates = [r.report.mean_rate for r in results]
    assert max(rates) - min(rates) < 1e-9 * max(rates)
    delays = [r.delay_solution2 for r in results]
    assert delays[0] < delays[1] < delays[2]
    cv2 = [r.report.rate_cv2 for r in results]
    assert cv2[0] < cv2[1] < cv2[2]
    idcs = [r.report.idc for r in results]
    assert idcs[0] < idcs[2]
