"""Figures 14–17 — congestion "mountains" and the populations behind them.

One traced run at mu'' = 17 yields: the queue-length mountains in a
one-hour window (Fig 14), the peak busy period (Fig 15 — the paper's seed
saw >17 000 messages for ~80 minutes; Poisson peaks at 29), and the user /
application populations at the peak's onset (Figs 16–17: 13 users vs mean
5.5, 49 applications vs mean 27.5).
"""

from __future__ import annotations

import numpy as np
from _util import run_once

from repro.experiments.fig13_18 import run_fig14_to_17


def test_fig14_to_17_mountains(benchmark, report, scale):
    result = run_once(
        benchmark, lambda: run_fig14_to_17(horizon=600_000.0 * scale)
    )
    window_times, window_values = result.one_hour_window
    rows = [
        result.describe(),
        "",
        f"one-hour window around the peak: {len(window_times)} samples, "
        f"max queue {window_values.max():.0f}, "
        f"mean queue {window_values.mean():.1f}",
    ]
    stats = result.simulation.busy_stats
    rows.append(f"busy periods: {stats.describe()}")
    report(
        "Figures 14-17 (paper: peak 17000 msgs/80 min; 13 users, 49 apps at onset)",
        "\n".join(rows),
    )
    # Mountains far beyond anything Poisson produces (its peak was 29).
    assert result.peak_height > 100
    # Congestion persists for minutes, not milliseconds.
    assert result.peak_width > 60.0
    # Burst onset finds above-average populations.
    assert result.users_at_peak_onset > result.simulation.mean_users
    assert result.apps_at_peak_onset > result.simulation.mean_apps
