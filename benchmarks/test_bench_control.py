"""Sections 6–7 — broadband control: bandwidth gap, admission region, overlay.

Not a numbered figure, but the paper's point: size links with HAP, not
Poisson (misengineering penalty), precompute admissible-call regions into
lookup tables, and design the CL overlay on those rules.
"""

from __future__ import annotations

from _util import run_once

from repro.experiments.control_study import (
    run_admission_study,
    run_bandwidth_gap,
    run_overlay_design,
)


def test_bandwidth_misengineering_gap(benchmark, report):
    points = run_once(benchmark, lambda: run_bandwidth_gap())
    report(
        "Section 6 bandwidth sizing (paper: Poisson sizing underprovisions)",
        "\n".join(point.describe() for point in points),
    )
    for point in points:
        assert point.bandwidth_hap > 1.03 * point.bandwidth_poisson
        assert point.delay_if_poisson_sized > point.delay_target


def test_admission_region_and_table(benchmark, report):
    table, (n1_max, n2_max) = run_once(benchmark, lambda: run_admission_study())
    staircase = ", ".join(f"({a},{b})" for a, b in table.boundary[:8])
    report(
        "Section 7 admission region (staircase head + Hui intercepts)",
        f"boundary head: {staircase} ...\n"
        f"linear approximation: n1/{n1_max:.0f} + n2/{n2_max:.0f} <= 1\n"
        f"table size: {table.size} rows, target T <= {table.delay_target}",
    )
    assert table.size > 1
    assert table.admit(0, int(n2_max) - 1)
    assert not table.admit(int(n1_max) + 1, 0)


def test_cl_overlay_design(benchmark, report):
    design = run_once(benchmark, lambda: run_overlay_design())
    report("Section 7 CL overlay design", design.describe())
    assert design.total_bandwidth > 0
    for link, bandwidth in design.link_bandwidth.items():
        assert bandwidth > design.link_bandwidth_poisson[link]
