#!/usr/bin/env python
"""Gate the perf trajectory: fail CI when headline throughput regresses.

Usage::

    python scripts/check_bench_regression.py BENCH_2.json \
        --baseline benchmarks/bench_baseline.json [--tolerance 0.30]

    python scripts/check_bench_regression.py BENCH_2.json --update-baseline

Compares ``events_per_sec`` of the headline benchmark (any record whose id
contains ``--key``, default ``headline_replicated_campaign``) in a freshly
emitted ``BENCH_*.json`` against the committed baseline and exits non-zero
when it regressed by more than ``--tolerance`` (default 30 %, the bar set
in PR 2's issue).  Improvements always pass; run with ``--update-baseline``
on the reference machine to re-pin after an intentional change (commit the
result).

The baseline is machine-dependent — wall-clock on a different box is not
comparable — so CI pins one runner class and the tolerance absorbs its
run-to-run noise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / (
    "benchmarks/bench_baseline.json"
)
DEFAULT_KEY = "headline_replicated_campaign"


def _headline_record(document: dict, key: str) -> dict:
    matches = [
        record
        for record in document.get("benchmarks", [])
        if key in record.get("id", "") and record.get("events_per_sec")
    ]
    if not matches:
        raise SystemExit(
            f"error: no benchmark record matching {key!r} with events/sec "
            "in the input — did the headline benchmark run?"
        )
    return matches[0]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench_json", type=Path, help="freshly emitted BENCH_*.json")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--key", default=DEFAULT_KEY)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="max fractional events/sec drop before failing (default 0.30)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="overwrite the baseline with the current record and exit 0",
    )
    args = parser.parse_args(argv)

    document = json.loads(args.bench_json.read_text())
    current = _headline_record(document, args.key)

    if args.update_baseline:
        baseline_doc = {
            "schema": "repro-bench-baseline/1",
            "source": str(args.bench_json),
            "scale": document.get("scale"),
            "record": current,
        }
        args.baseline.write_text(json.dumps(baseline_doc, indent=2) + "\n")
        print(
            f"baseline updated: {current['id']} at "
            f"{current['events_per_sec']:,.0f} events/s -> {args.baseline}"
        )
        return 0

    if not args.baseline.exists():
        raise SystemExit(
            f"error: baseline {args.baseline} missing; run with "
            "--update-baseline on the reference machine and commit it"
        )
    baseline = json.loads(args.baseline.read_text())["record"]
    floor = baseline["events_per_sec"] * (1.0 - args.tolerance)
    verdict = "OK" if current["events_per_sec"] >= floor else "REGRESSION"
    print(
        f"{verdict}: {current['id']}\n"
        f"  current : {current['events_per_sec']:>12,.0f} events/s "
        f"({current['wall_clock_s']:.2f}s wall, {current['workers']} worker(s))\n"
        f"  baseline: {baseline['events_per_sec']:>12,.0f} events/s "
        f"(floor at -{args.tolerance:.0%}: {floor:,.0f})"
    )
    return 0 if verdict == "OK" else 1


if __name__ == "__main__":
    sys.exit(main())
