#!/usr/bin/env python
"""Gate the perf trajectory: fail CI when a gated benchmark regresses.

Usage::

    python scripts/check_bench_regression.py BENCH_4.json \
        --baseline benchmarks/bench_baseline.json [--tolerance 0.30]

    python scripts/check_bench_regression.py BENCH_4.json --update-baseline

Compares every *gated metric* in a freshly emitted ``BENCH_*.json``
against the committed baseline and exits non-zero when any of them
regressed by more than ``--tolerance`` (default 30 %, the bar set in
PR 2's issue).  The gates:

* ``headline_replicated_campaign`` — ``events_per_sec`` (higher is better),
  the simulation-throughput gate from PR 2.
* ``throughput_batched_campaign`` — ``events_per_sec`` (higher), the
  batched-RNG engine gate.
* ``analytic_interarrival_kernel`` — ``events_per_sec`` (higher), PR 3's
  interarrival-grid evaluations/sec through the spectral kernel layer.
* ``headline_cross_method`` — ``wall_clock_s`` (lower is better), the
  end-to-end analytic+simulation headline wall-clock.
* ``analytic_scale_ladder_8k`` — ``events_per_sec`` (higher) *and*
  ``peak_rss_mb`` (lower), PR 4's Krylov-backend scale rung: grid
  evaluations/sec and peak resident memory on the ~8k-state chain.
* ``columnar_headline_campaign`` — ``events_per_sec`` (higher), PR 6's
  columnar-engine gate: the headline M/HAP-approx campaign through the
  vectorized stream generator + Lindley recursion (>= 1M events/sec where
  the heap engine managed ~273k).
* ``service_cached_decisions`` / ``service_interpolated_decisions`` /
  ``service_miss_decisions`` — ``events_per_sec`` (higher), PR 7's
  admission-service throughput per answer tier (decisions/sec through
  real TCP connections); the miss tier additionally gates
  ``p99_latency_ms`` (lower) — the live-solve tail must stay bounded.
* ``columnar_batched_headline_campaign`` — ``events_per_sec`` (higher),
  PR 8's replication-batched columnar gate: the 32-seed headline
  campaign through the lock-step 2-D kernel (>= 4M events/sec at full
  scale — >= 3x the single-replication columnar throughput).
* ``service_sharded_cached_decisions`` — ``events_per_sec`` (higher),
  PR 9's SO_REUSEPORT fleet gate: cached decisions/sec across a
  multi-shard fleet mapping one shared-memory surface (>= 3x BENCH_7's
  single-process cached figure on a multi-core runner).
* ``service_batch_cached_decisions`` — ``events_per_sec`` (higher),
  PR 9's ``admit_batch`` verb gate: batched cached decisions/sec, which
  must stay strictly above the scalar cached rung even on one core.
* ``service_overload_shed`` — ``events_per_sec`` (higher) *and*
  ``p99_accepted_ms`` (lower), PR 10's load-shedding gate: goodput
  (accepted, non-shed answers/sec) under 4x saturating load with 5%
  live-solve queries, and the latency tail of the answers that were
  accepted (shed denies are instant and excluded).
* ``service_rolling_restart_availability`` — ``failed_requests``
  (lower, pinned at 0), PR 10's availability gate: a 2-shard fleet must
  answer every retried query while a rolling restart drains and
  replaces each shard in turn.

After the gates, the script reports the heap-vs-columnar peak-RSS diff
(``headline_replicated_campaign`` vs ``columnar_headline_campaign``; pick
other records with ``--rss-diff KEY KEY``).  The diff is informational,
not a gate: ``ru_maxrss`` is a process-wide high-water mark, so records
emitted by one pytest session share their peak and only cross-session
BENCH files diff meaningfully.

Gates missing from either document are *skipped with a warning* (so a
partial bench run gates what it ran, and adding new gates cannot break
older BENCH files or baselines); the script only errors when the candidate
document carries no benchmark records at all — a bench run that produced
nothing should still fail CI.  Improvements always pass; run with
``--update-baseline`` on the reference machine to re-pin after an
intentional change (commit the result).

Baseline schema v2 stores one record per gate; v1 baselines (single
``record``) are still accepted and gate only the headline campaign.

The baseline is machine-dependent — wall-clock on a different box is not
comparable — so CI pins one runner class and the tolerance absorbs its
run-to-run noise.

Exit codes: 0 = all gates pass, 1 = at least one regression (or an empty
bench document), 2 = the gate could not run at all (missing or unreadable
baseline/bench file).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / (
    "benchmarks/bench_baseline.json"
)

#: (key substring, metric, direction); direction "higher" means larger is
#: better (throughput), "lower" means smaller is better (wall-clock).
GATES: tuple[tuple[str, str, str], ...] = (
    ("headline_replicated_campaign", "events_per_sec", "higher"),
    ("throughput_batched_campaign", "events_per_sec", "higher"),
    ("analytic_interarrival_kernel", "events_per_sec", "higher"),
    ("headline_cross_method", "wall_clock_s", "lower"),
    ("analytic_scale_ladder_8k", "events_per_sec", "higher"),
    ("analytic_scale_ladder_8k", "peak_rss_mb", "lower"),
    ("columnar_headline_campaign", "events_per_sec", "higher"),
    ("service_cached_decisions", "events_per_sec", "higher"),
    ("service_interpolated_decisions", "events_per_sec", "higher"),
    ("service_miss_decisions", "events_per_sec", "higher"),
    ("service_miss_decisions", "p99_latency_ms", "lower"),
    ("columnar_batched_headline_campaign", "events_per_sec", "higher"),
    ("service_sharded_cached_decisions", "events_per_sec", "higher"),
    ("service_batch_cached_decisions", "events_per_sec", "higher"),
    ("service_overload_shed", "events_per_sec", "higher"),
    ("service_overload_shed", "p99_accepted_ms", "lower"),
    ("service_rolling_restart_availability", "failed_requests", "lower"),
)

#: Default record pair for the informational heap-vs-columnar RSS diff.
RSS_DIFF_KEYS = ("headline_replicated_campaign", "columnar_headline_campaign")


def _report_rss_diff(document: dict, keys: tuple[str, str]) -> None:
    """Print the peak-RSS delta between two benchmark records.

    Informational only — ``ru_maxrss`` never decreases within a process,
    so two records from the same pytest session report the same peak and
    the diff reads 0.  Comparing BENCH files from separate single-bench
    runs is what makes the number meaningful.
    """
    first_key, second_key = keys
    first = _find_record(document, first_key, "peak_rss_mb")
    second = _find_record(document, second_key, "peak_rss_mb")
    if first is None or second is None:
        missing = first_key if first is None else second_key
        print(
            f"RSS DIFF: skipped — no peak_rss_mb record matching "
            f"{missing!r} in the bench document"
        )
        return
    delta = second["peak_rss_mb"] - first["peak_rss_mb"]
    print(
        f"RSS DIFF: {second_key} - {first_key} = {delta:+,.1f} MiB\n"
        f"  {first_key:>32}: {first['peak_rss_mb']:>10,.1f} MiB\n"
        f"  {second_key:>32}: {second['peak_rss_mb']:>10,.1f} MiB"
    )
    if first["peak_rss_mb"] == second["peak_rss_mb"]:
        print(
            "  (identical peaks usually mean one pytest session — "
            "ru_maxrss is a process-wide high-water mark)"
        )


def _load_json(path: Path, what: str) -> dict:
    """Read a JSON document or exit 2 with a clear message.

    Exit code 2 marks an *infrastructure* problem (missing or unreadable
    input), distinct from exit 1 (a real benchmark regression) — CI can
    tell "the gate failed" from "the gate could not run".
    """
    try:
        text = path.read_text()
    except OSError as error:
        print(f"error: cannot read {what} {path}: {error}", file=sys.stderr)
        raise SystemExit(2) from error
    try:
        return json.loads(text)
    except json.JSONDecodeError as error:
        print(
            f"error: {what} {path} is not valid JSON: {error}",
            file=sys.stderr,
        )
        raise SystemExit(2) from error


def _find_record(document: dict, key: str, metric: str) -> dict | None:
    for record in document.get("benchmarks", []):
        if key in record.get("id", "") and record.get(metric) is not None:
            return record
    return None


def _check_gate(key, metric, direction, current, baseline, tolerance):
    """One gate verdict: (ok, human line)."""
    current_value = current[metric]
    baseline_value = baseline[metric]
    if direction == "higher":
        threshold = baseline_value * (1.0 - tolerance)
        ok = current_value >= threshold
        bound = f"floor at -{tolerance:.0%}: {threshold:,.1f}"
    else:
        threshold = baseline_value * (1.0 + tolerance)
        ok = current_value <= threshold
        bound = f"ceiling at +{tolerance:.0%}: {threshold:,.1f}"
    verdict = "OK" if ok else "REGRESSION"
    line = (
        f"{verdict}: {key} [{metric}, {direction} is better]\n"
        f"  current : {current_value:>14,.1f}\n"
        f"  baseline: {baseline_value:>14,.1f} ({bound})"
    )
    return ok, line


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench_json", type=Path, help="freshly emitted BENCH_*.json")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="max fractional regression before failing (default 0.30)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="overwrite the baseline with the current gated records and exit 0",
    )
    parser.add_argument(
        "--rss-diff",
        nargs=2,
        metavar=("HEAP_KEY", "COLUMNAR_KEY"),
        default=RSS_DIFF_KEYS,
        help="record-id substrings for the informational peak-RSS diff "
        "(default: heap vs columnar headline campaigns)",
    )
    args = parser.parse_args(argv)

    document = _load_json(args.bench_json, "bench document")

    if args.update_baseline:
        gated = {}
        for key, metric, direction in GATES:
            record = _find_record(document, key, metric)
            if record is not None:
                gated[key] = record
        if not gated:
            raise SystemExit(
                "error: no gated benchmark records in the input — did the "
                "benchmarks run?"
            )
        baseline_doc = {
            "schema": "repro-bench-baseline/2",
            "source": str(args.bench_json),
            "scale": document.get("scale"),
            "records": gated,
        }
        args.baseline.write_text(json.dumps(baseline_doc, indent=2) + "\n")
        print(
            f"baseline updated with {len(gated)} gated record(s) -> "
            f"{args.baseline}"
        )
        return 0

    if not args.baseline.exists():
        print(
            f"error: baseline {args.baseline} missing; run with "
            "--update-baseline on the reference machine and commit it",
            file=sys.stderr,
        )
        return 2
    baseline_doc = _load_json(args.baseline, "baseline")
    if "records" in baseline_doc:
        baseline_records = baseline_doc["records"]
    elif "record" in baseline_doc:
        # v1 back-compat: single headline record.
        baseline_records = {GATES[0][0]: baseline_doc["record"]}
    else:
        print(
            f"error: baseline {args.baseline} has neither 'records' (v2) "
            "nor 'record' (v1); re-pin with --update-baseline",
            file=sys.stderr,
        )
        return 2

    if not document.get("benchmarks"):
        raise SystemExit(
            f"error: {args.bench_json} contains no benchmark records — did "
            "the benchmarks run?"
        )

    checked = 0
    skipped = 0
    failed = 0
    for key, metric, direction in GATES:
        baseline_record = baseline_records.get(key)
        if baseline_record is None or baseline_record.get(metric) is None:
            print(
                f"SKIP: {key} [{metric}] — not in baseline "
                f"{args.baseline.name}; re-pin with --update-baseline to "
                "gate it"
            )
            skipped += 1
            continue
        current = _find_record(document, key, metric)
        if current is None:
            print(
                f"SKIP: {key} [{metric}] — not in candidate "
                f"{args.bench_json.name}; this run did not exercise it"
            )
            skipped += 1
            continue
        ok, line = _check_gate(
            key, metric, direction, current, baseline_record, args.tolerance
        )
        print(line)
        checked += 1
        failed += 0 if ok else 1
    print(
        f"{checked} gate(s) checked, {skipped} skipped, "
        f"{failed} regression(s)"
    )
    _report_rss_diff(document, tuple(args.rss_diff))
    return 0 if failed == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
