#!/usr/bin/env python
"""Render the committed BENCH_*.json trajectory as markdown tables.

Usage::

    python scripts/bench_history.py                  # committed history
    python scripts/bench_history.py --fresh BENCH_10.json
    python scripts/bench_history.py --metric events_per_sec

Every PR that touches performance commits one ``BENCH_<n>.json`` snapshot
at the repo root (emitted by ``pytest benchmarks/``, schema in
EXPERIMENTS.md).  This script lines those snapshots up — one table per
metric family, one column per snapshot, one row per benchmark gate — so
the whole perf trajectory (events/sec, wall-clock, peak RSS across PRs)
reads at a glance in CI logs or a PR description.

The history is sparse by design and the renderer embraces that:

* missing snapshots (there is no BENCH_5) simply do not get a column;
* benchmarks that did not exist yet (or were not re-run) in a given
  snapshot render as ``—``;
* snapshots record their own ``scale``, which is printed in the column
  header — comparing columns only makes sense at equal scale.

``--fresh PATH`` overlays a freshly emitted document over the committed
snapshot of the same name (CI passes the file it just generated, which
shadows the committed one in the table).  Exit code is 0 unless no
snapshot could be read at all.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Metric families rendered by default, with human units.
METRICS: tuple[tuple[str, str], ...] = (
    ("events_per_sec", "events/sec"),
    ("wall_clock_s", "wall-clock s"),
    ("peak_rss_mb", "peak RSS MiB"),
)

_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")


def _short_id(record_id: str) -> str:
    """``test_bench_foo.py::test_bar`` -> ``bar`` (fallback: unchanged)."""
    name = record_id.split("::")[-1]
    return name[len("test_") :] if name.startswith("test_") else name


def discover_snapshots(root: Path, fresh: Path | None = None) -> list[Path]:
    """Committed ``BENCH_<n>.json`` files in numeric order, gaps and all."""
    found = {
        int(_BENCH_NAME.match(path.name).group(1)): path
        for path in root.glob("BENCH_*.json")
        if _BENCH_NAME.match(path.name)
    }
    if fresh is not None:
        match = _BENCH_NAME.match(fresh.name)
        if match is None:
            raise SystemExit(
                f"error: --fresh {fresh} is not named BENCH_<n>.json"
            )
        found[int(match.group(1))] = fresh
    return [found[number] for number in sorted(found)]


def load_snapshot(path: Path) -> dict | None:
    """One parsed snapshot, or None (with a warning) if unreadable."""
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"warning: skipping {path.name}: {error}", file=sys.stderr)
        return None
    if not isinstance(document.get("benchmarks"), list):
        print(
            f"warning: skipping {path.name}: no 'benchmarks' list",
            file=sys.stderr,
        )
        return None
    return document


def _format(value) -> str:
    if value is None:
        return "—"
    if isinstance(value, (int, float)):
        return f"{value:,.1f}"
    return str(value)


def render_table(
    snapshots: list[tuple[str, dict]],
    metric: str,
    unit: str,
    row_filter=None,
    title: str | None = None,
) -> str:
    """One markdown table: benchmarks x snapshots for a single metric.

    ``row_filter`` (short-id -> bool) restricts rows, for focused views
    like the service decisions/sec trajectory; ``title`` overrides the
    default ``metric`` heading.
    """
    columns = []
    cells: dict[str, dict[str, object]] = {}
    order: list[str] = []
    for name, document in snapshots:
        scale = document.get("scale")
        header = f"{name} (x{scale:g})" if scale is not None else name
        columns.append(header)
        for record in document["benchmarks"]:
            row = _short_id(record.get("id", "?"))
            if row_filter is not None and not row_filter(row):
                continue
            if record.get(metric) is None:
                continue
            if row not in cells:
                cells[row] = {}
                order.append(row)
            cells[row][header] = record[metric]
    heading = title or metric
    if not order:
        return f"### {heading} ({unit})\n\n(no records)\n"
    lines = [
        f"### {heading} ({unit})",
        "",
        "| benchmark | " + " | ".join(columns) + " |",
        "|---" * (len(columns) + 1) + "|",
    ]
    for row in order:
        values = (_format(cells[row].get(column)) for column in columns)
        lines.append(f"| {row} | " + " | ".join(values) + " |")
    lines.append("")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=REPO_ROOT,
        help="directory holding the committed BENCH_*.json snapshots",
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        default=None,
        help="freshly emitted BENCH_<n>.json overlaying its committed twin",
    )
    parser.add_argument(
        "--metric",
        action="append",
        choices=[name for name, _ in METRICS],
        help="restrict to one metric family (repeatable; default: all)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the markdown here instead of stdout",
    )
    args = parser.parse_args(argv)

    paths = discover_snapshots(args.root, args.fresh)
    snapshots = []
    for path in paths:
        document = load_snapshot(path)
        if document is not None:
            snapshots.append((path.stem, document))
    if not snapshots:
        print("error: no readable BENCH_*.json snapshots", file=sys.stderr)
        return 1

    wanted = args.metric or [name for name, _ in METRICS]
    sections = [
        render_table(snapshots, name, unit)
        for name, unit in METRICS
        if name in wanted
    ]
    if "events_per_sec" in wanted:
        # Focused view of the admission-serving trajectory: scalar,
        # interpolated, miss, sharded-fleet, and batched rungs side by
        # side, in decisions/sec (their events/sec unit).
        sections.append(
            render_table(
                snapshots,
                "events_per_sec",
                "decisions/sec",
                row_filter=lambda row: row.startswith("service_"),
                title="admission service throughput",
            )
        )
        # Overload-resilience columns (PR 10): how much the shed tier
        # carried, the latency tail of what was accepted, and whether the
        # rolling restart dropped anything.  Snapshots predating the
        # overload rungs simply render no rows here.
        for extra_metric, extra_unit, extra_title in (
            ("shed_requests", "requests", "overload: shed answers"),
            ("p99_accepted_ms", "ms", "overload: accepted-request p99"),
            ("failed_requests", "requests", "drain: failed requests"),
        ):
            sections.append(
                render_table(
                    snapshots,
                    extra_metric,
                    extra_unit,
                    row_filter=lambda row: row.startswith("service_"),
                    title=extra_title,
                )
            )
    text = "## Benchmark trajectory\n\n" + "\n".join(sections)
    if args.output is not None:
        args.output.write_text(text + "\n")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
