#!/usr/bin/env python
"""Designing a connectionless overlay on an ATM mesh (Section 7).

Routes three LAN-to-LAN HAP demands over a small switch topology, merges
the demands sharing each link (Equation 4 is additive over application
types), and sizes every link for a 0.2 s delay target with the HAP rule —
reporting how much a Poisson-based design would have under-provisioned.

Run:  python examples/overlay_design.py
"""

from __future__ import annotations

import networkx as nx

from repro.control.overlay import design_cl_overlay
from repro.core.params import HAPParameters


def lan_demand(name: str, user_rate: float) -> HAPParameters:
    """A LAN community: interactive plus bulk application types."""
    return HAPParameters.symmetric(
        user_arrival_rate=user_rate,
        user_departure_rate=0.001,
        app_arrival_rate=0.01,
        app_departure_rate=0.01,
        message_arrival_rate=0.1,
        message_service_rate=20.0,  # placeholder; links are sized below
        num_app_types=3,
        num_message_types=2,
        name=name,
    )


def main() -> None:
    topology = nx.Graph()
    topology.add_edges_from(
        [
            ("lan-eng", "atm-1"),
            ("lan-cs", "atm-1"),
            ("atm-1", "atm-2"),
            ("atm-2", "atm-3"),
            ("atm-3", "lan-admin"),
            ("atm-2", "lan-lib"),
        ]
    )
    demands = {
        "eng->admin": ("lan-eng", "lan-admin", lan_demand("eng", 0.004)),
        "cs->admin": ("lan-cs", "lan-admin", lan_demand("cs", 0.004)),
        "eng->lib": ("lan-eng", "lan-lib", lan_demand("eng2", 0.004)),
    }

    design = design_cl_overlay(topology, demands, delay_target=0.2)

    print("routes:")
    for demand_id, path in design.routes.items():
        print(f"  {demand_id:<11} {' -> '.join(path)}")
    print()
    print(design.describe())
    print()
    poisson_total = sum(design.link_bandwidth_poisson.values())
    print(
        f"designing with Poisson would provision {poisson_total:.1f} msgs/s "
        f"in total;\nthe HAP rule demands {design.total_bandwidth:.1f} "
        f"(+{100 * (design.total_bandwidth / poisson_total - 1):.1f} %) to "
        "actually meet the 0.2 s target on every link."
    )


if __name__ == "__main__":
    main()
