#!/usr/bin/env python
"""HAP-CS: the paper's rlogin request/response example (Section 2.2).

A user types commands into remote-login sessions; each served command
triggers a response with probability p^q, and each response triggers the
next command with probability p^r — a geometric ping-pong whose expected
amplification has a closed form that the simulation must reproduce:

    requests  per spontaneous command = 1 / (1 - p^q p^r)
    responses per spontaneous command = p^q / (1 - p^q p^r)

Run:  python examples/rlogin_client_server.py
"""

from __future__ import annotations

from repro import (
    ClientServerApplicationType,
    ClientServerHAPParameters,
    ClientServerMessageType,
)
from repro.core.solution2 import solve_solution2
from repro.sim.replication import simulate_client_server_mm1

SERVICE_RATE = 40.0


def build_rlogin_node() -> ClientServerHAPParameters:
    command = ClientServerMessageType(
        arrival_rate=0.2,            # spontaneous commands per live session
        request_service_rate=60.0,   # short command packets
        response_service_rate=25.0,  # longer result payloads
        p_response=0.9,              # most commands produce output
        p_next_request=0.6,          # output often prompts the next command
        name="command",
    )
    rlogin = ClientServerApplicationType(
        arrival_rate=0.03,
        departure_rate=0.02,
        messages=(command,),
        name="rlogin",
    )
    return ClientServerHAPParameters(
        user_arrival_rate=0.01,
        user_departure_rate=0.005,
        applications=(rlogin,),
        round_trip_delay=0.05,  # 50 ms WAN round trip
        name="rlogin-node",
    )


def main() -> None:
    params = build_rlogin_node()
    spontaneous = params.spontaneous_message_rate
    effective = params.effective_message_rate
    print(f"spontaneous command rate : {spontaneous:.4g} msgs/s")
    print(f"effective rate with chains: {effective:.4g} msgs/s "
          f"(x{effective / spontaneous:.2f} amplification)")

    msg = params.applications[0].messages[0]
    requests, responses = msg.amplification
    print(f"closed form per spontaneous command: "
          f"{requests:.3f} requests, {responses:.3f} responses\n")

    result = simulate_client_server_mm1(
        params, horizon=400_000.0, service_rate=SERVICE_RATE, seed=11
    )
    sim_requests = result.extras["requests_emitted"]
    sim_responses = result.extras["responses_emitted"]
    print("simulation (4e5 s):")
    print(f"  requests {sim_requests}, responses {sim_responses} "
          f"(ratio {sim_responses / sim_requests:.3f}, closed form "
          f"{responses / requests:.3f})")
    print(f"  measured arrival rate {result.effective_arrival_rate:.4g} msgs/s "
          f"(closed form {effective:.4g})")
    print(f"  mean delay {result.mean_delay * 1e3:.2f} ms at "
          f"rho = {result.utilization:.2f}\n")

    collapsed = params.to_hap_approximation()
    approx = solve_solution2(collapsed, SERVICE_RATE)
    print("plain-HAP collapse (chains folded into rates):")
    print(f"  Solution-2 delay {approx.mean_delay * 1e3:.2f} ms — a quick "
          "control-plane estimate;\n  the simulator above remains the ground "
          "truth because chains correlate\n  arrivals with departures, which "
          "no arrival-process model captures.")


if __name__ == "__main__":
    main()
