#!/usr/bin/env python
"""Quickstart: build the paper's HAP, analyze it three ways, simulate it.

Reproduces the Section-4 headline comparison on the paper's base
parameters and prints every number next to its Poisson (M/M/1) baseline.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import HAP


def main() -> None:
    # The paper's base parameter set (Section 4):
    # lambda=0.0055, mu=0.001, lambda'=0.01, mu'=0.01, lambda''=0.1,
    # mu''=20, l=5 application types, m=3 message types each.
    hap = HAP.symmetric(
        user_arrival_rate=0.0055,
        user_departure_rate=0.001,
        app_arrival_rate=0.01,
        app_departure_rate=0.01,
        message_arrival_rate=0.1,
        message_service_rate=20.0,
        num_app_types=5,
        num_message_types=3,
        name="paper-base",
    )

    print(hap.describe())
    print()
    print(f"lambda-bar (Equation 4): {hap.mean_message_rate:.4g} msgs/s")
    print(f"mean users / applications: {hap.mean_users:g} / {hap.mean_applications:g}")
    print()

    mm1 = hap.poisson_baseline()
    print(f"M/M/1 baseline delay     : {mm1.mean_delay:.4f} s")

    sol2 = hap.solve(solution=2)
    print(
        f"Solution 2 (closed form) : delay {sol2.mean_delay:.4f} s, "
        f"sigma {sol2.sigma:.3f}"
    )

    sol1 = hap.solve(solution=1)
    print(
        f"Solution 1 (chain solve) : delay {sol1.mean_delay:.4f} s, "
        f"sigma {sol1.sigma:.3f}"
    )

    # Solution 0 is exact; a reduced truncation keeps this example snappy.
    sol0 = hap.solve(solution=0, backend="qbd", modulating_bounds=(16, 80))
    print(
        f"Solution 0 (exact QBD)   : delay {sol0.mean_delay:.4f} s, "
        f"sigma {sol0.sigma:.3f}  "
        f"<- {sol0.mean_delay / mm1.mean_delay:.1f}x the Poisson prediction"
    )

    result = hap.simulate(horizon=100_000.0, seed=1)
    print(
        f"Simulation (1e5 s)       : delay {result.mean_delay:.4f} s, "
        f"sigma {result.sigma:.3f}, served {result.messages_served} messages"
    )
    print()
    print(
        "The paper's point in one line: Solutions 1/2 (which drop the\n"
        "correlation between interarrivals) sit near Poisson, while the\n"
        "exact solve and the simulation show the real, much larger delay."
    )


if __name__ == "__main__":
    main()
