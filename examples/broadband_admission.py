#!/usr/bin/env python
"""Broadband admission control and bandwidth allocation (Sections 6-7).

Three control-plane computations on HAP workloads:

1. bandwidth allocation — the smallest service rate meeting a delay target,
   by the Poisson rule and by the HAP rule (the misengineering gap);
2. admission control by population bounds — the Figure-20 mechanism;
3. an admissible-call region for a two-application-type node, compressed to
   Hui's linear rule and a lookup table.

Run:  python examples/broadband_admission.py
"""

from __future__ import annotations

from repro.control.admission_table import (
    build_admission_table,
    linear_region_approximation,
)
from repro.control.bandwidth import bandwidth_for_delay_target
from repro.core.admission import solve_bounded_solution2
from repro.core.solution2 import solve_solution2
from repro.experiments.configs import base_parameters
from repro.experiments.control_study import two_type_hap


def bandwidth_story() -> None:
    params = base_parameters()
    lam = params.mean_message_rate
    print("== bandwidth allocation ==")
    print(f"workload: lambda-bar = {lam:g} msgs/s; target mean delay 0.15 s")
    target = 0.15
    poisson_mu = lam + 1.0 / target
    hap_mu = bandwidth_for_delay_target(params, target)
    actual = solve_solution2(params, poisson_mu).mean_delay
    print(f"  Poisson sizing : mu = {poisson_mu:.2f} msgs/s")
    print(f"  HAP sizing     : mu = {hap_mu:.2f} msgs/s "
          f"(+{100 * (hap_mu / poisson_mu - 1):.1f} %)")
    print(f"  if you trust Poisson, the link actually delivers "
          f"T = {actual:.3f} s > {target} s target\n")


def bounding_story() -> None:
    print("== admission by population bounds (Figure 20) ==")
    params = base_parameters()
    unbounded = solve_solution2(params)
    bounded = solve_bounded_solution2(params, max_users=12, max_apps=60)
    print(f"  unbounded : lambda-bar {params.mean_message_rate:.3g}, "
          f"delay {unbounded.mean_delay:.4f} s")
    print(f"  bounded 12 users / 60 apps: lambda-bar {bounded.mean_rate:.3g}, "
          f"delay {bounded.mean_delay:.4f} s "
          f"({100 * (1 - bounded.mean_delay / unbounded.mean_delay):.1f} % lower)\n")


def region_story() -> None:
    print("== admissible-call region (two application types) ==")
    params = two_type_hap()
    table = build_admission_table(params, delay_target=0.12, max_population=60)
    n1_max, n2_max = linear_region_approximation(list(table.boundary))
    print(f"  delay target 0.12 s -> staircase with {table.size} rows")
    print(f"  Hui linear rule: n_interactive/{n1_max:.0f} + "
          f"n_transfer/{n2_max:.0f} <= 1")
    for mix in [(0, int(n2_max)), (int(n1_max // 2), int(n2_max // 2)),
                (int(n1_max), 0), (int(n1_max), int(n2_max))]:
        verdict = "admit" if table.admit(*mix) else "REJECT"
        print(f"  request mix {mix}: {verdict}")


def main() -> None:
    bandwidth_story()
    bounding_story()
    region_story()


if __name__ == "__main__":
    main()
