#!/usr/bin/env python
"""A heterogeneous campus gateway — the paper's Figure-5 example HAP.

Four application types share a gateway queue:

* a programming environment (interactive keystrokes + file transfers),
* a database front-end (short queries only),
* a graphics tool (fixed-size image transfers),
* a multimedia app (everything, including voice/video-like streams).

The example sizes the gateway three ways — Poisson, a moment-matched
2-state MMPP (the "conventional" model the paper argues against), and the
HAP closed form — then checks them all against simulation.

Run:  python examples/campus_gateway.py
"""

from __future__ import annotations

import numpy as np

from repro import ApplicationType, HAPParameters, MessageType
from repro.core.burstiness import exact_rate_moments
from repro.core.solution2 import solve_solution2
from repro.markov.matrix_geometric import solve_mmpp_m1
from repro.markov.mmpp import fit_mmpp2_to_moments
from repro.queueing.mm1 import solve_mm1
from repro.sim.replication import simulate_hap_mm1

SERVICE_RATE = 60.0  # gateway drains 60 messages/s


def build_gateway_workload() -> HAPParameters:
    """The Figure-5 style mix, scaled to a small campus gateway."""
    keystroke = MessageType(0.5, SERVICE_RATE, name="interactive")
    transfer = MessageType(0.05, SERVICE_RATE, name="file-transfer")
    query = MessageType(0.8, SERVICE_RATE, name="db-query")
    image = MessageType(0.2, SERVICE_RATE, name="image")
    stream = MessageType(1.5, SERVICE_RATE, name="media-chunk")

    programming = ApplicationType(
        0.02, 0.01, (keystroke, transfer), name="programming"
    )
    database = ApplicationType(0.03, 0.02, (query,), name="database")
    graphics = ApplicationType(0.01, 0.02, (image,), name="graphics")
    multimedia = ApplicationType(
        0.005, 0.01, (keystroke, image, stream), name="multimedia"
    )
    return HAPParameters(
        user_arrival_rate=0.004,
        user_departure_rate=0.001,
        applications=(programming, database, graphics, multimedia),
        name="campus-gateway",
    )


def main() -> None:
    params = build_gateway_workload()
    print(params.describe())
    lam = params.mean_message_rate
    print(f"\noffered load: {lam:.3g} msgs/s on a {SERVICE_RATE:g} msgs/s gateway "
          f"(rho = {lam / SERVICE_RATE:.2f})\n")

    # --- three models of the same workload -----------------------------
    mm1 = solve_mm1(lam, SERVICE_RATE)
    print(f"Poisson        : delay {mm1.mean_delay * 1e3:8.2f} ms")

    mean, variance = exact_rate_moments(params)
    # Decay chosen from the slowest modulating level (users).
    mmpp2 = fit_mmpp2_to_moments(mean, variance, params.user_departure_rate)
    flat = solve_mmpp_m1(mmpp2, SERVICE_RATE)
    print(f"2-state MMPP   : delay {flat.mean_delay() * 1e3:8.2f} ms "
          "(moment-matched, hierarchy collapsed)")

    sol2 = solve_solution2(params, SERVICE_RATE)
    print(f"HAP Solution 2 : delay {sol2.mean_delay * 1e3:8.2f} ms "
          f"(sigma {sol2.sigma:.3f})")

    sim = simulate_hap_mm1(
        params, horizon=200_000.0, seed=7, service_rate=SERVICE_RATE
    )
    print(f"HAP simulation : delay {sim.mean_delay * 1e3:8.2f} ms "
          f"({sim.messages_served} messages)\n")

    # --- per-type share of the load -------------------------------------
    print("per-application-type share of lambda-bar:")
    for app in params.applications:
        share = (
            params.mean_users * app.offered_instances * app.total_message_rate
        ) / lam
        print(f"  {app.name:<12} {100 * share:5.1f} %")

    ratio = sim.mean_delay / mm1.mean_delay
    print(
        f"\nPoisson underestimates this gateway's delay by "
        f"{ratio:.1f}x at rho = {lam / SERVICE_RATE:.2f} — and the gap widens "
        "rapidly if the gateway is sized any tighter."
    )


if __name__ == "__main__":
    main()
