#!/usr/bin/env python
"""Short-term behaviour: the "mountains" of Figures 14-17.

Runs one traced HAP simulation at mu'' = 17 (the paper's Sections 4.3-4.4
setting), finds the worst congestion event, and shows what the hierarchy
was doing when it started — the paper's explanation of occasional
real-network congestion that Poisson models can never produce.

Run:  python examples/congestion_mountains.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments.configs import base_parameters
from repro.experiments.fig13_18 import run_fig14_to_17
from repro.sim.replication import simulate_source_mm1
from repro.sim.sources import PoissonSource


def sparkline(values: np.ndarray, width: int = 72) -> str:
    """A terminal sparkline of the queue-length trace."""
    if values.size == 0:
        return "(empty)"
    blocks = " .:-=+*#%@"
    bins = np.array_split(values, width)
    peaks = np.array([chunk.max() if chunk.size else 0.0 for chunk in bins])
    top = peaks.max() or 1.0
    return "".join(
        blocks[min(int(9 * peak / top), 9)] for peak in peaks
    )


def main() -> None:
    horizon = 400_000.0
    print(f"simulating {horizon:.0f} s of the paper's mu''=17 workload ...")
    result = run_fig14_to_17(horizon=horizon, seed=23)
    sim = result.simulation

    print(f"\nlong-run averages: delay {sim.mean_delay:.3f} s, "
          f"rho {sim.utilization:.2f}, users {sim.mean_users:.1f}, "
          f"apps {sim.mean_apps:.1f}")

    print("\npeak congestion event (the Figure-15 'mountain'):")
    print(f"  height {result.peak_height:.0f} messages, "
          f"width {result.peak_width:.0f} s "
          f"({result.peak_width / 60:.1f} minutes)")
    print(f"  at onset: {result.users_at_peak_onset:.0f} users "
          f"(mean {sim.mean_users:.1f}), "
          f"{result.apps_at_peak_onset:.0f} applications "
          f"(mean {sim.mean_apps:.1f})")

    times, values = result.one_hour_window
    print("\nqueue length through the hour around the peak:")
    print(f"  [{sparkline(values)}]")

    stats = sim.busy_stats
    print(f"\nbusy periods: {stats.num_busy_periods}, busy fraction "
          f"{100 * stats.busy_fraction:.0f} %")
    print(f"  width: mean {stats.mean_busy:.3f} s, var {stats.var_busy:.3g}")
    print(f"  height: mean {stats.mean_height:.2f}, max {stats.max_height:.0f}")

    params = base_parameters(service_rate=17.0)
    poisson = simulate_source_mm1(
        lambda s, rng, emit: PoissonSource(s, params.mean_message_rate, rng, emit),
        horizon=horizon,
        service_rate=17.0,
        seed=23,
        collect_busy_periods=True,
    )
    print(f"\nPoisson at the same load never leaves the foothills: "
          f"peak queue {poisson.busy_stats.max_height:.0f} messages "
          f"(the paper saw 29), busy-period variance "
          f"{stats.var_busy / poisson.busy_stats.var_busy:.0f}x smaller.")


if __name__ == "__main__":
    main()
