"""Repository-layout meta-tests: the docs index what actually exists."""

from __future__ import annotations

from pathlib import Path

import pytest

import repro

ROOT = Path(repro.__file__).resolve().parents[2]


class TestDesignIndex:
    def test_every_benchmark_is_indexed_in_design(self):
        design = (ROOT / "DESIGN.md").read_text()
        benchmarks = sorted((ROOT / "benchmarks").glob("test_bench_*.py"))
        assert benchmarks, "no benchmarks found"
        missing = [b.name for b in benchmarks if b.name not in design]
        # Figure benches are indexed by grouped names (e.g. fig16_17 rows
        # point at the shared module); resolve those aliases first.
        aliases = {
            "test_bench_fig10.py": "test_bench_fig10",
            "test_bench_fig14_17.py": "test_bench_fig1",
        }
        truly_missing = [
            name
            for name in missing
            if not any(alias in design for alias in (name, name[:-3]))
            and aliases.get(name, name) not in design
        ]
        assert not truly_missing, f"benchmarks absent from DESIGN.md: {truly_missing}"

    def test_every_example_is_mentioned_in_readme(self):
        readme = (ROOT / "README.md").read_text()
        for example in (ROOT / "examples").glob("*.py"):
            assert example.name in readme, example.name

    def test_experiment_runners_are_exported(self):
        import repro.experiments as experiments

        for name in (
            "run_headline",
            "run_fig8",
            "run_fig9",
            "run_fig11",
            "run_fig12",
            "run_fig13",
            "run_fig14_to_17",
            "run_fig18",
            "run_fig19",
            "run_fig20",
            "run_accuracy_sweep",
            "run_multiplexing_study",
            "run_heavy_tail_ablation",
        ):
            assert hasattr(experiments, name), name


class TestPackaging:
    def test_pyproject_declares_dependencies(self):
        text = (ROOT / "pyproject.toml").read_text()
        for dep in ("numpy", "scipy", "networkx"):
            assert dep in text

    def test_no_stray_top_level_modules(self):
        """Everything importable under repro lives in a known subpackage."""
        import pkgutil

        allowed = {
            "core",
            "markov",
            "queueing",
            "sim",
            "analysis",
            "control",
            "experiments",
            "runtime",
            "service",
            "cli",
        }
        found = {
            info.name.split(".")[1]
            for info in pkgutil.walk_packages(repro.__path__, prefix="repro.")
        }
        assert found <= allowed | {name + "." for name in allowed} or found <= allowed
