"""Tests for repro.core.onoff — 2-level HAPs and interrupted Poisson."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.integrate import quad

from repro.core.onoff import InterruptedPoisson, TwoLevelHAP


@pytest.fixture
def two_level() -> TwoLevelHAP:
    return TwoLevelHAP(
        session_arrival_rate=0.1,
        session_departure_rate=0.05,
        message_rate=1.5,
    )


class TestTwoLevelHAP:
    def test_mean_rate(self, two_level):
        assert two_level.mean_message_rate == pytest.approx(2.0 * 1.5)

    def test_ccdf_boundary_values(self, two_level):
        assert float(two_level.interarrival_ccdf(0.0)[0]) == pytest.approx(1.0)
        assert float(two_level.interarrival_ccdf(50.0)[0]) < 1e-10

    def test_density_is_ccdf_derivative(self, two_level):
        for t in (0.05, 0.3, 1.0, 3.0):
            h = 1e-6
            finite_diff = (
                float(two_level.interarrival_ccdf(t - h)[0])
                - float(two_level.interarrival_ccdf(t + h)[0])
            ) / (2 * h)
            assert float(two_level.interarrival_density(t)[0]) == pytest.approx(
                finite_diff, rel=1e-5
            )

    def test_density_integrates_to_one(self, two_level):
        total, _ = quad(
            lambda t: float(two_level.interarrival_density(t)[0]), 0, 80,
            limit=200,
        )
        assert total == pytest.approx(1.0, abs=1e-8)

    def test_density_at_zero(self, two_level):
        assert two_level.density_at_zero() == pytest.approx(1.5 * 3.0)
        assert float(two_level.interarrival_density(0.0)[0]) == pytest.approx(
            two_level.density_at_zero()
        )

    def test_closed_form_matches_palm_mixture_of_chain(self, two_level):
        """The 2-level ccdf equals the rate-weighted mixture of its chain.

        The session count is M/M/∞ (Poisson); weighting state ``n`` by its
        rate ``n * Lambda`` and mixing ``exp(-n Lambda t)`` must reproduce
        the closed form exactly (no separation assumption at one level).
        """
        mapped = two_level.to_mmpp(max_sessions=60)
        weights, rates = mapped.mmpp.interarrival_mixture()
        ts = np.array([0.01, 0.1, 0.5, 2.0])
        mixture_ccdf = (weights * np.exp(-np.outer(ts, rates))).sum(axis=1)
        np.testing.assert_allclose(
            two_level.interarrival_ccdf(ts), mixture_ccdf, rtol=1e-6
        )

    def test_to_mmpp_rate(self, two_level):
        mapped = two_level.to_mmpp()
        assert mapped.mmpp.mean_rate() == pytest.approx(
            two_level.mean_message_rate, rel=1e-3
        )

    def test_to_mmpp_sessions_poisson(self, two_level):
        from scipy.stats import poisson

        mapped = two_level.to_mmpp(max_sessions=30)
        pi = mapped.mmpp.stationary_distribution()
        expected = poisson.pmf(np.arange(31), two_level.mean_sessions)
        np.testing.assert_allclose(pi, expected / expected.sum(), atol=1e-6)

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            TwoLevelHAP(0.0, 1.0, 1.0)


class TestInterruptedPoisson:
    def test_mean_rate(self):
        ipp = InterruptedPoisson(on_rate=1.0, off_rate=3.0, peak_rate=8.0)
        assert ipp.on_fraction == pytest.approx(0.25)
        assert ipp.mean_rate == pytest.approx(2.0)

    def test_mmpp_equivalence(self):
        ipp = InterruptedPoisson(1.0, 3.0, 8.0)
        mmpp = ipp.to_mmpp()
        assert mmpp.mean_rate() == pytest.approx(ipp.mean_rate)
        # Rate variance of a two-point distribution.
        assert mmpp.rate_variance() == pytest.approx(
            0.25 * 0.75 * 8.0**2
        )

    def test_superposition_rate_scales(self):
        ipp = InterruptedPoisson(1.0, 3.0, 8.0)
        combined = ipp.n_superposed(5)
        assert combined.mean_rate() == pytest.approx(5 * ipp.mean_rate)

    def test_superposition_binomial_states(self):
        from scipy.stats import binom

        ipp = InterruptedPoisson(1.0, 3.0, 8.0)
        combined = ipp.n_superposed(6)
        pi = combined.stationary_distribution()
        expected = binom.pmf(np.arange(7), 6, 0.25)
        np.testing.assert_allclose(pi, expected, atol=1e-10)

    def test_superposition_smooths_traffic(self):
        # Normalized variability falls as independent sources multiplex —
        # the contrast the paper draws with HAP's correlated compounding.
        ipp = InterruptedPoisson(1.0, 3.0, 8.0)
        one = ipp.to_mmpp()
        many = ipp.n_superposed(10)
        cv2_one = one.rate_variance() / one.mean_rate() ** 2
        cv2_many = many.rate_variance() / many.mean_rate() ** 2
        assert cv2_many == pytest.approx(cv2_one / 10.0, rel=1e-9)

    def test_rejects_zero_sources(self):
        with pytest.raises(ValueError):
            InterruptedPoisson(1.0, 1.0, 1.0).n_superposed(0)

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            InterruptedPoisson(1.0, -1.0, 1.0)
